//! The `bench_kv` JSON document (`rhtm-kv-bench` schema), hand-rolled
//! like every emitter in this offline workspace.

use rhtm_api::LatencySummary;
use rhtm_mem::MemMetrics;

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One measured `(scenario, spec, shards, rate, arrival)` point.
#[derive(Clone, Debug)]
pub struct KvRow {
    /// KV scenario name ([`crate::KvScenario`]).
    pub scenario: String,
    /// Full spec label every shard runs (`algo+clock+policy`).
    pub spec: String,
    /// Shard count of the run.
    pub shards: usize,
    /// Global key space.
    pub key_space: u64,
    /// Mix label ([`crate::KvMix::label`]).
    pub op_mix: String,
    /// Configured offered load (req/s).
    pub offered_rate: f64,
    /// Arrival-process label ([`crate::Arrival::label`]).
    pub arrival: String,
    /// Worker threads.
    pub threads: usize,
    /// Requests generated over the horizon.
    pub generated: u64,
    /// Requests completed (equals `generated` after the drain).
    pub completed: u64,
    /// Applied transfers.
    pub applied_transfers: u64,
    /// Declined transfers.
    pub declined_transfers: u64,
    /// Completed requests per second of `max(horizon, drain time)`.
    pub goodput_ops_per_sec: f64,
    /// Committed transactions across workers and shards.
    pub commits: u64,
    /// Aborted attempts across workers and shards.
    pub aborts: u64,
    /// Allocation/reclamation counters merged across workers and shards.
    pub mem: MemMetrics,
    /// The latency tail summary (nanoseconds).
    pub latency: LatencySummary,
}

/// Serialises a `bench_kv` sweep as one JSON document:
///
/// ```json
/// {
///   "suite": "rhtm-kv-bench",
///   "schema_version": 1,
///   "seed": N, "threads": N, "duration_ms": N,
///   "rows": [
///     { "scenario": "...", "spec": "...", "shards": N, "key_space": N,
///       "op_mix": "...", "offered_rate": X, "arrival": "...",
///       "threads": N, "generated": N, "completed": N,
///       "applied_transfers": N, "declined_transfers": N,
///       "goodput_ops_per_sec": X, "commits": N, "aborts": N,
///       "mem_metrics": { "alloc_words": N, "retired": N,
///                        "reclaimed": N, "epoch_advances": N },
///       "latency": { "count": N, "p50_ns": N, "p90_ns": N,
///                    "p99_ns": N, "p999_ns": N, "max_ns": N } }
///   ]
/// }
/// ```
///
/// Sweeping `rate=` at fixed shape makes `(offered_rate,
/// goodput_ops_per_sec, latency.p99_ns)` rows the goodput-vs-offered-load
/// curve; see `docs/BENCHMARKS.md`.
pub fn kv_suite_to_json(seed: u64, duration_ms: u64, threads: usize, rows: &[KvRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"rhtm-kv-bench\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"duration_ms\": {duration_ms},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    {\n");
        out.push_str(&format!("      \"scenario\": {},\n", json_str(&r.scenario)));
        out.push_str(&format!("      \"spec\": {},\n", json_str(&r.spec)));
        out.push_str(&format!("      \"shards\": {},\n", r.shards));
        out.push_str(&format!("      \"key_space\": {},\n", r.key_space));
        out.push_str(&format!("      \"op_mix\": {},\n", json_str(&r.op_mix)));
        out.push_str(&format!("      \"offered_rate\": {:.1},\n", r.offered_rate));
        out.push_str(&format!("      \"arrival\": {},\n", json_str(&r.arrival)));
        out.push_str(&format!("      \"threads\": {},\n", r.threads));
        out.push_str(&format!("      \"generated\": {},\n", r.generated));
        out.push_str(&format!("      \"completed\": {},\n", r.completed));
        out.push_str(&format!(
            "      \"applied_transfers\": {},\n",
            r.applied_transfers
        ));
        out.push_str(&format!(
            "      \"declined_transfers\": {},\n",
            r.declined_transfers
        ));
        out.push_str(&format!(
            "      \"goodput_ops_per_sec\": {:.1},\n",
            r.goodput_ops_per_sec
        ));
        out.push_str(&format!("      \"commits\": {},\n", r.commits));
        out.push_str(&format!("      \"aborts\": {},\n", r.aborts));
        out.push_str(&format!(
            "      \"mem_metrics\": {{\"alloc_words\": {}, \"retired\": {}, \
             \"reclaimed\": {}, \"epoch_advances\": {}}},\n",
            r.mem.alloc_words, r.mem.retired, r.mem.reclaimed, r.mem.epoch_advances
        ));
        out.push_str(&format!(
            "      \"latency\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}\n",
            r.latency.count,
            r.latency.p50,
            r.latency.p90,
            r.latency.p99,
            r.latency.p999,
            r.latency.max
        ));
        out.push_str("    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_is_valid_json_with_the_promised_fields() {
        let row = KvRow {
            scenario: "kv-point-ops".into(),
            spec: "rh2+gv6+adaptive".into(),
            shards: 4,
            key_space: 8192,
            op_mix: "g70-p20-d10-t0-m0".into(),
            offered_rate: 20_000.0,
            arrival: "poisson".into(),
            threads: 2,
            generated: 2000,
            completed: 2000,
            applied_transfers: 0,
            declined_transfers: 0,
            goodput_ops_per_sec: 19_800.5,
            commits: 2000,
            aborts: 3,
            mem: MemMetrics {
                alloc_words: 4800,
                retired: 190,
                reclaimed: 185,
                epoch_advances: 12,
            },
            latency: LatencySummary {
                count: 2000,
                p50: 1200,
                p90: 2500,
                p99: 9000,
                p999: 30_000,
                max: 41_000,
            },
        };
        let json = kv_suite_to_json(7, 100, 2, &[row]);
        rhtm_workloads::report::validate_json(&json).expect("must parse");
        for field in [
            "\"suite\": \"rhtm-kv-bench\"",
            "\"schema_version\": 1",
            "\"scenario\": \"kv-point-ops\"",
            "\"shards\": 4",
            "\"offered_rate\": 20000.0",
            "\"arrival\": \"poisson\"",
            "\"goodput_ops_per_sec\": 19800.5",
            "\"mem_metrics\": {\"alloc_words\": 4800, \"retired\": 190, \
             \"reclaimed\": 185, \"epoch_advances\": 12}",
            "\"latency\": {\"count\": 2000",
            "\"p50_ns\": 1200",
            "\"p99_ns\": 9000",
            "\"p999_ns\": 30000",
        ] {
            assert!(json.contains(field), "missing {field}\n{json}");
        }
    }

    #[test]
    fn empty_sweeps_are_still_valid_documents() {
        let json = kv_suite_to_json(0, 0, 1, &[]);
        rhtm_workloads::report::validate_json(&json).expect("must parse");
    }
}
