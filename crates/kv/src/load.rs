//! The open-loop traffic generator.
//!
//! Closed-loop drivers (the `rhtm_workloads` benchmark driver) issue the
//! next operation the moment the previous one finishes, so a slow server
//! silently slows the *offered* load and hides queueing delay.  An
//! open-loop generator schedules arrivals from a clock that does not care
//! how the server is doing: requests that arrive while the worker is busy
//! queue up, and their latency — measured from the **scheduled arrival**,
//! not from when the worker got around to them — includes that queueing
//! delay (the coordinated-omission-free measurement).
//!
//! Determinism: arrival times, operation kinds and keys are derived from
//! [`WorkloadRng`] streams seeded only by `(seed, worker index)` and are
//! generated **up front** over the configured horizon; the worker then
//! serves every planned request even if that takes longer than the
//! horizon.  The op stream is therefore a pure function of the seed —
//! identical on any machine at any service speed — which is what makes
//! single-threaded runs replayable ([`plan_worker`]).

use std::time::{Duration, Instant};

use rhtm_api::LatencyHistogram;
use rhtm_mem::MemMetrics;
use rhtm_workloads::check::{EventKind, HistoryRecorder};
use rhtm_workloads::WorkloadRng;

use crate::service::{KvService, TransferOutcome};

/// The arrival process of the open-loop generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Exponential interarrival times (a Poisson process) at the offered
    /// rate.
    Poisson,
    /// Batches of `N` back-to-back requests; batch starts form a Poisson
    /// process at `rate / N`, so the mean offered rate is unchanged but
    /// the instantaneous load is spiky.
    Burst(u32),
}

impl Arrival {
    /// Parses an arrival label: `poisson`, or `burst-N` with `N ≥ 2`.
    pub fn parse(label: &str) -> Option<Arrival> {
        let label = label.trim().to_ascii_lowercase();
        if label == "poisson" {
            return Some(Arrival::Poisson);
        }
        let n: u32 = label.strip_prefix("burst-")?.parse().ok()?;
        (n >= 2).then_some(Arrival::Burst(n))
    }

    /// The stable label (`parse` round-trips it).
    pub fn label(&self) -> String {
        match self {
            Arrival::Poisson => "poisson".to_string(),
            Arrival::Burst(n) => format!("burst-{n}"),
        }
    }
}

/// The weighted operation mix of the generator, in percent.  The
/// remainder up to 100 is two-key [`KvOp::MultiGet`]s.
#[derive(Clone, Copy, Debug)]
pub struct KvMix {
    /// Single-key reads.
    pub get_pct: u8,
    /// Single-key upserts.
    pub put_pct: u8,
    /// Single-key deletes.
    pub delete_pct: u8,
    /// Two-key transfers (the two-shard commit path).
    pub transfer_pct: u8,
}

impl KvMix {
    /// A mix; panics if the percentages exceed 100.
    pub fn new(get_pct: u8, put_pct: u8, delete_pct: u8, transfer_pct: u8) -> Self {
        assert!(
            get_pct as u32 + put_pct as u32 + delete_pct as u32 + transfer_pct as u32 <= 100,
            "mix percentages exceed 100"
        );
        KvMix {
            get_pct,
            put_pct,
            delete_pct,
            transfer_pct,
        }
    }

    /// The point-op workload: 70% get, 20% put, 10% delete.
    pub fn point_ops() -> Self {
        KvMix::new(70, 20, 10, 0)
    }

    /// The conservation-checkable workload: 30% get, 60% transfer, 10%
    /// multi-get — no puts or deletes, so the global balance total is
    /// invariant and [`crate::ShardedBankChecker`] applies.
    pub fn transfer_mix() -> Self {
        KvMix::new(30, 0, 0, 60)
    }

    /// Percentage of two-key multi-gets (the remainder).
    pub fn multi_get_pct(&self) -> u8 {
        100 - self.get_pct - self.put_pct - self.delete_pct - self.transfer_pct
    }

    /// Stable mix label, e.g. `g70-p20-d10-t0-m0`.
    pub fn label(&self) -> String {
        format!(
            "g{}-p{}-d{}-t{}-m{}",
            self.get_pct,
            self.put_pct,
            self.delete_pct,
            self.transfer_pct,
            self.multi_get_pct()
        )
    }

    /// Whether the mix can change the conserved balance total (puts and
    /// deletes create/destroy value; transfers and reads do not).
    pub fn conserves_balance(&self) -> bool {
        self.put_pct == 0 && self.delete_pct == 0
    }
}

/// One generated request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Single-key read.
    Get {
        /// Global key.
        key: u64,
    },
    /// Single-key upsert.
    Put {
        /// Global key.
        key: u64,
        /// Value written.
        value: u64,
    },
    /// Single-key delete.
    Delete {
        /// Global key.
        key: u64,
    },
    /// Two-key transfer.
    Transfer {
        /// Debited key.
        from: u64,
        /// Credited key.
        to: u64,
        /// Amount moved.
        amount: u64,
    },
    /// Two-key read.
    MultiGet {
        /// First key.
        a: u64,
        /// Second key.
        b: u64,
    },
}

/// A request with its scheduled arrival offset from run start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedOp {
    /// Scheduled arrival, nanoseconds after the run starts.
    pub at_ns: u64,
    /// The request.
    pub op: KvOp,
}

/// Parameters of one open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct LoadOpts {
    /// Worker threads; the offered rate is split evenly across them.
    pub workers: usize,
    /// Aggregate offered load, requests per second.
    pub offered_rate: f64,
    /// The arrival process.
    pub arrival: Arrival,
    /// Generation horizon: arrivals are scheduled in `[0, duration)`.
    pub duration: Duration,
    /// The operation mix.
    pub mix: KvMix,
    /// Base RNG seed (arrival and op streams derive from it per worker).
    pub seed: u64,
    /// Transfer amounts are drawn uniformly from `1..=amount_cap`.
    pub amount_cap: u64,
}

impl LoadOpts {
    /// An open-loop run at `offered_rate` req/s over `duration`:
    /// 1 worker, Poisson arrivals, the point-op mix, the workspace seed.
    pub fn new(offered_rate: f64, duration: Duration) -> Self {
        LoadOpts {
            workers: 1,
            offered_rate,
            arrival: Arrival::Poisson,
            duration,
            mix: KvMix::point_ops(),
            seed: 0xbe6c_c0de,
            amount_cap: 8,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the arrival process.
    pub fn with_arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the operation mix.
    pub fn with_mix(mut self, mix: KvMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What one open-loop run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// The configured aggregate offered rate (req/s).
    pub offered_rate: f64,
    /// The arrival process that was run.
    pub arrival: Arrival,
    /// Requests generated over the horizon (pure function of the seed).
    pub generated: u64,
    /// Requests completed (every generated request is served, so this
    /// equals `generated` once the run drains).
    pub completed: u64,
    /// Applied transfers.
    pub applied_transfers: u64,
    /// Declined transfers (insufficient funds / missing account).
    pub declined_transfers: u64,
    /// Run start to last completion.
    pub elapsed: Duration,
    /// Completed requests per second of `max(horizon, elapsed)` — under
    /// overload the drain time stretches and goodput falls below the
    /// offered rate.
    pub goodput: f64,
    /// Per-request latency from scheduled arrival to completion, merged
    /// across workers.
    pub latency: LatencyHistogram,
    /// Committed transactions across all workers and shards.
    pub commits: u64,
    /// Aborted transaction attempts across all workers and shards.
    pub aborts: u64,
    /// Allocation/reclamation counters merged across all workers and
    /// shards (fresh words, retired/reclaimed nodes, epoch advances).
    pub mem: MemMetrics,
    /// Per-worker transfer event logs (globally-keyed), ready for
    /// [`rhtm_workloads::check::History::from_recorders`] and the
    /// [`crate::ShardedBankChecker`].
    pub histories: Vec<HistoryRecorder>,
}

/// Per-worker RNG stream separators (arbitrary odd constants; the
/// splitmix scramble in [`WorkloadRng::new`] decorrelates the streams).
const ARRIVAL_STREAM: u64 = 0xA24B_AED4_963E_E407;
const OP_STREAM: u64 = 0x9E6D_62D0_6F6A_9A9B;

/// Generates worker `worker_id`'s complete request plan: arrival offsets
/// and operations over the horizon, a pure function of
/// `(opts.seed, worker_id)`.
pub fn plan_worker(opts: &LoadOpts, key_space: u64, worker_id: usize) -> Vec<PlannedOp> {
    assert!(opts.offered_rate > 0.0, "offered rate must be positive");
    assert!(key_space >= 2, "the two-key ops need at least two keys");
    let lambda = opts.offered_rate / opts.workers.max(1) as f64; // req/s
    let horizon_ns = opts.duration.as_nanos() as u64;
    let wid = worker_id as u64 + 1;
    let mut arrivals = WorkloadRng::new(opts.seed ^ wid.wrapping_mul(ARRIVAL_STREAM));
    let mut ops = WorkloadRng::new(opts.seed ^ wid.wrapping_mul(OP_STREAM));
    let mut plan = Vec::new();
    let draw_op = |ops: &mut WorkloadRng| -> KvOp {
        let roll = ops.next_below(100) as u8;
        let key = ops.next_below(key_space);
        let m = &opts.mix;
        if roll < m.get_pct {
            KvOp::Get { key }
        } else if roll < m.get_pct + m.put_pct {
            KvOp::Put {
                key,
                value: 1 + ops.next_below(1_000_000),
            }
        } else if roll < m.get_pct + m.put_pct + m.delete_pct {
            KvOp::Delete { key }
        } else if roll < m.get_pct + m.put_pct + m.delete_pct + m.transfer_pct {
            let mut to = ops.next_below(key_space);
            if to == key {
                to = (to + 1) % key_space;
            }
            KvOp::Transfer {
                from: key,
                to,
                amount: 1 + ops.next_below(opts.amount_cap.max(1)),
            }
        } else {
            KvOp::MultiGet {
                a: key,
                b: ops.next_below(key_space),
            }
        }
    };
    // Exponential interarrival in ns at `per_sec` events/s.
    let exp_ns = |rng: &mut WorkloadRng, per_sec: f64| -> f64 {
        let u = rng.next_f64();
        -(1.0 - u).ln() / per_sec * 1e9
    };
    let mut t = 0.0f64;
    match opts.arrival {
        Arrival::Poisson => loop {
            t += exp_ns(&mut arrivals, lambda);
            if t as u64 >= horizon_ns {
                break;
            }
            plan.push(PlannedOp {
                at_ns: t as u64,
                op: draw_op(&mut ops),
            });
        },
        Arrival::Burst(batch) => loop {
            t += exp_ns(&mut arrivals, lambda / batch as f64);
            if t as u64 >= horizon_ns {
                break;
            }
            for _ in 0..batch {
                plan.push(PlannedOp {
                    at_ns: t as u64,
                    op: draw_op(&mut ops),
                });
            }
        },
    }
    plan
}

/// Serves one worker's plan against the service, recording latency from
/// each request's scheduled arrival and transfer events for the checker.
fn serve_worker(
    service: &KvService,
    plan: &[PlannedOp],
    start: Instant,
) -> (
    LatencyHistogram,
    HistoryRecorder,
    u64,
    u64,
    u64,
    u64,
    MemMetrics,
) {
    let mut worker = service.worker();
    let mut latency = LatencyHistogram::new();
    let mut recorder = HistoryRecorder::new();
    let (mut applied, mut declined) = (0u64, 0u64);
    for p in plan {
        let deadline = start + Duration::from_nanos(p.at_ns);
        // Open-loop pacing: wait for the scheduled arrival.  Sleep while
        // far out, spin the last stretch for precision.
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let ahead = deadline - now;
            // Sleep only when far out, with a wide wake-early margin:
            // kernel oversleep past the deadline would read as tail
            // latency.  The last stretch is spun for precision.
            if ahead > Duration::from_millis(1) {
                std::thread::sleep(ahead - Duration::from_micros(500));
            } else {
                std::hint::spin_loop();
            }
        }
        match p.op {
            KvOp::Get { key } => {
                worker.get(key);
            }
            KvOp::Put { key, value } => {
                worker.put(key, value);
            }
            KvOp::Delete { key } => {
                worker.delete(key);
            }
            KvOp::Transfer { from, to, amount } => {
                let outcome = worker.transfer(from, to, amount);
                let ok = outcome == TransferOutcome::Applied;
                if ok {
                    applied += 1;
                } else {
                    declined += 1;
                }
                recorder.record(
                    EventKind::Transfer {
                        from,
                        to,
                        amount,
                        applied: ok,
                    },
                    None,
                );
            }
            KvOp::MultiGet { a, b } => {
                worker.multi_get(&[a, b]);
            }
        }
        let served_at = Instant::now();
        latency.record(served_at.saturating_duration_since(deadline).as_nanos() as u64);
    }
    let (commits, aborts) = worker.stats();
    let mem = worker.mem_metrics();
    (latency, recorder, applied, declined, commits, aborts, mem)
}

/// Runs one open-loop measurement: plans every worker's request stream,
/// serves all of it (draining past the horizon under overload) and merges
/// the per-worker results.
pub fn run_open_loop(service: &KvService, opts: &LoadOpts) -> LoadReport {
    let workers = opts.workers.max(1);
    let plans: Vec<Vec<PlannedOp>> = (0..workers)
        .map(|w| plan_worker(opts, service.key_space(), w))
        .collect();
    let generated: u64 = plans.iter().map(|p| p.len() as u64).sum();
    // The clock origin sits a grace period in the future so thread spawn
    // and per-shard registration are done before the first deadline —
    // otherwise startup cost reads as tail latency on the earliest
    // requests (visible at low rates, where few samples dilute it).
    let start = Instant::now() + Duration::from_millis(2);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| scope.spawn(move || serve_worker(service, plan, start)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut latency = LatencyHistogram::new();
    let mut histories = Vec::with_capacity(results.len());
    let (mut applied, mut declined, mut commits, mut aborts) = (0u64, 0u64, 0u64, 0u64);
    let mut mem = MemMetrics::default();
    for (h, rec, ap, de, co, ab, m) in results {
        latency.merge(&h);
        histories.push(rec);
        applied += ap;
        declined += de;
        commits += co;
        aborts += ab;
        mem.merge(&m);
    }
    let completed = latency.count();
    let denom = elapsed.max(opts.duration).as_secs_f64();
    LoadReport {
        offered_rate: opts.offered_rate,
        arrival: opts.arrival,
        generated,
        completed,
        applied_transfers: applied,
        declined_transfers: declined,
        elapsed,
        goodput: if denom > 0.0 {
            completed as f64 / denom
        } else {
            0.0
        },
        latency,
        commits,
        aborts,
        mem,
        histories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::KvConfig;
    use rhtm_workloads::{AlgoKind, TmSpec};

    #[test]
    fn arrival_labels_round_trip() {
        assert_eq!(Arrival::parse("poisson"), Some(Arrival::Poisson));
        assert_eq!(Arrival::parse("burst-16"), Some(Arrival::Burst(16)));
        assert_eq!(Arrival::parse("BURST-4"), Some(Arrival::Burst(4)));
        for bad in ["burst-1", "burst-0", "burst-", "uniform", ""] {
            assert_eq!(Arrival::parse(bad), None, "{bad:?}");
        }
        for a in [Arrival::Poisson, Arrival::Burst(16)] {
            assert_eq!(Arrival::parse(&a.label()), Some(a));
        }
    }

    #[test]
    fn mix_labels_and_conservation_flags() {
        assert_eq!(KvMix::point_ops().label(), "g70-p20-d10-t0-m0");
        assert_eq!(KvMix::transfer_mix().label(), "g30-p0-d0-t60-m10");
        assert!(!KvMix::point_ops().conserves_balance());
        assert!(KvMix::transfer_mix().conserves_balance());
    }

    #[test]
    fn plans_are_deterministic_and_rate_shaped() {
        let opts = LoadOpts::new(50_000.0, Duration::from_millis(100));
        let a = plan_worker(&opts, 1024, 0);
        let b = plan_worker(&opts, 1024, 0);
        assert_eq!(a, b, "same seed, same plan");
        // ~5000 expected arrivals; Poisson keeps it within a wide band.
        assert!((4000..6500).contains(&a.len()), "got {}", a.len());
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let other = plan_worker(&opts, 1024, 1);
        assert_ne!(a, other, "workers draw distinct streams");
        let reseeded = plan_worker(&LoadOpts { seed: 1, ..opts }, 1024, 0);
        assert_ne!(a, reseeded, "seed changes the plan");
    }

    #[test]
    fn burst_plans_arrive_in_batches_at_the_same_mean_rate() {
        let opts =
            LoadOpts::new(50_000.0, Duration::from_millis(100)).with_arrival(Arrival::Burst(16));
        let plan = plan_worker(&opts, 1024, 0);
        assert!((3500..7000).contains(&plan.len()), "got {}", plan.len());
        assert_eq!(plan.len() % 16, 0, "whole batches only");
        // Every batch shares one arrival instant.
        for batch in plan.chunks(16) {
            assert!(batch.iter().all(|p| p.at_ns == batch[0].at_ns));
        }
    }

    #[test]
    fn open_loop_serves_every_generated_request() {
        let spec = TmSpec::new(AlgoKind::Rh2);
        let service = KvService::new(&spec, &KvConfig::new(2, 256, 2));
        let opts = LoadOpts::new(20_000.0, Duration::from_millis(40))
            .with_workers(2)
            .with_mix(KvMix::transfer_mix());
        let report = run_open_loop(&service, &opts);
        assert_eq!(report.completed, report.generated);
        assert!(report.generated > 200, "got {}", report.generated);
        assert_eq!(report.latency.count(), report.completed);
        assert!(report.goodput > 0.0);
        assert!(report.commits >= report.completed, "≥1 txn per request");
        assert_eq!(
            report.applied_transfers + report.declined_transfers,
            report.histories.iter().map(|h| h.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn churn_mixes_report_allocation_and_reclamation() {
        let spec = TmSpec::new(AlgoKind::Rh2);
        let service = KvService::new(&spec, &KvConfig::new(2, 256, 2));
        let opts = LoadOpts::new(20_000.0, Duration::from_millis(40))
            .with_workers(2)
            .with_mix(KvMix::new(20, 40, 40, 0));
        let report = run_open_loop(&service, &opts);
        assert_eq!(report.completed, report.generated);
        // Deletes retire nodes and steady churn reclaims them; fresh
        // allocation (alloc_words) stays *optional* because cross-slot
        // stealing can satisfy every re-insert from recycled memory.
        assert!(report.mem.retired > 0, "{:?}", report.mem);
        assert!(report.mem.reclaimed > 0, "{:?}", report.mem);
        assert!(report.mem.reclaimed <= report.mem.retired);
        assert!(report.mem.epoch_advances > 0, "{:?}", report.mem);
    }
}
