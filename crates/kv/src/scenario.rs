//! The KV scenario registry: named service shapes for the `bench_kv`
//! binary, mirroring the closed-loop [`rhtm_workloads::Scenario`]
//! registry.  A KV scenario fixes `shards × key space × mix`; the
//! `spec=`, `shards=`, `rate=` and `arrival=` CLI axes sweep around it.

use rhtm_workloads::TmSpec;

use crate::load::KvMix;
use crate::service::{KvConfig, KvService};

/// One named service shape.
#[derive(Clone, Copy, Debug)]
pub struct KvScenario {
    /// Unique registry name (CLI handle and JSON `scenario` field).
    pub name: &'static str,
    /// Default shard count (overridable by the `shards=` axis).
    pub shards: usize,
    /// Global key space.
    pub key_space: u64,
    /// The operation mix the generator draws from.
    pub mix: KvMix,
    /// One-line description shown by `bench_kv --list`.
    pub about: &'static str,
}

/// The registry.  Names must stay unique and stable (they key the
/// `BENCH_*.json` trajectory's KV probe rows).
const REGISTRY: &[KvScenario] = &[
    KvScenario {
        name: "kv-point-ops",
        shards: 4,
        key_space: 8_192,
        mix: KvMix {
            get_pct: 70,
            put_pct: 20,
            delete_pct: 10,
            transfer_pct: 0,
        },
        about: "single-key get/put/delete cache shape: every request touches one shard",
    },
    KvScenario {
        name: "kv-transfer",
        shards: 4,
        key_space: 4_096,
        mix: KvMix {
            get_pct: 30,
            put_pct: 0,
            delete_pct: 0,
            transfer_pct: 60,
        },
        about: "transfer-heavy bank shape: the two-shard commit path, conservation-checkable",
    },
    KvScenario {
        name: "kv-transfer-contended",
        shards: 2,
        key_space: 512,
        mix: KvMix {
            get_pct: 10,
            put_pct: 0,
            delete_pct: 0,
            transfer_pct: 85,
        },
        about: "hot transfers over few accounts on two shards: cross-shard traffic dominates",
    },
    KvScenario {
        name: "kv-wide",
        shards: 8,
        key_space: 16_384,
        mix: KvMix {
            get_pct: 60,
            put_pct: 20,
            delete_pct: 10,
            transfer_pct: 5,
        },
        about: "eight-way partition with a trickle of cross-shard work: the scaling shape",
    },
    KvScenario {
        name: "kv-churn-1m",
        shards: 4,
        key_space: 1_000_000,
        mix: KvMix {
            get_pct: 40,
            put_pct: 30,
            delete_pct: 30,
            transfer_pct: 0,
        },
        about: "insert/remove steady state over a million keys: the memory-subsystem shape \
                (segmented heaps, arena allocation, epoch reclamation)",
    },
];

impl KvScenario {
    /// Every registered KV scenario, in display order.
    pub fn all() -> &'static [KvScenario] {
        REGISTRY
    }

    /// Looks a scenario up by its registry name (case-insensitive).
    pub fn find(name: &str) -> Option<&'static KvScenario> {
        let name = name.trim().to_ascii_lowercase();
        REGISTRY.iter().find(|s| s.name == name)
    }

    /// Builds the scenario's service from `spec` with `shards` shards
    /// (pass [`KvScenario::shards`] for the registered default), sized
    /// for `workers` concurrent workers.
    pub fn service(&self, spec: &TmSpec, shards: usize, workers: usize) -> KvService {
        self.service_with_keys(spec, shards, workers, self.key_space)
    }

    /// [`KvScenario::service`] with the key space overridden (the
    /// `keys=` CLI axis): same mix and shape, different footprint.
    pub fn service_with_keys(
        &self,
        spec: &TmSpec,
        shards: usize,
        workers: usize,
        key_space: u64,
    ) -> KvService {
        KvService::new(spec, &KvConfig::new(shards, key_space, workers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_workloads::AlgoKind;

    #[test]
    fn registry_is_unique_and_findable() {
        let all = KvScenario::all();
        assert!(all.len() >= 4, "at least four KV scenarios");
        for (i, s) in all.iter().enumerate() {
            assert!(KvScenario::find(s.name).is_some(), "{}", s.name);
            assert!(s.name.starts_with("kv-"), "{}", s.name);
            for other in &all[i + 1..] {
                assert_ne!(s.name, other.name, "duplicate scenario name");
            }
        }
        assert!(KvScenario::find("KV-POINT-OPS").is_some(), "case-folded");
        assert!(KvScenario::find("kv-nope").is_none());
    }

    #[test]
    fn transfer_scenarios_are_conservation_checkable() {
        for s in KvScenario::all() {
            if s.name.contains("transfer") {
                assert!(s.mix.conserves_balance(), "{}", s.name);
            }
        }
    }

    #[test]
    fn scenarios_build_runnable_services() {
        let s = KvScenario::find("kv-transfer-contended").unwrap();
        let svc = s.service(&TmSpec::new(AlgoKind::Tl2), s.shards, 1);
        assert_eq!(svc.shard_count(), 2);
        assert_eq!(svc.key_space(), 512);
        let mut w = svc.worker();
        assert_eq!(w.get(0), Some(100));
    }
}
