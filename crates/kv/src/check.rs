//! The cross-shard conservation checker.
//!
//! The per-structure checkers in [`rhtm_workloads::check`] verify one
//! runtime instance.  A sharded service adds a failure mode none of them
//! can see: a **lost cross-shard transfer** — the debit commits on shard
//! A, the credit never lands on shard B, and *each shard's own history is
//! perfectly consistent*.  Catching it requires merging evidence across
//! shards, which is exactly what [`ShardedBankChecker`] does: it replays
//! every applied transfer from the merged per-worker history (transfers
//! commute, so no cross-thread ordering is needed) and compares the
//! expected balances against a merged final snapshot of **all** shards.

use std::collections::HashMap;

use rhtm_workloads::check::{Checker, EventKind, History, Violation};

use crate::service::KvService;

const CHECKER: &str = "sharded-bank";

/// Conservation + per-account replay across every shard of a
/// [`KvService`].
///
/// Applies to histories whose only balance-mutating operations are
/// transfers (the [`crate::KvMix::transfer_mix`] workloads — see
/// [`crate::KvMix::conserves_balance`]); non-transfer events in the
/// history are ignored.  Two invariants are checked, order-free:
///
/// 1. **Conservation**: the final balances sum to
///    `accounts × initial_value` — an applied debit whose credit was lost
///    shrinks the total and is caught here even when every shard is
///    individually consistent.
/// 2. **Per-account replay**: each account's final balance equals
///    `initial + Σ credits − Σ debits` over the applied transfers.
pub struct ShardedBankChecker {
    /// Number of accounts (global keys `0..accounts`).
    pub accounts: u64,
    /// The balance every account was seeded with.
    pub initial_value: u64,
    /// The merged final snapshot across all shards, `(key, balance)`.
    pub finals: Vec<(u64, u64)>,
}

impl ShardedBankChecker {
    /// Captures the checker inputs from a quiesced service: its seeding
    /// parameters and a merged snapshot of every shard.
    pub fn for_service(service: &KvService) -> Self {
        ShardedBankChecker {
            accounts: service.key_space(),
            initial_value: service.initial_value(),
            finals: service.snapshot(),
        }
    }

    fn violation(&self, detail: String) -> Violation {
        Violation {
            checker: CHECKER,
            detail,
            path_hint: None,
        }
    }
}

impl Checker for ShardedBankChecker {
    fn name(&self) -> &'static str {
        CHECKER
    }

    fn check(&self, history: &History) -> Result<(), Violation> {
        // Conservation first: the headline cross-shard invariant.
        let expected_total = u128::from(self.accounts) * u128::from(self.initial_value);
        let total: u128 = self.finals.iter().map(|&(_, v)| u128::from(v)).sum();
        if total != expected_total {
            return Err(self.violation(format!(
                "balance not conserved across shards: final total {total} != \
                 {} accounts x {} = {expected_total} (a debit without its \
                 matching credit, or vice versa)",
                self.accounts, self.initial_value
            )));
        }
        // Replay: transfers commute, so per-account deltas need no
        // cross-thread order.
        let mut delta: HashMap<u64, i128> = HashMap::new();
        for event in history.events() {
            if let EventKind::Transfer {
                from,
                to,
                amount,
                applied: true,
            } = event.kind
            {
                *delta.entry(from).or_default() -= i128::from(amount);
                *delta.entry(to).or_default() += i128::from(amount);
            }
        }
        let final_map: HashMap<u64, u64> = self.finals.iter().copied().collect();
        if final_map.len() != self.finals.len() {
            return Err(self.violation(
                "final snapshot lists a key twice (shard routing overlap)".to_string(),
            ));
        }
        for account in 0..self.accounts {
            let expected =
                i128::from(self.initial_value) + delta.get(&account).copied().unwrap_or(0);
            match final_map.get(&account) {
                None => {
                    return Err(self.violation(format!(
                        "account {account} missing from the final snapshot \
                         (expected balance {expected})"
                    )))
                }
                Some(&got) if i128::from(got) != expected => {
                    return Err(self.violation(format!(
                        "account {account}: final balance {got} != replayed \
                         {expected} (initial {} {} transfer delta {})",
                        self.initial_value,
                        if expected >= i128::from(self.initial_value) {
                            "+"
                        } else {
                            "-"
                        },
                        (expected - i128::from(self.initial_value)).abs()
                    )))
                }
                Some(_) => {}
            }
        }
        if let Some(&(key, _)) = self.finals.iter().find(|&&(k, _)| k >= self.accounts) {
            return Err(self.violation(format!(
                "final snapshot contains key {key} outside the {} accounts",
                self.accounts
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-account, 2-shard layout: accounts 0/2 live on shard 0,
    /// accounts 1/3 on shard 1, all seeded with 100.
    fn checker(finals: Vec<(u64, u64)>) -> ShardedBankChecker {
        ShardedBankChecker {
            accounts: 4,
            initial_value: 100,
            finals,
        }
    }

    fn transfer(from: u64, to: u64, amount: u64, applied: bool) -> EventKind {
        EventKind::Transfer {
            from,
            to,
            amount,
            applied,
        }
    }

    #[test]
    fn accepts_a_consistent_cross_shard_history() {
        // 1 -> 2 is cross-shard in the 2-shard layout; both legs landed.
        let history = History::from_kinds(vec![
            vec![transfer(1, 2, 50, true)],
            vec![transfer(0, 1, 25, true), transfer(3, 0, 1000, false)],
        ]);
        let c = checker(vec![(0, 75), (1, 75), (2, 150), (3, 100)]);
        assert!(c.check(&history).is_ok());
    }

    #[test]
    fn rejects_a_lost_cross_shard_transfer() {
        // The mutation of satellite fame: the debit of 1 -> 2 committed on
        // shard 1 (account 1 is down 50) but the credit never landed on
        // shard 0 (account 2 still holds its seed).  Each shard's own
        // history is self-consistent; only the merged view can reject it.
        let history = History::from_kinds(vec![vec![transfer(1, 2, 50, true)]]);
        let lost = checker(vec![(0, 100), (1, 50), (2, 100), (3, 100)]);
        let violation = lost
            .check(&history)
            .expect_err("lost credit must be caught");
        assert_eq!(violation.checker, "sharded-bank");
        assert!(
            violation.detail.contains("not conserved"),
            "conservation names the failure: {}",
            violation.detail
        );
        // The repaired snapshot (credit landed) is accepted.
        let repaired = checker(vec![(0, 100), (1, 50), (2, 150), (3, 100)]);
        assert!(repaired.check(&history).is_ok());
    }

    #[test]
    fn rejects_a_conserving_but_misrouted_credit() {
        // Total conserved, but the credit landed on the wrong account:
        // replay pins the per-account mismatch.
        let history = History::from_kinds(vec![vec![transfer(1, 2, 50, true)]]);
        let misrouted = checker(vec![(0, 150), (1, 50), (2, 100), (3, 100)]);
        let violation = misrouted.check(&history).expect_err("misroute");
        assert!(
            violation.detail.contains("account 0"),
            "{}",
            violation.detail
        );
    }

    #[test]
    fn rejects_missing_and_phantom_accounts() {
        let history = History::from_kinds(vec![Vec::new()]);
        let missing = checker(vec![(0, 100), (1, 100), (2, 200)]);
        assert!(missing.check(&history).is_err(), "missing account 3");
        let phantom = checker(vec![(0, 100), (1, 100), (2, 100), (9, 100)]);
        assert!(phantom.check(&history).is_err(), "phantom key 9");
    }

    #[test]
    fn declined_transfers_do_not_move_money() {
        let history = History::from_kinds(vec![vec![
            transfer(0, 1, 40, false),
            transfer(2, 3, 10_000, false),
        ]]);
        let unchanged = checker(vec![(0, 100), (1, 100), (2, 100), (3, 100)]);
        assert!(unchanged.check(&history).is_ok());
    }
}
