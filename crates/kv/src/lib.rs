//! # rhtm-kv
//!
//! A production-shaped consumer of the reduced-hardware runtimes: a
//! sharded transactional key-value service driven by an **open-loop**
//! traffic generator and judged on tail latency, not closed-loop
//! throughput.
//!
//! ## Sharding model
//!
//! [`KvService`] partitions a global key space `0..key_space` across `S`
//! shards by `key % S`.  Each shard is a fully independent runtime
//! instance built from one [`rhtm_workloads::TmSpec`] — its **own**
//! simulated HTM, heap, global clock and fallback machinery — hosting a
//! [`rhtm_workloads::TxSkipList`]-backed map.  Nothing is shared between
//! shards, so cross-shard cache-coherence traffic (the scaling limit the
//! paper's protocols fight) dies by construction; single-key operations
//! touch exactly one runtime.
//!
//! Multi-key operations compose per-shard transactions:
//!
//! * [`KvWorker::transfer`] — the two-shard commit path: a debit
//!   transaction on the source shard, a credit transaction on the
//!   destination shard, and a compensating credit-back when the
//!   destination account is missing.  Money is conserved on every path;
//!   the [`check::ShardedBankChecker`] verifies this offline across all
//!   shards by extending the history-checker scheme of
//!   [`rhtm_workloads::check`].
//! * [`KvWorker::multi_get`] — one read transaction per touched shard.
//!
//! Each per-shard leg is individually serializable on its runtime;
//! cross-shard operations are *not* globally atomic (a reader may observe
//! the window between debit and credit).  The service guarantees —
//! and the checker verifies — per-shard linearizability plus global
//! balance conservation, the classic partitioned-store contract.
//!
//! ## Open-loop load
//!
//! [`load::run_open_loop`] drives the service at a configured offered
//! rate with Poisson or bursty arrivals ([`load::Arrival`]).  Arrival
//! times and operations are pure functions of the seed (the splitmix RNG
//! contract of [`rhtm_workloads::WorkloadRng`]), generated up-front, and
//! every generated request is served even past the measurement horizon —
//! so the op stream is machine-independent and per-op latency is measured
//! against the *scheduled* arrival time (queueing delay included; no
//! coordinated omission).  Latencies land in a mergeable
//! [`rhtm_api::LatencyHistogram`]; goodput is completed operations over
//! the time to drain them.
//!
//! The `bench_kv` binary in `rhtm-bench` sweeps
//! `spec × shards × rate × arrival` and emits one JSON document
//! ([`report::kv_suite_to_json`]); see `docs/BENCHMARKS.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod check;
pub mod load;
pub mod report;
pub mod scenario;
pub mod service;

pub use check::ShardedBankChecker;
pub use load::{plan_worker, run_open_loop, Arrival, KvMix, KvOp, LoadOpts, LoadReport, PlannedOp};
pub use report::{kv_suite_to_json, KvRow};
pub use scenario::KvScenario;
pub use service::{KvConfig, KvService, KvWorker, TransferOutcome};
