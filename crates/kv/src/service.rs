//! The sharded service: routing, per-shard runtimes, and the multi-key
//! commit paths.

use std::sync::Arc;

use rhtm_api::typed::OrSized;
use rhtm_api::{DynThread, DynThreadExt};
use rhtm_mem::{MemConfig, MemMetrics};
use rhtm_workloads::structures::skiplist::InsertOutcome;
use rhtm_workloads::{TmInstance, TmSpec, TxSkipList};

/// The sizing helper named when a shard heap cannot hold its prefill.
const SIZING_HINT: &str = "TxSkipList::required_words(max_live, threads)";

/// Static shape of a [`KvService`].
#[derive(Clone, Copy, Debug)]
pub struct KvConfig {
    /// Number of independent shards (runtime instances).
    pub shards: usize,
    /// Global key space: keys are `0..key_space`.
    pub key_space: u64,
    /// Expected concurrent workers (per-shard heap sizing: each worker
    /// holds one thread handle per shard and a few transient spare nodes).
    pub workers: usize,
    /// Every key is seeded with this value; for the transfer workloads it
    /// is the per-account starting balance, so the conserved global total
    /// is `key_space × initial_value`.
    pub initial_value: u64,
}

impl KvConfig {
    /// A config with the given shard count and key space, sized for
    /// `workers` workers and the default starting balance of 100.
    pub fn new(shards: usize, key_space: u64, workers: usize) -> Self {
        KvConfig {
            shards,
            key_space,
            workers,
            initial_value: 100,
        }
    }
}

/// One shard: an independent runtime instance plus its map.
struct KvShard {
    instance: TmInstance,
    map: TxSkipList,
}

/// A key-value service partitioned across independent runtime instances.
///
/// Construction seeds **every** key of the global key space with
/// [`KvConfig::initial_value`], so lookups start warm and the transfer
/// workloads begin from a known conserved total.  All operations go
/// through a per-thread [`KvWorker`] (see [`KvService::worker`]).
pub struct KvService {
    spec_label: String,
    shards: Vec<KvShard>,
    key_space: u64,
    initial_value: u64,
}

/// What a [`KvWorker::transfer`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Debit and credit both committed; money moved.
    Applied,
    /// The source account held less than the amount; nothing moved.
    InsufficientFunds,
    /// The source account does not exist; nothing moved.
    MissingFrom,
    /// The destination account does not exist.  On the two-shard path the
    /// already-committed debit was compensated by a credit-back
    /// transaction on the source shard; no money was created or lost.
    MissingTo,
}

impl KvService {
    /// Builds `config.shards` independent runtime instances from `spec`
    /// (each with its own heap and clock, sized for its slice of the key
    /// space) and seeds every key.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count or an empty key space.
    pub fn new(spec: &TmSpec, config: &KvConfig) -> Self {
        assert!(config.shards >= 1, "a service needs at least one shard");
        assert!(config.key_space >= 1, "a service needs at least one key");
        let local_space = config.key_space.div_ceil(config.shards as u64);
        let shards: Vec<KvShard> = (0..config.shards)
            .map(|_| {
                // +1 thread: the service's own prefill/snapshot handle can
                // coexist with a full complement of workers.
                let words =
                    TxSkipList::required_words(local_space, config.workers.max(1) + 1) + 4096;
                let instance = spec
                    .clone()
                    .mem(MemConfig {
                        clock_scheme: spec.clock_scheme(),
                        ..MemConfig::with_data_words(words)
                    })
                    .build();
                let map = TxSkipList::new(Arc::clone(instance.sim()), local_space);
                KvShard { instance, map }
            })
            .collect();
        // Bulk prefill: the key loop hands each shard its local keys in
        // ascending order, so every insert takes the seeder's O(1)
        // tail-append path and node memory is carved in chunks — prefill
        // cost is proportional to live data, which is what lets the
        // million-key scenarios start in seconds.
        {
            let mut seeders: Vec<_> = shards.iter().map(|sh| sh.map.seeder()).collect();
            let n = config.shards as u64;
            for key in 0..config.key_space {
                let s = (key % n) as usize;
                let local = 1 + key / n;
                seeders[s]
                    .insert(local, config.initial_value)
                    .or_sized(SIZING_HINT);
            }
        }
        KvService {
            spec_label: spec.label(),
            shards,
            key_space: config.key_space,
            initial_value: config.initial_value,
        }
    }

    /// The label of the spec every shard was built from.
    pub fn spec_label(&self) -> &str {
        &self.spec_label
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global key space (keys are `0..key_space`).
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// The value every key was seeded with.
    pub fn initial_value(&self) -> u64 {
        self.initial_value
    }

    /// Routes a global key to `(shard index, shard-local key)`.  Local
    /// keys start at 1 because 0 is the skiplist's head sentinel.
    #[inline]
    pub fn route(&self, key: u64) -> (usize, u64) {
        debug_assert!(key < self.key_space, "key {key} out of the key space");
        let s = (key % self.shards.len() as u64) as usize;
        (s, 1 + key / self.shards.len() as u64)
    }

    /// The inverse of [`KvService::route`].
    #[inline]
    fn unroute(&self, shard: usize, local: u64) -> u64 {
        (local - 1) * self.shards.len() as u64 + shard as u64
    }

    /// Registers a worker: one thread handle per shard, all operations
    /// routed through it.
    pub fn worker(&self) -> KvWorker<'_> {
        KvWorker {
            service: self,
            threads: self.shards.iter().map(|s| s.instance.register()).collect(),
        }
    }

    /// A merged, globally-keyed snapshot of every present key, sorted by
    /// key.  Each shard is read in its own transaction (per-shard atomic;
    /// run it on a quiesced service for an exact global state, e.g. for
    /// the [`crate::ShardedBankChecker`]).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let mut th = shard.instance.register();
            let local_space = self.key_space.div_ceil(self.shards.len() as u64);
            for local in 1..=local_space {
                let global = self.unroute(s, local);
                if global >= self.key_space {
                    continue;
                }
                if let Some(v) = th.run(|tx| shard.map.get_in(tx, local)) {
                    out.push((global, v));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The sum of all present values (the conserved quantity of the
    /// transfer workloads).
    pub fn total_balance(&self) -> u128 {
        self.snapshot().iter().map(|&(_, v)| u128::from(v)).sum()
    }
}

/// A per-thread handle onto a [`KvService`]: one registered runtime
/// thread per shard.  Not `Sync` — create one per worker thread.
pub struct KvWorker<'a> {
    service: &'a KvService,
    threads: Vec<Box<dyn DynThread>>,
}

impl KvWorker<'_> {
    /// Transactionally reads `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let service = self.service;
        let (s, local) = service.route(key);
        let shard = &service.shards[s];
        self.threads[s].run(|tx| shard.map.get_in(tx, local))
    }

    /// Transactionally inserts or overwrites `key`.  Returns `true` when
    /// the key was newly inserted.
    ///
    /// Follows the pool life cycle: the spare node is allocated (recycled
    /// when possible) before the pinned transaction, and goes back to the
    /// pool when the key turned out to exist.  Exactly one transaction
    /// commits per call.
    pub fn put(&mut self, key: u64, value: u64) -> bool {
        let service = self.service;
        let (s, local) = service.route(key);
        let shard = &service.shards[s];
        let th = &mut self.threads[s];
        let tid = th.thread_id();
        let spare = shard.map.alloc_spare(tid, &mut th.stats_mut().mem);
        let outcome = {
            let _guard = shard.map.pin(tid);
            th.run(|tx| shard.map.insert_in(tx, local, value, Some(spare)))
        };
        match outcome {
            InsertOutcome::Inserted => true,
            InsertOutcome::Updated => {
                shard.map.give_back_spare(tid, spare);
                false
            }
            InsertOutcome::NeedNode => unreachable!("a spare was supplied"),
        }
    }

    /// Transactionally removes `key`, returning the removed value.  The
    /// node is retired once the remove commits and recycled into later
    /// puts after every thread has passed the retiring epoch.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        let service = self.service;
        let (s, local) = service.route(key);
        let shard = &service.shards[s];
        let th = &mut self.threads[s];
        let tid = th.thread_id();
        let removed = {
            let _guard = shard.map.pin(tid);
            th.run(|tx| shard.map.remove_in(tx, local))
        };
        removed.map(|(value, node)| {
            shard.map.retire_node(tid, node, &mut th.stats_mut().mem);
            value
        })
    }

    /// Reads several keys with one transaction per touched shard.  Each
    /// shard's reads are atomic; the combined result is not a global
    /// snapshot (see the crate docs for the consistency model).
    pub fn multi_get(&mut self, keys: &[u64]) -> Vec<Option<u64>> {
        let service = self.service;
        let mut out = vec![None; keys.len()];
        let mut by_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); service.shard_count()];
        for (i, &k) in keys.iter().enumerate() {
            let (s, local) = service.route(k);
            by_shard[s].push((i, local));
        }
        for (s, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &service.shards[s];
            let values: Vec<Option<u64>> = self.threads[s].run(|tx| {
                group
                    .iter()
                    .map(|&(_, local)| shard.map.get_in(tx, local))
                    .collect()
            });
            for (&(slot, _), v) in group.iter().zip(values) {
                out[slot] = v;
            }
        }
        out
    }

    /// Moves `amount` from `from` to `to`.
    ///
    /// Same-shard transfers are a single transaction.  Cross-shard
    /// transfers are the two-shard commit path: a debit transaction on the
    /// source shard, then a credit transaction on the destination shard;
    /// if the destination account is missing, a compensating transaction
    /// credits the amount back on the source shard (as an upsert, so
    /// compensation succeeds even if the source account was concurrently
    /// deleted).  Every path conserves the global balance total.
    pub fn transfer(&mut self, from: u64, to: u64, amount: u64) -> TransferOutcome {
        let service = self.service;
        let (sf, lf) = service.route(from);
        let (st, lt) = service.route(to);
        if sf == st {
            let shard = &service.shards[sf];
            return self.threads[sf].run(|tx| {
                let Some(bal_from) = shard.map.get_in(tx, lf)? else {
                    return Ok(TransferOutcome::MissingFrom);
                };
                if bal_from < amount {
                    return Ok(TransferOutcome::InsufficientFunds);
                }
                if lf == lt {
                    return Ok(TransferOutcome::Applied);
                }
                let Some(bal_to) = shard.map.get_in(tx, lt)? else {
                    return Ok(TransferOutcome::MissingTo);
                };
                shard.map.update_in(tx, lf, bal_from - amount)?;
                shard.map.update_in(tx, lt, bal_to + amount)?;
                Ok(TransferOutcome::Applied)
            });
        }
        // Leg 1: debit on the source shard.
        let debited = {
            let shard = &service.shards[sf];
            self.threads[sf].run(|tx| match shard.map.get_in(tx, lf)? {
                None => Ok(None),
                Some(b) if b < amount => Ok(Some(false)),
                Some(b) => {
                    shard.map.update_in(tx, lf, b - amount)?;
                    Ok(Some(true))
                }
            })
        };
        match debited {
            None => return TransferOutcome::MissingFrom,
            Some(false) => return TransferOutcome::InsufficientFunds,
            Some(true) => {}
        }
        // Leg 2: credit on the destination shard (the account must exist).
        let credited = {
            let shard = &service.shards[st];
            self.threads[st].run(|tx| match shard.map.get_in(tx, lt)? {
                None => Ok(false),
                Some(b) => {
                    shard.map.update_in(tx, lt, b + amount)?;
                    Ok(true)
                }
            })
        };
        if credited {
            return TransferOutcome::Applied;
        }
        // Compensation: the debit already committed, so credit the amount
        // back on the source shard.
        self.credit_upsert(sf, lf, amount);
        TransferOutcome::MissingTo
    }

    /// Unconditional credit: add to an existing account, or recreate it
    /// holding exactly `amount` (the compensation path must conserve money
    /// even when the source account vanished between the two legs).
    fn credit_upsert(&mut self, s: usize, local: u64, amount: u64) {
        let service = self.service;
        let shard = &service.shards[s];
        let th = &mut self.threads[s];
        let tid = th.thread_id();
        let spare = shard.map.alloc_spare(tid, &mut th.stats_mut().mem);
        let outcome = {
            let _guard = shard.map.pin(tid);
            th.run(|tx| match shard.map.get_in(tx, local)? {
                Some(b) => {
                    shard.map.update_in(tx, local, b + amount)?;
                    Ok(InsertOutcome::Updated)
                }
                None => shard.map.insert_in(tx, local, amount, Some(spare)),
            })
        };
        if outcome != InsertOutcome::Inserted {
            shard.map.give_back_spare(tid, spare);
        }
    }

    /// Total `(commits, aborts)` across this worker's per-shard threads.
    pub fn stats(&self) -> (u64, u64) {
        self.threads.iter().fold((0, 0), |(c, a), t| {
            (c + t.stats().commits(), a + t.stats().aborts())
        })
    }

    /// Summed allocation/reclamation metrics across this worker's
    /// per-shard threads.
    pub fn mem_metrics(&self) -> MemMetrics {
        let mut merged = MemMetrics::default();
        for t in &self.threads {
            merged.merge(&t.stats().mem);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_workloads::AlgoKind;

    fn service(shards: usize, keys: u64) -> KvService {
        KvService::new(&TmSpec::new(AlgoKind::Tl2), &KvConfig::new(shards, keys, 2))
    }

    #[test]
    fn routing_is_a_bijection_onto_shard_local_keys() {
        let svc = service(3, 100);
        let mut seen = std::collections::HashSet::new();
        for key in 0..100 {
            let (s, local) = svc.route(key);
            assert!(s < 3);
            assert!(local >= 1, "local key 0 is the skiplist sentinel");
            assert!(seen.insert((s, local)), "collision at key {key}");
            assert_eq!(svc.unroute(s, local), key);
        }
    }

    #[test]
    fn point_ops_roundtrip_across_shards() {
        let svc = service(4, 64);
        let mut w = svc.worker();
        for key in 0..64 {
            assert_eq!(w.get(key), Some(100), "seeded value at {key}");
        }
        assert!(!w.put(7, 7000), "overwrite of a seeded key");
        assert_eq!(w.get(7), Some(7000));
        assert_eq!(w.delete(7), Some(7000));
        assert_eq!(w.get(7), None);
        assert!(w.put(7, 7), "reinsert after delete");
        assert_eq!(w.delete(63), Some(100));
        assert_eq!(w.delete(63), None, "double delete");
        let snap = svc.snapshot();
        assert_eq!(snap.len(), 63, "64 seeded keys minus the deleted 63");
        assert!(snap.contains(&(7, 7)));
        assert!(!snap.iter().any(|&(k, _)| k == 63));
    }

    #[test]
    fn multi_get_spans_shards_and_preserves_order() {
        let svc = service(3, 30);
        let mut w = svc.worker();
        w.put(4, 44);
        w.delete(5);
        let got = w.multi_get(&[4, 5, 6, 4]);
        assert_eq!(got, vec![Some(44), None, Some(100), Some(44)]);
    }

    #[test]
    fn transfers_conserve_on_every_path() {
        let svc = service(2, 10); // keys 0,2,4.. on shard 0; 1,3,5.. on shard 1
        let total0 = svc.total_balance();
        let mut w = svc.worker();
        // Same-shard (0 and 2), cross-shard (0 and 1), self, declined.
        assert_eq!(w.transfer(0, 2, 30), TransferOutcome::Applied);
        assert_eq!(w.transfer(0, 1, 30), TransferOutcome::Applied);
        assert_eq!(w.transfer(3, 3, 10), TransferOutcome::Applied);
        assert_eq!(w.transfer(0, 1, 1000), TransferOutcome::InsufficientFunds);
        w.delete(9);
        assert_eq!(w.transfer(9, 0, 5), TransferOutcome::MissingFrom);
        // Missing destination: cross-shard debit then compensation.
        assert_eq!(w.transfer(4, 9, 5), TransferOutcome::MissingTo);
        assert_eq!(w.get(4), Some(100), "compensated in full");
        assert_eq!(svc.total_balance(), total0 - 100, "only the delete left");
        assert_eq!(w.get(0), Some(40));
        assert_eq!(w.get(2), Some(130));
        assert_eq!(w.get(1), Some(130));
    }

    #[test]
    fn shards_are_independent_runtimes() {
        let svc = service(2, 8);
        // Distinct simulators and heaps per shard.
        assert!(!Arc::ptr_eq(
            svc.shards[0].instance.sim(),
            svc.shards[1].instance.sim()
        ));
        let (commits_before, _) = {
            let w = svc.worker();
            w.stats()
        };
        assert_eq!(commits_before, 0);
        let mut w = svc.worker();
        w.get(0);
        w.get(1);
        let (commits, _) = w.stats();
        assert_eq!(commits, 2);
    }
}
