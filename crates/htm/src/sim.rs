//! The shared state of the simulated HTM: the per-cache-line version/lock
//! table, the global modification sequence used for incremental validation,
//! and the strongly-isolated non-transactional access API.
//!
//! ## Line version table
//!
//! Every cache line of the heap (metadata *and* data) has a 64-bit
//! version/lock word:
//!
//! * even value `v` — the line is unlocked and has been modified `v / 2`
//!   times,
//! * odd value `v` — the line is locked by a committer (hardware commit
//!   publish or a strongly-isolated non-transactional update) that will
//!   release it with `v + 1` (i.e. the next even version).
//!
//! A hardware transaction records the version of each line it reads; at
//! commit it locks the lines it wrote, revalidates the recorded versions,
//! publishes the buffered values, and releases the locks with bumped
//! versions.  This reproduces the observable behaviour of real best-effort
//! HTM: a transaction commits only if no other agent wrote any line it read
//! or wrote between first access and commit, and its own writes become
//! visible to others all at once.
//!
//! ## Strong isolation
//!
//! On real hardware *any* store — transactional or not — invalidates the
//! line in other caches and dooms transactions that have it in their
//! read-set.  Protocol code must therefore route non-transactional updates
//! of shared words through [`HtmSim::nt_store`] / [`HtmSim::nt_cas`] /
//! [`HtmSim::nt_fetch_add`], which bump the line version (under a short line
//! lock) so concurrent hardware transactions observe the conflict.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rhtm_api::typed::{Codec, TxCell};
use rhtm_mem::{Addr, CachePadded, TmMemory, CACHE_LINE_WORDS};

use crate::config::HtmConfig;

/// Shared state of the simulated best-effort HTM.
pub struct HtmSim {
    mem: Arc<TmMemory>,
    config: HtmConfig,
    /// One version/lock word per cache line of the heap.
    lines: Box<[AtomicU64]>,
    /// Incremented after every modification that could invalidate a running
    /// transaction's view (hardware commit publish or non-transactional
    /// store).  Used by `ValidationMode::Incremental`.  Padded onto its own
    /// cache line: every committer RMWs it, and without the padding it
    /// false-shares with the read-mostly fields around it.
    write_seq: CachePadded<AtomicU64>,
}

impl HtmSim {
    /// Creates a simulator over `mem` with the given configuration.
    pub fn new(mem: Arc<TmMemory>, config: HtmConfig) -> Arc<Self> {
        let num_lines = mem.layout().total_words().div_ceil(CACHE_LINE_WORDS);
        let mut lines = Vec::with_capacity(num_lines);
        lines.resize_with(num_lines, || AtomicU64::new(0));
        Arc::new(HtmSim {
            mem,
            config,
            lines: lines.into_boxed_slice(),
            write_seq: CachePadded::new(AtomicU64::new(0)),
        })
    }

    /// The shared transactional memory.
    #[inline(always)]
    pub fn mem(&self) -> &Arc<TmMemory> {
        &self.mem
    }

    /// The simulator configuration.
    #[inline(always)]
    pub fn config(&self) -> &HtmConfig {
        &self.config
    }

    /// Number of cache lines tracked.
    #[inline(always)]
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Current value of the global modification sequence.
    #[inline(always)]
    pub fn write_seq(&self) -> u64 {
        self.write_seq.load(Ordering::SeqCst)
    }

    #[inline(always)]
    pub(crate) fn bump_write_seq(&self) {
        self.write_seq.fetch_add(1, Ordering::SeqCst);
    }

    /// Returns `true` if a line version word encodes "locked".
    #[inline(always)]
    pub fn line_is_locked(version: u64) -> bool {
        version & 1 == 1
    }

    /// Loads the version/lock word of `line`.
    #[inline(always)]
    pub(crate) fn line_version(&self, line: usize) -> u64 {
        self.lines[line].load(Ordering::SeqCst)
    }

    /// Tries to lock `line`, expecting its current version to be `expected`
    /// (which must be even).  Returns `true` on success.
    #[inline(always)]
    pub(crate) fn try_lock_line(&self, line: usize, expected: u64) -> bool {
        debug_assert!(!Self::line_is_locked(expected));
        self.lines[line]
            .compare_exchange(expected, expected + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Releases `line` previously locked from version `expected`, installing
    /// the next even version.
    #[inline(always)]
    pub(crate) fn unlock_line(&self, line: usize, expected: u64) {
        debug_assert!(!Self::line_is_locked(expected));
        debug_assert_eq!(self.lines[line].load(Ordering::SeqCst), expected + 1);
        self.lines[line].store(expected + 2, Ordering::SeqCst);
    }

    /// Releases `line` without bumping the version (used when a commit
    /// aborts after having locked some of its write lines).
    #[inline(always)]
    pub(crate) fn unlock_line_unchanged(&self, line: usize, expected: u64) {
        debug_assert!(!Self::line_is_locked(expected));
        self.lines[line].store(expected, Ordering::SeqCst);
    }

    #[inline(always)]
    fn lock_line_spinning(&self, line: usize) -> u64 {
        let mut spins = 0u32;
        loop {
            let v = self.lines[line].load(Ordering::SeqCst);
            if !Self::line_is_locked(v) && self.try_lock_line(line, v) {
                return v;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Non-transactional, strongly-isolated load of a heap word.
    ///
    /// If the word's cache line is currently being published by a committing
    /// hardware transaction (or updated by another strongly-isolated
    /// operation), the load waits until the publication completes.  On real
    /// hardware this window does not exist — a hardware commit makes all of
    /// its writes visible at a single instant — so waiting it out is what
    /// keeps the simulation's non-transactional readers from observing a
    /// state no real execution could produce (see `docs/ARCHITECTURE.md`,
    /// "publish-order note").
    #[inline(always)]
    pub fn nt_load(&self, addr: Addr) -> u64 {
        let line = addr.line();
        let mut spins = 0u32;
        while Self::line_is_locked(self.lines[line].load(Ordering::SeqCst)) {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.mem.heap().load(addr)
    }

    /// Typed variant of [`HtmSim::nt_load`]: strongly-isolated read of a
    /// typed cell, decoded through its [`Codec`].
    #[inline(always)]
    pub fn nt_read<T: Codec>(&self, cell: TxCell<T>) -> T {
        T::decode(self.nt_load(cell.addr()))
    }

    /// Typed variant of [`HtmSim::nt_store`]: strongly-isolated write of a
    /// typed cell.
    #[inline(always)]
    pub fn nt_write<T: Codec>(&self, cell: TxCell<T>, value: T) {
        self.nt_store(cell.addr(), value.encode())
    }

    /// Non-transactional, strongly-isolated store of a heap word.
    ///
    /// The line is locked for the duration of the store, its version is
    /// bumped, and the global write sequence advances — so every running
    /// hardware transaction that has the line in its read- or write-set will
    /// abort, exactly as a coherence invalidation would make it on real
    /// hardware.
    pub fn nt_store(&self, addr: Addr, value: u64) {
        let line = addr.line();
        let prev = self.lock_line_spinning(line);
        self.mem.heap().store(addr, value);
        self.unlock_line(line, prev);
        self.bump_write_seq();
    }

    /// Non-transactional, strongly-isolated compare-and-swap of a heap word.
    /// Returns `Ok(previous)` on success, `Err(actual)` on mismatch (in
    /// which case the line version is not bumped).
    pub fn nt_cas(&self, addr: Addr, current: u64, new: u64) -> Result<u64, u64> {
        let line = addr.line();
        let prev = self.lock_line_spinning(line);
        let actual = self.mem.heap().load(addr);
        if actual == current {
            self.mem.heap().store(addr, new);
            self.unlock_line(line, prev);
            self.bump_write_seq();
            Ok(actual)
        } else {
            self.unlock_line_unchanged(line, prev);
            Err(actual)
        }
    }

    /// Non-transactional, strongly-isolated fetch-and-add on a heap word,
    /// returning the previous value.
    pub fn nt_fetch_add(&self, addr: Addr, delta: u64) -> u64 {
        let line = addr.line();
        let prev = self.lock_line_spinning(line);
        let old = self.mem.heap().load(addr);
        self.mem.heap().store(addr, old.wrapping_add(delta));
        self.unlock_line(line, prev);
        self.bump_write_seq();
        old
    }

    /// Non-transactional, strongly-isolated fetch-and-sub on a heap word,
    /// returning the previous value.
    pub fn nt_fetch_sub(&self, addr: Addr, delta: u64) -> u64 {
        self.nt_fetch_add(addr, 0u64.wrapping_sub(delta))
    }

    /// Non-transactional, strongly-isolated maximum on a heap word,
    /// returning the previous value.  Used by the GV clock schemes' abort-time
    /// advance: the bump must be conflict-visible so that concurrent
    /// fast-path hardware transactions that read the clock speculatively
    /// abort, which is what keeps the clock stable for the duration of every
    /// committed fast-path transaction (the linchpin of RH1's time-stamp
    /// invariant).
    pub fn nt_fetch_max(&self, addr: Addr, value: u64) -> u64 {
        let line = addr.line();
        let prev = self.lock_line_spinning(line);
        let old = self.mem.heap().load(addr);
        if value > old {
            self.mem.heap().store(addr, value);
            self.unlock_line(line, prev);
            self.bump_write_seq();
        } else {
            self.unlock_line_unchanged(line, prev);
        }
        old
    }
}

impl std::fmt::Debug for HtmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmSim")
            .field("num_lines", &self.num_lines())
            .field("write_seq", &self.write_seq())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_mem::MemConfig;

    fn sim() -> Arc<HtmSim> {
        let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(1024)));
        HtmSim::new(mem, HtmConfig::default())
    }

    #[test]
    fn line_table_covers_whole_heap() {
        let s = sim();
        let words = s.mem().layout().total_words();
        assert_eq!(s.num_lines(), words.div_ceil(CACHE_LINE_WORDS));
    }

    #[test]
    fn nt_store_bumps_line_version_and_write_seq() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let line = addr.line();
        let v0 = s.line_version(line);
        let seq0 = s.write_seq();
        s.nt_store(addr, 99);
        assert_eq!(s.nt_load(addr), 99);
        assert_eq!(s.line_version(line), v0 + 2);
        assert_eq!(s.write_seq(), seq0 + 1);
    }

    #[test]
    fn nt_cas_success_and_failure() {
        let s = sim();
        let addr = s.mem().alloc(1);
        s.nt_store(addr, 5);
        let line = addr.line();
        let v_before = s.line_version(line);
        assert_eq!(s.nt_cas(addr, 5, 6), Ok(5));
        assert_eq!(s.nt_load(addr), 6);
        assert_eq!(s.line_version(line), v_before + 2);
        let v_mid = s.line_version(line);
        assert_eq!(s.nt_cas(addr, 5, 7), Err(6));
        assert_eq!(s.nt_load(addr), 6);
        assert_eq!(
            s.line_version(line),
            v_mid,
            "failed CAS must not bump the version"
        );
    }

    #[test]
    fn nt_fetch_add_and_sub() {
        let s = sim();
        let addr = s.mem().alloc(1);
        assert_eq!(s.nt_fetch_add(addr, 10), 0);
        assert_eq!(s.nt_fetch_add(addr, 5), 10);
        assert_eq!(s.nt_fetch_sub(addr, 3), 15);
        assert_eq!(s.nt_load(addr), 12);
    }

    #[test]
    fn nt_fetch_max_only_moves_forward() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let line = addr.line();
        assert_eq!(s.nt_fetch_max(addr, 10), 0);
        assert_eq!(s.nt_load(addr), 10);
        let v = s.line_version(line);
        assert_eq!(s.nt_fetch_max(addr, 5), 10);
        assert_eq!(s.nt_load(addr), 10);
        assert_eq!(
            s.line_version(line),
            v,
            "no-op max must not bump the version"
        );
        assert_eq!(s.nt_fetch_max(addr, 20), 10);
        assert_eq!(s.nt_load(addr), 20);
        assert_eq!(s.line_version(line), v + 2);
    }

    #[test]
    fn lock_encoding_is_low_bit() {
        assert!(!HtmSim::line_is_locked(0));
        assert!(HtmSim::line_is_locked(1));
        assert!(!HtmSim::line_is_locked(2));
        assert!(HtmSim::line_is_locked(2_000_001));
    }

    #[test]
    fn try_lock_and_unlock_cycle() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let line = addr.line();
        let v = s.line_version(line);
        assert!(s.try_lock_line(line, v));
        assert!(HtmSim::line_is_locked(s.line_version(line)));
        // Second lock attempt with a stale version fails.
        assert!(!s.try_lock_line(line, v));
        s.unlock_line(line, v);
        assert_eq!(s.line_version(line), v + 2);
        // Abort-path unlock restores the old version.
        let v2 = s.line_version(line);
        assert!(s.try_lock_line(line, v2));
        s.unlock_line_unchanged(line, v2);
        assert_eq!(s.line_version(line), v2);
    }

    #[test]
    fn concurrent_nt_fetch_add_is_atomic() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let threads = 8;
        let per = 5_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        s.nt_fetch_add(addr, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.nt_load(addr), (threads * per) as u64);
    }
}
