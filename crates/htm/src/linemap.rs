//! Allocation-free-on-the-hot-path collections used by the simulated HTM
//! and the software commit paths: an open-addressing map keyed by
//! cache-line index ([`LineMap`]), a write buffer that preserves
//! program order ([`WriteSet`]) and a stripe membership bitset
//! ([`StripeMarks`]).
//!
//! Transactions run millions of times per second in the benchmarks, so the
//! per-transaction collections must avoid hashing overhead from the
//! standard library's SipHash and avoid re-allocating every transaction.
//! Both structures are owned by the per-thread transaction state and
//! reused across transactions.
//!
//! Two idioms keep the per-transaction cost flat (see
//! `docs/ARCHITECTURE.md`, "Generation-stamped resets"):
//!
//! * **Generation-stamped slots** — every `LineMap` slot (and every
//!   `StripeMarks` word) carries the 32-bit epoch it was written in,
//!   packed above its payload.  A slot is live only when its stamp equals
//!   the structure's current epoch, so [`LineMap::clear`] and
//!   [`StripeMarks::clear`] are a counter bump (O(1)) instead of an
//!   O(capacity) `fill` — the dominant cost for short transactions over
//!   structures sized for occasional large ones.
//! * **Write-set fingerprint** — [`WriteSet`] keeps a 128-bit membership
//!   filter over the words written this transaction; a clear bit proves a
//!   word was never written, so the common read-of-never-written-word case
//!   in the STM read paths costs one AND + branch instead of a table probe.

use rhtm_mem::Addr;

/// Low 32 bits of a slot word: the key.  The high 32 bits hold the epoch
/// stamp of the clear-generation the slot was written in.
const KEY_MASK: u64 = 0xFFFF_FFFF;

#[inline(always)]
fn hash_key(key: u64, mask: usize) -> usize {
    // Fibonacci/multiplicative hashing: cheap and well distributed for the
    // small, dense keys (line indices, word addresses) we store.
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize & mask
}

/// An open-addressing hash map from a `u64` key (cache-line index or word
/// address) to a `u64` value, tuned for small transactional footprints.
///
/// Keys must fit in 32 bits (heap word counts and line indices are far
/// below that); the slot's upper half stores the clear-generation stamp.
#[derive(Clone, Debug)]
pub struct LineMap {
    /// `(epoch << 32) | key` per slot; live iff the stamp equals `epoch`.
    slots: Vec<u64>,
    values: Vec<u64>,
    len: usize,
    /// Current clear-generation; never 0 (0 marks never-written slots).
    epoch: u32,
}

impl LineMap {
    /// Creates an empty map with capacity for `capacity_hint` entries before
    /// the first grow.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        let cap = (capacity_hint.max(8) * 2).next_power_of_two();
        LineMap {
            slots: vec![0; cap],
            values: vec![0; cap],
            len: 0,
            epoch: 1,
        }
    }

    /// Number of entries.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the map holds no entries.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array capacity (grow boundary = 3/4 of this).
    #[inline(always)]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Removes every entry, keeping the allocation.  O(1): bumping the
    /// epoch invalidates every stamp at once.  The slots are physically
    /// rewritten only when the 32-bit epoch wraps (once per 2^32 clears),
    /// so stale stamps from the previous epoch cycle cannot resurrect.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.slots.fill(0);
            self.epoch = 1;
        }
    }

    /// The live-stamp in slot-word position.
    #[inline(always)]
    fn live_stamp(&self) -> u64 {
        (self.epoch as u64) << 32
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        debug_assert!(key <= KEY_MASK);
        let live_key = self.live_stamp() | key;
        let mask = self.slots.len() - 1;
        let mut idx = hash_key(key, mask);
        loop {
            let s = self.slots[idx];
            if s == live_key {
                return Some(self.values[idx]);
            }
            if s & !KEY_MASK != self.live_stamp() {
                // Stale or never-written slot: free, terminates the probe.
                return None;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts `key -> value`; returns the previous value if the key was
    /// already present (and leaves the stored value untouched in that case —
    /// the read-set wants the *first* observed version).
    #[inline]
    pub fn insert_if_absent(&mut self, key: u64, value: u64) -> Option<u64> {
        debug_assert!(key <= KEY_MASK);
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let live_key = self.live_stamp() | key;
        let mask = self.slots.len() - 1;
        let mut idx = hash_key(key, mask);
        loop {
            let s = self.slots[idx];
            if s == live_key {
                return Some(self.values[idx]);
            }
            if s & !KEY_MASK != self.live_stamp() {
                self.slots[idx] = live_key;
                self.values[idx] = value;
                self.len += 1;
                return None;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts `key -> value`, overwriting any existing value.  Returns the
    /// previous value if the key was present.
    #[inline]
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        debug_assert!(key <= KEY_MASK);
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let live_key = self.live_stamp() | key;
        let mask = self.slots.len() - 1;
        let mut idx = hash_key(key, mask);
        loop {
            let s = self.slots[idx];
            if s == live_key {
                let prev = self.values[idx];
                self.values[idx] = value;
                return Some(prev);
            }
            if s & !KEY_MASK != self.live_stamp() {
                self.slots[idx] = live_key;
                self.values[idx] = value;
                self.len += 1;
                return None;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let live = self.live_stamp();
        self.slots
            .iter()
            .zip(self.values.iter())
            .filter(move |(s, _)| **s & !KEY_MASK == live)
            .map(|(s, v)| (*s & KEY_MASK, *v))
    }

    /// Doubles the table with a dedicated rehash loop.  Live entries are
    /// placed directly into free slots: re-entering the public `insert`
    /// here would re-check the load factor (and could recurse into `grow`)
    /// on every re-inserted key.
    #[cold]
    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old_slots = std::mem::replace(&mut self.slots, vec![0; new_cap]);
        let old_values = std::mem::replace(&mut self.values, vec![0; new_cap]);
        let live = self.live_stamp();
        let mask = new_cap - 1;
        for (s, v) in old_slots.into_iter().zip(old_values) {
            if s & !KEY_MASK == live {
                let mut idx = hash_key(s & KEY_MASK, mask);
                while self.slots[idx] & !KEY_MASK == live {
                    idx = (idx + 1) & mask;
                }
                self.slots[idx] = s;
                self.values[idx] = v;
            }
        }
        // `len` is unchanged: the rehash moves exactly the live entries.
    }

    /// Test hook: jump to an arbitrary epoch to exercise wrap-around.
    #[cfg(test)]
    fn force_epoch(&mut self, epoch: u32) {
        self.slots.fill(0);
        self.len = 0;
        self.epoch = epoch.max(1);
    }
}

/// Picks the fingerprint word/bit for a word address (top 7 hash bits, so
/// the filter uses the bits the table index doesn't).
#[inline(always)]
fn fp_bit(key: u64) -> (usize, u64) {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57;
    ((h >> 6) as usize, 1u64 << (h & 63))
}

/// A transactional write buffer: word address → buffered value, preserving
/// first-write program order for publication at commit.
#[derive(Clone, Debug)]
pub struct WriteSet {
    /// `(word address, value)` in first-write order.
    entries: Vec<(usize, u64)>,
    /// word address → index into `entries`.
    index: LineMap,
    /// 128-bit membership fingerprint over the words written this
    /// transaction.  A clear bit proves absence, short-circuiting
    /// [`WriteSet::get`] for reads of never-written words.
    fp: [u64; 2],
}

impl WriteSet {
    /// Creates an empty write set with room for `capacity_hint` entries.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        WriteSet {
            entries: Vec::with_capacity(capacity_hint),
            index: LineMap::with_capacity(capacity_hint),
            fp: [0; 2],
        }
    }

    /// Number of distinct words written.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing has been written.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries, keeping allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.fp = [0; 2];
    }

    /// Buffers `value` for `addr`.  A second write to the same word updates
    /// the buffered value in place (keeping the word's position in the
    /// publication order at its first write).  Single probe: the tentative
    /// slot is claimed with `insert_if_absent`, which hands back the
    /// existing slot on a repeat write.
    #[inline]
    pub fn insert(&mut self, addr: Addr, value: u64) {
        let key = addr.index() as u64;
        let (w, b) = fp_bit(key);
        self.fp[w] |= b;
        let slot = self.entries.len() as u64;
        match self.index.insert_if_absent(key, slot) {
            Some(existing) => self.entries[existing as usize].1 = value,
            None => self.entries.push((addr.index(), value)),
        }
    }

    /// Returns the buffered value for `addr`, if any (read-own-writes).
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<u64> {
        // Read-only transactions probe an empty set on every read: settle
        // that with one predictable branch before touching the fingerprint.
        if self.entries.is_empty() {
            return None;
        }
        let key = addr.index() as u64;
        let (w, b) = fp_bit(key);
        if self.fp[w] & b == 0 {
            return None;
        }
        self.index
            .get(key)
            .map(|slot| self.entries[slot as usize].1)
    }

    /// Iterates `(address, value)` in first-write program order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.entries.iter().map(|&(a, v)| (Addr(a), v))
    }
}

/// A generation-stamped membership bitset over the dense stripe index
/// space, used to deduplicate read-set inserts.
///
/// Stripe ids are small dense integers, so membership needs no hashing at
/// all: each 64-bit word stores the 32-bit epoch stamp above 32 mark bits
/// covering 32 consecutive stripes.  A word's marks count only when its
/// stamp equals the current epoch, so [`StripeMarks::clear`] is the same
/// O(1) counter bump as [`LineMap::clear`] — but the membership test is a
/// shift, one indexed load and a compare, cheaper than any table probe.
/// This sits on the software read path of every STM/slow-path read, where
/// even one multiply per read is measurable.
#[derive(Clone, Debug, Default)]
pub struct StripeMarks {
    /// `(epoch << 32) | marks` per word; word `w` covers stripes
    /// `[32w, 32w + 32)` and its marks are live iff the stamp is current.
    words: Vec<u64>,
    /// Current clear-generation; never 0 (0 marks never-written words).
    epoch: u32,
}

impl StripeMarks {
    /// Creates an empty mark set covering `stripe_hint` stripes before the
    /// first grow.
    pub fn with_capacity(stripe_hint: usize) -> Self {
        StripeMarks {
            words: vec![0; stripe_hint.div_ceil(32).max(4)],
            epoch: 1,
        }
    }

    /// Unmarks every stripe, keeping the allocation.  O(1): bumping the
    /// epoch invalidates every stamp at once; the words are physically
    /// zeroed only when the 32-bit epoch wraps.
    #[inline]
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.words.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `stripe`; returns `true` if it was not yet marked this
    /// generation (i.e. this call changed its state).
    #[inline]
    pub fn test_and_set(&mut self, stripe: usize) -> bool {
        let w = stripe >> 5;
        if w >= self.words.len() {
            self.grow_to(w);
        }
        let bit = 1u64 << (stripe & 31);
        let stamp = (self.epoch as u64) << 32;
        let cur = self.words[w];
        // Branchless: whether the word's stamp is current is data-dependent
        // and mispredicts badly under random stripe access, so fold both
        // cases into conditional moves.  A stale word contributes no live
        // bits (`live == 0`), so this generation owns it from `stamp`.
        let current_gen = cur & !KEY_MASK == stamp;
        let live = if current_gen { cur } else { stamp };
        self.words[w] = live | bit;
        live & bit == 0
    }

    /// Returns `true` if `stripe` is marked in the current generation.
    #[inline]
    pub fn contains(&self, stripe: usize) -> bool {
        let w = stripe >> 5;
        match self.words.get(w) {
            Some(&cur) => {
                cur & !KEY_MASK == (self.epoch as u64) << 32 && cur & (1u64 << (stripe & 31)) != 0
            }
            None => false,
        }
    }

    /// Extends coverage to include word `w`.  New words are zero, which no
    /// live epoch ever stamps, so they read as unmarked.
    #[cold]
    fn grow_to(&mut self, w: usize) {
        self.words.resize((w + 1).next_power_of_two(), 0);
    }

    /// Test hook: jump to an arbitrary epoch to exercise wrap-around.
    #[cfg(test)]
    fn force_epoch(&mut self, epoch: u32) {
        self.words.fill(0);
        self.epoch = epoch.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linemap_insert_get_roundtrip() {
        let mut m = LineMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.get(10), None);
        assert_eq!(m.insert(10, 100), None);
        assert_eq!(m.insert(11, 101), None);
        assert_eq!(m.get(10), Some(100));
        assert_eq!(m.get(11), Some(101));
        assert_eq!(m.len(), 2);
        assert_eq!(m.insert(10, 200), Some(100));
        assert_eq!(m.get(10), Some(200));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn linemap_insert_if_absent_keeps_first() {
        let mut m = LineMap::with_capacity(4);
        assert_eq!(m.insert_if_absent(7, 1), None);
        assert_eq!(m.insert_if_absent(7, 2), Some(1));
        assert_eq!(m.get(7), Some(1), "first value must be preserved");
    }

    #[test]
    fn linemap_grows_past_initial_capacity() {
        let mut m = LineMap::with_capacity(4);
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i), Some(i * 2));
        }
    }

    #[test]
    fn linemap_grow_boundary_preserves_every_entry() {
        // Regression for the old `grow` re-entering the public `insert`:
        // fill to exactly one below the load-factor boundary, then push one
        // entry across it and verify the rehash kept everything, exactly
        // once, with `len` intact.
        let mut m = LineMap::with_capacity(4);
        let cap = m.capacity();
        // Grow triggers when (len+1)*4 >= cap*3, so the last insert that
        // stays in place brings len to cap*3/4 - 1.
        let boundary = (cap * 3) / 4 - 1;
        for i in 0..boundary as u64 {
            m.insert(i, i + 500);
            assert_eq!(m.capacity(), cap, "must not grow below the boundary");
        }
        m.insert(boundary as u64, boundary as u64 + 500);
        assert!(m.capacity() > cap, "crossing the boundary must grow");
        assert_eq!(m.len(), boundary + 1);
        for i in 0..=boundary as u64 {
            assert_eq!(m.get(i), Some(i + 500));
        }
        let mut seen: Vec<_> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), boundary + 1, "rehash must not duplicate");
    }

    #[test]
    fn linemap_clear_retains_capacity_and_empties() {
        let mut m = LineMap::with_capacity(4);
        for i in 0..100u64 {
            m.insert(i, i);
        }
        m.clear();
        assert!(m.is_empty());
        for i in 0..100u64 {
            assert_eq!(m.get(i), None);
        }
        m.insert(5, 50);
        assert_eq!(m.get(5), Some(50));
    }

    #[test]
    fn linemap_clear_is_independent_across_generations() {
        // The epoch bump must fully isolate generations: values written in
        // one generation are invisible in the next, even at the same slots.
        let mut m = LineMap::with_capacity(8);
        for gen in 0..200u64 {
            for i in 0..10u64 {
                assert_eq!(m.get(i), None, "gen {gen}: stale entry resurfaced");
                m.insert(i, gen * 100 + i);
            }
            assert_eq!(m.len(), 10);
            for i in 0..10u64 {
                assert_eq!(m.get(i), Some(gen * 100 + i));
            }
            m.clear();
            assert!(m.is_empty());
        }
    }

    #[test]
    fn linemap_epoch_wrap_does_not_resurrect_entries() {
        let mut m = LineMap::with_capacity(8);
        m.force_epoch(u32::MAX);
        m.insert(3, 33);
        assert_eq!(m.get(3), Some(33));
        m.clear(); // wraps: must fall back to the physical fill
        assert_eq!(m.get(3), None);
        m.insert(4, 44);
        assert_eq!(m.get(4), Some(44));
        assert_eq!(m.get(3), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn linemap_iter_sees_every_entry_once() {
        let mut m = LineMap::with_capacity(4);
        for i in 0..50u64 {
            m.insert(i, i + 1000);
        }
        let mut seen: Vec<_> = m.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 50);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, i as u64 + 1000);
        }
    }

    #[test]
    fn stripemarks_test_and_set_dedups() {
        let mut m = StripeMarks::with_capacity(64);
        assert!(!m.contains(7));
        assert!(m.test_and_set(7), "first mark changes state");
        assert!(!m.test_and_set(7), "second mark is a duplicate");
        assert!(m.contains(7));
        assert!(m.test_and_set(8), "neighbouring stripe is independent");
        assert!(!m.contains(9));
    }

    #[test]
    fn stripemarks_clear_is_independent_across_generations() {
        let mut m = StripeMarks::with_capacity(32);
        for gen in 0..200usize {
            for s in 0..40 {
                assert!(!m.contains(s), "gen {gen}: stale mark resurfaced");
                assert!(m.test_and_set(s));
                assert!(!m.test_and_set(s));
            }
            m.clear();
        }
    }

    #[test]
    fn stripemarks_grows_past_initial_coverage() {
        let mut m = StripeMarks::with_capacity(4);
        assert!(m.test_and_set(10_000));
        assert!(!m.test_and_set(10_000));
        assert!(m.contains(10_000));
        assert!(!m.contains(10_001));
        // Pre-grow marks survive the resize.
        assert!(m.test_and_set(1));
        assert!(m.contains(1));
    }

    #[test]
    fn stripemarks_epoch_wrap_does_not_resurrect_marks() {
        let mut m = StripeMarks::with_capacity(32);
        m.force_epoch(u32::MAX);
        assert!(m.test_and_set(3));
        m.clear(); // wraps: must fall back to the physical fill
        assert!(!m.contains(3));
        assert!(m.test_and_set(3));
    }

    #[test]
    fn writeset_read_own_writes_and_order() {
        let mut ws = WriteSet::with_capacity(4);
        assert!(ws.is_empty());
        ws.insert(Addr(100), 1);
        ws.insert(Addr(200), 2);
        ws.insert(Addr(100), 3);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.get(Addr(100)), Some(3));
        assert_eq!(ws.get(Addr(200)), Some(2));
        assert_eq!(ws.get(Addr(300)), None);
        let order: Vec<_> = ws.iter().collect();
        assert_eq!(order, vec![(Addr(100), 3), (Addr(200), 2)]);
    }

    #[test]
    fn writeset_single_probe_insert_preserves_publication_order() {
        // Interleave first writes and repeat writes across enough words to
        // force index grows; the publication order must stay first-write
        // order with repeat writes updating in place.
        let mut ws = WriteSet::with_capacity(2);
        for i in 0..200usize {
            ws.insert(Addr(i), i as u64);
            ws.insert(Addr(i / 2), 1000 + i as u64); // repeat half the time
        }
        assert_eq!(ws.len(), 200);
        let order: Vec<_> = ws.iter().map(|(a, _)| a.index()).collect();
        assert_eq!(order, (0..200).collect::<Vec<_>>());
        assert_eq!(ws.get(Addr(99)), Some(1000 + 199));
    }

    #[test]
    fn writeset_fingerprint_misses_do_not_hide_collisions() {
        // Words that share a fingerprint bit must still resolve through
        // the index; absent words must miss whether or not their bit is set.
        let mut ws = WriteSet::with_capacity(4);
        for i in 0..512usize {
            ws.insert(Addr(i * 2), i as u64); // even words only
        }
        for i in 0..512usize {
            assert_eq!(ws.get(Addr(i * 2)), Some(i as u64));
            assert_eq!(ws.get(Addr(i * 2 + 1)), None, "odd words never written");
        }
    }

    #[test]
    fn writeset_clear_resets() {
        let mut ws = WriteSet::with_capacity(2);
        for i in 0..100 {
            ws.insert(Addr(i), i as u64);
        }
        assert_eq!(ws.len(), 100);
        ws.clear();
        assert!(ws.is_empty());
        assert_eq!(ws.get(Addr(1)), None);
        ws.insert(Addr(1), 9);
        assert_eq!(ws.iter().collect::<Vec<_>>(), vec![(Addr(1), 9)]);
    }

    #[test]
    fn writeset_growth_walk_keeps_lookups_and_order() {
        // Grow the set one entry at a time (across the index's grow
        // boundary for a capacity-2 hint) with duplicate writes at every
        // size, checking lookups, in-place updates and publication order
        // at each step.
        let mut ws = WriteSet::with_capacity(2);
        let addr = |i: usize| Addr(i * 11 + 3);
        for i in 0..11 {
            ws.insert(addr(i), i as u64);
            ws.insert(addr(i / 2), 1000 + i as u64); // duplicate, updates in place
            assert_eq!(ws.len(), i + 1, "dup insert must not grow the set");
            for j in 0..=i {
                assert!(ws.get(addr(j)).is_some(), "lost key {j} at size {i}");
            }
            assert_eq!(ws.get(addr(i / 2)), Some(1000 + i as u64));
            assert_eq!(ws.get(Addr(usize::MAX / 2)), None);
            // Publication order stays first-write order.
            let order: Vec<Addr> = ws.iter().map(|(a, _)| a).collect();
            assert_eq!(order, (0..=i).map(addr).collect::<Vec<_>>());
        }
    }

    #[test]
    fn writeset_handles_many_distinct_words() {
        let mut ws = WriteSet::with_capacity(2);
        for i in 0..5000usize {
            ws.insert(Addr(i * 3), (i * 7) as u64);
        }
        assert_eq!(ws.len(), 5000);
        for i in 0..5000usize {
            assert_eq!(ws.get(Addr(i * 3)), Some((i * 7) as u64));
        }
    }
}
