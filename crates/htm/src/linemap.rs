//! Allocation-free-on-the-hot-path collections used by the simulated HTM:
//! an open-addressing map keyed by cache-line index ([`LineMap`]) and a
//! write buffer that preserves program order ([`WriteSet`]).
//!
//! Transactions run millions of times per second in the benchmarks, so the
//! per-transaction collections must avoid hashing overhead from the standard
//! library's SipHash and avoid re-allocating every transaction.  Both
//! structures are owned by the per-thread [`crate::HtmThread`] and reused
//! across transactions: `clear` keeps the backing storage.

use rhtm_mem::Addr;

const EMPTY: u64 = u64::MAX;

#[inline(always)]
fn hash_key(key: u64, mask: usize) -> usize {
    // Fibonacci/multiplicative hashing: cheap and well distributed for the
    // small, dense keys (line indices, word addresses) we store.
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize & mask
}

/// An open-addressing hash map from a `u64` key (cache-line index or word
/// address) to a `u64` value, tuned for small transactional footprints.
///
/// Keys must never equal `u64::MAX` (that is the empty marker); heap sizes
/// are far below that.
#[derive(Clone, Debug)]
pub struct LineMap {
    keys: Vec<u64>,
    values: Vec<u64>,
    len: usize,
}

impl LineMap {
    /// Creates an empty map with capacity for `capacity_hint` entries before
    /// the first grow.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        let cap = (capacity_hint.max(8) * 2).next_power_of_two();
        LineMap {
            keys: vec![EMPTY; cap],
            values: vec![0; cap],
            len: 0,
        }
    }

    /// Number of entries.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the map holds no entries.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.keys.fill(EMPTY);
            self.len = 0;
        }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY);
        let mask = self.keys.len() - 1;
        let mut idx = hash_key(key, mask);
        loop {
            let k = self.keys[idx];
            if k == key {
                return Some(self.values[idx]);
            }
            if k == EMPTY {
                return None;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts `key -> value`; returns the previous value if the key was
    /// already present (and leaves the stored value untouched in that case —
    /// the read-set wants the *first* observed version).
    #[inline]
    pub fn insert_if_absent(&mut self, key: u64, value: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY);
        if (self.len + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut idx = hash_key(key, mask);
        loop {
            let k = self.keys[idx];
            if k == key {
                return Some(self.values[idx]);
            }
            if k == EMPTY {
                self.keys[idx] = key;
                self.values[idx] = value;
                self.len += 1;
                return None;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts `key -> value`, overwriting any existing value.  Returns the
    /// previous value if the key was present.
    #[inline]
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        debug_assert_ne!(key, EMPTY);
        if (self.len + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut idx = hash_key(key, mask);
        loop {
            let k = self.keys[idx];
            if k == key {
                let prev = self.values[idx];
                self.values[idx] = value;
                return Some(prev);
            }
            if k == EMPTY {
                self.keys[idx] = key;
                self.values[idx] = value;
                self.len += 1;
                return None;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(k, _)| **k != EMPTY)
            .map(|(k, v)| (*k, *v))
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_values = std::mem::replace(&mut self.values, vec![0; new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_values) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

/// A transactional write buffer: word address → buffered value, preserving
/// first-write program order for publication at commit.
#[derive(Clone, Debug)]
pub struct WriteSet {
    /// `(word address, value)` in first-write order.
    entries: Vec<(usize, u64)>,
    /// word address → index into `entries`.
    index: LineMap,
}

impl WriteSet {
    /// Creates an empty write set with room for `capacity_hint` entries.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        WriteSet {
            entries: Vec::with_capacity(capacity_hint),
            index: LineMap::with_capacity(capacity_hint),
        }
    }

    /// Number of distinct words written.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing has been written.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries, keeping allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }

    /// Buffers `value` for `addr`.  A second write to the same word updates
    /// the buffered value in place (keeping the word's position in the
    /// publication order at its first write).
    #[inline]
    pub fn insert(&mut self, addr: Addr, value: u64) {
        let key = addr.index() as u64;
        match self.index.get(key) {
            Some(slot) => self.entries[slot as usize].1 = value,
            None => {
                let slot = self.entries.len() as u64;
                self.entries.push((addr.index(), value));
                self.index.insert(key, slot);
            }
        }
    }

    /// Returns the buffered value for `addr`, if any (read-own-writes).
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<u64> {
        self.index
            .get(addr.index() as u64)
            .map(|slot| self.entries[slot as usize].1)
    }

    /// Iterates `(address, value)` in first-write program order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.entries.iter().map(|&(a, v)| (Addr(a), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linemap_insert_get_roundtrip() {
        let mut m = LineMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.get(10), None);
        assert_eq!(m.insert(10, 100), None);
        assert_eq!(m.insert(11, 101), None);
        assert_eq!(m.get(10), Some(100));
        assert_eq!(m.get(11), Some(101));
        assert_eq!(m.len(), 2);
        assert_eq!(m.insert(10, 200), Some(100));
        assert_eq!(m.get(10), Some(200));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn linemap_insert_if_absent_keeps_first() {
        let mut m = LineMap::with_capacity(4);
        assert_eq!(m.insert_if_absent(7, 1), None);
        assert_eq!(m.insert_if_absent(7, 2), Some(1));
        assert_eq!(m.get(7), Some(1), "first value must be preserved");
    }

    #[test]
    fn linemap_grows_past_initial_capacity() {
        let mut m = LineMap::with_capacity(4);
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i), Some(i * 2));
        }
    }

    #[test]
    fn linemap_clear_retains_capacity_and_empties() {
        let mut m = LineMap::with_capacity(4);
        for i in 0..100u64 {
            m.insert(i, i);
        }
        m.clear();
        assert!(m.is_empty());
        for i in 0..100u64 {
            assert_eq!(m.get(i), None);
        }
        m.insert(5, 50);
        assert_eq!(m.get(5), Some(50));
    }

    #[test]
    fn linemap_iter_sees_every_entry_once() {
        let mut m = LineMap::with_capacity(4);
        for i in 0..50u64 {
            m.insert(i, i + 1000);
        }
        let mut seen: Vec<_> = m.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 50);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, i as u64 + 1000);
        }
    }

    #[test]
    fn writeset_read_own_writes_and_order() {
        let mut ws = WriteSet::with_capacity(4);
        assert!(ws.is_empty());
        ws.insert(Addr(100), 1);
        ws.insert(Addr(200), 2);
        ws.insert(Addr(100), 3);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.get(Addr(100)), Some(3));
        assert_eq!(ws.get(Addr(200)), Some(2));
        assert_eq!(ws.get(Addr(300)), None);
        let order: Vec<_> = ws.iter().collect();
        assert_eq!(order, vec![(Addr(100), 3), (Addr(200), 2)]);
    }

    #[test]
    fn writeset_clear_resets() {
        let mut ws = WriteSet::with_capacity(2);
        for i in 0..100 {
            ws.insert(Addr(i), i as u64);
        }
        assert_eq!(ws.len(), 100);
        ws.clear();
        assert!(ws.is_empty());
        assert_eq!(ws.get(Addr(1)), None);
        ws.insert(Addr(1), 9);
        assert_eq!(ws.iter().collect::<Vec<_>>(), vec![(Addr(1), 9)]);
    }

    #[test]
    fn writeset_handles_many_distinct_words() {
        let mut ws = WriteSet::with_capacity(2);
        for i in 0..5000usize {
            ws.insert(Addr(i * 3), (i * 7) as u64);
        }
        assert_eq!(ws.len(), 5000);
        for i in 0..5000usize {
            assert_eq!(ws.get(Addr(i * 3)), Some((i * 7) as u64));
        }
    }
}
