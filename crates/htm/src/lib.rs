//! # rhtm-htm
//!
//! A **software-simulated best-effort hardware transactional memory**.
//!
//! The paper evaluates its protocols on (emulated) best-effort HTM of the
//! kind Intel TSX and IBM POWER/zEC12 provide.  This environment has no
//! usable HTM hardware, so — per the reproduction plan in `docs/ARCHITECTURE.md` — this
//! crate implements the closest synthetic equivalent: a transactional engine
//! over the shared [`rhtm_mem::TxHeap`] that provides exactly the semantics
//! the hybrid protocols rely on:
//!
//! * **All-or-nothing visibility** — writes are buffered and published
//!   atomically with respect to other hardware transactions at commit.
//! * **Cache-line-granularity conflict detection** — the read- and
//!   write-sets are tracked per 64-byte line; any concurrent committed write
//!   (transactional or not) to a line in the read-set aborts the
//!   transaction, reproducing both true and false sharing effects.
//! * **Strong isolation** — non-transactional stores issued through
//!   [`HtmSim::nt_store`] (and friends) participate in conflict detection,
//!   as cache-coherence traffic does on real hardware.
//! * **Best-effort-ness** — capacity limits (an L1-like line budget),
//!   explicit aborts, optional spurious aborts, and an optional
//!   *forced-abort-ratio* knob that mirrors the paper's emulation
//!   methodology (§3.1).
//! * **Abort causes** — [`rhtm_api::AbortCause`] distinguishes contention
//!   from hardware limitations so the protocols can take the paper's
//!   fallback decisions.
//!
//! The crate also provides [`HtmRuntime`], the *pure HTM* runtime used as
//! the "HTM" series in every figure: uninstrumented reads and writes,
//! retrying aborted transactions in hardware forever.
//!
//! ## Why relative measurements survive the simulation
//!
//! Every runtime in the workspace issues its speculative accesses through
//! the same [`HtmThread`] unit, so the per-access cost of the simulator is a
//! constant additive term for all of them.  What differs between runtimes is
//! exactly what the paper studies: the *additional* metadata loads, stores
//! and branches each HyTM design adds around those accesses.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod gv;
pub mod linemap;
pub mod runtime;
pub mod sim;
pub mod txn;

pub use config::{HtmConfig, ValidationMode};
pub use runtime::{HtmRuntime, HtmRuntimeConfig, HtmRuntimeThread};
pub use sim::HtmSim;
pub use txn::HtmThread;
