//! The per-thread hardware transaction unit: `HTM_Start` / speculative
//! read/write / `HTM_Commit` / `HTM_Abort`.
//!
//! [`HtmThread`] is embedded by every runtime that issues hardware
//! transactions (the pure-HTM runtime, the Standard-HyTM baseline and the
//! RH1/RH2 protocols).  It owns the per-transaction read-line and
//! write-buffer collections and reuses them across transactions.
//!
//! ## Commit algorithm
//!
//! 1. Injected failures (forced-abort-ratio, spurious rate) are applied
//!    first, modelling the paper's emulation methodology and the
//!    best-effort-ness of real parts.
//! 2. Read-only transactions commit immediately (their reads were validated
//!    individually, and under incremental validation the whole set was
//!    revalidated whenever the global write sequence moved).
//! 3. Writing transactions lock the cache lines they wrote (ascending line
//!    order, try-lock: a busy line is a conflict), validate that every line
//!    in the read-set still carries the version observed at first read,
//!    publish the buffered values **in program order** and release the
//!    locks with bumped versions.
//!
//! Publication in program order matters for the hybrid protocols: the RH1
//! fast-path writes a location's *stripe version before its data*, and the
//! RH1/RH2 software slow-paths read a location's stripe version before and
//! after the data load.  Program-order publication therefore guarantees
//! that a slow-path reader that observes a new data value also observes the
//! new stripe version in its post-read check — the same all-or-nothing
//! property an atomic hardware commit provides (see `docs/ARCHITECTURE.md`).

use std::sync::Arc;

use rhtm_api::{Abort, AbortCause, TxResult};
use rhtm_mem::Addr;

use crate::config::ValidationMode;
use crate::linemap::{LineMap, WriteSet};
use crate::sim::HtmSim;

/// A tiny xorshift PRNG used only for abort injection; deterministic per
/// thread so benchmark runs are reproducible.
#[derive(Clone, Debug)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // SplitMix64 step to decorrelate thread seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64((z ^ (z >> 31)) | 1)
    }

    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [0, 1).
    #[inline(always)]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-thread best-effort hardware transaction unit.
pub struct HtmThread {
    sim: Arc<HtmSim>,
    /// cache line -> version observed at first read.
    read_lines: LineMap,
    /// word address -> buffered value, in program order.
    write_set: WriteSet,
    /// cache line -> (used at commit) version the line was locked from.
    write_lines: LineMap,
    /// Scratch buffer of (line, locked-from-version) reused across commits.
    locked: Vec<(usize, u64)>,
    /// Scratch buffer for the sorted written-line list built at commit,
    /// reused so a writing commit performs no heap allocation.
    commit_lines: Vec<usize>,
    /// Global write sequence observed at begin / last revalidation.
    start_seq: u64,
    active: bool,
    /// Whether the forced-abort-ratio knob applies to this unit's commits.
    /// The paper's emulation methodology forces the measured abort ratio
    /// onto the *fast-path* transactions; the short commit-time hardware
    /// transactions of the mixed slow-path are not subject to it, so the
    /// slow-path commit code disables injection around its commits.
    forced_injection: bool,
    rng: XorShift64,
    /// Number of hardware commits this unit has performed.
    commits: u64,
    /// Number of hardware aborts this unit has suffered.
    aborts: u64,
}

impl HtmThread {
    /// Creates a hardware transaction unit bound to `sim`; `thread_seed`
    /// decorrelates the abort-injection RNG between threads.
    pub fn new(sim: Arc<HtmSim>, thread_seed: u64) -> Self {
        let seed = sim.config().seed ^ thread_seed.wrapping_mul(0xA24B_AED4_963E_E407);
        HtmThread {
            sim,
            read_lines: LineMap::with_capacity(64),
            write_set: WriteSet::with_capacity(32),
            write_lines: LineMap::with_capacity(32),
            locked: Vec::with_capacity(32),
            commit_lines: Vec::with_capacity(32),
            start_seq: 0,
            active: false,
            forced_injection: true,
            rng: XorShift64::new(seed),
            commits: 0,
            aborts: 0,
        }
    }

    /// Enables or disables the forced-abort-ratio injection for this unit's
    /// subsequent commits (spurious aborts are unaffected).  Used by the
    /// mixed slow-path around its commit-time hardware transaction.
    pub fn set_forced_abort_injection(&mut self, enabled: bool) {
        self.forced_injection = enabled;
    }

    /// The simulator this unit runs against.
    #[inline(always)]
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// Returns `true` while a hardware transaction is open.
    #[inline(always)]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of distinct cache lines read so far in the open transaction.
    #[inline(always)]
    pub fn read_footprint_lines(&self) -> usize {
        self.read_lines.len()
    }

    /// Number of distinct cache lines written so far in the open
    /// transaction.
    #[inline(always)]
    pub fn write_footprint_lines(&self) -> usize {
        self.write_lines.len()
    }

    /// Hardware commits performed by this unit since creation.
    #[inline(always)]
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Hardware aborts suffered by this unit since creation.
    #[inline(always)]
    pub fn abort_count(&self) -> u64 {
        self.aborts
    }

    /// `HTM_Start()`: opens a new hardware transaction, discarding any state
    /// left over from an abandoned one.
    pub fn begin(&mut self) {
        self.read_lines.clear();
        self.write_set.clear();
        self.write_lines.clear();
        self.locked.clear();
        self.start_seq = self.sim.write_seq();
        self.active = true;
    }

    /// `HTM_Abort()`: explicitly aborts the open transaction, discarding all
    /// buffered writes, and returns the [`Abort`] to propagate.
    pub fn abort(&mut self, cause: AbortCause) -> Abort {
        debug_assert!(
            self.active,
            "abort called with no open hardware transaction"
        );
        self.rollback();
        Abort::new(cause)
    }

    #[inline]
    fn rollback(&mut self) {
        self.read_lines.clear();
        self.write_set.clear();
        self.write_lines.clear();
        self.locked.clear();
        self.active = false;
        self.aborts += 1;
    }

    #[cold]
    fn fail(&mut self, cause: AbortCause) -> Abort {
        self.rollback();
        Abort::new(cause)
    }

    /// Revalidates every line in the read-set against the line table.
    fn revalidate(&self) -> Result<(), ()> {
        for (line, ver) in self.read_lines.iter() {
            if self.sim.line_version(line as usize) != ver {
                return Err(());
            }
        }
        Ok(())
    }

    /// Releases every lock taken so far by an aborting commit, restoring the
    /// pre-lock versions.
    fn release_locked_unchanged(&mut self) {
        while let Some((line, prev)) = self.locked.pop() {
            self.sim.unlock_line_unchanged(line, prev);
        }
    }

    /// Speculative read of the word at `addr`.
    #[inline]
    pub fn read(&mut self, addr: Addr) -> TxResult<u64> {
        debug_assert!(self.active, "read outside a hardware transaction");
        if let Some(v) = self.write_set.get(addr) {
            return Ok(v);
        }
        if self.sim.config().validation == ValidationMode::Incremental {
            let seq = self.sim.write_seq();
            if seq != self.start_seq {
                if self.revalidate().is_err() {
                    return Err(self.fail(AbortCause::Conflict));
                }
                self.start_seq = seq;
            }
        }
        let line = addr.line();
        let v1 = self.sim.line_version(line);
        if HtmSim::line_is_locked(v1) {
            return Err(self.fail(AbortCause::Conflict));
        }
        let value = self.sim.mem().heap().load(addr);
        let v2 = self.sim.line_version(line);
        if v2 != v1 {
            return Err(self.fail(AbortCause::Conflict));
        }
        match self.read_lines.insert_if_absent(line as u64, v1) {
            Some(prev) => {
                if prev != v1 {
                    // The line changed between two reads of the same
                    // transaction: on real hardware the first read's line
                    // would have been invalidated, aborting us.
                    return Err(self.fail(AbortCause::Conflict));
                }
            }
            None => {
                if self.read_lines.len() > self.sim.config().read_capacity_lines {
                    return Err(self.fail(AbortCause::Capacity));
                }
            }
        }
        Ok(value)
    }

    /// Speculative (buffered) write of `value` to the word at `addr`.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        debug_assert!(self.active, "write outside a hardware transaction");
        self.write_set.insert(addr, value);
        let line = addr.line() as u64;
        if self.write_lines.insert_if_absent(line, 0).is_none()
            && self.write_lines.len() > self.sim.config().write_capacity_lines
        {
            return Err(self.fail(AbortCause::Capacity));
        }
        Ok(())
    }

    /// A "protected instruction" (system call, page fault, ...) that
    /// best-effort HTM cannot execute: always aborts the transaction.
    pub fn protected_instruction(&mut self) -> TxResult<()> {
        debug_assert!(self.active);
        Err(self.fail(AbortCause::Unsupported))
    }

    /// `HTM_Commit()`: attempts to commit the open transaction.
    pub fn commit(&mut self) -> TxResult<()> {
        debug_assert!(self.active, "commit outside a hardware transaction");
        let cfg = self.sim.config();
        // Injected failures first: they model events (interrupts, the
        // paper's forced abort ratio) that strike regardless of the
        // transaction's actual footprint.
        if cfg.spurious_abort_rate > 0.0 && self.rng.next_f64() < cfg.spurious_abort_rate {
            return Err(self.fail(AbortCause::Spurious));
        }
        if self.forced_injection
            && !self.write_set.is_empty()
            && cfg.forced_abort_ratio > 0.0
            && self.rng.next_f64() < cfg.forced_abort_ratio
        {
            return Err(self.fail(AbortCause::Forced));
        }

        if self.write_set.is_empty() {
            // Read-only: under commit-only validation the set must be
            // checked now; under incremental validation every read already
            // validated against a consistent snapshot.
            if cfg.validation == ValidationMode::CommitOnly && self.revalidate().is_err() {
                return Err(self.fail(AbortCause::Conflict));
            }
            self.active = false;
            self.commits += 1;
            self.read_lines.clear();
            return Ok(());
        }

        // Lock the written lines in ascending order (try-lock; any busy or
        // moved line is a conflict).
        self.locked.clear();
        self.commit_lines.clear();
        self.commit_lines
            .extend(self.write_lines.iter().map(|(l, _)| l as usize));
        self.commit_lines.sort_unstable();
        for i in 0..self.commit_lines.len() {
            let line = self.commit_lines[i];
            let v = self.sim.line_version(line);
            if HtmSim::line_is_locked(v) || !self.sim.try_lock_line(line, v) {
                self.release_locked_unchanged();
                return Err(self.fail(AbortCause::Conflict));
            }
            self.locked.push((line, v));
            self.write_lines.insert(line as u64, v);
        }

        // Validate the read-set: every line must still carry the version we
        // first observed; lines we locked ourselves are compared against
        // their pre-lock version (recorded into `write_lines` above).
        let read_set_valid = self.read_lines.iter().all(|(line, ver)| {
            let current = match self.write_lines.get(line) {
                Some(prev) => prev,
                None => self.sim.line_version(line as usize),
            };
            current == ver
        });
        if !read_set_valid {
            self.release_locked_unchanged();
            return Err(self.fail(AbortCause::Conflict));
        }

        // Publish buffered values in program order, then release the locks
        // with bumped versions and advance the global write sequence.
        for (addr, value) in self.write_set.iter() {
            self.sim.mem().heap().store(addr, value);
        }
        for &(line, prev) in &self.locked {
            self.sim.unlock_line(line, prev);
        }
        self.sim.bump_write_seq();

        self.active = false;
        self.commits += 1;
        self.read_lines.clear();
        self.write_set.clear();
        self.write_lines.clear();
        self.locked.clear();
        Ok(())
    }
}

impl std::fmt::Debug for HtmThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmThread")
            .field("active", &self.active)
            .field("read_lines", &self.read_lines.len())
            .field("write_words", &self.write_set.len())
            .field("commits", &self.commits)
            .field("aborts", &self.aborts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HtmConfig;
    use rhtm_mem::{MemConfig, TmMemory};
    use std::sync::atomic::Ordering;

    fn setup(config: HtmConfig) -> (Arc<HtmSim>, Addr) {
        let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(4096)));
        let base = mem.alloc(1024);
        let sim = HtmSim::new(mem, config);
        (sim, base)
    }

    #[test]
    fn read_write_commit_roundtrip() {
        let (sim, base) = setup(HtmConfig::default());
        let mut t = HtmThread::new(Arc::clone(&sim), 0);
        t.begin();
        assert_eq!(t.read(base).unwrap(), 0);
        t.write(base, 7).unwrap();
        assert_eq!(t.read(base).unwrap(), 7, "read-own-write");
        assert_eq!(sim.nt_load(base), 0, "writes stay buffered until commit");
        t.commit().unwrap();
        assert_eq!(sim.nt_load(base), 7);
        assert_eq!(t.commit_count(), 1);
        assert!(!t.is_active());
    }

    #[test]
    fn explicit_abort_discards_writes() {
        let (sim, base) = setup(HtmConfig::default());
        let mut t = HtmThread::new(Arc::clone(&sim), 0);
        t.begin();
        t.write(base, 42).unwrap();
        let abort = t.abort(AbortCause::Explicit);
        assert_eq!(abort.cause, AbortCause::Explicit);
        assert_eq!(sim.nt_load(base), 0);
        assert_eq!(t.abort_count(), 1);
        assert!(!t.is_active());
    }

    #[test]
    fn nt_store_conflicts_with_open_reader() {
        let (sim, base) = setup(HtmConfig::default());
        let mut t = HtmThread::new(Arc::clone(&sim), 0);
        t.begin();
        assert_eq!(t.read(base).unwrap(), 0);
        // Another agent writes the line non-transactionally.
        sim.nt_store(base, 5);
        // The reader must not commit having seen the old value.
        t.write(base.offset(64), 1).unwrap();
        let err = t.commit().unwrap_err();
        assert_eq!(err.cause, AbortCause::Conflict);
    }

    #[test]
    fn read_only_transaction_commits_against_stale_snapshot_consistently() {
        // A read-only transaction serialises at its last validation point;
        // a later nt_store does not force an abort.
        let (sim, base) = setup(HtmConfig::default());
        let mut t = HtmThread::new(Arc::clone(&sim), 0);
        t.begin();
        assert_eq!(t.read(base).unwrap(), 0);
        sim.nt_store(base.offset(128), 9);
        t.commit().unwrap();
    }

    #[test]
    fn incremental_validation_aborts_doomed_reader() {
        let (sim, base) = setup(HtmConfig::default());
        let mut t = HtmThread::new(Arc::clone(&sim), 0);
        t.begin();
        assert_eq!(t.read(base).unwrap(), 0);
        sim.nt_store(base, 1);
        // The next read (of any address) must observe the conflict.
        let err = t.read(base.offset(512)).unwrap_err();
        assert_eq!(err.cause, AbortCause::Conflict);
    }

    #[test]
    fn commit_only_validation_defers_the_abort_to_commit() {
        let (sim, base) = setup(HtmConfig::default().with_validation(ValidationMode::CommitOnly));
        let mut t = HtmThread::new(Arc::clone(&sim), 0);
        t.begin();
        assert_eq!(t.read(base).unwrap(), 0);
        sim.nt_store(base, 1);
        // Reads keep succeeding (possibly inconsistently) ...
        assert!(t.read(base.offset(512)).is_ok());
        // ... but the commit fails, even for a read-only transaction.
        let err = t.commit().unwrap_err();
        assert_eq!(err.cause, AbortCause::Conflict);
    }

    #[test]
    fn conflicting_writers_cannot_both_commit_lost_update() {
        let (sim, base) = setup(HtmConfig::default());
        let sim2 = Arc::clone(&sim);
        let addr = base;
        let threads = 4;
        let per = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let sim = Arc::clone(&sim2);
                std::thread::spawn(move || {
                    let mut t = HtmThread::new(sim, i as u64);
                    for _ in 0..per {
                        loop {
                            t.begin();
                            let attempt = (|| {
                                let v = t.read(addr)?;
                                t.write(addr, v + 1)?;
                                t.commit()
                            })();
                            if attempt.is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sim.nt_load(addr), (threads * per) as u64);
    }

    #[test]
    fn capacity_abort_on_reads() {
        let (sim, base) = setup(HtmConfig::with_capacity(4, 64));
        let mut t = HtmThread::new(sim, 0);
        t.begin();
        // 5 distinct lines exceeds the 4-line read budget.
        let mut result = Ok(0);
        for i in 0..5 {
            result = t.read(base.offset(i * 8));
            if result.is_err() {
                break;
            }
        }
        assert_eq!(result.unwrap_err().cause, AbortCause::Capacity);
    }

    #[test]
    fn capacity_abort_on_writes() {
        let (sim, base) = setup(HtmConfig::with_capacity(512, 2));
        let mut t = HtmThread::new(sim, 0);
        t.begin();
        let mut result = Ok(());
        for i in 0..3 {
            result = t.write(base.offset(i * 8), 1);
            if result.is_err() {
                break;
            }
        }
        assert_eq!(result.unwrap_err().cause, AbortCause::Capacity);
    }

    #[test]
    fn repeated_reads_of_same_line_do_not_consume_capacity() {
        let (sim, base) = setup(HtmConfig::with_capacity(1, 64));
        let mut t = HtmThread::new(sim, 0);
        t.begin();
        for _ in 0..100 {
            t.read(base).unwrap();
            t.read(base.offset(1)).unwrap(); // same line
        }
        assert_eq!(t.read_footprint_lines(), 1);
        t.commit().unwrap();
    }

    #[test]
    fn forced_abort_ratio_aborts_writers_at_commit() {
        let (sim, base) = setup(HtmConfig::default().with_forced_abort_ratio(1.0));
        let mut t = HtmThread::new(sim, 0);
        t.begin();
        t.write(base, 1).unwrap();
        assert_eq!(t.commit().unwrap_err().cause, AbortCause::Forced);
        // Read-only transactions are not subject to the forced ratio.
        t.begin();
        t.read(base).unwrap();
        t.commit().unwrap();
    }

    #[test]
    fn spurious_rate_hits_read_only_transactions_too() {
        let (sim, base) = setup(HtmConfig::default().with_spurious_abort_rate(1.0));
        let mut t = HtmThread::new(sim, 0);
        t.begin();
        t.read(base).unwrap();
        assert_eq!(t.commit().unwrap_err().cause, AbortCause::Spurious);
    }

    #[test]
    fn protected_instruction_always_aborts() {
        let (sim, _base) = setup(HtmConfig::default());
        let mut t = HtmThread::new(sim, 0);
        t.begin();
        assert_eq!(
            t.protected_instruction().unwrap_err().cause,
            AbortCause::Unsupported
        );
        assert!(!t.is_active());
    }

    #[test]
    fn publication_preserves_program_order() {
        // Writer publishes version word then data word; a racing plain
        // reader that sees the new data must also see the new version.
        let (sim, base) = setup(HtmConfig::default());
        let version_addr = base;
        let data_addr = base.offset(64);
        let writer_sim = Arc::clone(&sim);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            let mut violations = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                let d = sim.nt_load(data_addr);
                let v = sim.nt_load(version_addr);
                // data is written with the same value as the version; seeing
                // data ahead of version means program order was violated.
                if d > v {
                    violations += 1;
                }
            }
            violations
        });
        let mut t = HtmThread::new(writer_sim, 1);
        for i in 1..=20_000u64 {
            loop {
                t.begin();
                let attempt = (|| {
                    t.write(version_addr, i)?;
                    t.write(data_addr, i)?;
                    t.commit()
                })();
                if attempt.is_ok() {
                    break;
                }
            }
        }
        stop.store(true, Ordering::SeqCst);
        assert_eq!(reader.join().unwrap(), 0);
    }

    #[test]
    fn begin_discards_abandoned_transaction() {
        let (sim, base) = setup(HtmConfig::default());
        let mut t = HtmThread::new(Arc::clone(&sim), 0);
        t.begin();
        t.write(base, 123).unwrap();
        // Abandon without commit or abort, then start a new transaction.
        t.begin();
        t.commit().unwrap();
        assert_eq!(sim.nt_load(base), 0, "abandoned writes must not leak");
    }
}
