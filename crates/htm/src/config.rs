//! Configuration of the simulated best-effort HTM.

/// How the simulator keeps a running transaction's view consistent
/// (opacity).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationMode {
    /// Validate the read-set only at commit.  Cheapest; matches the paper's
    /// "constant" benchmark structures, where a stale view can never crash
    /// or hang the transaction body.
    CommitOnly,
    /// NOrec-style incremental validation: every read first checks a global
    /// modification sequence number and revalidates the read-set when it
    /// changed.  This gives running transactions an opaque (always
    /// consistent) view, which real HTM provides by construction through
    /// eager cache-line invalidation.  Required when transactions navigate
    /// pointer structures that other transactions mutate.
    #[default]
    Incremental,
}

/// Tunable parameters of the simulated HTM.
#[derive(Clone, Debug, PartialEq)]
pub struct HtmConfig {
    /// Maximum number of distinct cache lines a transaction may *read*
    /// before it aborts with [`rhtm_api::AbortCause::Capacity`].
    ///
    /// Real best-effort HTM tracks reads well beyond the L1 (Intel TSX
    /// keeps an imprecise read-set in the L2/L3), and the paper's emulated
    /// HTM had no capacity bound at all, so the default is generous: 4096
    /// lines (256 KiB).  Capacity-sensitive experiments override it.
    pub read_capacity_lines: usize,
    /// Maximum number of distinct cache lines a transaction may *write*
    /// before it aborts with [`rhtm_api::AbortCause::Capacity`].
    ///
    /// Write capacity on real parts is bounded by the L1D (writes cannot
    /// spill); 512 lines models a 32 KiB L1D.
    pub write_capacity_lines: usize,
    /// Probability (0.0–1.0) that a commit attempt fails spuriously, the
    /// way interrupts, TLB activity and capacity aliasing fail real
    /// best-effort transactions even without contention.
    pub spurious_abort_rate: f64,
    /// Probability (0.0–1.0) that a commit attempt of a *writing*
    /// transaction is aborted artificially.  This reproduces the paper's
    /// emulation methodology: the authors measured the abort ratio of a TL2
    /// run and forced the same ratio onto the emulated HTM at commit time
    /// (§3.1).  Leave at 0.0 to let only genuine conflicts abort.
    pub forced_abort_ratio: f64,
    /// Opacity mode, see [`ValidationMode`].
    pub validation: ValidationMode,
    /// Seed mixed into each thread's abort-injection RNG so runs are
    /// reproducible.
    pub seed: u64,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            read_capacity_lines: 4096,
            write_capacity_lines: 512,
            spurious_abort_rate: 0.0,
            forced_abort_ratio: 0.0,
            validation: ValidationMode::Incremental,
            seed: 0x5eed_1234_abcd_9876,
        }
    }
}

impl HtmConfig {
    /// A configuration with everything at default except the capacity
    /// limits — convenient for fallback tests that need tiny transactions
    /// to overflow.
    pub fn with_capacity(read_lines: usize, write_lines: usize) -> Self {
        HtmConfig {
            read_capacity_lines: read_lines,
            write_capacity_lines: write_lines,
            ..Default::default()
        }
    }

    /// Returns the same configuration with the forced-abort-ratio knob set.
    pub fn with_forced_abort_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "abort ratio must be in [0,1]");
        self.forced_abort_ratio = ratio;
        self
    }

    /// Returns the same configuration with the spurious abort rate set.
    pub fn with_spurious_abort_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "abort rate must be in [0,1]");
        self.spurious_abort_rate = rate;
        self
    }

    /// Returns the same configuration with the given validation mode.
    pub fn with_validation(mut self, validation: ValidationMode) -> Self {
        self.validation = validation;
        self
    }

    /// Returns the same configuration with the given RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_a_best_effort_htm() {
        let c = HtmConfig::default();
        assert_eq!(c.read_capacity_lines, 4096);
        assert_eq!(c.write_capacity_lines, 512);
        assert_eq!(c.spurious_abort_rate, 0.0);
        assert_eq!(c.forced_abort_ratio, 0.0);
        assert_eq!(c.validation, ValidationMode::Incremental);
    }

    #[test]
    fn builder_methods_compose() {
        let c = HtmConfig::with_capacity(8, 4)
            .with_forced_abort_ratio(0.25)
            .with_spurious_abort_rate(0.01)
            .with_validation(ValidationMode::CommitOnly)
            .with_seed(42);
        assert_eq!(c.read_capacity_lines, 8);
        assert_eq!(c.write_capacity_lines, 4);
        assert_eq!(c.forced_abort_ratio, 0.25);
        assert_eq!(c.spurious_abort_rate, 0.01);
        assert_eq!(c.validation, ValidationMode::CommitOnly);
        assert_eq!(c.seed, 42);
    }

    #[test]
    #[should_panic(expected = "abort ratio")]
    fn forced_abort_ratio_is_validated() {
        let _ = HtmConfig::default().with_forced_abort_ratio(1.5);
    }

    #[test]
    #[should_panic(expected = "abort rate")]
    fn spurious_rate_is_validated() {
        let _ = HtmConfig::default().with_spurious_abort_rate(-0.1);
    }
}
