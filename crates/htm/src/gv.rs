//! Conflict-visible global-version-clock operations.
//!
//! The [`rhtm_mem::GlobalClock`] stored in the heap has two kinds of user:
//!
//! * *software-only* runtimes (pure TL2) can manipulate it with plain atomic
//!   heap operations, and
//! * *hybrid* runtimes must make every **write** to the clock
//!   conflict-visible to the simulated HTM, because fast-path hardware
//!   transactions read the clock speculatively and the protocols'
//!   correctness depends on a clock advance aborting them (that is what
//!   keeps the clock stable across every committed fast-path transaction,
//!   the linchpin of RH1's time-stamp invariant — see `txn.rs`).
//!
//! This module provides the hybrid-safe operations: reads are plain loads
//! (loads never invalidate anybody), writes go through the simulator's
//! strongly-isolated [`HtmSim::nt_fetch_max`].

use rhtm_mem::ClockMode;

use crate::sim::HtmSim;

/// `GVRead()`: current clock value.
#[inline(always)]
pub fn read(sim: &HtmSim) -> u64 {
    sim.nt_load(sim.mem().layout().clock_addr())
}

/// `GVNext()`: the version a committing writer should install.
///
/// Under GV6 (the paper's choice) this does **not** modify the shared clock;
/// under the incrementing mode it advances it with a conflict-visible
/// fetch-and-add.
#[inline(always)]
pub fn next(sim: &HtmSim) -> u64 {
    let clock = sim.mem().clock();
    match clock.mode() {
        ClockMode::Gv6 => read(sim) + 1,
        ClockMode::Incrementing => sim.nt_fetch_add(clock.addr(), 1) + 1,
    }
}

/// A clock-advancing `GVNext()`: atomically increments the shared clock and
/// returns the new value, regardless of the configured mode.
///
/// The stand-alone TL2 baseline uses this (the classic GV1 discipline, whose
/// serialisability argument needs every write version to be unique and
/// larger than any start time-stamp issued before the write-back).  The
/// reduced-hardware protocols do *not*: their commit executes inside a
/// hardware transaction with the clock in its read-set, which restores the
/// argument without paying a shared-clock write per commit.
#[inline(always)]
pub fn next_advancing(sim: &HtmSim) -> u64 {
    sim.nt_fetch_add(sim.mem().clock().addr(), 1) + 1
}

/// Advances the clock to at least `observed` on a software-transaction
/// abort (GV6 advances only here).  Conflict-visible: any fast-path
/// hardware transaction that speculatively read the clock aborts.
#[inline]
pub fn on_abort(sim: &HtmSim, observed: u64) {
    if sim.mem().clock().mode() == ClockMode::Gv6 {
        sim.nt_fetch_max(sim.mem().clock().addr(), observed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HtmConfig;
    use rhtm_mem::{MemConfig, TmMemory};
    use std::sync::Arc;

    fn sim(mode: ClockMode) -> Arc<HtmSim> {
        let mem_cfg = MemConfig {
            clock_mode: mode,
            ..MemConfig::with_data_words(256)
        };
        HtmSim::new(Arc::new(TmMemory::new(mem_cfg)), HtmConfig::default())
    }

    #[test]
    fn gv6_next_is_read_plus_one_without_writing() {
        let s = sim(ClockMode::Gv6);
        assert_eq!(read(&s), 0);
        assert_eq!(next(&s), 1);
        assert_eq!(next(&s), 1);
        assert_eq!(read(&s), 0);
    }

    #[test]
    fn gv6_abort_advances_clock_visibly() {
        let s = sim(ClockMode::Gv6);
        let seq_before = s.write_seq();
        on_abort(&s, 7);
        assert_eq!(read(&s), 7);
        assert!(s.write_seq() > seq_before, "clock bump must be conflict-visible");
        on_abort(&s, 3);
        assert_eq!(read(&s), 7);
    }

    #[test]
    fn incrementing_mode_advances_on_next() {
        let s = sim(ClockMode::Incrementing);
        assert_eq!(next(&s), 1);
        assert_eq!(next(&s), 2);
        assert_eq!(read(&s), 2);
        // on_abort is a no-op for the incrementing clock.
        on_abort(&s, 100);
        assert_eq!(read(&s), 2);
    }

    #[test]
    fn clock_bump_aborts_speculative_clock_readers() {
        use crate::txn::HtmThread;
        let s = sim(ClockMode::Gv6);
        let data = s.mem().alloc(1);
        let mut t = HtmThread::new(Arc::clone(&s), 0);
        t.begin();
        // Fast-path style: read the clock speculatively, then write data.
        let clock_addr = s.mem().layout().clock_addr();
        t.read(clock_addr).unwrap();
        t.write(data, 1).unwrap();
        // A concurrent software abort bumps the clock ...
        on_abort(&s, 5);
        // ... which must doom the writing hardware transaction, keeping the
        // clock stable across every *committed* fast-path transaction.
        assert!(t.commit().is_err());
        assert_eq!(s.nt_load(data), 0);
    }
}
