//! Conflict-visible global-version-clock operations.
//!
//! The [`rhtm_mem::GlobalClock`] stored in the heap has two kinds of user:
//!
//! * *software-only* runtimes (pure TL2) can manipulate it with plain atomic
//!   heap operations, and
//! * *hybrid* runtimes must make every **write** to the clock
//!   conflict-visible to the simulated HTM, because fast-path hardware
//!   transactions read the clock speculatively and the protocols'
//!   correctness depends on a clock advance aborting them (that is what
//!   keeps the clock stable across every committed fast-path transaction,
//!   the linchpin of RH1's time-stamp invariant — see `txn.rs`).
//!
//! This module provides the hybrid-safe operations: reads are plain loads
//! (loads never invalidate anybody), writes go through the simulator's
//! strongly-isolated [`HtmSim::nt_fetch_max`] / [`HtmSim::nt_fetch_add`] /
//! [`HtmSim::nt_cas`].
//!
//! The operations mirror [`rhtm_mem::GlobalClock`] and dispatch on the
//! memory's configured [`ClockScheme`]:
//!
//! * [`read`] — `GVRead()`, a plain load under every scheme.
//! * [`next_commit`] — the version a committing *software* writer installs.
//!   Strict/incrementing schemes fetch-and-add, GV4 attempts one CAS, GV5
//!   skips the clock write entirely, GV6 samples between the last two.
//! * [`htm_advances`] — whether a hardware fast-path commit must also
//!   advance the clock speculatively (only the incrementing ablation
//!   baseline).
//! * [`on_abort`] — the abort-path fetch-max that lets the GV schemes'
//!   clock catch up with installed versions.

use rhtm_mem::{ClockScheme, GV6_SAMPLE_PERIOD};

use crate::sim::HtmSim;

/// `GVRead()`: current clock value.
#[inline(always)]
pub fn read(sim: &HtmSim) -> u64 {
    sim.nt_load(sim.mem().layout().clock_addr())
}

/// The configured clock scheme of the simulator's memory.
#[inline(always)]
pub fn scheme(sim: &HtmSim) -> ClockScheme {
    sim.mem().clock().scheme()
}

/// Whether hardware fast-path transactions must advance the clock
/// speculatively as part of their commit (only under
/// [`ClockScheme::Incrementing`]; every GV scheme keeps the clock read-only
/// inside hardware transactions).
#[inline(always)]
pub fn htm_advances(sim: &HtmSim) -> bool {
    scheme(sim).advances_in_htm()
}

/// The version a committing *software* writer should install, applying the
/// configured scheme's commit-time clock discipline with conflict-visible
/// operations (so any in-flight hardware transaction that speculatively
/// read the clock aborts when the clock is actually written).
///
/// `salt` is any cheap per-thread value that varies between commits (a
/// commit counter); it drives GV6's sampling decision and is ignored by the
/// other schemes.
///
/// Callers must invoke this only after their write-set stripes are locked
/// (speculatively or via CAS) — see the ordering argument in
/// [`rhtm_mem::clock`].
#[inline]
pub fn next_commit(sim: &HtmSim, salt: u64) -> u64 {
    let clock_addr = sim.mem().clock().addr();
    match scheme(sim) {
        ClockScheme::Incrementing | ClockScheme::GvStrict => sim.nt_fetch_add(clock_addr, 1) + 1,
        ClockScheme::Gv4 => cas_advance(sim),
        ClockScheme::Gv5 => sim.nt_load(clock_addr) + 1,
        ClockScheme::Gv6 => {
            if salt.is_multiple_of(GV6_SAMPLE_PERIOD) {
                cas_advance(sim)
            } else {
                sim.nt_load(clock_addr) + 1
            }
        }
    }
}

/// GV4's relaxed advance: one conflict-visible CAS attempt, failure
/// tolerated (a failure means another committer advanced the clock, which
/// is just as good).
#[inline]
fn cas_advance(sim: &HtmSim) -> u64 {
    let clock_addr = sim.mem().clock().addr();
    let v = sim.nt_load(clock_addr);
    let _ = sim.nt_cas(clock_addr, v, v + 1);
    v + 1
}

/// Advances the clock to at least `observed` on a software-transaction
/// abort (the GV schemes advance only here and at sampled/CAS commits).
/// Conflict-visible: any fast-path hardware transaction that speculatively
/// read the clock aborts.
#[inline]
pub fn on_abort(sim: &HtmSim, observed: u64) {
    if scheme(sim).advances_on_abort() {
        sim.nt_fetch_max(sim.mem().clock().addr(), observed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HtmConfig;
    use rhtm_mem::{MemConfig, TmMemory};
    use std::sync::Arc;

    fn sim(scheme: ClockScheme) -> Arc<HtmSim> {
        let mem_cfg = MemConfig {
            clock_scheme: scheme,
            ..MemConfig::with_data_words(256)
        };
        HtmSim::new(Arc::new(TmMemory::new(mem_cfg)), HtmConfig::default())
    }

    #[test]
    fn strict_commit_advances_visibly() {
        let s = sim(ClockScheme::GvStrict);
        let seq_before = s.write_seq();
        assert_eq!(next_commit(&s, 0), 1);
        assert_eq!(next_commit(&s, 1), 2);
        assert_eq!(read(&s), 2);
        assert!(s.write_seq() > seq_before);
    }

    #[test]
    fn gv4_commit_advances_via_cas() {
        let s = sim(ClockScheme::Gv4);
        assert_eq!(next_commit(&s, 0), 1);
        assert_eq!(read(&s), 1);
    }

    #[test]
    fn gv5_commit_skips_the_clock_write() {
        let s = sim(ClockScheme::Gv5);
        let seq_before = s.write_seq();
        assert_eq!(next_commit(&s, 0), 1);
        assert_eq!(next_commit(&s, 1), 1);
        assert_eq!(read(&s), 0);
        assert_eq!(
            s.write_seq(),
            seq_before,
            "GV5 must not touch the clock line"
        );
    }

    #[test]
    fn gv6_commit_samples_the_advance() {
        let s = sim(ClockScheme::Gv6);
        assert_eq!(next_commit(&s, 1), 1, "unsampled commit skips the write");
        assert_eq!(read(&s), 0);
        assert_eq!(next_commit(&s, 0), 1, "sampled commit advances");
        assert_eq!(read(&s), 1);
    }

    #[test]
    fn abort_advances_clock_visibly_for_gv_schemes() {
        let s = sim(ClockScheme::GvStrict);
        let seq_before = s.write_seq();
        on_abort(&s, 7);
        assert_eq!(read(&s), 7);
        assert!(
            s.write_seq() > seq_before,
            "clock bump must be conflict-visible"
        );
        on_abort(&s, 3);
        assert_eq!(read(&s), 7);
    }

    #[test]
    fn incrementing_mode_is_advancing_and_ignores_aborts() {
        let s = sim(ClockScheme::Incrementing);
        assert!(htm_advances(&s));
        assert_eq!(next_commit(&s, 0), 1);
        assert_eq!(next_commit(&s, 1), 2);
        assert_eq!(read(&s), 2);
        on_abort(&s, 100);
        assert_eq!(read(&s), 2);
    }

    #[test]
    fn gv_schemes_keep_the_clock_readonly_in_htm() {
        for scheme in [
            ClockScheme::GvStrict,
            ClockScheme::Gv4,
            ClockScheme::Gv5,
            ClockScheme::Gv6,
        ] {
            let s = sim(scheme);
            assert!(!htm_advances(&s), "{scheme:?}");
        }
    }

    #[test]
    fn clock_bump_aborts_speculative_clock_readers() {
        use crate::txn::HtmThread;
        let s = sim(ClockScheme::GvStrict);
        let data = s.mem().alloc(1);
        let mut t = HtmThread::new(Arc::clone(&s), 0);
        t.begin();
        // Fast-path style: read the clock speculatively, then write data.
        let clock_addr = s.mem().layout().clock_addr();
        t.read(clock_addr).unwrap();
        t.write(data, 1).unwrap();
        // A concurrent software abort bumps the clock ...
        on_abort(&s, 5);
        // ... which must doom the writing hardware transaction, keeping the
        // clock stable across every *committed* fast-path transaction.
        assert!(t.commit().is_err());
        assert_eq!(s.nt_load(data), 0);
    }
}
