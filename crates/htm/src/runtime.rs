//! The pure-HTM runtime: uninstrumented hardware transactions, retried in
//! hardware forever.
//!
//! This is the "HTM" series of every figure in the paper: the best
//! performance hardware transactions can achieve, with no metadata accesses
//! at all.  It provides no software fallback, so it is only suitable for
//! workloads whose transactions fit the hardware capacity — exactly the
//! caveat the paper attaches to it.

use std::sync::Arc;

use rhtm_api::Backoff;

use rhtm_api::{
    retry, Abort, AbortCause, AttemptContext, PathClass, PathKind, RetryDecision,
    RetryPolicyHandle, RetryRng, Stopwatch, TmRuntime, TmThread, TxResult, TxStats, Txn,
};
use rhtm_mem::{Addr, ThreadRegistry, ThreadToken, TmMemory};

use crate::config::HtmConfig;
use crate::sim::HtmSim;
use crate::txn::HtmThread;

/// Policy of the pure-HTM *runtime* (as opposed to [`HtmConfig`], which
/// parameterises the simulated hardware itself).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HtmRuntimeConfig {
    /// The contention-management policy consulted after every abort.  The
    /// runtime has no software fallback, so demotion decisions are clamped
    /// to hardware retries; the policy still controls retry pacing (e.g.
    /// [`rhtm_api::retry::CappedExponential`] jittered backoff).
    pub retry_policy: RetryPolicyHandle,
}

impl HtmRuntimeConfig {
    /// Returns the configuration with a different retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicyHandle) -> Self {
        self.retry_policy = policy;
        self
    }
}

/// The pure hardware-TM runtime ("HTM" in the paper's figures).
pub struct HtmRuntime {
    sim: Arc<HtmSim>,
    registry: Arc<ThreadRegistry>,
    config: HtmRuntimeConfig,
}

impl HtmRuntime {
    /// Creates a pure-HTM runtime over its own fresh memory.
    pub fn new(mem_config: rhtm_mem::MemConfig, htm_config: HtmConfig) -> Self {
        Self::with_config(mem_config, htm_config, HtmRuntimeConfig::default())
    }

    /// Creates a pure-HTM runtime over its own fresh memory with an
    /// explicit runtime configuration.
    pub fn with_config(
        mem_config: rhtm_mem::MemConfig,
        htm_config: HtmConfig,
        config: HtmRuntimeConfig,
    ) -> Self {
        let max_threads = mem_config.max_threads;
        let mem = Arc::new(TmMemory::new(mem_config));
        let sim = HtmSim::new(mem, htm_config);
        HtmRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// Creates a pure-HTM runtime over an existing simulator (sharing memory
    /// with other runtimes, e.g. in tests).
    pub fn with_sim(sim: Arc<HtmSim>) -> Self {
        Self::with_sim_config(sim, HtmRuntimeConfig::default())
    }

    /// [`HtmRuntime::with_sim`] with an explicit runtime configuration.
    pub fn with_sim_config(sim: Arc<HtmSim>, config: HtmRuntimeConfig) -> Self {
        let max_threads = sim.mem().layout().config().max_threads;
        HtmRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The runtime configuration.
    pub fn config(&self) -> &HtmRuntimeConfig {
        &self.config
    }
}

impl TmRuntime for HtmRuntime {
    type Thread = HtmRuntimeThread;

    fn name(&self) -> &'static str {
        "HTM"
    }

    fn mem(&self) -> &Arc<TmMemory> {
        self.sim.mem()
    }

    fn register_thread(&self) -> HtmRuntimeThread {
        let token = self.registry.register();
        let htm = HtmThread::new(Arc::clone(&self.sim), token.id() as u64);
        let rng = RetryRng::new(0x4854_4d52 ^ (token.id() as u64 + 1) << 21);
        let policy_wants_commit = self.config.retry_policy.wants_commit_hook();
        HtmRuntimeThread {
            htm,
            token,
            policy: self.config.retry_policy.clone(),
            policy_wants_commit,
            stats: TxStats::new(false),
            in_txn: false,
            rng,
        }
    }
}

/// Per-thread handle of the pure-HTM runtime.
pub struct HtmRuntimeThread {
    htm: HtmThread,
    token: ThreadToken,
    policy: RetryPolicyHandle,
    /// Cached [`rhtm_api::RetryPolicy::wants_commit_hook`] answer.
    policy_wants_commit: bool,
    stats: TxStats,
    in_txn: bool,
    /// Per-thread RNG feeding the retry policy (backoff jitter).
    rng: RetryRng,
}

impl HtmRuntimeThread {
    /// Read access to the underlying hardware transaction unit (used by
    /// tests and the capacity ablation benchmark).
    pub fn htm(&self) -> &HtmThread {
        &self.htm
    }
}

impl Txn for HtmRuntimeThread {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = self.htm.read(addr);
        self.stats.record_read(sw.stop());
        result
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = self.htm.write(addr, value);
        self.stats.record_write(sw.stop());
        result
    }

    fn protected_instruction(&mut self) -> TxResult<()> {
        self.htm.protected_instruction()
    }
}

impl TmThread for HtmRuntimeThread {
    fn execute<R, F>(&mut self, mut body: F) -> R
    where
        F: FnMut(&mut Self) -> TxResult<R>,
    {
        assert!(!self.in_txn, "nested execute is not supported");
        self.in_txn = true;
        let backoff = Backoff::new();
        let mut failures = 0u32;
        let result = loop {
            self.htm.begin();
            let outcome: TxResult<R> = body(self).and_then(|r| {
                let sw = Stopwatch::start(self.stats.timing);
                let committed = self.commit_open_txn();
                self.stats.record_commit_time(sw.stop());
                committed.map(|()| r)
            });
            match outcome {
                Ok(r) => {
                    self.stats.htm_commits += 1;
                    self.stats.record_commit(PathKind::HardwareFast);
                    if self.policy_wants_commit {
                        self.policy.on_commit(true, &mut self.stats.retry);
                    }
                    break r;
                }
                Err(abort) => {
                    failures += 1;
                    self.handle_abort(abort);
                    let ctx = AttemptContext {
                        attempt: failures,
                        path: PathClass::Hardware,
                        cause: abort.cause,
                        // No software fallback exists: the clamp keeps any
                        // Demote decision retrying in hardware.
                        can_demote: false,
                        retry_budget: u32::MAX,
                        mix_percent: 0,
                        fallback_rh2: 0,
                        fallback_all_software: 0,
                    };
                    match self.policy.decide_clamped_observed(
                        &ctx,
                        &mut self.rng,
                        &mut self.stats.retry,
                    ) {
                        RetryDecision::BackoffThen(spins) => retry::spin(spins),
                        _ => backoff.snooze(),
                    }
                }
            }
        };
        self.in_txn = false;
        result
    }

    fn thread_id(&self) -> usize {
        self.token.id()
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut TxStats {
        &mut self.stats
    }
}

impl HtmRuntimeThread {
    fn commit_open_txn(&mut self) -> TxResult<()> {
        // The body may have aborted the hardware transaction explicitly (in
        // which case it already returned Err and we never get here), so the
        // transaction is necessarily still open.
        self.htm.commit()
    }

    fn handle_abort(&mut self, abort: Abort) {
        self.stats.htm_aborts += 1;
        self.stats.record_abort(abort.cause);
        if abort.cause == AbortCause::Unsupported {
            panic!(
                "the pure HTM runtime cannot execute protected instructions; \
                 use a hybrid runtime (RH1/RH2/Standard HyTM) that provides a software path"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_mem::MemConfig;

    fn runtime() -> HtmRuntime {
        HtmRuntime::new(MemConfig::with_data_words(4096), HtmConfig::default())
    }

    #[test]
    fn single_thread_counter() {
        let rt = runtime();
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        for _ in 0..100 {
            th.execute(|tx| {
                let v = tx.read(addr)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(rt.sim().nt_load(addr), 100);
        assert_eq!(th.stats().commits(), 100);
        assert_eq!(th.stats().commits_on(PathKind::HardwareFast), 100);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let rt = Arc::new(runtime());
        let addr = rt.mem().alloc(1);
        let threads = 8;
        let per = 5_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for _ in 0..per {
                        th.execute(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)?;
                            Ok(())
                        });
                    }
                    th.stats().clone()
                })
            })
            .collect();
        let mut total = TxStats::new(false);
        for h in handles {
            total.merge(&h.join().unwrap());
        }
        assert_eq!(rt.sim().nt_load(addr), (threads * per) as u64);
        assert_eq!(total.commits(), (threads * per) as u64);
    }

    #[test]
    fn bank_transfer_preserves_total_balance() {
        let rt = Arc::new(runtime());
        let accounts: Vec<Addr> = (0..16).map(|_| rt.mem().alloc(1)).collect();
        for &a in &accounts {
            rt.sim().nt_store(a, 1_000);
        }
        let accounts = Arc::new(accounts);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let rt = Arc::clone(&rt);
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for k in 0..10_000usize {
                        let from = accounts[(k * 7 + i) % accounts.len()];
                        let to = accounts[(k * 13 + i * 3 + 1) % accounts.len()];
                        if from == to {
                            continue;
                        }
                        th.execute(|tx| {
                            let f = tx.read(from)?;
                            if f == 0 {
                                return Ok(());
                            }
                            let t = tx.read(to)?;
                            tx.write(from, f - 1)?;
                            tx.write(to, t + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = accounts.iter().map(|&a| rt.sim().nt_load(a)).sum();
        assert_eq!(total, 16 * 1_000);
    }

    #[test]
    #[should_panic(expected = "protected instructions")]
    fn protected_instruction_panics_in_pure_htm() {
        let rt = runtime();
        let mut th = rt.register_thread();
        th.execute(|tx| {
            tx.protected_instruction()?;
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_execute_panics() {
        let rt = runtime();
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        th.execute(|tx| {
            let _ = tx.read(addr)?;
            let inner: u64 = tx.execute(|_| Ok(1u64));
            Ok(inner)
        });
    }

    #[test]
    fn runtime_name_and_memory_accessors() {
        let rt = runtime();
        assert_eq!(rt.name(), "HTM");
        assert!(rt.mem().layout().data_words() >= 4096);
        let th = rt.register_thread();
        assert!(th.htm().commit_count() == 0);
    }
}
