//! `TmSpec`: one declarative specification of a full runtime point.
//!
//! The paper's evaluation is a cross-product sweep — algorithm × threads ×
//! workload — and every PR since added another orthogonal runtime axis:
//! the global-clock scheme (PR 1), the retry policy (PR 2), the scenario
//! shape (PR 3).  Each axis used to come with its own entry point and its
//! own `with_*` threading through four divergent per-runtime config
//! structs (the `run_on_algo_with_*` shims, removed in PR 9).
//! [`TmSpec`] collapses all of that into one builder that owns the whole
//! configuration cross-product:
//!
//! ```
//! use rhtm_api::RetryPolicyHandle;
//! use rhtm_mem::ClockScheme;
//! use rhtm_workloads::{AlgoKind, TmSpec};
//!
//! let spec = TmSpec::new(AlgoKind::Rh2)
//!     .clock(ClockScheme::Gv6)
//!     .retry(RetryPolicyHandle::adaptive());
//! assert_eq!(spec.label(), "rh2+gv6+adaptive");
//! assert_eq!(TmSpec::parse("rh2+gv6+adaptive").unwrap().label(), spec.label());
//! ```
//!
//! The spec resolves itself into the correct per-runtime config structs
//! internally ([`RhConfig`], [`Tl2Config`], [`StdHytmConfig`],
//! [`HtmRuntimeConfig`]) — no caller assembles them by hand any more — and
//! exposes **three consumption paths**:
//!
//! 1. **Monomorphised**: [`TmSpec::visit`] hands the concrete runtime to
//!    an [`AlgoVisitor`], keeping the per-access hot path free of virtual
//!    dispatch (this is what the benchmark driver uses).
//! 2. **Erased**: [`TmSpec::instantiate_dyn`] returns the runtime as a
//!    `Box<dyn DynRuntime>` value for tests, examples and setup code.
//! 3. **Driven**: [`TmSpec::bench`] builds the shared memory, lets a
//!    workload builder populate it, and runs the multi-threaded benchmark
//!    driver — recording the spec's label in the
//!    [`BenchResult::spec`](crate::BenchResult::spec) field of the JSON
//!    report.
//!
//! # The label grammar
//!
//! Every spec round-trips through a stable label accepted by every
//! benchmark binary's `spec=` CLI axis:
//!
//! ```text
//! spec  := algo [ "+" axis ]*        (axes in any order, each at most once)
//! axis  := clock | policy
//! algo  := "htm" | "standard-hytm" | "tl2" | "rh1-fast" | "rh1-mixed-N"
//!        | "rh1-slow" | "rh2" | "global-lock"          (N = 0..=100)
//! clock := "gv-strict" | "gv4" | "gv5" | "gv6" | "incrementing"
//! policy:= "paper-default" | "capped-exp" | "aggressive" | "adaptive"
//!        | "full-jitter" | "fib" | "cb" | "budgeted"   (Retry 2.0, PR 8)
//! ```
//!
//! [`TmSpec::label`] always renders the full three-part form
//! (`tl2+gv-strict+paper-default`); [`TmSpec::parse`] accepts partial
//! labels (`tl2`, `tl2+gv5`) and fills the unnamed axes with their
//! defaults, so `format → parse → format` is bit-identical for every spec
//! built from the grammar above.  Near-miss labels (`rh1-mixed-101`,
//! `tl2+gv7`, duplicated axes) are rejected, never silently defaulted.
//!
//! Memory and HTM shape ([`TmSpec::mem`] / [`TmSpec::htm`]) are part of
//! the spec but not of the label: they size the experiment rather than
//! name the algorithm point, and the benchmark harness picks them per
//! workload.

use std::sync::Arc;

use rhtm_api::{DynRuntime, DynScopeExt, DynThread, RetryPolicyHandle, TmRuntime, WorkerSession};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmRuntime, HtmRuntimeConfig, HtmSim};
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::{ClockScheme, MemConfig, TmMemory};
use rhtm_stm::{MutexRuntime, Tl2Config, Tl2Runtime};

use crate::algos::{AlgoKind, AlgoVisitor};
use crate::driver::{run_benchmark, DriverOpts};
use crate::report::BenchResult;
use crate::workload::Workload;

/// A declarative specification of one runtime point in the configuration
/// cross-product: algorithm × clock scheme × retry policy × memory shape ×
/// HTM shape.
///
/// See the [module documentation](self) for the consumption paths and the
/// label grammar.
#[derive(Clone, Debug, PartialEq)]
pub struct TmSpec {
    algo: AlgoKind,
    /// `None` defers to `mem.clock_scheme` (strict by default).
    clock: Option<ClockScheme>,
    /// `None` defers to each runtime's default (`paper-default`).
    retry: Option<RetryPolicyHandle>,
    mem: MemConfig,
    htm: HtmConfig,
}

impl TmSpec {
    /// A spec for `algo` with every other axis at its default: strict
    /// clock, paper-default retry policy, default memory and HTM shapes.
    pub fn new(algo: AlgoKind) -> Self {
        TmSpec {
            algo,
            clock: None,
            retry: None,
            mem: MemConfig::default(),
            htm: HtmConfig::default(),
        }
    }

    /// Sets the global-clock advancement scheme (overrides the scheme in
    /// the [`MemConfig`], which otherwise decides).
    pub fn clock(mut self, scheme: ClockScheme) -> Self {
        self.clock = Some(scheme);
        self
    }

    /// Sets the contention-management policy for every retry decision site
    /// of the runtime (the global-lock oracle never retries, so the axis
    /// is moot there).
    pub fn retry(mut self, policy: RetryPolicyHandle) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Sets the shared-memory shape (sizing, striping, thread capacity).
    pub fn mem(mut self, config: MemConfig) -> Self {
        self.mem = config;
        self
    }

    /// Sets the simulated-HTM shape (capacities, spurious-abort rates).
    pub fn htm(mut self, config: HtmConfig) -> Self {
        self.htm = config;
        self
    }

    /// The algorithm this spec names.
    pub fn algo(&self) -> AlgoKind {
        self.algo
    }

    /// The resolved clock scheme: the explicit [`TmSpec::clock`] axis if
    /// set, otherwise the [`MemConfig`]'s.
    pub fn clock_scheme(&self) -> ClockScheme {
        self.clock.unwrap_or(self.mem.clock_scheme)
    }

    /// The explicit retry-policy override, if any (`None` means every
    /// runtime falls back to its `paper-default`).
    pub fn retry_policy(&self) -> Option<&RetryPolicyHandle> {
        self.retry.as_ref()
    }

    /// The resolved retry-policy label (`paper-default` when no override
    /// is set, matching the runtimes' defaults).
    pub fn retry_label(&self) -> &'static str {
        self.retry
            .as_ref()
            .map(|p| p.label())
            .unwrap_or_else(|| RetryPolicyHandle::default().label())
    }

    /// The configured memory shape.
    pub fn mem_config(&self) -> &MemConfig {
        &self.mem
    }

    /// The configured HTM shape.
    pub fn htm_config(&self) -> &HtmConfig {
        &self.htm
    }

    /// The spec's stable label, always in the full
    /// `algo+clock+policy` form (see the grammar in the
    /// [module documentation](self)).
    pub fn label(&self) -> String {
        format!(
            "{}+{}+{}",
            self.algo.slug(),
            self.clock_scheme().label(),
            self.retry_label()
        )
    }

    /// Parses a spec label.  Partial labels (`tl2`, `rh2+gv6`) fill the
    /// unnamed axes with defaults; anything unrecognised — including
    /// duplicated axes and near-miss algorithm names — returns `None`.
    pub fn parse(label: &str) -> Option<TmSpec> {
        let mut parts = label.trim().split('+');
        let algo = AlgoKind::parse(parts.next()?)?;
        let mut spec = TmSpec::new(algo);
        for part in parts {
            if let Some(scheme) = ClockScheme::parse(part) {
                if spec.clock.is_some() {
                    return None;
                }
                spec.clock = Some(scheme);
            } else if let Some(policy) = RetryPolicyHandle::parse(part) {
                if spec.retry.is_some() {
                    return None;
                }
                spec.retry = Some(policy);
            } else {
                return None;
            }
        }
        Some(spec)
    }

    /// Parses a comma-separated list of spec labels (the benchmark
    /// binaries' `spec=` axis); `None` if the list is empty or any
    /// element is malformed.
    pub fn parse_list(list: &str) -> Option<Vec<TmSpec>> {
        let specs: Option<Vec<_>> = list.split(',').map(TmSpec::parse).collect();
        specs.filter(|s| !s.is_empty())
    }

    /// Builds a fresh shared memory + simulated HTM per this spec (the
    /// clock axis resolved into the [`MemConfig`]).
    pub fn build_sim(&self) -> Arc<HtmSim> {
        let mem_config = MemConfig {
            clock_scheme: self.clock_scheme(),
            ..self.mem.clone()
        };
        HtmSim::new(Arc::new(TmMemory::new(mem_config)), self.htm.clone())
    }

    /// **Consumption path 1 (monomorphised)**: builds a fresh simulator
    /// and hands the concrete runtime to `visitor`
    /// (see [`AlgoVisitor`] for why this is continuation-passing).
    pub fn visit<V: AlgoVisitor>(&self, visitor: V) -> V::Out {
        self.visit_on(self.build_sim(), visitor)
    }

    /// [`TmSpec::visit`] over an existing simulator, so a structure built
    /// over `sim` is visible to the runtime.  This is the single place in
    /// the workspace where the per-runtime config structs are assembled:
    /// the spec's retry axis is threaded into each runtime's config here.
    ///
    /// The clock is a property of the shared heap, so when a simulator is
    /// passed in, *its* memory's scheme wins over the spec's clock axis
    /// (fresh-sim paths resolve the axis in [`TmSpec::build_sim`]).
    pub fn visit_on<V: AlgoVisitor>(&self, sim: Arc<HtmSim>, visitor: V) -> V::Out {
        let retry = &self.retry;
        let rh = |config: RhConfig| match retry {
            Some(p) => config.with_retry_policy(p.clone()),
            None => config,
        };
        match self.algo {
            AlgoKind::Htm => {
                let config = match retry {
                    Some(p) => HtmRuntimeConfig::default().with_retry_policy(p.clone()),
                    None => HtmRuntimeConfig::default(),
                };
                visitor.visit(HtmRuntime::with_sim_config(sim, config))
            }
            AlgoKind::StdHytm => {
                let config = match retry {
                    Some(p) => StdHytmConfig::hardware_only().with_retry_policy(p.clone()),
                    None => StdHytmConfig::hardware_only(),
                };
                visitor.visit(StdHytmRuntime::with_sim(sim, config))
            }
            AlgoKind::Tl2 => {
                let config = match retry {
                    Some(p) => Tl2Config::default().with_retry_policy(p.clone()),
                    None => Tl2Config::default(),
                };
                visitor.visit(Tl2Runtime::with_sim_config(sim, config))
            }
            AlgoKind::Rh1Fast => visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh1_fast()))),
            AlgoKind::Rh1Mixed(p) => {
                visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh1_mixed(p))))
            }
            AlgoKind::Rh1Slow => visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh1_slow()))),
            AlgoKind::Rh2 => visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh2()))),
            AlgoKind::GlobalLock => visitor.visit(MutexRuntime::with_sim(sim)),
        }
    }

    /// **Consumption path 2 (erased)**: the runtime as a value over a
    /// fresh simulator.  See [`AlgoKind::instantiate_dyn`] for when the
    /// erased handles are the right tool.
    pub fn instantiate_dyn(&self) -> Box<dyn DynRuntime> {
        self.instantiate_dyn_on(self.build_sim())
    }

    /// [`TmSpec::instantiate_dyn`] over an existing simulator.
    pub fn instantiate_dyn_on(&self, sim: Arc<HtmSim>) -> Box<dyn DynRuntime> {
        struct BoxVisitor;
        impl AlgoVisitor for BoxVisitor {
            type Out = Box<dyn DynRuntime>;

            fn visit<R: TmRuntime>(self, runtime: R) -> Box<dyn DynRuntime> {
                Box::new(runtime)
            }
        }
        self.visit_on(sim, BoxVisitor)
    }

    /// **Consumption path 3 (driven)**: builds a fresh simulator,
    /// constructs the workload over it with `build` (which runs before any
    /// worker thread exists), and runs the multi-threaded benchmark
    /// driver.  The returned row carries this spec's label in
    /// [`BenchResult::spec`](crate::BenchResult::spec).
    pub fn bench<W, B>(&self, build: B, opts: &DriverOpts) -> BenchResult
    where
        W: Workload,
        B: FnOnce(&Arc<HtmSim>) -> W,
    {
        let sim = self.build_sim();
        let workload = build(&sim);
        let mut result = self.visit_on(
            sim,
            BenchVisitor {
                workload: &workload,
                opts,
            },
        );
        result.spec = self.label();
        result
    }

    /// Builds the spec into a live [`TmInstance`]: a fresh simulator plus
    /// the erased runtime over it, ready for scoped worker sessions
    /// ([`TmInstance::scope`]).
    pub fn build(&self) -> TmInstance {
        let sim = self.build_sim();
        let runtime = self.instantiate_dyn_on(Arc::clone(&sim));
        TmInstance {
            label: self.label(),
            sim,
            runtime,
        }
    }
}

struct BenchVisitor<'a, W: Workload> {
    workload: &'a W,
    opts: &'a DriverOpts,
}

impl<W: Workload> AlgoVisitor for BenchVisitor<'_, W> {
    type Out = BenchResult;

    fn visit<R: TmRuntime>(self, runtime: R) -> BenchResult {
        run_benchmark(&runtime, self.workload, self.opts)
    }
}

/// A built [`TmSpec`]: the shared simulator plus the (dyn-erased) runtime
/// over it.
///
/// This is the value-shaped face of the spec for application-style code —
/// allocate through [`TmInstance::sim`]/[`TmInstance::mem`], then either
/// register the calling thread ([`TmInstance::register`]) or fan out
/// scoped workers ([`TmInstance::scope`]) without ever naming a concrete
/// runtime type, spawning a thread or building a barrier.
///
/// ```
/// use rhtm_api::DynThreadExt;
/// use rhtm_workloads::{AlgoKind, TmSpec};
///
/// let instance = TmSpec::parse("rh1-mixed-100+gv6").unwrap().build();
/// let cell = instance.mem().alloc(1);
/// let totals = instance.scope(4, |session| {
///     for _ in 0..50 {
///         session.run(|tx| {
///             let v = tx.read(cell)?;
///             tx.write(cell, v + 1)
///         });
///     }
///     session.stats().commits()
/// });
/// assert_eq!(totals.iter().sum::<u64>(), 200);
/// assert_eq!(instance.sim().nt_load(cell), 200);
/// ```
pub struct TmInstance {
    label: String,
    sim: Arc<HtmSim>,
    runtime: Box<dyn DynRuntime>,
}

impl TmInstance {
    /// The label of the spec this instance was built from.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The shared simulated HTM (non-transactional access for setup and
    /// verification: `nt_load` / `nt_store`).
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The shared transactional memory (allocation).
    pub fn mem(&self) -> &Arc<TmMemory> {
        self.runtime.mem()
    }

    /// The erased runtime.
    pub fn runtime(&self) -> &dyn DynRuntime {
        &*self.runtime
    }

    /// Registers the calling thread and returns its erased handle.
    pub fn register(&self) -> Box<dyn DynThread> {
        self.runtime.register_dyn()
    }

    /// Runs `f` on `workers` scoped worker sessions, each handed its own
    /// registered [`DynThread`] — see
    /// [`rhtm_api::session`] for the session semantics (synchronised
    /// start, results in worker order, joins handled internally).
    pub fn scope<T, F>(&self, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut WorkerSession<'_, Box<dyn DynThread>>) -> T + Sync,
    {
        self.runtime.scope_dyn(workers, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::DynThreadExt;

    const EVERY_ALGO: [AlgoKind; 9] = [
        AlgoKind::Htm,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Fast,
        AlgoKind::Rh1Mixed(10),
        AlgoKind::Rh1Mixed(100),
        AlgoKind::Rh1Slow,
        AlgoKind::Rh2,
        AlgoKind::GlobalLock,
    ];

    #[test]
    fn labels_render_the_full_three_part_form() {
        assert_eq!(
            TmSpec::new(AlgoKind::Tl2).label(),
            "tl2+gv-strict+paper-default"
        );
        assert_eq!(
            TmSpec::new(AlgoKind::Rh2)
                .clock(ClockScheme::Gv6)
                .retry(RetryPolicyHandle::adaptive())
                .label(),
            "rh2+gv6+adaptive"
        );
        assert_eq!(
            TmSpec::new(AlgoKind::Rh1Mixed(10))
                .clock(ClockScheme::Gv4)
                .label(),
            "rh1-mixed-10+gv4+paper-default"
        );
    }

    #[test]
    fn parse_accepts_partial_labels_and_any_axis_order() {
        let spec = TmSpec::parse("tl2").unwrap();
        assert_eq!(spec.algo(), AlgoKind::Tl2);
        assert_eq!(spec.clock_scheme(), ClockScheme::GvStrict);
        assert_eq!(spec.retry_label(), "paper-default");

        let a = TmSpec::parse("rh2+gv6+adaptive").unwrap();
        let b = TmSpec::parse("rh2+adaptive+gv6").unwrap();
        assert_eq!(a.label(), b.label());
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_near_miss_labels() {
        for bad in [
            "",
            "rh3",
            "tl2+gv7",
            "tl2+gv5+gv6",                // duplicated clock axis
            "rh2+adaptive+paper-default", // duplicated policy axis
            "rh1-mixed-101",              // out-of-range percentage
            "rh2+",                       // trailing separator
            "+gv5",                       // missing algorithm
            "rh2+nonsense",
        ] {
            assert!(TmSpec::parse(bad).is_none(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parse_list_splits_and_rejects() {
        let specs = TmSpec::parse_list("rh2+gv6+adaptive,tl2").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label(), "rh2+gv6+adaptive");
        assert!(TmSpec::parse_list("rh2,,tl2").is_none());
        assert!(TmSpec::parse_list("").is_none());
    }

    #[test]
    fn clock_axis_overrides_the_mem_configs_scheme() {
        let mem = MemConfig {
            clock_scheme: ClockScheme::Gv5,
            ..MemConfig::with_data_words(256)
        };
        // Without an explicit axis the MemConfig decides...
        let spec = TmSpec::new(AlgoKind::Tl2).mem(mem.clone());
        assert_eq!(spec.clock_scheme(), ClockScheme::Gv5);
        assert_eq!(spec.build_sim().mem().clock().scheme(), ClockScheme::Gv5);
        // ...and the explicit axis wins regardless of builder order.
        let spec = TmSpec::new(AlgoKind::Tl2).clock(ClockScheme::Gv4).mem(mem);
        assert_eq!(spec.clock_scheme(), ClockScheme::Gv4);
        assert_eq!(spec.build_sim().mem().clock().scheme(), ClockScheme::Gv4);
    }

    #[test]
    fn every_algorithm_instantiates_and_commits_through_the_spec() {
        for kind in EVERY_ALGO {
            let spec = TmSpec::new(kind).mem(MemConfig::with_data_words(64));
            let rt = spec.instantiate_dyn();
            assert_eq!(rt.name(), kind.label().as_str(), "{kind:?}");
            let cell = rt.mem().alloc(1);
            let mut th = rt.register_dyn();
            for _ in 0..10 {
                th.run(|tx| {
                    let v = tx.read(cell)?;
                    tx.write(cell, v + 1)
                });
            }
            assert_eq!(rt.mem().heap().load(cell), 10, "{kind:?}");
        }
    }

    #[test]
    fn built_instances_scope_workers_and_conserve_invariants() {
        let instance = TmSpec::new(AlgoKind::Rh1Mixed(100))
            .mem(MemConfig::with_data_words(256))
            .build();
        assert_eq!(instance.label(), "rh1-mixed-100+gv-strict+paper-default");
        let a = instance.mem().alloc(1);
        let b = instance.mem().alloc(1);
        instance.sim().nt_store(a, 500);
        instance.sim().nt_store(b, 500);
        instance.scope(4, |session| {
            for i in 0..100u64 {
                let amount = i % 5;
                session.run(|tx| {
                    let va = tx.read(a)?;
                    if va < amount {
                        return Ok(());
                    }
                    let vb = tx.read(b)?;
                    tx.write(a, va - amount)?;
                    tx.write(b, vb + amount)
                });
            }
        });
        assert_eq!(instance.sim().nt_load(a) + instance.sim().nt_load(b), 1_000);
    }
}
