//! The scenario registry: named `structure × size × mix × distribution`
//! combinations, runnable on any [`AlgoKind`].
//!
//! A [`Scenario`] is one point in the workload-shape space the engine can
//! sweep; the registry ([`Scenario::all`]) names the interesting ones so a
//! whole benchmark campaign is a loop over
//! `(Scenario, AlgoKind, threads)` — exactly as PR 1 made the global clock
//! and PR 2 the retry policy sweepable by name.  The `bench_suite` binary
//! in `rhtm-bench` drives this registry and emits one machine-readable
//! JSON document (see [`suite_to_json`]).
//!
//! Registered sizes are the paper-like scale; [`Scenario::sized`] scales
//! them down for quick/smoke runs while keeping every structure above its
//! interesting minimum.

use std::sync::Arc;

use rhtm_htm::HtmSim;
use rhtm_mem::MemConfig;

use crate::algos::AlgoKind;
use crate::driver::DriverOpts;
use crate::mix::OpMix;
use crate::phase::PhasePlan;
use crate::report::{json_str, result_json, BenchResult};
use crate::rng::KeyDist;
use crate::spec::TmSpec;
use crate::structures::bank::TxBank;
use crate::structures::hashtable::ConstantHashTable;
use crate::structures::queue::TxQueue;
use crate::structures::random_array::RandomArray;
use crate::structures::rbtree::ConstantRbTree;
use crate::structures::skiplist::TxSkipList;
use crate::structures::sortedlist::ConstantSortedList;

/// Accesses per transaction for the random-array scenarios (the paper's
/// mid-length configuration).
const RANDOM_ARRAY_TXN_LEN: usize = 100;

/// The structures a scenario can run over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// Constant-shape red-black tree (paper §3.2).
    RbTree,
    /// Constant-shape chained hash table (paper §3.3).
    HashTable,
    /// Constant-shape sorted linked list (paper §3.4).
    SortedList,
    /// Random-access array with configurable transaction length (§3.5).
    RandomArray,
    /// Mutable transactional skiplist (shape-changing inserts/removals).
    SkipList,
    /// Mutable transactional bounded FIFO queue (producer/consumer).
    Queue,
    /// Composed bank: hash-table accounts + skiplist audit ring in one
    /// transaction (see [`crate::structures::bank`]).
    Bank,
}

impl StructureKind {
    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            StructureKind::RbTree => "rbtree",
            StructureKind::HashTable => "hashtable",
            StructureKind::SortedList => "sortedlist",
            StructureKind::RandomArray => "random-array",
            StructureKind::SkipList => "skiplist",
            StructureKind::Queue => "queue",
            StructureKind::Bank => "bank",
        }
    }

    /// Whether transactions change the structure's shape (see
    /// `structures::mod` for the constant/mutable split; the composed
    /// bank counts as mutable through its audit ring).
    pub fn is_mutable(&self) -> bool {
        matches!(
            self,
            StructureKind::SkipList | StructureKind::Queue | StructureKind::Bank
        )
    }

    /// The smallest size at which the structure's workload stays
    /// meaningful (floor applied by [`Scenario::sized`]).
    fn min_size(&self) -> u64 {
        match self {
            StructureKind::RbTree => 512,
            StructureKind::HashTable => 256,
            StructureKind::SortedList => 64,
            StructureKind::RandomArray => 1_024,
            StructureKind::SkipList => 256,
            StructureKind::Queue => 64,
            StructureKind::Bank => 32,
        }
    }
}

/// Audit-ring capacity for the bank scenarios: large enough that smoke
/// runs never cycle it, small enough that sustained runs exercise the
/// insert-and-evict recycling path.
const BANK_AUDIT_CAP: u64 = 128;

/// Every bank account starts with this balance (the conserved quantity
/// is `size × BANK_INITIAL_BALANCE`).
const BANK_INITIAL_BALANCE: u64 = 1_000;

/// One named point in the workload-shape space:
/// `structure × size × mix × distribution`.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Unique registry name (CLI handle and JSON `scenario` field).
    pub name: &'static str,
    /// The structure the operations run over.
    pub structure: StructureKind,
    /// Size at paper-like scale: elements for the search structures,
    /// entries for the array, capacity for the queue.
    pub base_size: u64,
    /// The weighted operation mix.
    pub mix: OpMix,
    /// The key-access distribution.
    pub dist: KeyDist,
    /// Optional time-varying load schedule layered over `dist` (the
    /// phase plan replaces `dist` as the sampler when set; see
    /// [`crate::phase`]).
    pub phases: Option<PhasePlan>,
    /// One-line description shown by `bench_suite --list`.
    pub about: &'static str,
}

/// The registry.  Order is display order; names must stay unique and
/// stable (they key the `BENCH_*.json` trajectory).
const REGISTRY: &[Scenario] = &[
    Scenario {
        name: "rbtree-uniform",
        structure: StructureKind::RbTree,
        base_size: 100_000,
        mix: OpMix::read_update(20),
        dist: KeyDist::Uniform,
        phases: None,
        about: "the paper's Figure 1/2 point: constant 100K-node tree, 20% dummy updates",
    },
    Scenario {
        name: "rbtree-zipf",
        structure: StructureKind::RbTree,
        base_size: 100_000,
        mix: OpMix::read_update(20),
        dist: KeyDist::ZIPF_DEFAULT,
        phases: None,
        about: "the Figure 1 tree under YCSB-style zipfian skew (hot subtree contention)",
    },
    Scenario {
        name: "rbtree-write-heavy-hotspot",
        structure: StructureKind::RbTree,
        base_size: 100_000,
        mix: OpMix::read_update(80),
        dist: KeyDist::HOTSPOT_DEFAULT,
        phases: None,
        about: "80% updates with 90% of operations on 10% of the keys: conflict saturation",
    },
    Scenario {
        name: "hashtable-uniform",
        structure: StructureKind::HashTable,
        base_size: 10_000,
        mix: OpMix::read_update(20),
        dist: KeyDist::Uniform,
        phases: None,
        about: "the paper's Figure 3 (left): short-transaction constant hash table",
    },
    Scenario {
        name: "hashtable-zipf",
        structure: StructureKind::HashTable,
        base_size: 10_000,
        mix: OpMix::read_update(20),
        dist: KeyDist::ZIPF_DEFAULT,
        phases: None,
        about: "short transactions with zipfian skew: conflicts without footprint",
    },
    Scenario {
        name: "hashtable-partitioned",
        structure: StructureKind::HashTable,
        base_size: 10_000,
        mix: OpMix::read_update(50),
        dist: KeyDist::Partitioned,
        phases: None,
        about: "thread-partitioned keys at 50% updates: the conflict-free upper bound",
    },
    Scenario {
        name: "sortedlist-uniform",
        structure: StructureKind::SortedList,
        base_size: 1_000,
        mix: OpMix::read_update(5),
        dist: KeyDist::Uniform,
        phases: None,
        about: "the paper's Figure 3 (middle): long shared-prefix transactions, 5% updates",
    },
    Scenario {
        name: "sortedlist-hotspot",
        structure: StructureKind::SortedList,
        base_size: 1_000,
        mix: OpMix::read_update(5),
        dist: KeyDist::HOTSPOT_DEFAULT,
        phases: None,
        about: "the long-transaction list with a 90/10 hotspot at the front",
    },
    Scenario {
        name: "random-array-uniform",
        structure: StructureKind::RandomArray,
        base_size: 128 * 1024,
        mix: OpMix::read_update(20),
        dist: KeyDist::Uniform,
        phases: None,
        about: "the paper's Figure 3 (right) shape: 100-access transactions, 20% writes",
    },
    Scenario {
        name: "skiplist-uniform",
        structure: StructureKind::SkipList,
        base_size: 16_384,
        mix: OpMix::lookup_insert_remove(70, 15, 15),
        dist: KeyDist::Uniform,
        phases: None,
        about: "mutable skiplist, shape-changing 70/15/15 lookup/insert/remove churn",
    },
    Scenario {
        name: "skiplist-zipf",
        structure: StructureKind::SkipList,
        base_size: 16_384,
        mix: OpMix::lookup_insert_remove(70, 15, 15),
        dist: KeyDist::ZIPF_DEFAULT,
        phases: None,
        about: "skiplist churn under zipfian skew: hot towers are rebuilt under contention",
    },
    Scenario {
        name: "skiplist-range-zipf",
        structure: StructureKind::SkipList,
        base_size: 16_384,
        mix: OpMix::new([30, 30, 10, 15, 15]),
        dist: KeyDist::ZIPF_DEFAULT,
        phases: None,
        about: "30% range sums over a churning skiplist: long reads racing shape changes",
    },
    Scenario {
        name: "queue-balanced",
        structure: StructureKind::Queue,
        base_size: 4_096,
        mix: OpMix::producer_consumer(50, 50),
        dist: KeyDist::Uniform,
        phases: None,
        about: "bounded FIFO, 50/50 enqueue/dequeue: every transaction fights over two words",
    },
    Scenario {
        name: "queue-producer-heavy",
        structure: StructureKind::Queue,
        base_size: 4_096,
        mix: OpMix::producer_consumer(60, 30),
        dist: KeyDist::Uniform,
        phases: None,
        about: "producer-heavy FIFO (60/30/10 enqueue/dequeue/peek) driving the queue full",
    },
    Scenario {
        name: "queue-consumer-heavy",
        structure: StructureKind::Queue,
        base_size: 4_096,
        mix: OpMix::producer_consumer(30, 60),
        dist: KeyDist::Uniform,
        phases: None,
        about: "consumer-heavy FIFO (30/60/10) draining to empty: read-only commit pressure",
    },
    Scenario {
        name: "bank-transfer-uniform",
        structure: StructureKind::Bank,
        base_size: 4_096,
        mix: OpMix::new([30, 0, 70, 0, 0]),
        dist: KeyDist::Uniform,
        phases: None,
        about: "composed transfers: hash-table debit + skiplist audit append in one txn",
    },
    Scenario {
        name: "bank-transfer-zipf",
        structure: StructureKind::Bank,
        base_size: 4_096,
        mix: OpMix::new([30, 0, 70, 0, 0]),
        dist: KeyDist::ZIPF_DEFAULT,
        phases: None,
        about:
            "composed transfers with zipfian account skew: hot accounts serialize both structures",
    },
    Scenario {
        name: "bank-analytics-scan",
        structure: StructureKind::Bank,
        base_size: 4_096,
        mix: OpMix::new([20, 10, 70, 0, 0]),
        dist: KeyDist::Uniform,
        phases: None,
        about: "10% full-table analytics scans racing OLTP transfers: the capacity-abort stress",
    },
    Scenario {
        name: "bank-diurnal",
        structure: StructureKind::Bank,
        base_size: 4_096,
        mix: OpMix::new([30, 0, 70, 0, 0]),
        dist: KeyDist::Uniform,
        phases: Some(PhasePlan::Diurnal),
        about: "composed transfers under a diurnal ramp: uniform -> 60/20 hotspot -> uniform",
    },
    Scenario {
        name: "skiplist-flash-crowd",
        structure: StructureKind::SkipList,
        base_size: 16_384,
        mix: OpMix::lookup_insert_remove(70, 15, 15),
        dist: KeyDist::Uniform,
        phases: Some(PhasePlan::FlashCrowd),
        about: "skiplist churn hit by a flash crowd: 95% of late traffic on 1% of the keys",
    },
    Scenario {
        name: "skiplist-hot-migration",
        structure: StructureKind::SkipList,
        base_size: 16_384,
        mix: OpMix::lookup_insert_remove(70, 15, 15),
        dist: KeyDist::Uniform,
        phases: Some(PhasePlan::HotMigration),
        about: "a 90/10 hotspot migrating across thirds of the key space as the run progresses",
    },
    Scenario {
        name: "kv-shard-local-point",
        structure: StructureKind::SkipList,
        base_size: 2_048,
        mix: OpMix::lookup_insert_remove(70, 20, 10),
        dist: KeyDist::Uniform,
        phases: None,
        about: "one rhtm_kv shard's slice of point traffic: closed-loop ceiling for bench_kv",
    },
    Scenario {
        name: "kv-shard-local-hot",
        structure: StructureKind::SkipList,
        base_size: 1_024,
        mix: OpMix::lookup_insert_remove(50, 25, 25),
        dist: KeyDist::HOTSPOT_DEFAULT,
        phases: None,
        about: "a hot kv shard partition: small key slice, churn-heavy, 90/10 hotspot",
    },
];

impl Scenario {
    /// Every registered scenario, in display order.
    pub fn all() -> &'static [Scenario] {
        REGISTRY
    }

    /// Looks a scenario up by its registry name (case-insensitive).
    pub fn find(name: &str) -> Option<&'static Scenario> {
        let name = name.trim().to_ascii_lowercase();
        REGISTRY.iter().find(|s| s.name == name)
    }

    /// The size to run at when the base size is divided by `divisor`
    /// (1 = paper scale), floored at the structure's meaningful minimum.
    pub fn sized(&self, divisor: u64) -> u64 {
        (self.base_size / divisor.max(1)).max(self.structure.min_size())
    }

    /// Runs this scenario at `size` elements on `algo` with every other
    /// runtime axis at its default.  Shorthand for
    /// [`Scenario::run_spec`] with `TmSpec::new(algo)`.
    pub fn run(&self, algo: AlgoKind, size: u64, base: &DriverOpts) -> BenchResult {
        self.run_spec(&TmSpec::new(algo), size, base)
    }

    /// Runs this scenario at `size` elements on the runtime point `spec`
    /// names.
    ///
    /// `base` supplies threads/duration/seed; its mix and distribution are
    /// overridden by the scenario's.  The scenario owns the *memory
    /// sizing* (each structure declares its `required_words`), so the
    /// spec's [`MemConfig`] is replaced by a scenario-sized one — keeping
    /// the spec's resolved clock scheme — while its algorithm, retry
    /// policy and HTM shape are honoured as given.  Mutable structures
    /// are prefilled half-full before the workers start, so inserts and
    /// removals both find work.
    pub fn run_spec(&self, spec: &TmSpec, size: u64, base: &DriverOpts) -> BenchResult {
        let opts = DriverOpts {
            mix: self.mix,
            dist: self.dist,
            phases: self.phases,
            ..base.clone()
        };
        let sized = |words: usize| {
            spec.clone().mem(MemConfig {
                clock_scheme: spec.clock_scheme(),
                ..MemConfig::with_data_words(words + 4096)
            })
        };
        match self.structure {
            StructureKind::RbTree => sized(ConstantRbTree::required_words(size)).bench(
                |sim: &Arc<HtmSim>| ConstantRbTree::new(Arc::clone(sim), size),
                &opts,
            ),
            StructureKind::HashTable => sized(ConstantHashTable::required_words(size)).bench(
                |sim: &Arc<HtmSim>| ConstantHashTable::new(Arc::clone(sim), size),
                &opts,
            ),
            StructureKind::SortedList => sized(ConstantSortedList::required_words(size)).bench(
                |sim: &Arc<HtmSim>| ConstantSortedList::new(Arc::clone(sim), size),
                &opts,
            ),
            StructureKind::RandomArray => sized(RandomArray::required_words(size)).bench(
                // The array's internal write ratio follows the scenario's
                // mix (see the RandomArray workload docs).
                |sim: &Arc<HtmSim>| {
                    RandomArray::new(
                        Arc::clone(sim),
                        size,
                        RANDOM_ARRAY_TXN_LEN,
                        self.mix.update_percent(),
                    )
                },
                &opts,
            ),
            StructureKind::SkipList => sized(TxSkipList::required_words(size, opts.threads)).bench(
                |sim: &Arc<HtmSim>| {
                    let list = TxSkipList::new(Arc::clone(sim), size);
                    list.prefill_alternate();
                    list
                },
                &opts,
            ),
            StructureKind::Queue => sized(TxQueue::required_words(size)).bench(
                |sim: &Arc<HtmSim>| {
                    let queue = TxQueue::new(Arc::clone(sim), size);
                    queue.seed_fill(0..size / 2);
                    queue
                },
                &opts,
            ),
            StructureKind::Bank => {
                sized(TxBank::required_words(size, BANK_AUDIT_CAP, opts.threads)).bench(
                    |sim: &Arc<HtmSim>| {
                        TxBank::new(Arc::clone(sim), size, BANK_INITIAL_BALANCE, BANK_AUDIT_CAP)
                    },
                    &opts,
                )
            }
        }
    }

    /// The phase-plan label, `"none"` for stationary scenarios (reports
    /// and JSON).
    pub fn phases_label(&self) -> &'static str {
        self.phases.map_or("none", |p| p.label())
    }
}

/// The results of one scenario swept over algorithms and thread counts.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The registered scenario that produced the rows.
    pub scenario: &'static Scenario,
    /// The size the scenario actually ran at (after scaling).
    pub size: u64,
    /// One row per `(algorithm, threads)` point.
    pub results: Vec<BenchResult>,
}

/// Serialises a whole suite sweep as **one** JSON document.
///
/// The schema is stable and documented in `docs/BENCHMARKS.md`:
///
/// ```json
/// {
///   "suite": "rhtm-bench-suite",
///   "schema_version": 1,
///   "scale": "...", "seed": N,
///   "scenarios": [
///     { "scenario": "...", "structure": "...", "size": N,
///       "op_mix": "...", "key_dist": "...",
///       "results": [ { ...BenchResult row... } ] }
///   ]
/// }
/// ```
///
/// Per-result rows repeat `op_mix`/`key_dist`/`seed` so each row is
/// self-describing when flattened by plotting scripts.
pub fn suite_to_json(scale: &str, seed: u64, runs: &[ScenarioRun]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"rhtm-bench-suite\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"scale\": {},\n", json_str(scale)));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {\n");
        out.push_str(&format!(
            "    \"scenario\": {},\n",
            json_str(run.scenario.name)
        ));
        out.push_str(&format!(
            "    \"structure\": {},\n",
            json_str(run.scenario.structure.label())
        ));
        out.push_str(&format!("    \"size\": {},\n", run.size));
        out.push_str(&format!(
            "    \"op_mix\": {},\n",
            json_str(&run.scenario.mix.label())
        ));
        out.push_str(&format!(
            "    \"key_dist\": {},\n",
            json_str(&run.scenario.dist.label())
        ));
        out.push_str(&format!(
            "    \"phases\": {},\n",
            json_str(run.scenario.phases_label())
        ));
        out.push_str("    \"results\": [\n");
        for (j, r) in run.results.iter().enumerate() {
            if j > 0 {
                out.push_str(",\n");
            }
            out.push_str(&result_json(r));
        }
        out.push_str("\n    ]\n  }");
    }
    out.push_str("\n  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_json;

    #[test]
    fn registry_is_large_unique_and_findable() {
        let all = Scenario::all();
        assert!(all.len() >= 20, "registry must name at least 20 scenarios");
        for (i, s) in all.iter().enumerate() {
            assert!(Scenario::find(s.name).is_some(), "{}", s.name);
            for other in &all[i + 1..] {
                assert_ne!(s.name, other.name, "duplicate scenario name");
            }
        }
        assert!(Scenario::find("QUEUE-BALANCED").is_some(), "case-folded");
        assert!(Scenario::find("no-such-scenario").is_none());
    }

    #[test]
    fn registry_covers_the_required_shapes() {
        let all = Scenario::all();
        assert!(all
            .iter()
            .any(|s| s.structure == StructureKind::SkipList && s.structure.is_mutable()));
        assert!(all.iter().any(|s| s.structure == StructureKind::Queue));
        let dists: std::collections::HashSet<_> = all.iter().map(|s| s.dist.label()).collect();
        assert!(
            dists.len() >= 2,
            "at least two key distributions: {dists:?}"
        );
        assert!(all.iter().any(|s| s.mix.label().contains('i')), "inserts");
        assert!(
            all.iter().any(|s| s.structure == StructureKind::Bank),
            "composed bank scenarios"
        );
        let plans: std::collections::HashSet<_> = all.iter().filter_map(|s| s.phases).collect();
        assert!(
            plans.len() >= 3,
            "all three phase plans must be registered: {plans:?}"
        );
    }

    #[test]
    fn sized_scales_down_but_respects_minimums() {
        let s = Scenario::find("rbtree-uniform").unwrap();
        assert_eq!(s.sized(1), 100_000);
        assert_eq!(s.sized(10), 10_000);
        assert_eq!(s.sized(u64::MAX), s.structure.min_size());
    }

    #[test]
    fn every_scenario_runs_on_the_default_algorithm() {
        for s in Scenario::all() {
            let size = s.sized(1_024);
            let opts = DriverOpts::counted_mix(2, OpMix::read_update(0), 60).with_seed(5);
            let result = s.run(AlgoKind::Rh1Mixed(100), size, &opts);
            assert_eq!(result.total_ops, 120, "{}", s.name);
            assert_eq!(result.stats.commits(), 120, "{}", s.name);
            assert_eq!(result.op_mix, s.mix.label(), "{}", s.name);
            assert_eq!(result.key_dist, s.dist.label(), "{}", s.name);
            assert_eq!(result.write_percent, s.mix.update_percent(), "{}", s.name);
        }
    }

    #[test]
    fn every_scenario_honours_a_full_spec() {
        use rhtm_api::RetryPolicyHandle;
        use rhtm_mem::ClockScheme;

        let spec = TmSpec::new(AlgoKind::Rh2)
            .clock(ClockScheme::Gv6)
            .retry(RetryPolicyHandle::adaptive());
        for s in Scenario::all() {
            let size = s.sized(2_048);
            let opts = DriverOpts::counted_mix(2, OpMix::read_update(0), 40).with_seed(3);
            let result = s.run_spec(&spec, size, &opts);
            assert_eq!(result.total_ops, 80, "{}", s.name);
            assert_eq!(result.spec, "rh2+gv6+adaptive", "{}", s.name);
            assert_eq!(result.algorithm, "RH2", "{}", s.name);
        }
    }

    #[test]
    fn suite_json_is_valid_and_self_describing() {
        let scenario = Scenario::find("skiplist-zipf").unwrap();
        let size = scenario.sized(1_024);
        let results = vec![scenario.run(
            AlgoKind::Tl2,
            size,
            &DriverOpts::counted_mix(2, OpMix::read_update(0), 40).with_seed(9),
        )];
        let runs = vec![ScenarioRun {
            scenario,
            size,
            results,
        }];
        let json = suite_to_json("quick", 9, &runs);
        validate_json(&json).expect("suite JSON must parse");
        for field in [
            "\"suite\": \"rhtm-bench-suite\"",
            "\"schema_version\": 1",
            "\"scenario\": \"skiplist-zipf\"",
            "\"structure\": \"skiplist\"",
            "\"key_dist\": \"zipf-0.99\"",
            "\"op_mix\": \"l70-i15-r15\"",
            "\"phases\": \"none\"",
            "\"spec\": \"tl2+gv-strict+paper-default\"",
            "\"seed\": 9",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }
}
