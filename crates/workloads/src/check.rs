//! The reusable history/invariant checker.
//!
//! Stress tests in this workspace all share one shape: many scoped
//! workers hammer a transactional structure, then a single thread
//! inspects the final state.  Checking only the *final* state misses a
//! whole class of serializability bugs — a torn analytics scan, a
//! dequeue served out of FIFO order, an update applied twice — that are
//! only visible in what each thread *observed* along the way.  This
//! module closes the gap:
//!
//! 1. Each worker records its invocation/response pairs as [`Event`]s in
//!    a per-thread [`HistoryRecorder`] — no cross-thread synchronisation
//!    on the hot path, so recording barely perturbs the interleaving
//!    under test.
//! 2. Every event carries the **commit path** that served it
//!    ([`rhtm_api::PathKind`], captured by diffing
//!    [`rhtm_api::TxStats::commits_by_path`] around the operation with
//!    [`rhtm_api::PathProbe`]).  When a checker rejects a history, the
//!    violation's `path_hint` says whether the offending operation
//!    committed on the hardware fast path, the mixed slow path or the
//!    software fallback — which localises an RH1-vs-RH2 protocol bug to
//!    the path that produced it.
//! 3. After the scope joins, the recorders merge into a [`History`] and
//!    pluggable [`Checker`]s verify it offline: [`MapChecker`] (set/map
//!    semantics), [`FifoChecker`] (queue order + conservation),
//!    [`BankChecker`] (cross-structure conservation for the composed
//!    [`TxBank`]), [`ScanChecker`] (snapshot atomicity).
//!
//! The checkers are deliberately *order-free*: they verify invariants
//! that must hold for **every** legal serialization (presence arithmetic,
//! value provenance, multiset conservation, per-producer FIFO order,
//! balance replay), so they never need the true commit order — which the
//! recorder, by design, does not capture.  That keeps them sound (no
//! false alarms on legal interleavings) while still rejecting every
//! hand-crafted bug in the mutation self-tests.
//!
//! The [`record_map_churn`], [`record_queue_stress`] and
//! [`record_bank_stress`] drivers package the whole recipe — scope,
//! record, snapshot, pair with the right checker — for any
//! [`TmRuntime`], so integration tests run one line per (structure,
//! spec) combination.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::yield_now;

use rhtm_api::{PathKind, PathProbe, TmRuntime, TmScopeExt, TmThread};

use crate::rng::WorkloadRng;
use crate::structures::bank::{BankSnapshot, TransferOutcome, TxBank};
use crate::structures::queue::TxQueue;
use crate::structures::skiplist::TxSkipList;
use crate::workload::Workload;

/// One completed operation, as observed by the thread that invoked it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Map/set insert-or-update: `inserted` is `true` when the key was
    /// absent (a shape change), `false` for an in-place value update.
    Insert {
        /// The key operated on.
        key: u64,
        /// The value written (on both the insert and the update path).
        value: u64,
        /// Whether the key was newly inserted.
        inserted: bool,
    },
    /// Map/set remove: `removed` is the value the operation took out,
    /// `None` when the key was absent.
    Remove {
        /// The key operated on.
        key: u64,
        /// The value removed, when the key was present.
        removed: Option<u64>,
    },
    /// Map/set lookup and the value it observed.
    Lookup {
        /// The key operated on.
        key: u64,
        /// The value observed, when the key was present.
        value: Option<u64>,
    },
    /// Queue enqueue: `accepted` is `false` when the queue was full.
    Enqueue {
        /// The value offered.
        value: u64,
        /// Whether the queue took it.
        accepted: bool,
    },
    /// Queue dequeue and the value it returned (`None` when empty).
    Dequeue {
        /// The value taken, when the queue was non-empty.
        value: Option<u64>,
    },
    /// A composed [`TxBank`] transfer: `applied` is `false` for declined
    /// transfers (which must leave no trace).
    Transfer {
        /// Debited account.
        from: u64,
        /// Credited account.
        to: u64,
        /// Amount moved.
        amount: u64,
        /// Whether balances moved and the audit log recorded it.
        applied: bool,
    },
    /// A full read-only scan and the total it observed (the analytics
    /// query; atomicity demands one exact answer).
    Scan {
        /// The observed total.
        sum: u64,
    },
}

/// An [`EventKind`] tagged with the commit path that served it (`None`
/// when the probe saw no commit, e.g. hand-crafted histories).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Which commit path served it, per [`rhtm_api::PathProbe`].
    pub path: Option<PathKind>,
}

/// Per-thread event log; the hot path is one `Vec::push`, nothing shared.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    events: Vec<Event>,
}

impl HistoryRecorder {
    /// An empty recorder (one per worker).
    pub fn new() -> Self {
        HistoryRecorder { events: Vec::new() }
    }

    /// Appends one completed operation.
    #[inline]
    pub fn record(&mut self, kind: EventKind, path: Option<PathKind>) {
        self.events.push(Event { kind, path });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A complete multi-threaded run: one event sequence per worker, in
/// worker-index order.
#[derive(Debug, Default)]
pub struct History {
    threads: Vec<Vec<Event>>,
}

impl History {
    /// Merges per-worker recorders (in worker-index order, e.g. straight
    /// from [`TmScopeExt::scope`]'s output vector).
    pub fn from_recorders(recorders: Vec<HistoryRecorder>) -> Self {
        History {
            threads: recorders.into_iter().map(|r| r.events).collect(),
        }
    }

    /// Builds a history from raw per-thread event kinds (hand-crafted
    /// histories in mutation tests; events carry no path tag).
    pub fn from_kinds(threads: Vec<Vec<EventKind>>) -> Self {
        History {
            threads: threads
                .into_iter()
                .map(|events| {
                    events
                        .into_iter()
                        .map(|kind| Event { kind, path: None })
                        .collect()
                })
                .collect(),
        }
    }

    /// The per-thread event sequences.
    pub fn threads(&self) -> &[Vec<Event>] {
        &self.threads
    }

    /// All events, thread by thread (program order within a thread; no
    /// cross-thread order is implied).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.threads.iter().flatten()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events served per commit path (in [`PathKind::ALL`] order), plus
    /// the count of untagged events.
    pub fn path_counts(&self) -> ([u64; 3], u64) {
        let mut tagged = [0u64; 3];
        let mut untagged = 0u64;
        for e in self.events() {
            match e.path {
                Some(p) => tagged[p.index()] += 1,
                None => untagged += 1,
            }
        }
        (tagged, untagged)
    }

    /// The path that served the most events, when any event is tagged.
    pub fn dominant_path(&self) -> Option<PathKind> {
        let (tagged, _) = self.path_counts();
        PathKind::ALL
            .into_iter()
            .filter(|p| tagged[p.index()] > 0)
            .max_by_key(|p| tagged[p.index()])
    }
}

/// A rejected history: which checker, what broke, and — when the
/// offending operation is identifiable — the commit path that served it
/// (the RH1-vs-RH2 bug-localisation handle).
#[derive(Clone, Debug)]
pub struct Violation {
    /// [`Checker::name`] of the rejecting checker.
    pub checker: &'static str,
    /// Human-readable description of the broken invariant.
    pub detail: String,
    /// Commit path of the offending operation, when attributable.
    pub path_hint: Option<PathKind>,
}

impl Violation {
    fn new(checker: &'static str, detail: String, path_hint: Option<PathKind>) -> Self {
        Violation {
            checker,
            detail,
            path_hint,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.checker, self.detail)?;
        match self.path_hint {
            Some(p) => write!(f, " (commit path: {p:?})"),
            None => write!(f, " (commit path: unknown)"),
        }
    }
}

/// An offline history verifier (see the [module docs](self) for the
/// soundness contract: reject only histories wrong in **every** legal
/// serialization).
pub trait Checker {
    /// Stable name, quoted in violations.
    fn name(&self) -> &'static str;

    /// Verifies a recorded history; `Err` describes the first broken
    /// invariant found.
    fn check(&self, history: &History) -> Result<(), Violation>;
}

const MAP_CHECKER: &str = "map-semantics";

/// Set/map semantics for keyed structures (hashtable, skiplist).
///
/// Verifies, per key, order-free invariants over [`EventKind::Insert`] /
/// [`EventKind::Remove`] / [`EventKind::Lookup`] events:
///
/// * **Presence arithmetic** — every successful insert flips the key
///   absent→present and every successful remove present→absent, so
///   `initial presence + inserts − removes = final presence` in any
///   legal serialization.  Double-granted inserts (the classic lost
///   update on the shape) break the equation.
/// * **Value provenance** — every observed value (lookup hits, removed
///   values, the final snapshot) must have been written by *some* insert
///   or be the key's initial value; anything else was conjured.
pub struct MapChecker {
    initial: BTreeMap<u64, u64>,
    final_state: BTreeMap<u64, u64>,
}

impl MapChecker {
    /// Checker for a run that started from `initial` and ended (after all
    /// workers joined) at `final_state`.
    pub fn new(
        initial: impl IntoIterator<Item = (u64, u64)>,
        final_state: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        MapChecker {
            initial: initial.into_iter().collect(),
            final_state: final_state.into_iter().collect(),
        }
    }
}

#[derive(Default)]
struct KeyLedger {
    net: i64,
    removes: u64,
    written: Vec<u64>,
}

impl Checker for MapChecker {
    fn name(&self) -> &'static str {
        MAP_CHECKER
    }

    fn check(&self, history: &History) -> Result<(), Violation> {
        let mut ledgers: BTreeMap<u64, KeyLedger> = BTreeMap::new();
        // Pass 1: accumulate writes so provenance sees writers on other
        // threads, regardless of event order.
        for event in history.events() {
            if let EventKind::Insert { key, value, .. } = event.kind {
                ledgers.entry(key).or_default().written.push(value);
            }
        }
        let provenance_ok = |key: u64, value: u64, ledgers: &BTreeMap<u64, KeyLedger>| {
            self.initial.get(&key) == Some(&value)
                || ledgers
                    .get(&key)
                    .is_some_and(|l| l.written.contains(&value))
        };
        // Pass 2: presence arithmetic + provenance of observed values.
        for event in history.events() {
            match event.kind {
                EventKind::Insert {
                    key,
                    inserted: true,
                    ..
                } => {
                    ledgers.entry(key).or_default().net += 1;
                }
                EventKind::Remove {
                    key,
                    removed: Some(value),
                } => {
                    let ledger = ledgers.entry(key).or_default();
                    ledger.net -= 1;
                    ledger.removes += 1;
                    if !provenance_ok(key, value, &ledgers) {
                        return Err(Violation::new(
                            MAP_CHECKER,
                            format!("remove({key}) returned value {value} nobody wrote"),
                            event.path,
                        ));
                    }
                }
                EventKind::Lookup {
                    key,
                    value: Some(value),
                } if !provenance_ok(key, value, &ledgers) => {
                    return Err(Violation::new(
                        MAP_CHECKER,
                        format!("lookup({key}) observed value {value} nobody wrote"),
                        event.path,
                    ));
                }
                _ => {}
            }
        }
        let keys: Vec<u64> = ledgers
            .keys()
            .chain(self.initial.keys())
            .chain(self.final_state.keys())
            .copied()
            .collect();
        for key in keys {
            let ledger = ledgers.get(&key);
            let net = ledger.map_or(0, |l| l.net);
            let initially = i64::from(self.initial.contains_key(&key));
            let finally = i64::from(self.final_state.contains_key(&key));
            if initially + net != finally {
                return Err(Violation::new(
                    MAP_CHECKER,
                    format!(
                        "key {key}: initial presence {initially} + {net} net successful \
                         inserts does not give final presence {finally}"
                    ),
                    history.dominant_path(),
                ));
            }
            if let Some(&value) = self.final_state.get(&key) {
                let from_writes = ledger.is_some_and(|l| l.written.contains(&value));
                let from_initial = self.initial.get(&key) == Some(&value);
                let wrote = ledger.is_some_and(|l| !l.written.is_empty());
                let removes = ledger.map_or(0, |l| l.removes);
                // With writers and no successful remove, some write is
                // serialized last, so the final value must be a written
                // one — a final still holding the initial value means
                // every update was lost.
                let ok = if removes == 0 && wrote {
                    from_writes
                } else {
                    from_writes || from_initial
                };
                if !ok {
                    return Err(Violation::new(
                        MAP_CHECKER,
                        format!("key {key}: final value {value} was never written"),
                        history.dominant_path(),
                    ));
                }
            }
        }
        Ok(())
    }
}

const FIFO_CHECKER: &str = "fifo-order";

/// FIFO semantics for [`TxQueue`] histories with **distinct** values
/// (drivers tag values with the producer id, so distinctness is free).
///
/// * **Conservation** — `initial ⊎ accepted enqueues` must equal
///   `successful dequeues ⊎ final contents` as multisets; a dequeue of a
///   value nobody enqueued, a lost element or a duplicated element all
///   break it.
/// * **Per-producer order** — any one consumer must see any one
///   producer's values in enqueue order (the order-free core of FIFO:
///   true in every legal serialization even with concurrent producers).
/// * **Residue order** — values still queued at the end must be, per
///   producer, the *latest* of that producer's accepted values, in
///   order.
pub struct FifoChecker {
    initial: Vec<u64>,
    final_state: Vec<u64>,
}

impl FifoChecker {
    /// Checker for a run over a queue that started holding `initial`
    /// (front first) and ended holding `final_state`.
    pub fn new(initial: Vec<u64>, final_state: Vec<u64>) -> Self {
        FifoChecker {
            initial,
            final_state,
        }
    }
}

impl Checker for FifoChecker {
    fn name(&self) -> &'static str {
        FIFO_CHECKER
    }

    fn check(&self, history: &History) -> Result<(), Violation> {
        // Source id 0 is the initial contents; producers are 1 + thread.
        let mut source: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
        let mut tag = |value: u64, src: usize, seq: usize| -> Result<(), Violation> {
            if source.insert(value, (src, seq)).is_some() {
                return Err(Violation::new(
                    FIFO_CHECKER,
                    format!("value {value} enqueued twice; the checker needs distinct values"),
                    None,
                ));
            }
            Ok(())
        };
        for (seq, &value) in self.initial.iter().enumerate() {
            tag(value, 0, seq)?;
        }
        for (thread, events) in history.threads().iter().enumerate() {
            let mut seq = 0usize;
            for event in events {
                if let EventKind::Enqueue {
                    value,
                    accepted: true,
                } = event.kind
                {
                    tag(value, 1 + thread, seq)?;
                    seq += 1;
                }
            }
        }
        // Conservation: in-flow and out-flow must match as multisets.
        let mut flow: BTreeMap<u64, i64> = BTreeMap::new();
        for &value in source.keys() {
            *flow.entry(value).or_default() += 1;
        }
        for event in history.events() {
            if let EventKind::Dequeue { value: Some(value) } = event.kind {
                if !source.contains_key(&value) {
                    return Err(Violation::new(
                        FIFO_CHECKER,
                        format!("dequeued value {value} was never enqueued"),
                        event.path,
                    ));
                }
                *flow.entry(value).or_default() -= 1;
            }
        }
        for &value in &self.final_state {
            *flow.entry(value).or_default() -= 1;
        }
        if let Some((&value, &net)) = flow.iter().find(|(_, &net)| net != 0) {
            let fate = if net > 0 { "lost" } else { "duplicated" };
            return Err(Violation::new(
                FIFO_CHECKER,
                format!("value {value} was {fate} (net flow {net})"),
                history.dominant_path(),
            ));
        }
        // Per-producer order at each consumer.
        for events in history.threads() {
            let mut last_seen: BTreeMap<usize, usize> = BTreeMap::new();
            for event in events {
                if let EventKind::Dequeue { value: Some(value) } = event.kind {
                    let (src, seq) = source[&value];
                    if let Some(&prev) = last_seen.get(&src) {
                        if seq <= prev {
                            return Err(Violation::new(
                                FIFO_CHECKER,
                                format!(
                                    "consumer saw source {src} out of order: \
                                     seq {seq} after seq {prev} (value {value})"
                                ),
                                event.path,
                            ));
                        }
                    }
                    last_seen.insert(src, seq);
                }
            }
        }
        // Residue: per producer, what's left must be its newest values in
        // order (everything older was dequeued first).
        let mut max_dequeued: BTreeMap<usize, usize> = BTreeMap::new();
        for event in history.events() {
            if let EventKind::Dequeue { value: Some(value) } = event.kind {
                let (src, seq) = source[&value];
                let entry = max_dequeued.entry(src).or_insert(seq);
                *entry = (*entry).max(seq);
            }
        }
        let mut last_final: BTreeMap<usize, usize> = BTreeMap::new();
        for &value in &self.final_state {
            let (src, seq) = source[&value];
            if let Some(&dequeued) = max_dequeued.get(&src) {
                if seq < dequeued {
                    return Err(Violation::new(
                        FIFO_CHECKER,
                        format!(
                            "source {src} seq {seq} still queued although its \
                             seq {dequeued} was already dequeued"
                        ),
                        history.dominant_path(),
                    ));
                }
            }
            if let Some(&prev) = last_final.get(&src) {
                if seq <= prev {
                    return Err(Violation::new(
                        FIFO_CHECKER,
                        format!("final contents hold source {src} out of order"),
                        history.dominant_path(),
                    ));
                }
            }
            last_final.insert(src, seq);
        }
        Ok(())
    }
}

const BANK_CHECKER: &str = "bank-conservation";

/// Cross-structure conservation for the composed [`TxBank`].
///
/// Verifies the recorded [`EventKind::Transfer`] / [`EventKind::Scan`] /
/// [`EventKind::Lookup`] events against the final [`BankSnapshot`]:
///
/// * the balance total is conserved and every account's final balance
///   **replays** from the applied transfers (initial + in − out);
/// * the audit sequence equals the number of applied transfers, and
///   every surviving audit-ring entry is contiguous and matches an
///   applied transfer event;
/// * every scan observed exactly the conserved total (snapshot
///   atomicity — this is where a torn RH2 commit shows up), and every
///   observed balance is individually plausible (≤ total).
pub struct BankChecker {
    accounts: u64,
    initial_balance: u64,
    snapshot: BankSnapshot,
}

impl BankChecker {
    /// Checker for a run over `bank`, ended at `snapshot`.
    pub fn new(bank: &TxBank, snapshot: BankSnapshot) -> Self {
        BankChecker {
            accounts: bank.accounts(),
            initial_balance: bank.initial_balance(),
            snapshot,
        }
    }

    /// Checker from raw parameters (hand-crafted histories).
    pub fn with_params(accounts: u64, initial_balance: u64, snapshot: BankSnapshot) -> Self {
        BankChecker {
            accounts,
            initial_balance,
            snapshot,
        }
    }
}

impl Checker for BankChecker {
    fn name(&self) -> &'static str {
        BANK_CHECKER
    }

    fn check(&self, history: &History) -> Result<(), Violation> {
        let expected_total = self.accounts * self.initial_balance;
        if self.snapshot.balances.len() as u64 != self.accounts {
            return Err(Violation::new(
                BANK_CHECKER,
                format!(
                    "snapshot holds {} accounts, expected {}",
                    self.snapshot.balances.len(),
                    self.accounts
                ),
                None,
            ));
        }
        let mut applied: Vec<(u64, u64, u64)> = Vec::new();
        let mut delta: BTreeMap<u64, i128> = BTreeMap::new();
        for event in history.events() {
            match event.kind {
                EventKind::Transfer {
                    from,
                    to,
                    amount,
                    applied: true,
                } => {
                    applied.push((from, to, amount));
                    *delta.entry(from).or_default() -= i128::from(amount);
                    *delta.entry(to).or_default() += i128::from(amount);
                }
                EventKind::Scan { sum } if sum != expected_total => {
                    return Err(Violation::new(
                        BANK_CHECKER,
                        format!(
                            "scan observed total {sum}, conservation demands \
                             {expected_total} in every serialization"
                        ),
                        event.path,
                    ));
                }
                EventKind::Lookup {
                    value: Some(value), ..
                } if value > expected_total => {
                    return Err(Violation::new(
                        BANK_CHECKER,
                        format!("observed balance {value} exceeds the total {expected_total}"),
                        event.path,
                    ));
                }
                _ => {}
            }
        }
        let total: u64 = self.snapshot.balances.iter().sum();
        if total != expected_total {
            return Err(Violation::new(
                BANK_CHECKER,
                format!("final balances sum to {total}, expected {expected_total}"),
                history.dominant_path(),
            ));
        }
        for (account, &balance) in self.snapshot.balances.iter().enumerate() {
            let replayed = i128::from(self.initial_balance)
                + delta.get(&(account as u64)).copied().unwrap_or(0);
            if i128::from(balance) != replayed {
                return Err(Violation::new(
                    BANK_CHECKER,
                    format!(
                        "account {account}: final balance {balance} but the applied \
                         transfers replay to {replayed}"
                    ),
                    history.dominant_path(),
                ));
            }
        }
        if self.snapshot.audit_seq != applied.len() as u64 {
            return Err(Violation::new(
                BANK_CHECKER,
                format!(
                    "audit sequence {} but {} transfers were applied",
                    self.snapshot.audit_seq,
                    applied.len()
                ),
                history.dominant_path(),
            ));
        }
        if self.snapshot.audit.len() as u64 > self.snapshot.audit_seq {
            return Err(Violation::new(
                BANK_CHECKER,
                format!(
                    "audit ring holds {} entries but only {} transfers ever applied",
                    self.snapshot.audit.len(),
                    self.snapshot.audit_seq
                ),
                history.dominant_path(),
            ));
        }
        let first_live = self.snapshot.audit_seq - self.snapshot.audit.len() as u64;
        for (offset, &(seq, packed)) in self.snapshot.audit.iter().enumerate() {
            if seq != first_live + offset as u64 {
                return Err(Violation::new(
                    BANK_CHECKER,
                    format!("audit ring is not contiguous at entry {seq}"),
                    history.dominant_path(),
                ));
            }
            let entry = crate::structures::bank::unpack_entry(packed);
            if !applied.contains(&entry) {
                return Err(Violation::new(
                    BANK_CHECKER,
                    format!("audit entry {seq} records a transfer {entry:?} nobody applied"),
                    history.dominant_path(),
                ));
            }
        }
        Ok(())
    }
}

const SCAN_CHECKER: &str = "scan-atomicity";

/// Snapshot atomicity for any structure with a conserved aggregate:
/// every [`EventKind::Scan`] must observe exactly `expected` — a phantom
/// read (a concurrent writer's half-applied transaction leaking into the
/// scan) shows up as any other value.
pub struct ScanChecker {
    /// The conserved total every scan must observe.
    pub expected: u64,
}

impl Checker for ScanChecker {
    fn name(&self) -> &'static str {
        SCAN_CHECKER
    }

    fn check(&self, history: &History) -> Result<(), Violation> {
        for event in history.events() {
            if let EventKind::Scan { sum } = event.kind {
                if sum != self.expected {
                    return Err(Violation::new(
                        SCAN_CHECKER,
                        format!(
                            "scan observed {sum}, expected the conserved total {}",
                            self.expected
                        ),
                        event.path,
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Runs `checkers` against `history`, collecting every violation (the
/// one-line driver for "this history must be clean" assertions).
pub fn check_all(history: &History, checkers: &[&dyn Checker]) -> Vec<Violation> {
    checkers
        .iter()
        .filter_map(|c| c.check(history).err())
        .collect()
}

/// Scoped insert/remove/lookup churn over a [`TxSkipList`], recorded and
/// paired with the matching [`MapChecker`] — the reusable
/// stress-driver for keyed structures (also the freelist-recycling
/// regression rig: churn forces node slots through remove→insert reuse,
/// and the checker rejects any key whose presence or value provenance is
/// corrupted by a double-free).
///
/// Values encode `(worker, op)` so provenance is exact; keys are drawn
/// from the list's key space with the per-worker seeds derived from
/// `seed`, so runs replay deterministically on a deterministic runtime.
pub fn record_map_churn<R: TmRuntime>(
    runtime: &R,
    list: &TxSkipList,
    workers: usize,
    ops_per_worker: u64,
    seed: u64,
) -> (MapChecker, History) {
    let initial = {
        let mut th = runtime.register_thread();
        list.snapshot(&mut th)
    };
    let key_span = list.key_space().max(2) - 1;
    let recorders = runtime.scope(workers, |session| {
        let mut recorder = HistoryRecorder::new();
        let mut rng = WorkloadRng::new(seed ^ (0x9E37_79B9 * (1 + session.index() as u64)));
        for op in 0..ops_per_worker {
            let key = 1 + rng.next_below(key_span);
            let roll = rng.next_below(10);
            let probe = PathProbe::start(session.stats());
            let kind = if roll < 4 {
                let value = ((session.index() as u64 + 1) << 32) | op;
                let inserted = list.insert(session.thread_mut(), key, value);
                EventKind::Insert {
                    key,
                    value,
                    inserted,
                }
            } else if roll < 7 {
                let removed = list.remove(session.thread_mut(), key);
                EventKind::Remove { key, removed }
            } else {
                let value = list.get(session.thread_mut(), key);
                EventKind::Lookup { key, value }
            };
            recorder.record(kind, probe.finish(session.stats()));
        }
        recorder
    });
    let final_state = {
        let mut th = runtime.register_thread();
        list.snapshot(&mut th)
    };
    (
        MapChecker::new(initial, final_state),
        History::from_recorders(recorders),
    )
}

/// Scoped producer/consumer stress over an (initially empty) [`TxQueue`],
/// recorded and paired with the matching [`FifoChecker`].  The first
/// `producers` workers each enqueue `per_producer` tagged values
/// (retrying on full); the remaining workers dequeue until everything
/// has been consumed.  Wait loops yield, so it stays live on one core.
pub fn record_queue_stress<R: TmRuntime>(
    runtime: &R,
    queue: &TxQueue,
    producers: usize,
    consumers: usize,
    per_producer: u64,
) -> (FifoChecker, History) {
    let total = producers as u64 * per_producer;
    let consumed = AtomicU64::new(0);
    let recorders = runtime.scope(producers + consumers, |session| {
        let mut recorder = HistoryRecorder::new();
        if session.index() < producers {
            for i in 0..per_producer {
                let value = ((session.index() as u64 + 1) << 32) | i;
                loop {
                    let probe = PathProbe::start(session.stats());
                    let accepted = queue.enqueue(session.thread_mut(), value);
                    recorder.record(
                        EventKind::Enqueue { value, accepted },
                        probe.finish(session.stats()),
                    );
                    if accepted {
                        break;
                    }
                    yield_now();
                }
            }
        } else {
            while consumed.load(Ordering::Relaxed) < total {
                let probe = PathProbe::start(session.stats());
                match queue.dequeue(session.thread_mut()) {
                    Some(value) => {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        recorder.record(
                            EventKind::Dequeue { value: Some(value) },
                            probe.finish(session.stats()),
                        );
                    }
                    None => yield_now(),
                }
            }
        }
        recorder
    });
    (
        FifoChecker::new(Vec::new(), queue.snapshot_quiescent()),
        History::from_recorders(recorders),
    )
}

/// Scoped OLTP churn + analytics scans over a [`TxBank`], recorded and
/// paired with the matching [`BankChecker`] — the composed-transaction
/// stress: roughly 10% full-table scans, 20% balance lookups, 70%
/// two-structure transfers per worker.
pub fn record_bank_stress<R: TmRuntime>(
    runtime: &R,
    bank: &TxBank,
    workers: usize,
    ops_per_worker: u64,
    seed: u64,
) -> (BankChecker, History) {
    let accounts = bank.accounts();
    let recorders = runtime.scope(workers, |session| {
        let mut recorder = HistoryRecorder::new();
        let mut rng = WorkloadRng::new(seed ^ (0xC2B2_AE35 * (1 + session.index() as u64)));
        for _ in 0..ops_per_worker {
            let roll = rng.next_below(10);
            let probe = PathProbe::start(session.stats());
            let kind = if roll < 1 {
                let sum = bank.scan_total(session.thread_mut());
                EventKind::Scan { sum }
            } else if roll < 3 {
                let key = rng.next_below(accounts);
                let value = bank.balance(session.thread_mut(), key);
                EventKind::Lookup { key, value }
            } else {
                let from = rng.next_below(accounts);
                let to = (from + 1 + rng.next_below(accounts.max(2) - 1)) % accounts;
                let amount = 1 + rng.next_below(crate::structures::bank::MAX_TRANSFER_AMOUNT);
                let outcome = bank.transfer(session.thread_mut(), from, to, amount);
                EventKind::Transfer {
                    from,
                    to,
                    amount,
                    applied: outcome == TransferOutcome::Applied,
                }
            };
            recorder.record(kind, probe.finish(session.stats()));
        }
        recorder
    });
    let snapshot = {
        let mut th = runtime.register_thread();
        bank.snapshot(&mut th)
    };
    (
        BankChecker::new(bank, snapshot),
        History::from_recorders(recorders),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use rhtm_core::{RhConfig, RhRuntime};
    use rhtm_htm::HtmConfig;
    use rhtm_mem::MemConfig;

    fn runtime(words: usize) -> RhRuntime {
        RhRuntime::new(
            MemConfig::with_data_words(words),
            HtmConfig::default(),
            RhConfig::rh1_mixed(100),
        )
    }

    #[test]
    fn recorded_map_churn_passes_its_checker() {
        let rt = runtime(1 << 15);
        let list = TxSkipList::new(Arc::clone(rt.sim()), 48);
        let (checker, history) = record_map_churn(&rt, &list, 3, 150, 11);
        assert_eq!(history.len(), 450);
        checker.check(&history).unwrap();
        let (tagged, untagged) = history.path_counts();
        assert_eq!(untagged, 0, "every event must be path-tagged");
        assert!(tagged.iter().sum::<u64>() >= 450);
        assert!(history.dominant_path().is_some());
    }

    #[test]
    fn recorded_queue_stress_passes_its_checker() {
        let rt = runtime(1 << 13);
        let queue = TxQueue::new(Arc::clone(rt.sim()), 16);
        let (checker, history) = record_queue_stress(&rt, &queue, 2, 2, 80);
        checker.check(&history).unwrap();
        assert!(queue.snapshot_quiescent().is_empty());
    }

    #[test]
    fn recorded_bank_stress_passes_its_checker() {
        let rt = runtime(TxBank::required_words(24, 32, 4) + 4096);
        let bank = TxBank::new(Arc::clone(rt.sim()), 24, 500, 32);
        let (checker, history) = record_bank_stress(&rt, &bank, 3, 120, 7);
        checker.check(&history).unwrap();
        assert_eq!(history.len(), 360);
    }

    #[test]
    fn map_checker_rejects_a_double_granted_insert() {
        let checker = MapChecker::new([], [(5, 1)]);
        let history = History::from_kinds(vec![
            vec![EventKind::Insert {
                key: 5,
                value: 1,
                inserted: true,
            }],
            vec![EventKind::Insert {
                key: 5,
                value: 1,
                inserted: true,
            }],
        ]);
        let violation = checker.check(&history).unwrap_err();
        assert!(violation.detail.contains("presence"), "{violation}");
    }

    #[test]
    fn fifo_checker_rejects_reordering_and_loss() {
        // Reordered: producer 0 enqueued seq 0 then 1; consumer saw 1, 0.
        let checker = FifoChecker::new(vec![], vec![]);
        let reordered = History::from_kinds(vec![
            vec![
                EventKind::Enqueue {
                    value: 10,
                    accepted: true,
                },
                EventKind::Enqueue {
                    value: 11,
                    accepted: true,
                },
            ],
            vec![
                EventKind::Dequeue { value: Some(11) },
                EventKind::Dequeue { value: Some(10) },
            ],
        ]);
        assert!(checker
            .check(&reordered)
            .unwrap_err()
            .detail
            .contains("order"));
        let lost = History::from_kinds(vec![vec![EventKind::Enqueue {
            value: 10,
            accepted: true,
        }]]);
        assert!(checker.check(&lost).unwrap_err().detail.contains("lost"));
    }

    #[test]
    fn scan_checker_flags_any_unexpected_total() {
        let checker = ScanChecker { expected: 100 };
        let ok = History::from_kinds(vec![vec![EventKind::Scan { sum: 100 }]]);
        checker.check(&ok).unwrap();
        let torn = History::from_kinds(vec![vec![EventKind::Scan { sum: 99 }]]);
        let violation = checker.check(&torn).unwrap_err();
        assert_eq!(violation.checker, "scan-atomicity");
        assert_eq!(check_all(&torn, &[&checker]).len(), 1);
    }
}
