//! Weighted operation mixes: the generalisation of the paper's binary
//! read/update split.
//!
//! The paper's driver flips one biased coin per operation (`is_update`).
//! The scenario engine replaces that with an [`OpMix`]: a weight per
//! [`OpKind`] summing to 100, drawn once per operation.  The binary split
//! is the special case [`OpMix::read_update`], so every pre-existing
//! figure is expressible unchanged; the mutable structures (skiplist,
//! queue) additionally get shape-changing inserts/removals and range
//! queries as first-class, weighted operations.

use crate::rng::WorkloadRng;

/// The kinds of operation a workload can be asked to run.
///
/// Workloads are free to *map* kinds they cannot express onto the nearest
/// supported operation (the constant structures run `Insert`/`Remove` as
/// their dummy-payload update, for example) — the mapping must be
/// documented on the `Workload` impl and must preserve
/// [`OpKind::is_update`] semantics: a read-only kind must never mutate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read (lookup / search / membership test / queue peek).
    Lookup,
    /// Read-only range scan aggregating over consecutive keys.
    RangeSum,
    /// In-place value update that never changes the structure's shape.
    Update,
    /// Shape-changing insertion (queue: enqueue).
    Insert,
    /// Shape-changing removal (queue: dequeue).
    Remove,
}

impl OpKind {
    /// All kinds, in the fixed order mixes are encoded and drawn in.
    pub const ALL: [OpKind; 5] = [
        OpKind::Lookup,
        OpKind::RangeSum,
        OpKind::Update,
        OpKind::Insert,
        OpKind::Remove,
    ];

    /// Dense index for weight arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            OpKind::Lookup => 0,
            OpKind::RangeSum => 1,
            OpKind::Update => 2,
            OpKind::Insert => 3,
            OpKind::Remove => 4,
        }
    }

    /// Does this kind mutate the structure?  Drives the `write_percent`
    /// reported for a mix and the read/write accounting in results.
    #[inline]
    pub const fn is_update(self) -> bool {
        matches!(self, OpKind::Update | OpKind::Insert | OpKind::Remove)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Lookup => "lookup",
            OpKind::RangeSum => "range-sum",
            OpKind::Update => "update",
            OpKind::Insert => "insert",
            OpKind::Remove => "remove",
        }
    }

    /// One-letter code used in compact mix labels (`l80-u20`).
    pub const fn code(self) -> char {
        match self {
            OpKind::Lookup => 'l',
            OpKind::RangeSum => 's',
            OpKind::Update => 'u',
            OpKind::Insert => 'i',
            OpKind::Remove => 'r',
        }
    }

    fn from_code(c: char) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.code() == c)
    }
}

/// A weighted operation mix: a percentage per [`OpKind`], summing to 100.
///
/// A mix is pure configuration (`Copy`, comparable, `const`-constructible
/// for the scenario registry); drawing an operation takes one percentage
/// draw from the per-thread [`WorkloadRng`], so it costs the same as the
/// old binary `is_update` coin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpMix {
    /// Weight (percent) per kind, indexed by [`OpKind::index`].
    weights: [u8; 5],
}

impl OpMix {
    /// Builds a mix from a weight (percent) per kind, indexed by
    /// [`OpKind::index`].  Panics unless the weights sum to exactly 100.
    pub const fn new(weights: [u8; 5]) -> OpMix {
        let mut sum = 0u32;
        let mut i = 0;
        while i < weights.len() {
            sum += weights[i] as u32;
            i += 1;
        }
        assert!(sum == 100, "operation-mix weights must sum to 100");
        OpMix { weights }
    }

    /// The paper's binary split: `write_percent`% in-place updates, the
    /// rest lookups.
    pub const fn read_update(write_percent: u8) -> OpMix {
        assert!(write_percent <= 100);
        OpMix::new([100 - write_percent, 0, write_percent, 0, 0])
    }

    /// A search-structure mix: lookups plus shape-changing
    /// inserts/removals.
    pub const fn lookup_insert_remove(lookup: u8, insert: u8, remove: u8) -> OpMix {
        OpMix::new([lookup, 0, 0, insert, remove])
    }

    /// A producer/consumer mix: `insert`% enqueues, `remove`% dequeues,
    /// the remainder peeks.
    pub const fn producer_consumer(insert: u8, remove: u8) -> OpMix {
        assert!(insert as u32 + remove as u32 <= 100);
        OpMix::new([100 - insert - remove, 0, 0, insert, remove])
    }

    /// The weight (percent) of one kind.
    #[inline]
    pub fn weight(&self, kind: OpKind) -> u8 {
        self.weights[kind.index()]
    }

    /// Total weight of the mutating kinds — the `write_percent` this mix
    /// reports in results (the generalisation of the paper's knob).
    pub fn update_percent(&self) -> u8 {
        OpKind::ALL
            .into_iter()
            .filter(|k| k.is_update())
            .map(|k| self.weights[k.index()])
            .sum()
    }

    /// Draws one operation kind (one percentage draw, in [`OpKind::ALL`]
    /// order, so equal seeds yield identical operation sequences).
    #[inline]
    pub fn draw(&self, rng: &mut WorkloadRng) -> OpKind {
        let p = rng.next_percent();
        let mut acc = 0u8;
        for kind in OpKind::ALL {
            acc += self.weights[kind.index()];
            if p < acc {
                return kind;
            }
        }
        // Unreachable while weights sum to 100; keep a deterministic
        // answer anyway.
        OpKind::Lookup
    }

    /// Compact, stable label: the non-zero kinds as `<code><percent>`
    /// joined by dashes, e.g. `l80-u20`, `i50-r50`, `l40-s30-i15-r15`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        for kind in OpKind::ALL {
            let w = self.weights[kind.index()];
            if w > 0 {
                parts.push(format!("{}{}", kind.code(), w));
            }
        }
        parts.join("-")
    }

    /// Parses a [`OpMix::label`] back into a mix; `None` unless every part
    /// is a known code with a weight and the weights sum to 100.
    pub fn parse(s: &str) -> Option<OpMix> {
        let mut weights = [0u8; 5];
        for part in s.trim().to_ascii_lowercase().split('-') {
            let mut chars = part.chars();
            let kind = OpKind::from_code(chars.next()?)?;
            let w: u8 = chars.as_str().parse().ok()?;
            if weights[kind.index()] != 0 {
                return None; // duplicate kind
            }
            weights[kind.index()] = w;
        }
        if weights.iter().map(|&w| w as u32).sum::<u32>() == 100 {
            Some(OpMix { weights })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_must_sum_to_100() {
        let m = OpMix::new([50, 10, 20, 10, 10]);
        assert_eq!(m.weight(OpKind::Lookup), 50);
        assert_eq!(m.update_percent(), 40);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_weights_panic() {
        let _ = OpMix::new([50, 0, 0, 0, 0]);
    }

    #[test]
    fn read_update_matches_the_papers_split() {
        let m = OpMix::read_update(20);
        assert_eq!(m.weight(OpKind::Lookup), 80);
        assert_eq!(m.weight(OpKind::Update), 20);
        assert_eq!(m.update_percent(), 20);
        assert_eq!(m.label(), "l80-u20");
        assert_eq!(OpMix::read_update(0).label(), "l100");
    }

    #[test]
    fn draw_is_calibrated_and_deterministic() {
        let m = OpMix::new([40, 10, 20, 15, 15]);
        let mut a = WorkloadRng::new(9);
        let mut b = WorkloadRng::new(9);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            let k = m.draw(&mut a);
            assert_eq!(k, m.draw(&mut b), "same seed must draw the same op");
            counts[k.index()] += 1;
        }
        for kind in OpKind::ALL {
            let got = counts[kind.index()] as f64 / n as f64;
            let want = m.weight(kind) as f64 / 100.0;
            assert!((got - want).abs() < 0.01, "{kind:?}: {got} vs {want}");
        }
    }

    #[test]
    fn extreme_mixes_never_draw_the_other_kind() {
        let mut rng = WorkloadRng::new(4);
        let all_removes = OpMix::new([0, 0, 0, 0, 100]);
        for _ in 0..500 {
            assert_eq!(all_removes.draw(&mut rng), OpKind::Remove);
        }
        let read_only = OpMix::read_update(0);
        for _ in 0..500 {
            assert!(!read_only.draw(&mut rng).is_update());
        }
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for m in [
            OpMix::read_update(20),
            OpMix::read_update(0),
            OpMix::lookup_insert_remove(70, 15, 15),
            OpMix::producer_consumer(50, 50),
            OpMix::new([40, 30, 0, 15, 15]),
        ] {
            assert_eq!(OpMix::parse(&m.label()), Some(m), "{}", m.label());
        }
        for bad in ["l80-u21", "x50-l50", "l80u20", "", "l100-l0"] {
            assert_eq!(OpMix::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn op_kind_codes_are_unique() {
        for (i, a) in OpKind::ALL.into_iter().enumerate() {
            assert_eq!(a.index(), i);
            for b in OpKind::ALL.into_iter().skip(i + 1) {
                assert_ne!(a.code(), b.code());
            }
        }
    }
}
