//! The algorithm registry: every TM variant the paper's evaluation plots,
//! instantiable by name so a figure is just a loop over `(AlgoKind,
//! threads)`.

use std::sync::Arc;

use rhtm_api::{DynRuntime, RetryPolicyHandle, TmRuntime};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmRuntime, HtmRuntimeConfig, HtmSim};
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::{ClockScheme, MemConfig, TmMemory};
use rhtm_stm::{MutexRuntime, Tl2Config, Tl2Runtime};

use crate::driver::{run_benchmark, DriverOpts};
use crate::report::BenchResult;
use crate::workload::Workload;

/// The algorithm variants of the paper's evaluation (plus the global-lock
/// oracle used by tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// Pure best-effort HTM with no instrumentation ("HTM").
    Htm,
    /// The instrumented standard hybrid, hardware-retries-only variant
    /// ("Standard HyTM").
    StdHytm,
    /// The TL2 software baseline ("TL2").
    Tl2,
    /// RH1 with hardware-only retries ("RH1 Fast").
    Rh1Fast,
    /// RH1 with the given percentage of aborted transactions retried on the
    /// mixed slow-path ("RH1 Mixed N").
    Rh1Mixed(u8),
    /// RH1 running every transaction on the mixed slow-path ("RH1 Slow",
    /// used by the single-thread breakdown table).
    Rh1Slow,
    /// Stand-alone RH2.
    Rh2,
    /// A single global lock (test oracle, not part of the paper's figures).
    GlobalLock,
}

impl AlgoKind {
    /// The series the paper plots in Figures 1–3.
    pub const FIGURE_SET: [AlgoKind; 6] = [
        AlgoKind::Htm,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Fast,
        AlgoKind::Rh1Mixed(10),
        AlgoKind::Rh1Mixed(100),
    ];

    /// Display name matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            AlgoKind::Htm => "HTM".to_string(),
            AlgoKind::StdHytm => "Standard HyTM".to_string(),
            AlgoKind::Tl2 => "TL2".to_string(),
            AlgoKind::Rh1Fast => "RH1 Fast".to_string(),
            AlgoKind::Rh1Mixed(p) => format!("RH1 Mixed {p}"),
            AlgoKind::Rh1Slow => "RH1 Slow".to_string(),
            AlgoKind::Rh2 => "RH2".to_string(),
            AlgoKind::GlobalLock => "GlobalLock".to_string(),
        }
    }

    /// Parses a label back into a kind (used by the figure binaries' CLI).
    pub fn parse(label: &str) -> Option<AlgoKind> {
        let l = label.trim().to_ascii_lowercase();
        match l.as_str() {
            "htm" => Some(AlgoKind::Htm),
            "standard-hytm" | "standard hytm" | "stdhytm" => Some(AlgoKind::StdHytm),
            "tl2" => Some(AlgoKind::Tl2),
            "rh1-fast" | "rh1 fast" => Some(AlgoKind::Rh1Fast),
            "rh1-slow" | "rh1 slow" => Some(AlgoKind::Rh1Slow),
            "rh2" => Some(AlgoKind::Rh2),
            "global-lock" | "globallock" => Some(AlgoKind::GlobalLock),
            _ => {
                let rest = l
                    .strip_prefix("rh1-mixed-")
                    .or_else(|| l.strip_prefix("rh1 mixed "))?;
                rest.parse().ok().map(AlgoKind::Rh1Mixed)
            }
        }
    }

    /// Instantiates the runtime this kind names over `sim` as a value:
    /// a boxed [`DynRuntime`] instead of the visitor inversion, for tests
    /// and examples that want to hold runtimes in variables or
    /// collections (`policy` as in [`visit_algo`]).
    ///
    /// The erased handles cost an indirect call per access, so measured
    /// benchmark loops should keep using the generic path
    /// ([`visit_algo`]/[`run_on_algo`]); everything else — setup,
    /// verification, driving a structure from a test — reads much better
    /// as a value:
    ///
    /// ```
    /// use rhtm_api::DynThreadExt;
    /// use rhtm_htm::{HtmConfig, HtmSim};
    /// use rhtm_mem::{MemConfig, TmMemory};
    /// use rhtm_workloads::AlgoKind;
    /// use std::sync::Arc;
    ///
    /// let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(64)));
    /// let sim = HtmSim::new(mem, HtmConfig::default());
    /// let cell = sim.mem().alloc(1);
    /// for kind in AlgoKind::FIGURE_SET {
    ///     let rt = kind.instantiate_dyn(None, Arc::clone(&sim));
    ///     let mut th = rt.register_dyn();
    ///     th.run(|tx| {
    ///         let v = tx.read(cell)?;
    ///         tx.write(cell, v + 1)
    ///     });
    /// }
    /// assert_eq!(sim.nt_load(cell), AlgoKind::FIGURE_SET.len() as u64);
    /// ```
    pub fn instantiate_dyn(
        &self,
        policy: Option<&RetryPolicyHandle>,
        sim: Arc<HtmSim>,
    ) -> Box<dyn DynRuntime> {
        struct BoxVisitor;
        impl AlgoVisitor for BoxVisitor {
            type Out = Box<dyn DynRuntime>;

            fn visit<R: TmRuntime>(self, runtime: R) -> Box<dyn DynRuntime> {
                Box::new(runtime)
            }
        }
        visit_algo(*self, policy, sim, BoxVisitor)
    }
}

/// A generic computation over the runtime an [`AlgoKind`] names.
///
/// `TmRuntime` is not object-safe (its `Thread` associated type), so "give
/// me the runtime for this kind" cannot return *the generic trait* as an
/// object; the visitor inverts the control instead: [`visit_algo`]
/// constructs the concrete runtime and calls [`AlgoVisitor::visit`] with
/// it, keeping the whole computation monomorphised.  The benchmark driver
/// is one visitor ([`run_on_algo`]).
///
/// Code that does not need monomorphised access — tests, examples, setup —
/// should prefer [`AlgoKind::instantiate_dyn`], which hands back the
/// runtime as a plain `Box<dyn DynRuntime>` value (erased through
/// [`rhtm_api::dynamic`]) with no visitor struct to write.
pub trait AlgoVisitor {
    /// What the computation returns.
    type Out;

    /// Runs the computation against the constructed runtime.
    fn visit<R: TmRuntime>(self, runtime: R) -> Self::Out;
}

/// Instantiates the runtime `kind` names over `sim` (optionally overriding
/// its contention-management policy) and hands it to `visitor`.
///
/// The simulator is shared, so the structure a workload built over it is
/// visible to the runtime; `policy = None` leaves every runtime's default
/// (`PaperDefault`).  The global-lock oracle never retries, so the policy
/// is moot there.
pub fn visit_algo<V: AlgoVisitor>(
    kind: AlgoKind,
    policy: Option<&RetryPolicyHandle>,
    sim: Arc<HtmSim>,
    visitor: V,
) -> V::Out {
    // Each runtime reads the override into its own config.
    let rh = |config: RhConfig| match policy {
        Some(p) => config.with_retry_policy(p.clone()),
        None => config,
    };
    match kind {
        AlgoKind::Htm => {
            let config = match policy {
                Some(p) => HtmRuntimeConfig::default().with_retry_policy(p.clone()),
                None => HtmRuntimeConfig::default(),
            };
            visitor.visit(HtmRuntime::with_sim_config(sim, config))
        }
        AlgoKind::StdHytm => {
            let config = match policy {
                Some(p) => StdHytmConfig::hardware_only().with_retry_policy(p.clone()),
                None => StdHytmConfig::hardware_only(),
            };
            visitor.visit(StdHytmRuntime::with_sim(sim, config))
        }
        AlgoKind::Tl2 => {
            let config = match policy {
                Some(p) => Tl2Config::default().with_retry_policy(p.clone()),
                None => Tl2Config::default(),
            };
            visitor.visit(Tl2Runtime::with_sim_config(sim, config))
        }
        AlgoKind::Rh1Fast => visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh1_fast()))),
        AlgoKind::Rh1Mixed(p) => {
            visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh1_mixed(p))))
        }
        AlgoKind::Rh1Slow => visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh1_slow()))),
        AlgoKind::Rh2 => visitor.visit(RhRuntime::with_sim(sim, rh(RhConfig::rh2()))),
        AlgoKind::GlobalLock => visitor.visit(MutexRuntime::with_sim(sim)),
    }
}

/// Builds a fresh shared memory + simulated HTM, constructs the workload
/// over it with `build`, instantiates the runtime selected by `kind` on the
/// *same* memory, and runs the benchmark.
///
/// `build` receives the simulator so it can allocate and initialise its
/// nodes; it runs before any worker thread exists.
pub fn run_on_algo<W, B>(
    kind: AlgoKind,
    mem_config: MemConfig,
    htm_config: HtmConfig,
    build: B,
    opts: &DriverOpts,
) -> BenchResult
where
    W: Workload,
    B: FnOnce(&Arc<HtmSim>) -> W,
{
    run_on_algo_inner(kind, None, mem_config, htm_config, build, opts)
}

struct BenchVisitor<'a, W: Workload> {
    workload: &'a W,
    opts: &'a DriverOpts,
}

impl<W: Workload> AlgoVisitor for BenchVisitor<'_, W> {
    type Out = BenchResult;

    fn visit<R: TmRuntime>(self, runtime: R) -> BenchResult {
        run_benchmark(&runtime, self.workload, self.opts)
    }
}

fn run_on_algo_inner<W, B>(
    kind: AlgoKind,
    policy: Option<&RetryPolicyHandle>,
    mem_config: MemConfig,
    htm_config: HtmConfig,
    build: B,
    opts: &DriverOpts,
) -> BenchResult
where
    W: Workload,
    B: FnOnce(&Arc<HtmSim>) -> W,
{
    let mem = Arc::new(TmMemory::new(mem_config));
    let sim = HtmSim::new(mem, htm_config);
    let workload = build(&sim);
    visit_algo(
        kind,
        policy,
        sim,
        BenchVisitor {
            workload: &workload,
            opts,
        },
    )
}

/// [`run_on_algo`] with an explicit global-clock scheme: overrides
/// `mem_config.clock_scheme` before building the shared memory, so a figure
/// can sweep `(AlgoKind, ClockScheme, threads)` without assembling
/// [`MemConfig`]s by hand.
pub fn run_on_algo_with_clock<W, B>(
    kind: AlgoKind,
    scheme: ClockScheme,
    mem_config: MemConfig,
    htm_config: HtmConfig,
    build: B,
    opts: &DriverOpts,
) -> BenchResult
where
    W: Workload,
    B: FnOnce(&Arc<HtmSim>) -> W,
{
    let mem_config = MemConfig {
        clock_scheme: scheme,
        ..mem_config
    };
    run_on_algo(kind, mem_config, htm_config, build, opts)
}

/// [`run_on_algo`] with an explicit retry policy: overrides the runtime's
/// contention-management policy (every `AlgoKind` except the retry-free
/// global-lock oracle), so a figure can sweep
/// `(RetryPolicyHandle, AlgoKind, threads)` without assembling runtime
/// configs by hand.
pub fn run_on_algo_with_policy<W, B>(
    kind: AlgoKind,
    policy: &RetryPolicyHandle,
    mem_config: MemConfig,
    htm_config: HtmConfig,
    build: B,
    opts: &DriverOpts,
) -> BenchResult
where
    W: Workload,
    B: FnOnce(&Arc<HtmSim>) -> W,
{
    run_on_algo_inner(kind, Some(policy), mem_config, htm_config, build, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::hashtable::ConstantHashTable;

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in [
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Fast,
            AlgoKind::Rh1Mixed(10),
            AlgoKind::Rh1Mixed(100),
            AlgoKind::Rh1Slow,
            AlgoKind::Rh2,
            AlgoKind::GlobalLock,
        ] {
            assert_eq!(AlgoKind::parse(&kind.label()), Some(kind), "{kind:?}");
        }
        assert_eq!(AlgoKind::parse("nonsense"), None);
    }

    #[test]
    fn figure_set_matches_the_paper_legends() {
        let labels: Vec<_> = AlgoKind::FIGURE_SET.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "HTM",
                "Standard HyTM",
                "TL2",
                "RH1 Fast",
                "RH1 Mixed 10",
                "RH1 Mixed 100"
            ]
        );
    }

    #[test]
    fn clock_scheme_override_reaches_the_runtime() {
        let elements = 256;
        for scheme in ClockScheme::ALL {
            let mem_config =
                MemConfig::with_data_words(ConstantHashTable::required_words(elements) + 1024);
            let result = run_on_algo_with_clock(
                AlgoKind::Tl2,
                scheme,
                mem_config,
                HtmConfig::default(),
                |sim| ConstantHashTable::new(Arc::clone(sim), elements),
                &DriverOpts::counted(2, 20, 100),
            );
            assert_eq!(result.total_ops, 200, "{scheme:?}");
        }
    }

    #[test]
    fn retry_policy_override_reaches_every_runtime() {
        let elements = 256;
        for policy in RetryPolicyHandle::builtin() {
            for kind in [
                AlgoKind::Htm,
                AlgoKind::StdHytm,
                AlgoKind::Tl2,
                AlgoKind::Rh1Mixed(100),
                AlgoKind::Rh2,
            ] {
                let mem_config =
                    MemConfig::with_data_words(ConstantHashTable::required_words(elements) + 1024);
                let result = run_on_algo_with_policy(
                    kind,
                    &policy,
                    mem_config,
                    HtmConfig::default(),
                    |sim| ConstantHashTable::new(Arc::clone(sim), elements),
                    &DriverOpts::counted(2, 20, 100),
                );
                assert_eq!(result.total_ops, 200, "{kind:?} under {}", policy.label());
                assert_eq!(result.stats.commits(), 200, "{kind:?}");
            }
        }
    }

    #[test]
    fn instantiate_dyn_names_every_kind_and_runs_transactions() {
        use rhtm_api::DynThreadExt;
        use rhtm_htm::HtmSim;
        use rhtm_mem::TmMemory;

        for kind in [
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Fast,
            AlgoKind::Rh1Mixed(10),
            AlgoKind::Rh1Slow,
            AlgoKind::Rh2,
            AlgoKind::GlobalLock,
        ] {
            let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(64)));
            let sim = HtmSim::new(mem, HtmConfig::default());
            let cell = sim.mem().alloc(1);
            let rt = kind.instantiate_dyn(None, Arc::clone(&sim));
            assert_eq!(rt.name(), kind.label().as_str(), "{kind:?}");
            let mut th = rt.register_dyn();
            for _ in 0..10 {
                th.run(|tx| {
                    let v = tx.read(cell)?;
                    tx.write(cell, v + 1)
                });
            }
            assert_eq!(sim.nt_load(cell), 10, "{kind:?}");
            assert_eq!(th.stats().commits(), 10, "{kind:?}");
        }
    }

    #[test]
    fn every_algorithm_runs_the_same_workload() {
        let elements = 512;
        for kind in [
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Fast,
            AlgoKind::Rh1Mixed(100),
            AlgoKind::Rh1Slow,
            AlgoKind::Rh2,
            AlgoKind::GlobalLock,
        ] {
            let mem_config =
                MemConfig::with_data_words(ConstantHashTable::required_words(elements) + 1024);
            let result = run_on_algo(
                kind,
                mem_config,
                HtmConfig::default(),
                |sim| ConstantHashTable::new(Arc::clone(sim), elements),
                &DriverOpts::counted(2, 20, 200),
            );
            assert_eq!(result.total_ops, 400, "{kind:?}");
            assert_eq!(result.algorithm, kind.label().as_str(), "{kind:?}");
        }
    }
}
