//! The algorithm registry: every TM variant the paper's evaluation plots,
//! instantiable by name so a figure is just a loop over `(AlgoKind,
//! threads)`.
//!
//! [`AlgoKind`] names the *algorithm* axis only; the full runtime point
//! (algorithm × clock scheme × retry policy × memory/HTM shape) is a
//! [`TmSpec`], which is where runtimes are actually
//! constructed.  The helpers here are thin delegations kept for
//! ergonomics: [`visit_algo`] and [`AlgoKind::instantiate_dyn`] for code
//! that only varies the algorithm, [`run_on_algo`] for the default
//! benchmark path.

use std::sync::Arc;

use rhtm_api::{DynRuntime, TmRuntime};
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::MemConfig;

use crate::driver::DriverOpts;
use crate::report::BenchResult;
use crate::spec::TmSpec;
use crate::workload::Workload;

/// The algorithm variants of the paper's evaluation (plus the global-lock
/// oracle used by tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// Pure best-effort HTM with no instrumentation ("HTM").
    Htm,
    /// The instrumented standard hybrid, hardware-retries-only variant
    /// ("Standard HyTM").
    StdHytm,
    /// The TL2 software baseline ("TL2").
    Tl2,
    /// RH1 with hardware-only retries ("RH1 Fast").
    Rh1Fast,
    /// RH1 with the given percentage of aborted transactions retried on the
    /// mixed slow-path ("RH1 Mixed N").
    Rh1Mixed(u8),
    /// RH1 running every transaction on the mixed slow-path ("RH1 Slow",
    /// used by the single-thread breakdown table).
    Rh1Slow,
    /// Stand-alone RH2.
    Rh2,
    /// A single global lock (test oracle, not part of the paper's figures).
    GlobalLock,
}

impl AlgoKind {
    /// The series the paper plots in Figures 1–3.
    pub const FIGURE_SET: [AlgoKind; 6] = [
        AlgoKind::Htm,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Fast,
        AlgoKind::Rh1Mixed(10),
        AlgoKind::Rh1Mixed(100),
    ];

    /// Display name matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            AlgoKind::Htm => "HTM".to_string(),
            AlgoKind::StdHytm => "Standard HyTM".to_string(),
            AlgoKind::Tl2 => "TL2".to_string(),
            AlgoKind::Rh1Fast => "RH1 Fast".to_string(),
            AlgoKind::Rh1Mixed(p) => format!("RH1 Mixed {p}"),
            AlgoKind::Rh1Slow => "RH1 Slow".to_string(),
            AlgoKind::Rh2 => "RH2".to_string(),
            AlgoKind::GlobalLock => "GlobalLock".to_string(),
        }
    }

    /// The canonical machine-readable token of this kind: lower-kebab,
    /// accepted by [`AlgoKind::parse`] and used as the algorithm component
    /// of the [`TmSpec`] label grammar
    /// (`rh2+gv6+adaptive`).
    pub fn slug(&self) -> String {
        match self {
            AlgoKind::Htm => "htm".to_string(),
            AlgoKind::StdHytm => "standard-hytm".to_string(),
            AlgoKind::Tl2 => "tl2".to_string(),
            AlgoKind::Rh1Fast => "rh1-fast".to_string(),
            AlgoKind::Rh1Mixed(p) => format!("rh1-mixed-{p}"),
            AlgoKind::Rh1Slow => "rh1-slow".to_string(),
            AlgoKind::Rh2 => "rh2".to_string(),
            AlgoKind::GlobalLock => "global-lock".to_string(),
        }
    }

    /// Parses a label ([`AlgoKind::label`] or [`AlgoKind::slug`] form)
    /// back into a kind.  Near-miss labels — unknown names, mixed
    /// percentages outside `0..=100` — are rejected, never defaulted.
    pub fn parse(label: &str) -> Option<AlgoKind> {
        let l = label.trim().to_ascii_lowercase();
        match l.as_str() {
            "htm" => Some(AlgoKind::Htm),
            "standard-hytm" | "standard hytm" | "stdhytm" => Some(AlgoKind::StdHytm),
            "tl2" => Some(AlgoKind::Tl2),
            "rh1-fast" | "rh1 fast" => Some(AlgoKind::Rh1Fast),
            "rh1-slow" | "rh1 slow" => Some(AlgoKind::Rh1Slow),
            "rh2" => Some(AlgoKind::Rh2),
            "global-lock" | "globallock" => Some(AlgoKind::GlobalLock),
            _ => {
                let rest = l
                    .strip_prefix("rh1-mixed-")
                    .or_else(|| l.strip_prefix("rh1 mixed "))?;
                rest.parse()
                    .ok()
                    .filter(|&p| p <= 100)
                    .map(AlgoKind::Rh1Mixed)
            }
        }
    }

    /// Instantiates the runtime this kind names over `sim` as a value:
    /// a boxed [`DynRuntime`] instead of the visitor inversion, for tests
    /// and examples that want to hold runtimes in variables or
    /// collections.  Equivalent to
    /// `TmSpec::new(kind).instantiate_dyn_on(sim)`; use the spec when any
    /// other axis (clock, retry policy) varies too.
    ///
    /// The erased handles cost an indirect call per access, so measured
    /// benchmark loops should keep using the generic path
    /// ([`visit_algo`]/[`run_on_algo`]); everything else — setup,
    /// verification, driving a structure from a test — reads much better
    /// as a value:
    ///
    /// ```
    /// use rhtm_api::DynThreadExt;
    /// use rhtm_htm::{HtmConfig, HtmSim};
    /// use rhtm_mem::{MemConfig, TmMemory};
    /// use rhtm_workloads::AlgoKind;
    /// use std::sync::Arc;
    ///
    /// let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(64)));
    /// let sim = HtmSim::new(mem, HtmConfig::default());
    /// let cell = sim.mem().alloc(1);
    /// for kind in AlgoKind::FIGURE_SET {
    ///     let rt = kind.instantiate_dyn(Arc::clone(&sim));
    ///     let mut th = rt.register_dyn();
    ///     th.run(|tx| {
    ///         let v = tx.read(cell)?;
    ///         tx.write(cell, v + 1)
    ///     });
    /// }
    /// assert_eq!(sim.nt_load(cell), AlgoKind::FIGURE_SET.len() as u64);
    /// ```
    pub fn instantiate_dyn(&self, sim: Arc<HtmSim>) -> Box<dyn DynRuntime> {
        TmSpec::new(*self).instantiate_dyn_on(sim)
    }
}

/// A generic computation over the runtime an [`AlgoKind`] names.
///
/// `TmRuntime` is not object-safe (its `Thread` associated type), so "give
/// me the runtime for this kind" cannot return *the generic trait* as an
/// object; the visitor inverts the control instead:
/// [`TmSpec::visit`](crate::spec::TmSpec::visit) (or the algorithm-only
/// [`visit_algo`]) constructs the concrete runtime and calls
/// [`AlgoVisitor::visit`] with it, keeping the whole computation
/// monomorphised.  The benchmark driver is one visitor
/// ([`TmSpec::bench`](crate::spec::TmSpec::bench)).
///
/// Code that does not need monomorphised access — tests, examples, setup —
/// should prefer [`AlgoKind::instantiate_dyn`] /
/// [`TmSpec::instantiate_dyn`](crate::spec::TmSpec::instantiate_dyn),
/// which hand back the runtime as a plain `Box<dyn DynRuntime>` value
/// (erased through [`rhtm_api::dynamic`]) with no visitor struct to write.
pub trait AlgoVisitor {
    /// What the computation returns.
    type Out;

    /// Runs the computation against the constructed runtime.
    fn visit<R: TmRuntime>(self, runtime: R) -> Self::Out;
}

/// Instantiates the runtime `kind` names over `sim` — every other axis at
/// its default — and hands it to `visitor`.  Equivalent to
/// `TmSpec::new(kind).visit_on(sim, visitor)`; build the
/// [`TmSpec`] yourself when the clock or retry axis
/// varies too.
///
/// The simulator is shared, so a structure a workload built over it is
/// visible to the runtime.
pub fn visit_algo<V: AlgoVisitor>(kind: AlgoKind, sim: Arc<HtmSim>, visitor: V) -> V::Out {
    TmSpec::new(kind).visit_on(sim, visitor)
}

/// Builds a fresh shared memory + simulated HTM, constructs the workload
/// over it with `build`, instantiates the runtime selected by `kind` on the
/// *same* memory, and runs the benchmark.  Equivalent to
/// `TmSpec::new(kind).mem(mem_config).htm(htm_config).bench(build, opts)`.
///
/// `build` receives the simulator so it can allocate and initialise its
/// nodes; it runs before any worker thread exists.
pub fn run_on_algo<W, B>(
    kind: AlgoKind,
    mem_config: MemConfig,
    htm_config: HtmConfig,
    build: B,
    opts: &DriverOpts,
) -> BenchResult
where
    W: Workload,
    B: FnOnce(&Arc<HtmSim>) -> W,
{
    TmSpec::new(kind)
        .mem(mem_config)
        .htm(htm_config)
        .bench(build, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::OpMix;
    use crate::structures::hashtable::ConstantHashTable;
    use rhtm_api::RetryPolicyHandle;
    use rhtm_mem::ClockScheme;

    const EVERY_ALGO: [AlgoKind; 9] = [
        AlgoKind::Htm,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Fast,
        AlgoKind::Rh1Mixed(10),
        AlgoKind::Rh1Mixed(100),
        AlgoKind::Rh1Slow,
        AlgoKind::Rh2,
        AlgoKind::GlobalLock,
    ];

    fn counted(threads: usize, write_percent: u8, ops: u64) -> DriverOpts {
        DriverOpts::counted_mix(threads, OpMix::read_update(write_percent), ops)
    }

    #[test]
    fn labels_and_slugs_round_trip_through_parse() {
        for kind in EVERY_ALGO {
            assert_eq!(AlgoKind::parse(&kind.label()), Some(kind), "{kind:?}");
            assert_eq!(AlgoKind::parse(&kind.slug()), Some(kind), "{kind:?}");
        }
        assert_eq!(AlgoKind::parse("nonsense"), None);
        assert_eq!(AlgoKind::parse("rh1-mixed-101"), None, "percent > 100");
        assert_eq!(AlgoKind::parse("rh1-mixed-"), None);
    }

    #[test]
    fn figure_set_matches_the_paper_legends() {
        let labels: Vec<_> = AlgoKind::FIGURE_SET.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "HTM",
                "Standard HyTM",
                "TL2",
                "RH1 Fast",
                "RH1 Mixed 10",
                "RH1 Mixed 100"
            ]
        );
    }

    #[test]
    fn spec_builder_reaches_every_clock_scheme() {
        let elements = 256;
        for scheme in ClockScheme::ALL {
            let mem_config =
                MemConfig::with_data_words(ConstantHashTable::required_words(elements) + 1024);
            let result = TmSpec::new(AlgoKind::Tl2)
                .clock(scheme)
                .mem(mem_config)
                .htm(HtmConfig::default())
                .bench(
                    |sim| ConstantHashTable::new(Arc::clone(sim), elements),
                    &counted(2, 20, 100),
                );
            assert_eq!(result.total_ops, 200, "{scheme:?}");
            assert_eq!(
                result.spec,
                format!("tl2+{}+paper-default", scheme.label()),
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn spec_builder_reaches_every_retry_policy_and_runtime() {
        let elements = 256;
        for policy in RetryPolicyHandle::builtin() {
            for kind in [
                AlgoKind::Htm,
                AlgoKind::StdHytm,
                AlgoKind::Tl2,
                AlgoKind::Rh1Mixed(100),
                AlgoKind::Rh2,
            ] {
                let mem_config =
                    MemConfig::with_data_words(ConstantHashTable::required_words(elements) + 1024);
                let result = TmSpec::new(kind)
                    .retry(policy.clone())
                    .mem(mem_config)
                    .htm(HtmConfig::default())
                    .bench(
                        |sim| ConstantHashTable::new(Arc::clone(sim), elements),
                        &counted(2, 20, 100),
                    );
                assert_eq!(result.total_ops, 200, "{kind:?} under {}", policy.label());
                assert_eq!(result.stats.commits(), 200, "{kind:?}");
                assert_eq!(
                    result.spec,
                    format!("{}+gv-strict+{}", kind.slug(), policy.label())
                );
            }
        }
    }

    #[test]
    fn instantiate_dyn_names_every_kind_and_runs_transactions() {
        use rhtm_api::DynThreadExt;
        use rhtm_htm::HtmSim;
        use rhtm_mem::TmMemory;

        for kind in EVERY_ALGO {
            let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(64)));
            let sim = HtmSim::new(mem, HtmConfig::default());
            let cell = sim.mem().alloc(1);
            let rt = kind.instantiate_dyn(Arc::clone(&sim));
            assert_eq!(rt.name(), kind.label().as_str(), "{kind:?}");
            let mut th = rt.register_dyn();
            for _ in 0..10 {
                th.run(|tx| {
                    let v = tx.read(cell)?;
                    tx.write(cell, v + 1)
                });
            }
            assert_eq!(sim.nt_load(cell), 10, "{kind:?}");
            assert_eq!(th.stats().commits(), 10, "{kind:?}");
        }
    }

    #[test]
    fn every_algorithm_runs_the_same_workload() {
        let elements = 512;
        for kind in [
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Fast,
            AlgoKind::Rh1Mixed(100),
            AlgoKind::Rh1Slow,
            AlgoKind::Rh2,
            AlgoKind::GlobalLock,
        ] {
            let mem_config =
                MemConfig::with_data_words(ConstantHashTable::required_words(elements) + 1024);
            let result = run_on_algo(
                kind,
                mem_config,
                HtmConfig::default(),
                |sim| ConstantHashTable::new(Arc::clone(sim), elements),
                &counted(2, 20, 200),
            );
            assert_eq!(result.total_ops, 400, "{kind:?}");
            assert_eq!(result.algorithm, kind.label().as_str(), "{kind:?}");
            assert_eq!(
                result.spec,
                format!("{}+gv-strict+paper-default", kind.slug()),
                "{kind:?}"
            );
        }
    }
}
