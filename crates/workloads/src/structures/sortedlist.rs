//! The Constant Sorted List benchmark (paper §3.4).
//!
//! A singly-linked sorted list (the paper uses 1 K elements).  `search`
//! scans linearly from the head; `update` performs the same scan and then
//! writes the dummy payload of the found node.  Every transaction reads the
//! shared list prefix, so this is the paper's heavily-contended, long-
//! transaction case (abort ratios around 50% at 20 threads).

use std::sync::Arc;

use rhtm_api::{TmThread, TxResult};
use rhtm_htm::HtmSim;
use rhtm_mem::Addr;

use super::{decode_ptr, encode_ptr};
use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

const KEY: usize = 0;
const NEXT: usize = 1;
const DUMMY_BASE: usize = 2;
/// Dummy payload words per node.
pub const DUMMY_WORDS: usize = 4;
const NODE_WORDS: usize = 8;

/// The constant sorted-list workload.
pub struct ConstantSortedList {
    sim: Arc<HtmSim>,
    head: Addr,
    size: u64,
}

impl ConstantSortedList {
    /// Builds a list with keys `0..size` in ascending order.
    pub fn new(sim: Arc<HtmSim>, size: u64) -> Self {
        assert!(size > 0);
        let mem = sim.mem();
        let nodes = mem.alloc(size as usize * NODE_WORDS);
        let heap = mem.heap();
        for key in 0..size {
            let node = nodes.offset(key as usize * NODE_WORDS);
            heap.store(node.offset(KEY), key);
            let next = if key + 1 < size {
                Some(nodes.offset((key + 1) as usize * NODE_WORDS))
            } else {
                None
            };
            heap.store(node.offset(NEXT), encode_ptr(next));
            for d in 0..DUMMY_WORDS {
                heap.store(node.offset(DUMMY_BASE + d), 0);
            }
        }
        ConstantSortedList {
            sim,
            head: nodes,
            size,
        }
    }

    /// Number of keys stored.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The simulator the list lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// Transactionally searches for `key` with a linear scan.
    pub fn search<T: TmThread>(&self, tx: &mut T, key: u64) -> TxResult<Option<Addr>> {
        let mut node = Some(self.head);
        while let Some(n) = node {
            let k = tx.read(n.offset(KEY))?;
            if k == key {
                for d in 0..DUMMY_WORDS {
                    tx.read(n.offset(DUMMY_BASE + d))?;
                }
                return Ok(Some(n));
            }
            if k > key {
                return Ok(None);
            }
            node = decode_ptr(tx.read(n.offset(NEXT))?);
        }
        Ok(None)
    }

    /// Transactionally "updates" `key`: search followed by dummy writes.
    pub fn update<T: TmThread>(&self, tx: &mut T, key: u64, value: u64) -> TxResult<bool> {
        match self.search(tx, key)? {
            Some(node) => {
                for d in 0..DUMMY_WORDS {
                    tx.write(node.offset(DUMMY_BASE + d), value.wrapping_add(d as u64))?;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Words required for a list of `size` elements.
    pub fn required_words(size: u64) -> usize {
        size as usize * NODE_WORDS
    }

    /// Non-transactional sanity check: list length and sortedness.
    pub fn check_sorted(&self) -> (u64, bool) {
        let mut count = 0;
        let mut sorted = true;
        let mut prev_key = None;
        let mut node = Some(self.head);
        while let Some(n) = node {
            let k = self.sim.nt_load(n.offset(KEY));
            if let Some(p) = prev_key {
                sorted &= p < k;
            }
            prev_key = Some(k);
            count += 1;
            node = decode_ptr(self.sim.nt_load(n.offset(NEXT)));
        }
        (count, sorted)
    }
}

/// Kind mapping (constant shape): `Lookup`/`RangeSum` → linear search;
/// `Update`/`Insert`/`Remove` → search + dummy-payload write (the list
/// shape never changes, per the paper's emulation methodology).
impl Workload for ConstantSortedList {
    fn name(&self) -> String {
        format!("sortedlist-{}", self.size)
    }

    fn key_space(&self) -> u64 {
        self.size
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        if op.is_update() {
            let value = rng.next_u64();
            thread.execute(|tx| self.update(tx, key, value));
        } else {
            thread.execute(|tx| self.search(tx, key).map(|n| n.is_some()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_htm::{HtmConfig, HtmRuntime};
    use rhtm_mem::{MemConfig, TmMemory};

    fn list(size: u64) -> (HtmRuntime, Arc<ConstantSortedList>) {
        let mem_cfg = MemConfig::with_data_words(ConstantSortedList::required_words(size) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let list = Arc::new(ConstantSortedList::new(Arc::clone(&sim), size));
        (HtmRuntime::with_sim(sim), list)
    }

    #[test]
    fn construction_is_sorted_and_complete() {
        let (_rt, list) = list(500);
        assert_eq!(list.check_sorted(), (500, true));
    }

    #[test]
    fn search_and_update_find_keys() {
        let (rt, list) = list(64);
        let mut th = rt.register_thread();
        assert!(th.execute(|tx| list.search(tx, 0).map(|n| n.is_some())));
        assert!(th.execute(|tx| list.search(tx, 63).map(|n| n.is_some())));
        assert!(!th.execute(|tx| list.search(tx, 64).map(|n| n.is_some())));
        assert!(th.execute(|tx| list.update(tx, 32, 5)));
        assert_eq!(list.check_sorted(), (64, true));
    }

    #[test]
    fn searches_near_the_tail_need_capacity_proportional_to_position() {
        // Reading the whole list in one hardware transaction with a tiny
        // capacity must overflow, demonstrating the long-transaction regime
        // this workload models.
        let mem_cfg = MemConfig::with_data_words(ConstantSortedList::required_words(256) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::with_capacity(8, 8));
        let list = ConstantSortedList::new(Arc::clone(&sim), 256);
        let mut htm = rhtm_htm::HtmThread::new(sim, 0);
        htm.begin();
        let mut hit_capacity = false;
        let mut node = Some(list.head);
        'outer: while let Some(n) = node {
            for offset in [KEY, NEXT] {
                match htm.read(n.offset(offset)) {
                    Err(a) if a.cause == rhtm_api::AbortCause::Capacity => {
                        hit_capacity = true;
                        break 'outer;
                    }
                    Err(_) => break 'outer,
                    Ok(_) => {}
                }
            }
            node = decode_ptr(list.sim.nt_load(n.offset(NEXT)));
        }
        assert!(hit_capacity);
    }

    #[test]
    fn workload_mixed_operations() {
        let (rt, list) = list(128);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(4);
        for i in 0..200 {
            let op = if i % 20 == 0 {
                OpKind::Update
            } else {
                OpKind::Lookup
            };
            let key = rng.next_below(list.key_space());
            list.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 200);
    }
}
