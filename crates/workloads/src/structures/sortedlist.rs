//! The Constant Sorted List benchmark (paper §3.4).
//!
//! A singly-linked sorted list (the paper uses 1 K elements).  `search`
//! scans linearly from the head; `update` performs the same scan and then
//! writes the dummy payload of the found node.  Every transaction reads the
//! shared list prefix, so this is the paper's heavily-contended, long-
//! transaction case (abort ratios around 50% at 20 threads).

use std::sync::Arc;

use rhtm_api::typed::{Field, FieldArray, LayoutBuilder, Record, TxLayout, TxPtr, TypedAlloc};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

/// Dummy payload words per node.
pub const DUMMY_WORDS: usize = 4;

/// The heap record of one list node.
pub struct ListNode;

type Link = Option<TxPtr<ListNode>>;

#[allow(clippy::type_complexity)] // the layout-builder tuple idiom
const NODE: (
    TxLayout<ListNode>,
    Field<ListNode, u64>,
    Field<ListNode, Link>,
    FieldArray<ListNode, u64>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, next) = b.field();
    let (b, dummy) = b.array(DUMMY_WORDS);
    (b.pad_to(8).finish(), key, next, dummy)
};
const KEY: Field<ListNode, u64> = NODE.1;
const NEXT: Field<ListNode, Link> = NODE.2;
const DUMMY: FieldArray<ListNode, u64> = NODE.3;

impl Record for ListNode {
    const LAYOUT: TxLayout<ListNode> = NODE.0;
}

/// The constant sorted-list workload.
pub struct ConstantSortedList {
    sim: Arc<HtmSim>,
    head: TxPtr<ListNode>,
    size: u64,
}

impl ConstantSortedList {
    /// Builds a list with keys `0..size` in ascending order.
    pub fn new(sim: Arc<HtmSim>, size: u64) -> Self {
        assert!(size > 0);
        let mem = sim.mem();
        let nodes = mem.alloc_records::<ListNode>(size as usize);
        let node_at = |key: u64| nodes.get(key as usize);
        let heap = mem.heap();
        for key in 0..size {
            let node = node_at(key);
            node.field(KEY).store(heap, key);
            let next = if key + 1 < size {
                Some(node_at(key + 1))
            } else {
                None
            };
            node.field(NEXT).store(heap, next);
            for d in 0..DUMMY_WORDS {
                node.slot(DUMMY, d).store(heap, 0);
            }
        }
        ConstantSortedList {
            sim,
            head: node_at(0),
            size,
        }
    }

    /// Number of keys stored.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The simulator the list lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The first node (test helper for capacity experiments that walk the
    /// list raw).
    pub fn head(&self) -> TxPtr<ListNode> {
        self.head
    }

    /// Transactionally searches for `key` with a linear scan.
    pub fn search<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Link> {
        let mut node = Some(self.head);
        while let Some(n) = node {
            let k = n.field(KEY).read(tx)?;
            if k == key {
                for d in 0..DUMMY_WORDS {
                    n.slot(DUMMY, d).read(tx)?;
                }
                return Ok(Some(n));
            }
            if k > key {
                return Ok(None);
            }
            node = n.field(NEXT).read(tx)?;
        }
        Ok(None)
    }

    /// Transactionally "updates" `key`: search followed by dummy writes.
    pub fn update<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, value: u64) -> TxResult<bool> {
        match self.search(tx, key)? {
            Some(node) => {
                for d in 0..DUMMY_WORDS {
                    node.slot(DUMMY, d)
                        .write(tx, value.wrapping_add(d as u64))?;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Words required for a list of `size` elements.
    pub fn required_words(size: u64) -> usize {
        size as usize * ListNode::WORDS
    }

    /// Non-transactional sanity check: list length and sortedness.
    pub fn check_sorted(&self) -> (u64, bool) {
        let mut count = 0;
        let mut sorted = true;
        let mut prev_key = None;
        let mut node = Some(self.head);
        while let Some(n) = node {
            let k = self.sim.nt_read(n.field(KEY));
            if let Some(p) = prev_key {
                sorted &= p < k;
            }
            prev_key = Some(k);
            count += 1;
            node = self.sim.nt_read(n.field(NEXT));
        }
        (count, sorted)
    }
}

/// Kind mapping (constant shape): `Lookup`/`RangeSum` → linear search;
/// `Update`/`Insert`/`Remove` → search + dummy-payload write (the list
/// shape never changes, per the paper's emulation methodology).
impl Workload for ConstantSortedList {
    fn name(&self) -> String {
        format!("sortedlist-{}", self.size)
    }

    fn key_space(&self) -> u64 {
        self.size
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        if op.is_update() {
            let value = rng.next_u64();
            thread.execute(|tx| self.update(tx, key, value));
        } else {
            thread.execute(|tx| self.search(tx, key).map(|n| n.is_some()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_htm::{HtmConfig, HtmRuntime};
    use rhtm_mem::{MemConfig, TmMemory};

    fn list(size: u64) -> (HtmRuntime, Arc<ConstantSortedList>) {
        let mem_cfg = MemConfig::with_data_words(ConstantSortedList::required_words(size) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let list = Arc::new(ConstantSortedList::new(Arc::clone(&sim), size));
        (HtmRuntime::with_sim(sim), list)
    }

    #[test]
    fn construction_is_sorted_and_complete() {
        let (_rt, list) = list(500);
        assert_eq!(list.check_sorted(), (500, true));
    }

    #[test]
    fn search_and_update_find_keys() {
        let (rt, list) = list(64);
        let mut th = rt.register_thread();
        assert!(th.execute(|tx| list.search(tx, 0).map(|n| n.is_some())));
        assert!(th.execute(|tx| list.search(tx, 63).map(|n| n.is_some())));
        assert!(!th.execute(|tx| list.search(tx, 64).map(|n| n.is_some())));
        assert!(th.execute(|tx| list.update(tx, 32, 5)));
        assert_eq!(list.check_sorted(), (64, true));
    }

    #[test]
    fn searches_near_the_tail_need_capacity_proportional_to_position() {
        // Reading the whole list in one hardware transaction with a tiny
        // capacity must overflow, demonstrating the long-transaction regime
        // this workload models.
        let mem_cfg = MemConfig::with_data_words(ConstantSortedList::required_words(256) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::with_capacity(8, 8));
        let list = ConstantSortedList::new(Arc::clone(&sim), 256);
        let mut htm = rhtm_htm::HtmThread::new(sim, 0);
        htm.begin();
        let mut hit_capacity = false;
        let mut node = Some(list.head());
        'outer: while let Some(n) = node {
            for cell in [n.field(KEY).addr(), n.field(NEXT).addr()] {
                match htm.read(cell) {
                    Err(a) if a.cause == rhtm_api::AbortCause::Capacity => {
                        hit_capacity = true;
                        break 'outer;
                    }
                    Err(_) => break 'outer,
                    Ok(_) => {}
                }
            }
            node = list.sim.nt_read(n.field(NEXT));
        }
        assert!(hit_capacity);
    }

    #[test]
    fn workload_mixed_operations() {
        let (rt, list) = list(128);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(4);
        for i in 0..200 {
            let op = if i % 20 == 0 {
                OpKind::Update
            } else {
                OpKind::Lookup
            };
            let key = rng.next_below(list.key_space());
            list.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 200);
    }
}
