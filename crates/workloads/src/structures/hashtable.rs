//! The Constant Hash Table benchmark (paper §3.3).
//!
//! A chained hash table populated with distinct keys.  `query` hashes the
//! key, walks the bucket chain and reads the dummy payload of the matching
//! node; `update` performs the same search and then writes the dummy
//! payload — never the chain pointers — so the table's shape is constant.
//!
//! Transactions here are much shorter than the red-black tree's, which is
//! why the paper's Figure 3 (left) shows a much smaller HTM-over-STM gap on
//! this workload.

use std::sync::Arc;

use rhtm_api::typed::{
    Field, FieldArray, LayoutBuilder, Record, TxCell, TxLayout, TxPtr, TxSlice, TypedAlloc,
};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

/// Dummy payload words per node.
pub const DUMMY_WORDS: usize = 4;

/// The heap record of one chained node.
pub struct HtNode;

type Link = Option<TxPtr<HtNode>>;

#[allow(clippy::type_complexity)] // the layout-builder tuple idiom
const NODE: (
    TxLayout<HtNode>,
    Field<HtNode, u64>,
    Field<HtNode, Link>,
    FieldArray<HtNode, u64>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, next) = b.field();
    let (b, dummy) = b.array(DUMMY_WORDS);
    (b.pad_to(8).finish(), key, next, dummy)
};
const KEY: Field<HtNode, u64> = NODE.1;
const NEXT: Field<HtNode, Link> = NODE.2;
const DUMMY: FieldArray<HtNode, u64> = NODE.3;

impl Record for HtNode {
    const LAYOUT: TxLayout<HtNode> = NODE.0;
}

/// The constant hash-table workload.
pub struct ConstantHashTable {
    sim: Arc<HtmSim>,
    buckets: TxSlice<Link>,
    bucket_mask: u64,
    size: u64,
}

impl ConstantHashTable {
    /// Builds a table with keys `0..size`, using roughly two buckets per
    /// element so chains stay short (as in the paper's "highly distributed"
    /// access pattern).
    pub fn new(sim: Arc<HtmSim>, size: u64) -> Self {
        assert!(size > 0);
        let bucket_count = (2 * size).next_power_of_two();
        let mem = sim.mem();
        let buckets: TxSlice<Link> = mem.alloc_slice(bucket_count as usize);
        let heap = mem.heap();
        for bucket in buckets.iter() {
            bucket.store(heap, None);
        }
        let nodes = mem.alloc_records::<HtNode>(size as usize);
        let table = ConstantHashTable {
            sim,
            buckets,
            bucket_mask: bucket_count - 1,
            size,
        };
        let heap = table.sim.mem().heap();
        for key in 0..size {
            let node = nodes.get(key as usize);
            node.field(KEY).store(heap, key);
            for d in 0..DUMMY_WORDS {
                node.slot(DUMMY, d).store(heap, 0);
            }
            // Push at the head of the bucket chain.
            let bucket = table.bucket(key);
            let head = bucket.load(heap);
            node.field(NEXT).store(heap, head);
            bucket.store(heap, Some(node));
        }
        table
    }

    /// Number of keys stored.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The simulator the table lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    #[inline]
    fn bucket(&self, key: u64) -> TxCell<Link> {
        // Multiply-shift hash, then mask into the bucket array.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        self.buckets.get((h & self.bucket_mask) as usize)
    }

    /// Walks `key`'s bucket chain without touching the payload (the
    /// minimal-footprint search shared by every operation).
    fn find<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Link> {
        let mut node = self.bucket(key).read(tx)?;
        while let Some(n) = node {
            if n.field(KEY).read(tx)? == key {
                return Ok(Some(n));
            }
            node = n.field(NEXT).read(tx)?;
        }
        Ok(None)
    }

    /// Transactionally looks up `key`, reading the dummy payload of the
    /// matching node.  Returns the node when found.
    pub fn query<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Link> {
        match self.find(tx, key)? {
            Some(n) => {
                for d in 0..DUMMY_WORDS {
                    n.slot(DUMMY, d).read(tx)?;
                }
                Ok(Some(n))
            }
            None => Ok(None),
        }
    }

    /// In-transaction read of `key`'s *value* — the first dummy word, which
    /// composed workloads (the [`TxBank`](crate::structures::bank::TxBank)
    /// accounts) use as real state rather than dummy payload.  `None` when
    /// the key is absent.  Unlike [`ConstantHashTable::query`] it touches
    /// only that one payload word, keeping the footprint minimal for
    /// composition with other structures in the same transaction.
    pub fn read_value<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Option<u64>> {
        match self.find(tx, key)? {
            Some(n) => Ok(Some(n.slot(DUMMY, 0).read(tx)?)),
            None => Ok(None),
        }
    }

    /// In-transaction write of `key`'s value slot (see
    /// [`ConstantHashTable::read_value`]); `false` when the key is absent.
    /// The structure's shape is untouched.
    pub fn write_value<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, value: u64) -> TxResult<bool> {
        match self.find(tx, key)? {
            Some(n) => {
                n.slot(DUMMY, 0).write(tx, value)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Non-transactionally seeds `key`'s value slot (construction-time
    /// prefill; must not race transactions).  Panics when `key` was never
    /// inserted.
    pub fn seed_value(&self, key: u64, value: u64) {
        let heap = self.sim.mem().heap();
        let mut node = self.bucket(key).load(heap);
        while let Some(n) = node {
            if n.field(KEY).load(heap) == key {
                n.slot(DUMMY, 0).store(heap, value);
                return;
            }
            node = n.field(NEXT).load(heap);
        }
        panic!("seed_value: key {key} not present");
    }

    /// Transactionally "updates" `key`: query followed by dummy writes into
    /// the found node (the structure is never modified).
    pub fn update<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, value: u64) -> TxResult<bool> {
        match self.query(tx, key)? {
            Some(node) => {
                for d in 0..DUMMY_WORDS {
                    node.slot(DUMMY, d)
                        .write(tx, value.wrapping_add(d as u64))?;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Words required for a table of `size` elements.
    pub fn required_words(size: u64) -> usize {
        let bucket_count = (2 * size).next_power_of_two() as usize;
        bucket_count + size as usize * HtNode::WORDS
    }

    /// Non-transactional sanity check: number of elements reachable through
    /// the bucket chains.
    pub fn count_reachable(&self) -> u64 {
        let mut count = 0;
        for b in 0..=self.bucket_mask {
            let mut node = self.sim.nt_read(self.buckets.get(b as usize));
            while let Some(n) = node {
                count += 1;
                node = self.sim.nt_read(n.field(NEXT));
            }
        }
        count
    }
}

/// Kind mapping (constant shape): `Lookup`/`RangeSum` → bucket-chain
/// query; `Update`/`Insert`/`Remove` → query + dummy-payload write (the
/// chains never change, per the paper's emulation methodology).
impl Workload for ConstantHashTable {
    fn name(&self) -> String {
        format!("hashtable-{}k", self.size / 1000)
    }

    fn key_space(&self) -> u64 {
        self.size
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        if op.is_update() {
            let value = rng.next_u64();
            thread.execute(|tx| self.update(tx, key, value));
        } else {
            thread.execute(|tx| self.query(tx, key).map(|n| n.is_some()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_htm::{HtmConfig, HtmRuntime};
    use rhtm_mem::{MemConfig, TmMemory};

    fn table(size: u64) -> (HtmRuntime, Arc<ConstantHashTable>) {
        let mem_cfg = MemConfig::with_data_words(ConstantHashTable::required_words(size) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let table = Arc::new(ConstantHashTable::new(Arc::clone(&sim), size));
        (HtmRuntime::with_sim(sim), table)
    }

    #[test]
    fn construction_links_every_element() {
        let (_rt, table) = table(5_000);
        assert_eq!(table.count_reachable(), 5_000);
    }

    #[test]
    fn query_finds_present_and_rejects_absent_keys() {
        let (rt, table) = table(1_000);
        let mut th = rt.register_thread();
        for key in [0u64, 1, 500, 999] {
            assert!(th.execute(|tx| table.query(tx, key).map(|n| n.is_some())));
        }
        assert!(!th.execute(|tx| table.query(tx, 1_000).map(|n| n.is_some())));
        assert!(!th.execute(|tx| table.query(tx, u64::MAX / 2).map(|n| n.is_some())));
    }

    #[test]
    fn update_touches_only_dummy_words() {
        let (rt, table) = table(100);
        let mut th = rt.register_thread();
        assert!(th.execute(|tx| table.update(tx, 7, 0x1234)));
        assert_eq!(table.count_reachable(), 100);
        assert!(!th.execute(|tx| table.update(tx, 100, 1)));
    }

    #[test]
    fn value_slot_round_trips_and_respects_absence() {
        let (rt, table) = table(64);
        let mut th = rt.register_thread();
        assert_eq!(th.execute(|tx| table.read_value(tx, 3)), Some(0));
        assert!(th.execute(|tx| table.write_value(tx, 3, 77)));
        assert_eq!(th.execute(|tx| table.read_value(tx, 3)), Some(77));
        table.seed_value(5, 1_000);
        assert_eq!(th.execute(|tx| table.read_value(tx, 5)), Some(1_000));
        assert_eq!(th.execute(|tx| table.read_value(tx, 64)), None);
        assert!(!th.execute(|tx| table.write_value(tx, 64, 1)));
        assert_eq!(table.count_reachable(), 64, "shape untouched");
    }

    #[test]
    fn workload_mixed_operations() {
        let (rt, table) = table(256);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(9);
        for i in 0..300 {
            let op = if i % 5 == 0 {
                OpKind::Update
            } else {
                OpKind::Lookup
            };
            let key = rng.next_below(table.key_space());
            table.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 300);
    }
}
