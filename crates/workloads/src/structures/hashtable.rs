//! The Constant Hash Table benchmark (paper §3.3).
//!
//! A chained hash table populated with distinct keys.  `query` hashes the
//! key, walks the bucket chain and reads the dummy payload of the matching
//! node; `update` performs the same search and then writes the dummy
//! payload — never the chain pointers — so the table's shape is constant.
//!
//! Transactions here are much shorter than the red-black tree's, which is
//! why the paper's Figure 3 (left) shows a much smaller HTM-over-STM gap on
//! this workload.
//!
//! Beyond the paper's constant-shape operations, the table also carries a
//! **mutable extension** ([`ConstantHashTable::insert`] /
//! [`ConstantHashTable::remove`]) backed by the shared epoch-based
//! reclamation scheme ([`rhtm_api::reclaim::NodePool`]): spare nodes are
//! allocated from the calling thread's arena before the transaction, a
//! committed remove retires its node afterwards, and retired nodes are
//! recycled once every thread has passed the retiring epoch.  The
//! [`Workload`] impl still drives only the constant-shape operations, so
//! the paper benchmark is untouched.

use std::sync::Arc;

use rhtm_api::reclaim::{EpochGuard, NodePool};
use rhtm_api::typed::{
    Field, FieldArray, LayoutBuilder, OrSized, Record, TxCell, TxLayout, TxPtr, TxSlice, TypedAlloc,
};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;
use rhtm_mem::{MemConfig, MemMetrics, OutOfMemory};

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::structures::skiplist::InsertOutcome;
use crate::workload::Workload;

/// The sizing helper named by every allocation-failure panic.
const SIZING_HINT: &str = "ConstantHashTable::required_words(size)";

/// Dummy payload words per node.
pub const DUMMY_WORDS: usize = 4;

/// The heap record of one chained node.
pub struct HtNode;

type Link = Option<TxPtr<HtNode>>;

#[allow(clippy::type_complexity)] // the layout-builder tuple idiom
const NODE: (
    TxLayout<HtNode>,
    Field<HtNode, u64>,
    Field<HtNode, Link>,
    FieldArray<HtNode, u64>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, next) = b.field();
    let (b, dummy) = b.array(DUMMY_WORDS);
    (b.pad_to(8).finish(), key, next, dummy)
};
const KEY: Field<HtNode, u64> = NODE.1;
const NEXT: Field<HtNode, Link> = NODE.2;
const DUMMY: FieldArray<HtNode, u64> = NODE.3;

impl Record for HtNode {
    const LAYOUT: TxLayout<HtNode> = NODE.0;
}

/// The constant hash-table workload.
pub struct ConstantHashTable {
    sim: Arc<HtmSim>,
    buckets: TxSlice<Link>,
    pool: NodePool<HtNode>,
    bucket_mask: u64,
    size: u64,
}

impl ConstantHashTable {
    /// Builds a table with keys `0..size`, using roughly two buckets per
    /// element so chains stay short (as in the paper's "highly distributed"
    /// access pattern).
    pub fn new(sim: Arc<HtmSim>, size: u64) -> Self {
        assert!(size > 0);
        let bucket_count = (2 * size).next_power_of_two();
        let mem = sim.mem();
        let buckets: TxSlice<Link> = mem.alloc_slice(bucket_count as usize);
        let heap = mem.heap();
        for bucket in buckets.iter() {
            bucket.store_relaxed(heap, None);
        }
        let nodes = mem.alloc_records::<HtNode>(size as usize);
        let pool = NodePool::new(Arc::clone(mem));
        let table = ConstantHashTable {
            sim,
            buckets,
            pool,
            bucket_mask: bucket_count - 1,
            size,
        };
        let heap = table.sim.mem().heap();
        // Construction-time seeding: relaxed stores, no transactions yet
        // (publication to worker threads happens-before via their spawn).
        for key in 0..size {
            let node = nodes.get(key as usize);
            node.field(KEY).store_relaxed(heap, key);
            for d in 0..DUMMY_WORDS {
                node.slot(DUMMY, d).store_relaxed(heap, 0);
            }
            // Push at the head of the bucket chain.
            let bucket = table.bucket(key);
            let head = bucket.load_relaxed(heap);
            node.field(NEXT).store_relaxed(heap, head);
            bucket.store_relaxed(heap, Some(node));
        }
        table
    }

    /// Number of keys stored.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The simulator the table lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    #[inline]
    fn bucket(&self, key: u64) -> TxCell<Link> {
        // Multiply-shift hash, then mask into the bucket array.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        self.buckets.get((h & self.bucket_mask) as usize)
    }

    /// Walks `key`'s bucket chain without touching the payload (the
    /// minimal-footprint search shared by every operation).
    fn find<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Link> {
        let mut node = self.bucket(key).read(tx)?;
        while let Some(n) = node {
            if n.field(KEY).read(tx)? == key {
                return Ok(Some(n));
            }
            node = n.field(NEXT).read(tx)?;
        }
        Ok(None)
    }

    /// Transactionally looks up `key`, reading the dummy payload of the
    /// matching node.  Returns the node when found.
    pub fn query<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Link> {
        match self.find(tx, key)? {
            Some(n) => {
                for d in 0..DUMMY_WORDS {
                    n.slot(DUMMY, d).read(tx)?;
                }
                Ok(Some(n))
            }
            None => Ok(None),
        }
    }

    /// In-transaction read of `key`'s *value* — the first dummy word, which
    /// composed workloads (the [`TxBank`](crate::structures::bank::TxBank)
    /// accounts) use as real state rather than dummy payload.  `None` when
    /// the key is absent.  Unlike [`ConstantHashTable::query`] it touches
    /// only that one payload word, keeping the footprint minimal for
    /// composition with other structures in the same transaction.
    pub fn read_value<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Option<u64>> {
        match self.find(tx, key)? {
            Some(n) => Ok(Some(n.slot(DUMMY, 0).read(tx)?)),
            None => Ok(None),
        }
    }

    /// In-transaction write of `key`'s value slot (see
    /// [`ConstantHashTable::read_value`]); `false` when the key is absent.
    /// The structure's shape is untouched.
    pub fn write_value<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, value: u64) -> TxResult<bool> {
        match self.find(tx, key)? {
            Some(n) => {
                n.slot(DUMMY, 0).write(tx, value)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Non-transactionally seeds `key`'s value slot (construction-time
    /// prefill; must not race transactions).  Panics when `key` was never
    /// inserted.
    pub fn seed_value(&self, key: u64, value: u64) {
        let heap = self.sim.mem().heap();
        let mut node = self.bucket(key).load(heap);
        while let Some(n) = node {
            if n.field(KEY).load(heap) == key {
                n.slot(DUMMY, 0).store(heap, value);
                return;
            }
            node = n.field(NEXT).load(heap);
        }
        panic!("seed_value: key {key} not present");
    }

    /// Transactionally "updates" `key`: query followed by dummy writes into
    /// the found node (the structure is never modified).
    pub fn update<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, value: u64) -> TxResult<bool> {
        match self.query(tx, key)? {
            Some(node) => {
                for d in 0..DUMMY_WORDS {
                    node.slot(DUMMY, d)
                        .write(tx, value.wrapping_add(d as u64))?;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Words required for a table of `size` elements.
    pub fn required_words(size: u64) -> usize {
        let bucket_count = (2 * size).next_power_of_two() as usize;
        bucket_count + size as usize * HtNode::WORDS
    }

    /// Extra heap words for driving the **mutable** extension with
    /// `threads` workers: transient spares, not-yet-reclaimed retirees and
    /// one arena block per thread.
    pub fn mutable_extra_words(threads: usize) -> usize {
        let threads = threads.max(1);
        threads * 4 * HtNode::WORDS + threads * MemConfig::DEFAULT_ARENA_BLOCK_WORDS
    }

    /// The node pool of the mutable extension (reclamation counters live
    /// here).
    pub fn pool(&self) -> &NodePool<HtNode> {
        &self.pool
    }

    /// Pins `thread_id` in the memory's epoch set for the duration of the
    /// returned guard (see [`TxSkipList::pin`](crate::structures::skiplist::TxSkipList::pin)).
    pub fn pin(&self, thread_id: usize) -> EpochGuard<'_> {
        EpochGuard::pin(self.sim.mem().epochs(), thread_id)
    }

    /// Checked spare-node allocation for the mutable extension (call
    /// unpinned, before the transaction).
    pub fn try_alloc_spare(
        &self,
        thread_id: usize,
        metrics: &mut MemMetrics,
    ) -> Result<TxPtr<HtNode>, OutOfMemory> {
        self.pool.try_alloc(thread_id, metrics)
    }

    /// [`try_alloc_spare`](Self::try_alloc_spare), panicking with the
    /// sizing hint on exhaustion.
    pub fn alloc_spare(&self, thread_id: usize, metrics: &mut MemMetrics) -> TxPtr<HtNode> {
        self.try_alloc_spare(thread_id, metrics)
            .or_sized(SIZING_HINT)
    }

    /// In-transaction insert/upsert of `key → value` (a *shape-changing*
    /// operation; not part of the paper's constant benchmark).  Follows
    /// the shared spare idiom ([`InsertOutcome`]): the caller-supplied
    /// spare is consumed only on [`InsertOutcome::Inserted`].
    pub fn insert_in<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        key: u64,
        value: u64,
        spare: Option<TxPtr<HtNode>>,
    ) -> TxResult<InsertOutcome> {
        if let Some(n) = self.find(tx, key)? {
            n.slot(DUMMY, 0).write(tx, value)?;
            return Ok(InsertOutcome::Updated);
        }
        let node = match spare {
            Some(s) => s,
            None => return Ok(InsertOutcome::NeedNode),
        };
        node.field(KEY).write(tx, key)?;
        node.slot(DUMMY, 0).write(tx, value)?;
        for d in 1..DUMMY_WORDS {
            node.slot(DUMMY, d).write(tx, 0)?;
        }
        let bucket = self.bucket(key);
        let head = bucket.read(tx)?;
        node.field(NEXT).write(tx, head)?;
        bucket.write(tx, Some(node))?;
        Ok(InsertOutcome::Inserted)
    }

    /// In-transaction remove of `key`, returning its value and the
    /// unlinked node (retire it **after** the transaction commits), or
    /// `None` when absent.
    pub fn remove_in<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        key: u64,
    ) -> TxResult<Option<(u64, TxPtr<HtNode>)>> {
        let bucket = self.bucket(key);
        let mut prev: Option<TxPtr<HtNode>> = None;
        let mut curr = bucket.read(tx)?;
        while let Some(n) = curr {
            let next = n.field(NEXT).read(tx)?;
            if n.field(KEY).read(tx)? == key {
                let value = n.slot(DUMMY, 0).read(tx)?;
                match prev {
                    Some(p) => p.field(NEXT).write(tx, next)?,
                    None => bucket.write(tx, next)?,
                }
                return Ok(Some((value, n)));
            }
            prev = Some(n);
            curr = next;
        }
        Ok(None)
    }

    /// Transactionally inserts `key` (or overwrites its value).  Returns
    /// `true` when newly inserted.  The canonical pool life cycle:
    /// allocate the spare unpinned, pin, run the transaction, return an
    /// unused spare.
    pub fn insert<T: TmThread>(&self, thread: &mut T, key: u64, value: u64) -> bool {
        let tid = thread.thread_id();
        let spare = self.alloc_spare(tid, &mut thread.stats_mut().mem);
        let outcome = {
            let _guard = self.pin(tid);
            thread.execute(|tx| self.insert_in(tx, key, value, Some(spare)))
        };
        match outcome {
            InsertOutcome::Inserted => true,
            InsertOutcome::Updated => {
                self.pool.give_back(tid, spare);
                false
            }
            InsertOutcome::NeedNode => unreachable!("a spare was supplied"),
        }
    }

    /// Transactionally removes `key`, returning its value when present;
    /// the node is retired to the pool once the remove commits.
    pub fn remove<T: TmThread>(&self, thread: &mut T, key: u64) -> Option<u64> {
        let tid = thread.thread_id();
        let removed = {
            let _guard = self.pin(tid);
            thread.execute(|tx| self.remove_in(tx, key))
        };
        removed.map(|(value, node)| {
            self.pool.retire(tid, node, &mut thread.stats_mut().mem);
            value
        })
    }

    /// Non-transactional sanity check: number of elements reachable through
    /// the bucket chains.
    pub fn count_reachable(&self) -> u64 {
        let mut count = 0;
        for b in 0..=self.bucket_mask {
            let mut node = self.sim.nt_read(self.buckets.get(b as usize));
            while let Some(n) = node {
                count += 1;
                node = self.sim.nt_read(n.field(NEXT));
            }
        }
        count
    }
}

/// Kind mapping (constant shape): `Lookup`/`RangeSum` → bucket-chain
/// query; `Update`/`Insert`/`Remove` → query + dummy-payload write (the
/// chains never change, per the paper's emulation methodology).
impl Workload for ConstantHashTable {
    fn name(&self) -> String {
        format!("hashtable-{}k", self.size / 1000)
    }

    fn key_space(&self) -> u64 {
        self.size
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        if op.is_update() {
            let value = rng.next_u64();
            thread.execute(|tx| self.update(tx, key, value));
        } else {
            thread.execute(|tx| self.query(tx, key).map(|n| n.is_some()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_htm::{HtmConfig, HtmRuntime};
    use rhtm_mem::{MemConfig, TmMemory};

    fn table(size: u64) -> (HtmRuntime, Arc<ConstantHashTable>) {
        let mem_cfg = MemConfig::with_data_words(ConstantHashTable::required_words(size) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let table = Arc::new(ConstantHashTable::new(Arc::clone(&sim), size));
        (HtmRuntime::with_sim(sim), table)
    }

    #[test]
    fn construction_links_every_element() {
        let (_rt, table) = table(5_000);
        assert_eq!(table.count_reachable(), 5_000);
    }

    #[test]
    fn query_finds_present_and_rejects_absent_keys() {
        let (rt, table) = table(1_000);
        let mut th = rt.register_thread();
        for key in [0u64, 1, 500, 999] {
            assert!(th.execute(|tx| table.query(tx, key).map(|n| n.is_some())));
        }
        assert!(!th.execute(|tx| table.query(tx, 1_000).map(|n| n.is_some())));
        assert!(!th.execute(|tx| table.query(tx, u64::MAX / 2).map(|n| n.is_some())));
    }

    #[test]
    fn update_touches_only_dummy_words() {
        let (rt, table) = table(100);
        let mut th = rt.register_thread();
        assert!(th.execute(|tx| table.update(tx, 7, 0x1234)));
        assert_eq!(table.count_reachable(), 100);
        assert!(!th.execute(|tx| table.update(tx, 100, 1)));
    }

    #[test]
    fn value_slot_round_trips_and_respects_absence() {
        let (rt, table) = table(64);
        let mut th = rt.register_thread();
        assert_eq!(th.execute(|tx| table.read_value(tx, 3)), Some(0));
        assert!(th.execute(|tx| table.write_value(tx, 3, 77)));
        assert_eq!(th.execute(|tx| table.read_value(tx, 3)), Some(77));
        table.seed_value(5, 1_000);
        assert_eq!(th.execute(|tx| table.read_value(tx, 5)), Some(1_000));
        assert_eq!(th.execute(|tx| table.read_value(tx, 64)), None);
        assert!(!th.execute(|tx| table.write_value(tx, 64, 1)));
        assert_eq!(table.count_reachable(), 64, "shape untouched");
    }

    #[test]
    fn mutable_extension_round_trips_and_recycles() {
        let mem_cfg = MemConfig::with_data_words(
            ConstantHashTable::required_words(64)
                + ConstantHashTable::mutable_extra_words(1)
                + 1024,
        );
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let table = ConstantHashTable::new(Arc::clone(&sim), 64);
        let rt = HtmRuntime::with_sim(sim);
        let mut th = rt.register_thread();
        // Shape-changing operations on keys beyond the seeded 0..64.
        assert!(table.insert(&mut th, 100, 7));
        assert!(!table.insert(&mut th, 100, 8), "second insert updates");
        assert_eq!(th.execute(|tx| table.read_value(tx, 100)), Some(8));
        assert_eq!(table.count_reachable(), 65);
        assert_eq!(table.remove(&mut th, 100), Some(8));
        assert_eq!(table.remove(&mut th, 100), None);
        assert_eq!(table.count_reachable(), 64);
        // Churn: removed nodes recycle through the pool instead of
        // growing the heap.
        for round in 0..50u64 {
            let key = 200 + (round % 4);
            assert!(table.insert(&mut th, key, round));
            assert_eq!(table.remove(&mut th, key), Some(round));
        }
        let pool = table.pool();
        assert!(pool.reclaimed_count() >= 49);
        assert_eq!(pool.unsafe_reclaims(), 0);
        assert_eq!(
            pool.pending() as u64,
            pool.retired_count() - pool.reclaimed_count()
        );
        assert_eq!(table.count_reachable(), 64);
    }

    #[test]
    fn workload_mixed_operations() {
        let (rt, table) = table(256);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(9);
        for i in 0..300 {
            let op = if i % 5 == 0 {
                OpKind::Update
            } else {
                OpKind::Lookup
            };
            let key = rng.next_below(table.key_space());
            table.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 300);
    }
}
