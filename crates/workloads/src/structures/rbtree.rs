//! The Constant Red-Black Tree benchmark (paper §3.1–3.2).
//!
//! A search tree with a fixed shape (the paper builds a 100 K-node tree).
//! `rb_lookup` walks the tree making **10 dummy shared reads per node
//! visited**; `rb_update` performs the same traversal and then writes a
//! dummy value into the found node and its two children, and — to mimic the
//! cache traffic of rotations — repeats those fake triplet writes on the
//! ancestors of the node with geometrically diminishing probability.
//!
//! Because update operations never touch keys or pointers, the structure is
//! constant and the workload is exactly reproducible across all runtimes,
//! including the uninstrumented pure-HTM baseline.
//!
//! The tree is built perfectly balanced over the keys `0..size`, which gives
//! the same traversal lengths a red-black tree of the same size would
//! (within its 2× bound) and keeps construction deterministic.

use std::sync::Arc;

use rhtm_api::typed::{Field, FieldArray, LayoutBuilder, Record, TxLayout, TxPtr, TypedAlloc};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;
use rhtm_mem::TxHeap;

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

/// Number of dummy payload words read per visited node.
pub const DUMMY_READS_PER_NODE: usize = 10;

/// The heap record of one tree node: key, three links, dummy payload
/// (padded to two cache lines worth of payload).
pub struct RbNode;

type Link = Option<TxPtr<RbNode>>;

#[allow(clippy::type_complexity)] // the layout-builder tuple idiom
const NODE: (
    TxLayout<RbNode>,
    Field<RbNode, u64>,
    Field<RbNode, Link>,
    Field<RbNode, Link>,
    Field<RbNode, Link>,
    FieldArray<RbNode, u64>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, left) = b.field();
    let (b, right) = b.field();
    let (b, parent) = b.field();
    let (b, dummy) = b.array(DUMMY_READS_PER_NODE);
    (b.pad_to(16).finish(), key, left, right, parent, dummy)
};
const KEY: Field<RbNode, u64> = NODE.1;
const LEFT: Field<RbNode, Link> = NODE.2;
const RIGHT: Field<RbNode, Link> = NODE.3;
const PARENT: Field<RbNode, Link> = NODE.4;
const DUMMY: FieldArray<RbNode, u64> = NODE.5;

impl Record for RbNode {
    const LAYOUT: TxLayout<RbNode> = NODE.0;
}

/// The constant red-black-tree workload.
pub struct ConstantRbTree {
    sim: Arc<HtmSim>,
    root: TxPtr<RbNode>,
    size: u64,
}

impl ConstantRbTree {
    /// Builds a balanced tree with keys `0..size` over the simulator's
    /// memory.  Construction is single-threaded and non-transactional.
    pub fn new(sim: Arc<HtmSim>, size: u64) -> Self {
        assert!(size > 0, "tree must have at least one node");
        let mem = sim.mem();
        // Allocate all nodes up front; node i holds key i.
        let nodes = mem.alloc_records::<RbNode>(size as usize);
        let heap = mem.heap();
        let node_at = |key: u64| nodes.get(key as usize);
        // Initialise keys, null pointers and dummy payloads.
        for key in 0..size {
            let node = node_at(key);
            node.field(KEY).store(heap, key);
            node.field(LEFT).store(heap, None);
            node.field(RIGHT).store(heap, None);
            node.field(PARENT).store(heap, None);
            for d in 0..DUMMY_READS_PER_NODE {
                node.slot(DUMMY, d).store(heap, 0);
            }
        }
        // Link a balanced BST over the sorted key range and record the root.
        fn link(
            heap: &TxHeap,
            node_at: &dyn Fn(u64) -> TxPtr<RbNode>,
            lo: u64,
            hi: u64,
            parent: Link,
        ) -> Link {
            if lo >= hi {
                return None;
            }
            let mid = lo + (hi - lo) / 2;
            let node = node_at(mid);
            node.field(PARENT).store(heap, parent);
            let left = link(heap, node_at, lo, mid, Some(node));
            let right = link(heap, node_at, mid + 1, hi, Some(node));
            node.field(LEFT).store(heap, left);
            node.field(RIGHT).store(heap, right);
            Some(node)
        }
        let root = link(heap, &node_at, 0, size, None).expect("non-empty tree");
        ConstantRbTree { sim, root, size }
    }

    /// Number of keys in the tree.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The simulator the tree lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// Transactionally searches for `key`, performing the paper's 10 dummy
    /// reads per visited node.  Returns the node when found.
    pub fn lookup<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Link> {
        let mut node = Some(self.root);
        while let Some(n) = node {
            let k = n.field(KEY).read(tx)?;
            for d in 0..DUMMY_READS_PER_NODE {
                n.slot(DUMMY, d).read(tx)?;
            }
            if key == k {
                return Ok(Some(n));
            }
            node = if key < k {
                n.field(LEFT).read(tx)?
            } else {
                n.field(RIGHT).read(tx)?
            };
        }
        Ok(None)
    }

    /// Writes the dummy payload of `node` and of its two children, the
    /// paper's "fake modification" unit.
    fn write_triplet<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        node: TxPtr<RbNode>,
        value: u64,
    ) -> TxResult<()> {
        node.slot(DUMMY, 0).write(tx, value)?;
        for child_slot in [LEFT, RIGHT] {
            if let Some(child) = node.field(child_slot).read(tx)? {
                child.slot(DUMMY, 0).write(tx, value)?;
            }
        }
        Ok(())
    }

    /// Transactionally "updates" `key`: the usual traversal followed by fake
    /// modifications to the found node, its children, and a geometrically
    /// distributed number of its ancestors (mimicking rotations).
    pub fn update<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        key: u64,
        value: u64,
        climb_coins: u64,
    ) -> TxResult<bool> {
        let found = self.lookup(tx, key)?;
        let Some(node) = found else {
            return Ok(false);
        };
        self.write_triplet(tx, node, value)?;
        // Climb towards the root while the coin keeps coming up heads: bit k
        // of `climb_coins` decides the k-th climb, so the expected number of
        // climbed levels is 1 and reaching the root is exponentially rare,
        // "as in a real tree implementation".
        let mut current = node;
        let mut coins = climb_coins;
        while coins & 1 == 1 {
            coins >>= 1;
            match current.field(PARENT).read(tx)? {
                Some(parent) => {
                    self.write_triplet(tx, parent, value)?;
                    current = parent;
                }
                None => break,
            }
        }
        Ok(true)
    }

    /// Non-transactional sanity check used by tests: walks the whole tree
    /// and returns the number of reachable nodes.
    pub fn count_reachable(&self) -> u64 {
        fn walk(sim: &HtmSim, node: Link) -> u64 {
            match node {
                None => 0,
                Some(n) => {
                    let left = sim.nt_read(n.field(LEFT));
                    let right = sim.nt_read(n.field(RIGHT));
                    1 + walk(sim, left) + walk(sim, right)
                }
            }
        }
        walk(&self.sim, Some(self.root))
    }

    /// Depth of the deepest leaf (for test assertions about balance).
    pub fn depth(&self) -> u64 {
        fn walk(sim: &HtmSim, node: Link) -> u64 {
            match node {
                None => 0,
                Some(n) => {
                    let left = sim.nt_read(n.field(LEFT));
                    let right = sim.nt_read(n.field(RIGHT));
                    1 + walk(sim, left).max(walk(sim, right))
                }
            }
        }
        walk(&self.sim, Some(self.root))
    }

    /// Number of heap words a tree of `size` nodes needs (for sizing
    /// [`rhtm_mem::MemConfig::data_words`]).
    pub fn required_words(size: u64) -> usize {
        size as usize * RbNode::WORDS
    }
}

/// Kind mapping (constant shape): `Lookup`/`RangeSum` → tree search;
/// `Update`/`Insert`/`Remove` → search + dummy-payload write (the shape
/// never changes, per the paper's emulation methodology).
impl Workload for ConstantRbTree {
    fn name(&self) -> String {
        format!("rbtree-{}k", self.size / 1000)
    }

    fn key_space(&self) -> u64 {
        self.size
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        if op.is_update() {
            let value = rng.next_u64();
            let coins = rng.next_u64();
            thread.execute(|tx| self.update(tx, key, value, coins));
        } else {
            thread.execute(|tx| self.lookup(tx, key).map(|n| n.is_some()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_htm::{HtmConfig, HtmRuntime};
    use rhtm_mem::{MemConfig, TmMemory};

    fn tree(size: u64) -> (HtmRuntime, Arc<ConstantRbTree>) {
        let mem_cfg = MemConfig::with_data_words(ConstantRbTree::required_words(size) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let tree = Arc::new(ConstantRbTree::new(Arc::clone(&sim), size));
        (HtmRuntime::with_sim(sim), tree)
    }

    #[test]
    fn construction_reaches_every_node_and_is_balanced() {
        let (_rt, tree) = tree(1023);
        assert_eq!(tree.count_reachable(), 1023);
        // A perfectly balanced tree over 1023 keys has depth exactly 10.
        assert_eq!(tree.depth(), 10);
    }

    #[test]
    fn lookup_finds_every_key_and_rejects_out_of_range() {
        let (rt, tree) = tree(257);
        let mut th = rt.register_thread();
        for key in [0u64, 1, 128, 200, 256] {
            let found = th.execute(|tx| tree.lookup(tx, key).map(|n| n.is_some()));
            assert!(found, "key {key} must be present");
        }
        let found = th.execute(|tx| tree.lookup(tx, 257).map(|n| n.is_some()));
        assert!(!found);
    }

    #[test]
    fn update_writes_dummies_without_changing_shape() {
        let (rt, tree) = tree(127);
        let mut th = rt.register_thread();
        let updated = th.execute(|tx| tree.update(tx, 64, 0xabcd, u64::MAX >> 60));
        assert!(updated);
        assert_eq!(tree.count_reachable(), 127, "shape must not change");
        assert_eq!(tree.depth(), 7);
    }

    #[test]
    fn workload_runs_mixed_operations() {
        let (rt, tree) = tree(255);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(1);
        for i in 0..200 {
            let op = if i % 5 == 0 {
                OpKind::Update
            } else {
                OpKind::Lookup
            };
            let key = rng.next_below(tree.key_space());
            tree.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 200);
        assert!(th.stats().reads > 200 * 10, "dummy reads must be issued");
    }
}
