//! The Constant Red-Black Tree benchmark (paper §3.1–3.2).
//!
//! A search tree with a fixed shape (the paper builds a 100 K-node tree).
//! `rb_lookup` walks the tree making **10 dummy shared reads per node
//! visited**; `rb_update` performs the same traversal and then writes a
//! dummy value into the found node and its two children, and — to mimic the
//! cache traffic of rotations — repeats those fake triplet writes on the
//! ancestors of the node with geometrically diminishing probability.
//!
//! Because update operations never touch keys or pointers, the structure is
//! constant and the workload is exactly reproducible across all runtimes,
//! including the uninstrumented pure-HTM baseline.
//!
//! The tree is built perfectly balanced over the keys `0..size`, which gives
//! the same traversal lengths a red-black tree of the same size would
//! (within its 2× bound) and keeps construction deterministic.

use std::sync::Arc;

use rhtm_api::{TmThread, TxResult};
use rhtm_htm::HtmSim;
use rhtm_mem::Addr;

use super::{decode_ptr, encode_ptr};
use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

/// Node word offsets.
const KEY: usize = 0;
const LEFT: usize = 1;
const RIGHT: usize = 2;
const PARENT: usize = 3;
const DUMMY_BASE: usize = 4;
/// Number of dummy payload words read per visited node.
pub const DUMMY_READS_PER_NODE: usize = 10;
/// Words allocated per node (padded to two cache lines worth of payload).
const NODE_WORDS: usize = 16;

/// The constant red-black-tree workload.
pub struct ConstantRbTree {
    sim: Arc<HtmSim>,
    root: Addr,
    size: u64,
}

impl ConstantRbTree {
    /// Builds a balanced tree with keys `0..size` over the simulator's
    /// memory.  Construction is single-threaded and non-transactional.
    pub fn new(sim: Arc<HtmSim>, size: u64) -> Self {
        assert!(size > 0, "tree must have at least one node");
        let mem = sim.mem();
        // Allocate all nodes up front; node i holds key i.
        let base = mem.alloc(size as usize * NODE_WORDS);
        let heap = mem.heap();
        let node_addr = |key: u64| base.offset(key as usize * NODE_WORDS);
        // Initialise keys, null pointers and dummy payloads.
        for key in 0..size {
            let node = node_addr(key);
            heap.store(node.offset(KEY), key);
            heap.store(node.offset(LEFT), encode_ptr(None));
            heap.store(node.offset(RIGHT), encode_ptr(None));
            heap.store(node.offset(PARENT), encode_ptr(None));
            for d in 0..DUMMY_READS_PER_NODE {
                heap.store(node.offset(DUMMY_BASE + d), 0);
            }
        }
        // Link a balanced BST over the sorted key range and record the root.
        fn link(
            heap: &rhtm_mem::TxHeap,
            node_addr: &dyn Fn(u64) -> Addr,
            lo: u64,
            hi: u64,
            parent: Option<Addr>,
        ) -> Option<Addr> {
            if lo >= hi {
                return None;
            }
            let mid = lo + (hi - lo) / 2;
            let node = node_addr(mid);
            heap.store(node.offset(PARENT), encode_ptr(parent));
            let left = link(heap, node_addr, lo, mid, Some(node));
            let right = link(heap, node_addr, mid + 1, hi, Some(node));
            heap.store(node.offset(LEFT), encode_ptr(left));
            heap.store(node.offset(RIGHT), encode_ptr(right));
            Some(node)
        }
        let root = link(heap, &node_addr, 0, size, None).expect("non-empty tree");
        ConstantRbTree { sim, root, size }
    }

    /// Number of keys in the tree.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The simulator the tree lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// Transactionally searches for `key`, performing the paper's 10 dummy
    /// reads per visited node.  Returns the node address when found.
    pub fn lookup<T: TmThread>(&self, tx: &mut T, key: u64) -> TxResult<Option<Addr>> {
        let mut node = Some(self.root);
        while let Some(n) = node {
            let k = tx.read(n.offset(KEY))?;
            for d in 0..DUMMY_READS_PER_NODE {
                tx.read(n.offset(DUMMY_BASE + d))?;
            }
            if key == k {
                return Ok(Some(n));
            }
            let next = if key < k {
                tx.read(n.offset(LEFT))?
            } else {
                tx.read(n.offset(RIGHT))?
            };
            node = decode_ptr(next);
        }
        Ok(None)
    }

    /// Writes the dummy payload of `node` and of its two children, the
    /// paper's "fake modification" unit.
    fn write_triplet<T: TmThread>(&self, tx: &mut T, node: Addr, value: u64) -> TxResult<()> {
        tx.write(node.offset(DUMMY_BASE), value)?;
        for child_slot in [LEFT, RIGHT] {
            if let Some(child) = decode_ptr(tx.read(node.offset(child_slot))?) {
                tx.write(child.offset(DUMMY_BASE), value)?;
            }
        }
        Ok(())
    }

    /// Transactionally "updates" `key`: the usual traversal followed by fake
    /// modifications to the found node, its children, and a geometrically
    /// distributed number of its ancestors (mimicking rotations).
    pub fn update<T: TmThread>(
        &self,
        tx: &mut T,
        key: u64,
        value: u64,
        climb_coins: u64,
    ) -> TxResult<bool> {
        let found = self.lookup(tx, key)?;
        let Some(node) = found else {
            return Ok(false);
        };
        self.write_triplet(tx, node, value)?;
        // Climb towards the root while the coin keeps coming up heads: bit k
        // of `climb_coins` decides the k-th climb, so the expected number of
        // climbed levels is 1 and reaching the root is exponentially rare,
        // "as in a real tree implementation".
        let mut current = node;
        let mut coins = climb_coins;
        while coins & 1 == 1 {
            coins >>= 1;
            match decode_ptr(tx.read(current.offset(PARENT))?) {
                Some(parent) => {
                    self.write_triplet(tx, parent, value)?;
                    current = parent;
                }
                None => break,
            }
        }
        Ok(true)
    }

    /// Non-transactional sanity check used by tests: walks the whole tree
    /// and returns the number of reachable nodes.
    pub fn count_reachable(&self) -> u64 {
        fn walk(sim: &HtmSim, node: Option<Addr>) -> u64 {
            match node {
                None => 0,
                Some(n) => {
                    let left = decode_ptr(sim.nt_load(n.offset(LEFT)));
                    let right = decode_ptr(sim.nt_load(n.offset(RIGHT)));
                    1 + walk(sim, left) + walk(sim, right)
                }
            }
        }
        walk(&self.sim, Some(self.root))
    }

    /// Depth of the deepest leaf (for test assertions about balance).
    pub fn depth(&self) -> u64 {
        fn walk(sim: &HtmSim, node: Option<Addr>) -> u64 {
            match node {
                None => 0,
                Some(n) => {
                    let left = decode_ptr(sim.nt_load(n.offset(LEFT)));
                    let right = decode_ptr(sim.nt_load(n.offset(RIGHT)));
                    1 + walk(sim, left).max(walk(sim, right))
                }
            }
        }
        walk(&self.sim, Some(self.root))
    }

    /// Number of heap words a tree of `size` nodes needs (for sizing
    /// [`rhtm_mem::MemConfig::data_words`]).
    pub fn required_words(size: u64) -> usize {
        size as usize * NODE_WORDS
    }
}

/// Kind mapping (constant shape): `Lookup`/`RangeSum` → tree search;
/// `Update`/`Insert`/`Remove` → search + dummy-payload write (the shape
/// never changes, per the paper's emulation methodology).
impl Workload for ConstantRbTree {
    fn name(&self) -> String {
        format!("rbtree-{}k", self.size / 1000)
    }

    fn key_space(&self) -> u64 {
        self.size
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        if op.is_update() {
            let value = rng.next_u64();
            let coins = rng.next_u64();
            thread.execute(|tx| self.update(tx, key, value, coins));
        } else {
            thread.execute(|tx| self.lookup(tx, key).map(|n| n.is_some()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_htm::{HtmConfig, HtmRuntime};
    use rhtm_mem::{MemConfig, TmMemory};

    fn tree(size: u64) -> (HtmRuntime, Arc<ConstantRbTree>) {
        let mem_cfg = MemConfig::with_data_words(ConstantRbTree::required_words(size) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let tree = Arc::new(ConstantRbTree::new(Arc::clone(&sim), size));
        (HtmRuntime::with_sim(sim), tree)
    }

    #[test]
    fn construction_reaches_every_node_and_is_balanced() {
        let (_rt, tree) = tree(1023);
        assert_eq!(tree.count_reachable(), 1023);
        // A perfectly balanced tree over 1023 keys has depth exactly 10.
        assert_eq!(tree.depth(), 10);
    }

    #[test]
    fn lookup_finds_every_key_and_rejects_out_of_range() {
        let (rt, tree) = tree(257);
        let mut th = rt.register_thread();
        for key in [0u64, 1, 128, 200, 256] {
            let found = th.execute(|tx| tree.lookup(tx, key).map(|n| n.is_some()));
            assert!(found, "key {key} must be present");
        }
        let found = th.execute(|tx| tree.lookup(tx, 257).map(|n| n.is_some()));
        assert!(!found);
    }

    #[test]
    fn update_writes_dummies_without_changing_shape() {
        let (rt, tree) = tree(127);
        let mut th = rt.register_thread();
        let updated = th.execute(|tx| tree.update(tx, 64, 0xabcd, u64::MAX >> 60));
        assert!(updated);
        assert_eq!(tree.count_reachable(), 127, "shape must not change");
        assert_eq!(tree.depth(), 7);
    }

    #[test]
    fn workload_runs_mixed_operations() {
        let (rt, tree) = tree(255);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(1);
        for i in 0..200 {
            let op = if i % 5 == 0 {
                OpKind::Update
            } else {
                OpKind::Lookup
            };
            let key = rng.next_below(tree.key_space());
            tree.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 200);
        assert!(th.stats().reads > 200 * 10, "dummy reads must be issued");
    }
}
