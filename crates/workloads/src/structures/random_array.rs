//! The Random Array benchmark (paper §3.5).
//!
//! A shared array of 128 K entries.  A transaction performs a fixed number
//! of accesses to uniformly random locations; each access is a write with a
//! configurable probability.  The workload exists to isolate the effect of
//! the *reads-to-writes ratio* on the RH1 fast-path (whose writes carry one
//! extra metadata store while its reads carry none), reproducing the
//! paper's Figure 3 (right): RH speedup over the Standard HyTM as a
//! function of transaction length {400, 200, 100, 40} and write percentage
//! {0, 20, 50, 90}.

use std::sync::Arc;

use rhtm_api::typed::{TxSlice, TypedAlloc};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

/// The random-array workload.
///
/// The array is an *untyped word region* on purpose: the workload's whole
/// point is a configurable raw read/write stream, so it uses the typed
/// layer's thinnest handle ([`TxSlice<u64>`]) rather than record layouts —
/// the documented "drop down to raw words" case.
pub struct RandomArray {
    sim: Arc<HtmSim>,
    words: TxSlice<u64>,
    entries: u64,
    accesses_per_txn: usize,
    write_percent: u8,
}

impl RandomArray {
    /// Creates an array of `entries` words; each transaction performs
    /// `accesses_per_txn` random accesses of which `write_percent`% are
    /// writes.
    pub fn new(sim: Arc<HtmSim>, entries: u64, accesses_per_txn: usize, write_percent: u8) -> Self {
        assert!(entries > 0);
        assert!(write_percent <= 100);
        let words = sim.mem().alloc_slice(entries as usize);
        RandomArray {
            sim,
            words,
            entries,
            accesses_per_txn,
            write_percent,
        }
    }

    /// The simulator the array lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// Number of array entries.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of accesses per transaction.
    pub fn accesses_per_txn(&self) -> usize {
        self.accesses_per_txn
    }

    /// Percentage of accesses that are writes.
    pub fn write_percent(&self) -> u8 {
        self.write_percent
    }

    /// Words required for an array of `entries` entries.
    pub fn required_words(entries: u64) -> usize {
        entries as usize
    }

    /// Runs one transaction of random accesses.  The access pattern is
    /// derived from `seed` so that retries of an aborted transaction replay
    /// the same locations (as a deterministic transaction body must).
    pub fn run_txn<T: TmThread>(&self, thread: &mut T, seed: u64) -> u64 {
        thread.execute(|tx| self.txn_body(tx, seed))
    }

    fn txn_body<X: Txn + ?Sized>(&self, tx: &mut X, seed: u64) -> TxResult<u64> {
        let mut rng = WorkloadRng::new(seed);
        let mut sum = 0u64;
        for _ in 0..self.accesses_per_txn {
            let idx = rng.next_below(self.entries) as usize;
            let cell = self.words.get(idx);
            if rng.draw_percent(self.write_percent) {
                cell.write(tx, rng.next_u64())?;
            } else {
                sum = sum.wrapping_add(cell.read(tx)?);
            }
        }
        Ok(sum)
    }
}

/// Kind mapping: every kind runs the same fixed-length random-access
/// transaction — the reads-to-writes ratio is this workload's *own*
/// configuration (`write_percent`), not the driver's mix, and the access
/// pattern is drawn inside the (deterministically replayable) transaction
/// body, so the driver's `op` and `key` are ignored by design.
impl Workload for RandomArray {
    fn name(&self) -> String {
        format!(
            "random-array-{}k-len{}-w{}",
            self.entries / 1024,
            self.accesses_per_txn,
            self.write_percent
        )
    }

    fn key_space(&self) -> u64 {
        self.entries
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, _op: OpKind, _key: u64) {
        let seed = rng.next_u64();
        self.run_txn(thread, seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_htm::{HtmConfig, HtmRuntime};
    use rhtm_mem::{MemConfig, TmMemory};

    fn array(entries: u64, len: usize, writes: u8) -> (HtmRuntime, Arc<RandomArray>) {
        let mem_cfg = MemConfig::with_data_words(RandomArray::required_words(entries) + 64);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let arr = Arc::new(RandomArray::new(Arc::clone(&sim), entries, len, writes));
        (HtmRuntime::with_sim(sim), arr)
    }

    #[test]
    fn transactions_access_the_configured_number_of_locations() {
        let (rt, arr) = array(1024, 50, 20);
        let mut th = rt.register_thread();
        arr.run_txn(&mut th, 7);
        let stats = th.stats();
        assert_eq!(stats.reads + stats.writes, 50);
        assert!(stats.writes > 0, "20% of 50 accesses should include writes");
        assert!(stats.reads > stats.writes);
    }

    #[test]
    fn zero_write_percentage_is_read_only() {
        let (rt, arr) = array(1024, 40, 0);
        let mut th = rt.register_thread();
        arr.run_txn(&mut th, 3);
        assert_eq!(th.stats().writes, 0);
        assert_eq!(th.stats().reads, 40);
    }

    #[test]
    fn retried_transactions_replay_the_same_locations() {
        // With a deterministic seed, the same body produces the same access
        // pattern; verify by running twice on a fresh runtime and comparing
        // the array contents' checksum evolution.
        let (rt, arr) = array(256, 30, 100);
        let mut th = rt.register_thread();
        arr.run_txn(&mut th, 12345);
        let snapshot: Vec<u64> = (0..256)
            .map(|i| rt.sim().nt_read(arr.words.get(i)))
            .collect();
        let (rt2, arr2) = array(256, 30, 100);
        let mut th2 = rt2.register_thread();
        arr2.run_txn(&mut th2, 12345);
        let snapshot2: Vec<u64> = (0..256)
            .map(|i| rt2.sim().nt_read(arr2.words.get(i)))
            .collect();
        assert_eq!(snapshot, snapshot2);
    }

    #[test]
    fn workload_name_encodes_parameters() {
        let (_rt, arr) = array(128 * 1024, 400, 90);
        assert_eq!(arr.name(), "random-array-128k-len400-w90");
    }
}
