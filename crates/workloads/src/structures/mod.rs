//! Benchmark data structures.
//!
//! Two families, split by whether transactions may change the structure's
//! *shape*:
//!
//! * **Constant** structures ([`rbtree`], [`hashtable`], [`sortedlist`],
//!   [`random_array`]) reproduce the paper's emulation workloads: their
//!   shape is fixed after construction and update operations only touch
//!   dummy payload words, never pointers or keys.
//! * **Mutable** structures are real transactional containers whose
//!   inserts and removals rewrite pointers: the [`mutable`] map/list used
//!   by the correctness and property tests, plus the scenario engine's
//!   benchmark-grade [`skiplist`] (O(log n) ordered map with a
//!   transactional freelist) and [`queue`] (bounded FIFO ring buffer, the
//!   producer/consumer shape).
//! * The composed [`bank`] spans *both* families in one transaction: a
//!   constant-shape hash table of accounts debited atomically with an
//!   append to a mutable skiplist audit log.
//!
//! All benchmark structures implement [`crate::Workload`]; the
//! scenario registry ([`crate::scenario`]) names the combinations the
//! `bench_suite` binary sweeps.
//!
//! Every structure is written on the typed data layer
//! ([`rhtm_api::typed`]): node layouts are declared once with
//! [`rhtm_api::typed::LayoutBuilder`] (no hand-numbered offset
//! constants), links are `Option<TxPtr<Node>>` cells (the null sentinel
//! lives in the layer's `Codec`, defined exactly once), and allocation
//! goes through [`rhtm_api::typed::TypedAlloc`] — including the checked
//! path that turns prefill sizing mistakes into readable errors naming
//! the structure's `required_words` helper.

pub mod bank;
pub mod hashtable;
pub mod mutable;
pub mod queue;
pub mod random_array;
pub mod rbtree;
pub mod skiplist;
pub mod sortedlist;
