//! Benchmark data structures.
//!
//! Two families, split by whether transactions may change the structure's
//! *shape*:
//!
//! * **Constant** structures ([`rbtree`], [`hashtable`], [`sortedlist`],
//!   [`random_array`]) reproduce the paper's emulation workloads: their
//!   shape is fixed after construction and update operations only touch
//!   dummy payload words, never pointers or keys.
//! * **Mutable** structures are real transactional containers whose
//!   inserts and removals rewrite pointers: the [`mutable`] map/list used
//!   by the correctness and property tests, plus the scenario engine's
//!   benchmark-grade [`skiplist`] (O(log n) ordered map with a
//!   transactional freelist) and [`queue`] (bounded FIFO ring buffer, the
//!   producer/consumer shape).
//!
//! All six benchmark structures implement [`crate::Workload`]; the
//! scenario registry ([`crate::scenario`]) names the combinations the
//! `bench_suite` binary sweeps.

pub mod hashtable;
pub mod mutable;
pub mod queue;
pub mod random_array;
pub mod rbtree;
pub mod skiplist;
pub mod sortedlist;

use rhtm_mem::Addr;

/// Encodes an optional node address into a heap word.
#[inline]
pub(crate) fn encode_ptr(ptr: Option<Addr>) -> u64 {
    match ptr {
        Some(a) => a.index() as u64,
        None => u64::MAX,
    }
}

/// Decodes a heap word into an optional node address.
#[inline]
pub(crate) fn decode_ptr(raw: u64) -> Option<Addr> {
    if raw == u64::MAX {
        None
    } else {
        Some(Addr(raw as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_encoding_round_trips() {
        assert_eq!(decode_ptr(encode_ptr(None)), None);
        assert_eq!(decode_ptr(encode_ptr(Some(Addr(42)))), Some(Addr(42)));
        assert_eq!(encode_ptr(Some(Addr(0))), 0);
        assert_eq!(encode_ptr(None), u64::MAX);
    }
}
