//! A composed two-structure transaction: hash-table accounts debited
//! atomically with an append to a skiplist audit log.
//!
//! Every other workload touches a single structure, so a protocol bug that
//! only shows when one transaction spans *independently built* structures
//! (separate allocations, separate access patterns, mixed constant/mutable
//! shape) would slip through.  `TxBank` is that workload: a
//! [`ConstantHashTable`] holds the account balances (the constant-shape
//! family — the balance lives in the node's first payload word), and a
//! [`TxSkipList`] holds a bounded audit ring (the mutable family — every
//! applied transfer links a node in and unlinks the oldest, inside the
//! same transaction).
//!
//! Three invariants make it a checker workload:
//!
//! * **Conservation** — transfers move value, never create it: the balance
//!   total equals `accounts × initial_balance` in every serialization.
//! * **Audit completeness** — the audit sequence number equals the number
//!   of applied transfers, and every ring entry unpacks to a transfer that
//!   actually happened.
//! * **Snapshot atomicity** — [`TxBank::scan_total`] reads *every*
//!   balance in one transaction (the read-only analytics scan racing the
//!   OLTP churn), so any value other than the conserved total is a
//!   serializability violation — the capacity-abort stress where RH2's
//!   reduced hardware commit must not tear.
//!
//! The audit ring keeps allocation bounded for time-limited runs: entry
//! `seq` is keyed `seq + 1` in the skiplist, and once `seq ≥ capacity` the
//! transfer that appends entry `seq` also removes entry `seq − capacity`.
//! The evicted node is retired to the audit skiplist's
//! [`rhtm_api::reclaim::NodePool`] *after* the transaction commits and
//! recycled into later appends once every thread has passed the retiring
//! epoch — steady-state churn allocates nothing, exactly like the
//! skiplist workload itself.

use std::sync::Arc;

use rhtm_api::typed::{OrSized, TxCell, TxPtr, TypedAlloc};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::structures::hashtable::ConstantHashTable;
use crate::structures::skiplist::{InsertOutcome, SkipNode, TxSkipList};
use crate::workload::Workload;

/// The sizing helper named by every allocation-failure panic.
const SIZING_HINT: &str = "TxBank::required_words(accounts, audit_cap, threads)";

/// Largest amount one [`Workload`] transfer moves (drawn uniformly from
/// `1..=MAX_TRANSFER_AMOUNT`).
pub const MAX_TRANSFER_AMOUNT: u64 = 8;

/// Bits per packed audit field (`from`/`to`/`amount` each fit 20 bits).
const FIELD_BITS: u32 = 20;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;

/// Packs one applied transfer into an audit-log value.
pub fn pack_entry(from: u64, to: u64, amount: u64) -> u64 {
    debug_assert!(from <= FIELD_MASK && to <= FIELD_MASK && amount <= FIELD_MASK);
    (from << (2 * FIELD_BITS)) | (to << FIELD_BITS) | amount
}

/// Unpacks an audit-log value back into `(from, to, amount)`.
pub fn unpack_entry(packed: u64) -> (u64, u64, u64) {
    (
        (packed >> (2 * FIELD_BITS)) & FIELD_MASK,
        (packed >> FIELD_BITS) & FIELD_MASK,
        packed & FIELD_MASK,
    )
}

/// What one transfer decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Both balances moved and the audit log recorded the transfer.
    Applied,
    /// Nothing changed: unknown account, self-transfer, zero amount or
    /// insufficient funds.  The transaction still commits (read-only).
    Declined,
    /// Only from [`TxBank::transfer_in`]: the transfer would apply but no
    /// spare audit node was supplied; allocate one
    /// ([`TxSkipList::alloc_spare`] on [`TxBank::audit`]) and re-run.
    /// [`TxBank::transfer`] always supplies one and never returns this.
    NeedNode,
}

/// A quiescent snapshot of the whole bank (see [`TxBank::snapshot`]).
#[derive(Clone, Debug)]
pub struct BankSnapshot {
    /// Balance per account, indexed by account id.
    pub balances: Vec<u64>,
    /// The audit sequence number: total applied transfers since creation.
    pub audit_seq: u64,
    /// The audit ring's live `(seq, packed_entry)` pairs, oldest first
    /// (decode with [`unpack_entry`]; `seq` is the skiplist key − 1).
    pub audit: Vec<(u64, u64)>,
}

/// The composed bank workload (see the [module docs](self)).
pub struct TxBank {
    sim: Arc<HtmSim>,
    accounts: ConstantHashTable,
    audit: TxSkipList,
    audit_seq: TxCell<u64>,
    accounts_n: u64,
    audit_cap: u64,
    initial_balance: u64,
}

impl TxBank {
    /// Creates a bank of `accounts` accounts (ids `0..accounts`), each
    /// seeded with `initial_balance`, auditing the last `audit_cap`
    /// applied transfers.
    pub fn new(sim: Arc<HtmSim>, accounts: u64, initial_balance: u64, audit_cap: u64) -> Self {
        assert!(
            (1..=FIELD_MASK).contains(&accounts),
            "account ids must pack into {FIELD_BITS} bits"
        );
        assert!(audit_cap >= 1);
        assert!(
            sim.mem().remaining_words() >= Self::required_words(accounts, audit_cap, 0),
            "TxBank heap too small; size with {SIZING_HINT}"
        );
        let table = ConstantHashTable::new(Arc::clone(&sim), accounts);
        for a in 0..accounts {
            table.seed_value(a, initial_balance);
        }
        let audit = TxSkipList::new(Arc::clone(&sim), audit_cap.max(2));
        let audit_seq = sim
            .mem()
            .try_alloc_cell_line_aligned()
            .or_sized(SIZING_HINT);
        audit_seq.store(sim.mem().heap(), 0);
        TxBank {
            sim,
            accounts: table,
            audit,
            audit_seq,
            accounts_n: accounts,
            audit_cap,
            initial_balance,
        }
    }

    /// Heap words for a bank of `accounts` accounts with an `audit_cap`
    /// ring driven by `threads` workers.
    pub fn required_words(accounts: u64, audit_cap: u64, threads: usize) -> usize {
        ConstantHashTable::required_words(accounts)
            + TxSkipList::required_words(audit_cap + 2, threads)
            + 128
    }

    /// The simulator the bank lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// Number of accounts.
    pub fn accounts(&self) -> u64 {
        self.accounts_n
    }

    /// The audit-log skiplist (for spare-node management around
    /// [`TxBank::transfer_in`]).
    pub fn audit(&self) -> &TxSkipList {
        &self.audit
    }

    /// The balance every account started with.
    pub fn initial_balance(&self) -> u64 {
        self.initial_balance
    }

    /// The conserved balance total: `accounts × initial_balance`.
    pub fn expected_total(&self) -> u64 {
        self.accounts_n * self.initial_balance
    }

    /// In-transaction read of one account's balance (`None` for an
    /// unknown account).
    pub fn balance_in<X: Txn + ?Sized>(&self, tx: &mut X, account: u64) -> TxResult<Option<u64>> {
        self.accounts.read_value(tx, account)
    }

    /// Transactionally reads one account's balance.
    pub fn balance<T: TmThread>(&self, thread: &mut T, account: u64) -> Option<u64> {
        thread.execute(|tx| self.balance_in(tx, account))
    }

    /// The composed transfer, composable with further operations in the
    /// same transaction: debit `from`, credit `to` and append to the audit
    /// ring (evicting the oldest entry once the ring is full) — two
    /// structures, one serialization point.
    ///
    /// `spare` follows the skiplist's pre-allocation idiom
    /// ([`TxSkipList::insert_in`]): it is consumed only on
    /// [`TransferOutcome::Applied`] (declined transfers leave it with the
    /// caller).  `evicted` is an out-parameter capturing the audit node an
    /// applied transfer unlinked, if any; it is reset at the top of every
    /// attempt (aborted attempts unlink nothing), and the caller must
    /// retire it **after the transaction commits** — see
    /// [`TxBank::transfer`] for the canonical wrapper.
    pub fn transfer_in<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        from: u64,
        to: u64,
        amount: u64,
        spare: Option<TxPtr<SkipNode>>,
        evicted: &mut Option<TxPtr<SkipNode>>,
    ) -> TxResult<TransferOutcome> {
        *evicted = None;
        let from_balance = match self.accounts.read_value(tx, from)? {
            Some(b) => b,
            None => return Ok(TransferOutcome::Declined),
        };
        let to_balance = match self.accounts.read_value(tx, to)? {
            Some(b) => b,
            None => return Ok(TransferOutcome::Declined),
        };
        if from == to || amount == 0 || from_balance < amount {
            return Ok(TransferOutcome::Declined);
        }
        let seq = self.audit_seq.read(tx)?;
        let entry = pack_entry(from, to, amount);
        if self.audit.insert_in(tx, seq + 1, entry, spare)? == InsertOutcome::NeedNode {
            return Ok(TransferOutcome::NeedNode);
        }
        if seq >= self.audit_cap {
            if let Some((_, node)) = self.audit.remove_in(tx, seq + 1 - self.audit_cap)? {
                *evicted = Some(node);
            }
        }
        self.audit_seq.write(tx, seq + 1)?;
        self.accounts.write_value(tx, from, from_balance - amount)?;
        self.accounts.write_value(tx, to, to_balance + amount)?;
        Ok(TransferOutcome::Applied)
    }

    /// Transactionally transfers `amount` from `from` to `to`, recording
    /// the applied transfer in the audit ring.  The full pool life cycle:
    /// a spare audit node is allocated (preferring recycled evictees)
    /// before the pinned transaction, the evicted node is retired after it
    /// commits, and a spare a declined transfer left unused goes back to
    /// the pool.  Never returns [`TransferOutcome::NeedNode`]; commits
    /// exactly one transaction.
    pub fn transfer<T: TmThread>(
        &self,
        thread: &mut T,
        from: u64,
        to: u64,
        amount: u64,
    ) -> TransferOutcome {
        let tid = thread.thread_id();
        let spare = self.audit.alloc_spare(tid, &mut thread.stats_mut().mem);
        let mut evicted = None;
        let outcome = {
            let _guard = self.audit.pin(tid);
            thread.execute(|tx| self.transfer_in(tx, from, to, amount, Some(spare), &mut evicted))
        };
        if let Some(node) = evicted {
            self.audit
                .retire_node(tid, node, &mut thread.stats_mut().mem);
        }
        if outcome != TransferOutcome::Applied {
            self.audit.give_back_spare(tid, spare);
        }
        outcome
    }

    /// In-transaction read of **every** balance, summed — the analytics
    /// scan.  Its read set covers the whole account table, so it is the
    /// capacity-abort stress for hardware paths; atomicity demands the
    /// result equal [`TxBank::expected_total`] in every serialization.
    pub fn scan_total_in<X: Txn + ?Sized>(&self, tx: &mut X) -> TxResult<u64> {
        let mut total = 0u64;
        for a in 0..self.accounts_n {
            match self.accounts.read_value(tx, a)? {
                Some(b) => total += b,
                None => unreachable!("constant table lost account {a}"),
            }
        }
        Ok(total)
    }

    /// Transactionally sums every balance (see [`TxBank::scan_total_in`]).
    pub fn scan_total<T: TmThread>(&self, thread: &mut T) -> u64 {
        thread.execute(|tx| self.scan_total_in(tx))
    }

    /// Collects the whole bank state in one thread after the workers are
    /// done (each piece is its own transaction — quiescence is the
    /// caller's responsibility, as for the other structures' snapshots).
    pub fn snapshot<T: TmThread>(&self, thread: &mut T) -> BankSnapshot {
        let balances = (0..self.accounts_n)
            .map(|a| self.balance(thread, a).expect("account present"))
            .collect();
        let audit_seq = thread.execute(|tx| self.audit_seq.read(tx));
        let audit = self
            .audit
            .snapshot(thread)
            .into_iter()
            .map(|(key, packed)| (key - 1, packed))
            .collect();
        BankSnapshot {
            balances,
            audit_seq,
            audit,
        }
    }
}

/// Kind mapping: `Lookup` → single-balance read, `RangeSum` → full
/// analytics scan ([`TxBank::scan_total`]), `Update`/`Insert`/`Remove` →
/// composed transfer from `key` to a random other account (amount in
/// `1..=`[`MAX_TRANSFER_AMOUNT`], both drawn from `rng` so fixed seeds
/// replay).
impl Workload for TxBank {
    fn name(&self) -> String {
        format!("bank-{}", self.accounts_n)
    }

    fn key_space(&self) -> u64 {
        self.accounts_n
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        match op {
            OpKind::Lookup => {
                self.balance(thread, key);
            }
            OpKind::RangeSum => {
                self.scan_total(thread);
            }
            OpKind::Update | OpKind::Insert | OpKind::Remove => {
                if self.accounts_n < 2 {
                    self.balance(thread, key);
                    return;
                }
                let to = (key + 1 + rng.next_below(self.accounts_n - 1)) % self.accounts_n;
                let amount = 1 + rng.next_below(MAX_TRANSFER_AMOUNT);
                self.transfer(thread, key, to, amount);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_core::{RhConfig, RhRuntime};
    use rhtm_htm::HtmConfig;
    use rhtm_mem::MemConfig;

    fn runtime(words: usize) -> RhRuntime {
        RhRuntime::new(
            MemConfig::with_data_words(words),
            HtmConfig::default(),
            RhConfig::rh1_mixed(100),
        )
    }

    fn bank(accounts: u64, audit_cap: u64) -> (RhRuntime, TxBank) {
        let words = TxBank::required_words(accounts, audit_cap, 1) + 1024;
        let rt = runtime(words);
        let bank = TxBank::new(Arc::clone(rt.sim()), accounts, 100, audit_cap);
        (rt, bank)
    }

    #[test]
    fn pack_round_trips() {
        for (f, t, a) in [(0, 1, 1), (7, 3, 8), (FIELD_MASK, 0, FIELD_MASK)] {
            assert_eq!(unpack_entry(pack_entry(f, t, a)), (f, t, a));
        }
    }

    #[test]
    fn transfers_move_value_and_append_to_the_audit_log() {
        let (rt, bank) = bank(8, 16);
        let mut th = rt.register_thread();
        assert_eq!(bank.transfer(&mut th, 0, 1, 30), TransferOutcome::Applied);
        assert_eq!(bank.transfer(&mut th, 1, 2, 50), TransferOutcome::Applied);
        assert_eq!(bank.balance(&mut th, 0), Some(70));
        assert_eq!(bank.balance(&mut th, 1), Some(80));
        assert_eq!(bank.balance(&mut th, 2), Some(150));
        let snap = bank.snapshot(&mut th);
        assert_eq!(snap.audit_seq, 2);
        assert_eq!(
            snap.audit,
            vec![(0, pack_entry(0, 1, 30)), (1, pack_entry(1, 2, 50))]
        );
        assert_eq!(bank.scan_total(&mut th), bank.expected_total());
    }

    #[test]
    fn declined_transfers_change_nothing() {
        let (rt, bank) = bank(4, 8);
        let mut th = rt.register_thread();
        for (from, to, amount) in [
            (0, 0, 5),   // self-transfer
            (0, 1, 0),   // zero amount
            (0, 1, 101), // insufficient funds
            (9, 1, 5),   // unknown source
            (0, 9, 5),   // unknown destination
        ] {
            assert_eq!(
                bank.transfer(&mut th, from, to, amount),
                TransferOutcome::Declined,
                "({from},{to},{amount})"
            );
        }
        let snap = bank.snapshot(&mut th);
        assert_eq!(snap.audit_seq, 0);
        assert!(snap.audit.is_empty());
        assert_eq!(snap.balances, vec![100; 4]);
    }

    #[test]
    fn audit_ring_evicts_and_stops_allocating() {
        let (rt, bank) = bank(4, 8);
        let mut th = rt.register_thread();
        // Warm the ring one past capacity (the first eviction seeds the
        // freelist, so later inserts recycle instead of allocating)...
        for i in 0..9u64 {
            assert_eq!(
                bank.transfer(&mut th, i % 3, 3, 1),
                TransferOutcome::Applied
            );
        }
        let used_before = rt.mem().alloc(0).index();
        // ...then keep transferring far past it: evicted nodes recycle.
        for i in 0..100u64 {
            assert_eq!(
                bank.transfer(&mut th, 3, i % 3, 1),
                TransferOutcome::Applied
            );
        }
        assert_eq!(
            rt.mem().alloc(0).index(),
            used_before,
            "steady-state audit churn must not allocate"
        );
        let snap = bank.snapshot(&mut th);
        assert_eq!(snap.audit_seq, 109);
        assert_eq!(snap.audit.len(), 8, "ring holds exactly audit_cap entries");
        assert_eq!(snap.audit.first().unwrap().0, 101, "oldest entry evicted");
        assert_eq!(snap.balances.iter().sum::<u64>(), bank.expected_total());
        assert!(bank.audit.is_well_formed_quiescent());
    }

    #[test]
    fn workload_ops_commit_and_conserve() {
        let (rt, bank) = bank(16, 32);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(5);
        let mix = crate::mix::OpMix::new([20, 10, 70, 0, 0]);
        for _ in 0..300 {
            let op = mix.draw(&mut rng);
            let key = rng.next_below(bank.key_space());
            bank.run_op(&mut th, &mut rng, op, key);
        }
        assert!(th.stats().commits() >= 300);
        assert_eq!(bank.scan_total(&mut th), bank.expected_total());
    }

    #[test]
    #[should_panic(expected = "TxBank::required_words")]
    fn undersized_heap_reports_the_sizing_hint() {
        let rt = runtime(16);
        let _ = TxBank::new(Arc::clone(rt.sim()), 64, 100, 8);
    }
}
