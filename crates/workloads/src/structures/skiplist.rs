//! A transactional skiplist — the scenario engine's mutable ordered map.
//!
//! The paper's emulation could only run constant-shape structures; the
//! simulated HTM provides real atomicity, so this skiplist runs genuinely
//! shape-changing workloads: inserts link and removals unlink whole towers
//! inside one transaction.  Compared with [`super::mutable::TxSortedList`]
//! its operations are O(log n), which keeps transactions short enough for
//! the hardware fast-path even at large sizes — the interesting regime for
//! the RH protocols.
//!
//! Three design points keep benchmark runs deterministic and allocation
//! bounded:
//!
//! * **Deterministic tower heights.**  A node's height is a pure function
//!   of its key (geometric over a key hash, capped at [`MAX_HEIGHT`]), so
//!   the structure's shape depends only on its key set — not on insertion
//!   order, thread count or RNG state — and a reinserted key always fits
//!   the node that held it before.
//! * **Epoch-based node reclamation** ([`rhtm_api::reclaim::NodePool`]).
//!   Spare nodes are allocated from the calling thread's arena *before*
//!   the transaction (aborted retries never allocate again); a committed
//!   remove retires its node *after* the transaction, and the pool reuses
//!   it once every thread has passed the retiring epoch.  Steady-state
//!   insert/remove churn therefore does not grow the heap — a requirement
//!   for time-bounded runs over the append-only allocator — and, unlike
//!   the old in-heap `TxFreeList`, spare management never joins the
//!   transactions' read/write sets.
//! * **Bulk seeding** ([`SkipListSeeder`]).  Prefill appends ascending
//!   keys in O(1) per key through a tail-pointer array and carves nodes
//!   from the heap in chunks, so million-key scenarios initialise in
//!   seconds, proportional to live data.
//!
//! Keys are in `1..u64::MAX` (0 is the head sentinel); the
//! [`Workload`] impl translates the driver's `[0, key_space)` keys by +1.

use std::sync::Arc;

use rhtm_api::reclaim::{EpochGuard, NodePool};
use rhtm_api::typed::{
    Field, FieldArray, LayoutBuilder, OrSized, Record, TxLayout, TxPtr, TypedAlloc,
};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;
use rhtm_mem::{MemConfig, MemMetrics, OutOfMemory};

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

/// Maximum tower height; supports ~2^12 elements at the classic p = 1/2
/// level geometry without degenerating (larger sets still work — towers
/// just saturate, adding a linear tail to the top-level scan).
pub const MAX_HEIGHT: usize = 12;

/// Keys spanned by one `RangeSum` operation of the [`Workload`] impl.
pub const RANGE_SPAN: u64 = 32;

/// Nodes carved from the heap per [`SkipListSeeder`] refill.
const SEED_CHUNK: usize = 256;

/// The sizing helper named by every allocation-failure panic.
const SIZING_HINT: &str = "TxSkipList::required_words(max_live, threads)";

/// The heap record of one skiplist node (including the head sentinel).
pub struct SkipNode;

/// A level link: `None` is end-of-level.
type Link = Option<TxPtr<SkipNode>>;

#[allow(clippy::type_complexity)] // the layout-builder tuple idiom
const NODE: (
    TxLayout<SkipNode>,
    Field<SkipNode, u64>,
    Field<SkipNode, u64>,
    Field<SkipNode, usize>,
    FieldArray<SkipNode, Link>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, value) = b.field();
    let (b, height) = b.field();
    let (b, next) = b.array(MAX_HEIGHT);
    (b.pad_to(16).finish(), key, value, height, next)
};
const KEY: Field<SkipNode, u64> = NODE.1;
const VALUE: Field<SkipNode, u64> = NODE.2;
const HEIGHT: Field<SkipNode, usize> = NODE.3;
const NEXT: FieldArray<SkipNode, Link> = NODE.4;

impl Record for SkipNode {
    const LAYOUT: TxLayout<SkipNode> = NODE.0;
}

/// A transactional skiplist map (`u64` keys in `1..u64::MAX` → `u64`
/// values).
pub struct TxSkipList {
    sim: Arc<HtmSim>,
    head: TxPtr<SkipNode>,
    pool: NodePool<SkipNode>,
    key_space: u64,
}

/// What one in-transaction insert attempt decided (see
/// [`TxSkipList::insert_in`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was absent; the caller's spare node was linked in (the
    /// spare is consumed).
    Inserted,
    /// The key was present; its value was overwritten.  A supplied spare
    /// is untouched — the caller keeps it (give it back to the pool or
    /// reuse it).
    Updated,
    /// The key was absent but no spare was supplied; nothing changed.
    /// The caller must allocate one ([`TxSkipList::alloc_spare`]) and
    /// re-run the transaction.
    NeedNode,
}

impl TxSkipList {
    /// Creates an empty skiplist whose [`Workload`] impl addresses
    /// `key_space` distinct keys (internally `1..=key_space`).
    pub fn new(sim: Arc<HtmSim>, key_space: u64) -> Self {
        assert!((1..u64::MAX - 1).contains(&key_space));
        let mem = sim.mem();
        let head = mem.try_alloc_record::<SkipNode>().or_sized(SIZING_HINT);
        let heap = mem.heap();
        head.field(KEY).store(heap, 0); // sentinel: below every real key
        head.field(HEIGHT).store(heap, MAX_HEIGHT);
        for level in 0..MAX_HEIGHT {
            head.slot(NEXT, level).store(heap, None);
        }
        let pool = NodePool::new(Arc::clone(mem));
        TxSkipList {
            sim,
            head,
            pool,
            key_space,
        }
    }

    /// Heap words for a list of at most `max_live` elements driven by
    /// `threads` workers.  Thanks to epoch-based reclamation, allocation
    /// beyond the live set is bounded by transient spares and
    /// not-yet-reclaimed retirees (a handful per thread) plus at most one
    /// partially-carved arena block per thread — not by the operation
    /// count.
    pub fn required_words(max_live: u64, threads: usize) -> usize {
        let threads = threads.max(1);
        (max_live as usize + 1 + threads * 4) * SkipNode::WORDS
            + 64
            + threads * MemConfig::DEFAULT_ARENA_BLOCK_WORDS
    }

    /// The simulator the list lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The node pool (reclamation counters live here).
    pub fn pool(&self) -> &NodePool<SkipNode> {
        &self.pool
    }

    /// Pins `thread_id` in the memory's epoch set for the duration of the
    /// returned guard.  Mutating wrappers hold one around their
    /// transaction; composed callers driving [`TxSkipList::insert_in`] /
    /// [`TxSkipList::remove_in`] directly should do the same.
    pub fn pin(&self, thread_id: usize) -> EpochGuard<'_> {
        EpochGuard::pin(self.sim.mem().epochs(), thread_id)
    }

    /// Keys must leave room for the head sentinel (0) and the pointer
    /// encoding (`u64::MAX`).
    fn check_key(key: u64) {
        assert!(key > 0 && key < u64::MAX, "keys must be in 1..u64::MAX");
    }

    /// Checked spare-node allocation for `thread_id`, preferring recycled
    /// nodes.  Call *before* the transaction (and unpinned), so aborted
    /// retries never allocate again.
    pub fn try_alloc_spare(
        &self,
        thread_id: usize,
        metrics: &mut MemMetrics,
    ) -> Result<TxPtr<SkipNode>, OutOfMemory> {
        self.pool.try_alloc(thread_id, metrics)
    }

    /// [`try_alloc_spare`](Self::try_alloc_spare) for operation paths,
    /// where exhaustion is a scenario-sizing bug: panics with the sizing
    /// hint.
    pub fn alloc_spare(&self, thread_id: usize, metrics: &mut MemMetrics) -> TxPtr<SkipNode> {
        self.try_alloc_spare(thread_id, metrics)
            .or_sized(SIZING_HINT)
    }

    /// Returns an unused spare (allocated but never linked) to the pool.
    pub fn give_back_spare(&self, thread_id: usize, spare: TxPtr<SkipNode>) {
        self.pool.give_back(thread_id, spare);
    }

    /// Retires a node that a **committed** transaction unlinked (see
    /// [`TxSkipList::remove_in`]); the pool reuses it once every thread
    /// has passed the current epoch.
    pub fn retire_node(&self, thread_id: usize, node: TxPtr<SkipNode>, metrics: &mut MemMetrics) {
        self.pool.retire(thread_id, node, metrics);
    }

    /// Deterministic tower height for `key`: geometric(1/2) over a
    /// key hash, in `1..=MAX_HEIGHT`.
    fn height_for(key: u64) -> usize {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        1 + (z.trailing_zeros() as usize).min(MAX_HEIGHT - 1)
    }

    /// Finds, per level, the last node with key `< key`, plus the node with
    /// exactly `key` when present.
    #[allow(clippy::type_complexity)]
    fn locate<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        key: u64,
    ) -> TxResult<([TxPtr<SkipNode>; MAX_HEIGHT], Option<TxPtr<SkipNode>>)> {
        let mut preds = [self.head; MAX_HEIGHT];
        let mut curr = self.head;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                match curr.slot(NEXT, level).read(tx)? {
                    Some(n) if n.field(KEY).read(tx)? < key => curr = n,
                    _ => break,
                }
            }
            preds[level] = curr;
        }
        let found = match preds[0].slot(NEXT, 0).read(tx)? {
            Some(n) if n.field(KEY).read(tx)? == key => Some(n),
            _ => None,
        };
        Ok((preds, found))
    }

    /// In-transaction insert/upsert, composable with other operations in
    /// the same transaction (the [`TxBank`](crate::structures::bank::TxBank)
    /// audit log appends through this).
    ///
    /// Node memory is the caller-supplied `spare`, pre-allocated *outside*
    /// the transaction via [`TxSkipList::alloc_spare`].  The spare is
    /// consumed only on [`InsertOutcome::Inserted`]; on
    /// [`InsertOutcome::Updated`] the caller keeps it, and with no spare
    /// an absent key returns [`InsertOutcome::NeedNode`] — still a
    /// committed (read-only) transaction — so the caller can allocate and
    /// re-run.  See [`TxSkipList::insert`] for the canonical wrapper.
    pub fn insert_in<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        key: u64,
        value: u64,
        spare: Option<TxPtr<SkipNode>>,
    ) -> TxResult<InsertOutcome> {
        let (preds, found) = self.locate(tx, key)?;
        if let Some(n) = found {
            n.field(VALUE).write(tx, value)?;
            return Ok(InsertOutcome::Updated);
        }
        let node = match spare {
            Some(s) => s,
            None => return Ok(InsertOutcome::NeedNode),
        };
        let height = Self::height_for(key);
        node.field(KEY).write(tx, key)?;
        node.field(VALUE).write(tx, value)?;
        node.field(HEIGHT).write(tx, height)?;
        for (level, pred) in preds.iter().enumerate().take(height) {
            let succ = pred.slot(NEXT, level).read(tx)?;
            node.slot(NEXT, level).write(tx, succ)?;
            pred.slot(NEXT, level).write(tx, Some(node))?;
        }
        Ok(InsertOutcome::Inserted)
    }

    /// Transactionally inserts `key` (or updates its value when present).
    /// Returns `true` when the key was newly inserted.
    ///
    /// The canonical pool life cycle: allocate the spare unpinned, pin,
    /// run the transaction, then return an unused spare.  Exactly one
    /// transaction commits per call.
    pub fn insert<T: TmThread>(&self, thread: &mut T, key: u64, value: u64) -> bool {
        Self::check_key(key);
        let tid = thread.thread_id();
        let spare = self.alloc_spare(tid, &mut thread.stats_mut().mem);
        let outcome = {
            let _guard = self.pin(tid);
            thread.execute(|tx| self.insert_in(tx, key, value, Some(spare)))
        };
        match outcome {
            InsertOutcome::Inserted => true,
            InsertOutcome::Updated => {
                self.give_back_spare(tid, spare);
                false
            }
            InsertOutcome::NeedNode => unreachable!("a spare was supplied"),
        }
    }

    /// In-transaction remove, composable with other operations in the same
    /// transaction.  Returns the removed value *and the unlinked node*,
    /// or `None` when absent.
    ///
    /// The caller owns the returned node and must
    /// [`retire`](TxSkipList::retire_node) it **after the transaction
    /// commits** — never inside the body, where the attempt may still
    /// abort (an aborted attempt unlinks nothing).  Reset any captured
    /// victim at the top of each retry attempt.
    pub fn remove_in<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        key: u64,
    ) -> TxResult<Option<(u64, TxPtr<SkipNode>)>> {
        let (preds, found) = self.locate(tx, key)?;
        let node = match found {
            Some(n) => n,
            None => return Ok(None),
        };
        let value = node.field(VALUE).read(tx)?;
        let height = node.field(HEIGHT).read(tx)?;
        for level in (0..height).rev() {
            let succ = node.slot(NEXT, level).read(tx)?;
            preds[level].slot(NEXT, level).write(tx, succ)?;
        }
        Ok(Some((value, node)))
    }

    /// Transactionally removes `key`, returning its value when present.
    /// The node is retired to the pool once the remove commits.
    pub fn remove<T: TmThread>(&self, thread: &mut T, key: u64) -> Option<u64> {
        Self::check_key(key);
        let tid = thread.thread_id();
        let removed = {
            let _guard = self.pin(tid);
            thread.execute(|tx| self.remove_in(tx, key))
        };
        removed.map(|(value, node)| {
            self.retire_node(tid, node, &mut thread.stats_mut().mem);
            value
        })
    }

    /// Transactionally gets the value stored under `key`.
    pub fn get<T: TmThread>(&self, thread: &mut T, key: u64) -> Option<u64> {
        Self::check_key(key);
        thread.execute(|tx| self.get_in(tx, key))
    }

    /// In-transaction lookup (composable with other operations; works
    /// through `&mut dyn Txn` as well).
    pub fn get_in<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Option<u64>> {
        let (_, found) = self.locate(tx, key)?;
        match found {
            Some(n) => Ok(Some(n.field(VALUE).read(tx)?)),
            None => Ok(None),
        }
    }

    /// In-transaction value update of an *existing* key (no allocation;
    /// composable with other operations).  Returns `false` when absent.
    pub fn update_in<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, value: u64) -> TxResult<bool> {
        let (_, found) = self.locate(tx, key)?;
        match found {
            Some(n) => {
                n.field(VALUE).write(tx, value)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Transactionally tests membership.
    pub fn contains<T: TmThread>(&self, thread: &mut T, key: u64) -> bool {
        Self::check_key(key);
        thread.execute(|tx| Ok(self.locate(tx, key)?.1.is_some()))
    }

    /// Transactionally sums the values of the keys in
    /// `[lo, lo + span)` — the scenario engine's range query.
    pub fn range_sum<T: TmThread>(&self, thread: &mut T, lo: u64, span: u64) -> u64 {
        Self::check_key(lo);
        thread.execute(|tx| {
            let (preds, _) = self.locate(tx, lo)?;
            let hi = lo.saturating_add(span);
            let mut sum = 0u64;
            let mut curr = preds[0].slot(NEXT, 0).read(tx)?;
            while let Some(n) = curr {
                if n.field(KEY).read(tx)? >= hi {
                    break;
                }
                sum = sum.wrapping_add(n.field(VALUE).read(tx)?);
                curr = n.slot(NEXT, 0).read(tx)?;
            }
            Ok(sum)
        })
    }

    /// Transactionally counts the elements (walks level 0 in one
    /// transaction — only sensible for small test lists).
    pub fn len<T: TmThread>(&self, thread: &mut T) -> u64 {
        thread.execute(|tx| {
            let mut count = 0;
            let mut curr = self.head.slot(NEXT, 0).read(tx)?;
            while let Some(n) = curr {
                count += 1;
                curr = n.slot(NEXT, 0).read(tx)?;
            }
            Ok(count)
        })
    }

    /// Transactionally collects `(key, value)` pairs in key order (test
    /// helper).
    pub fn snapshot<T: TmThread>(&self, thread: &mut T) -> Vec<(u64, u64)> {
        thread.execute(|tx| {
            let mut pairs = Vec::new();
            let mut curr = self.head.slot(NEXT, 0).read(tx)?;
            while let Some(n) = curr {
                pairs.push((n.field(KEY).read(tx)?, n.field(VALUE).read(tx)?));
                curr = n.slot(NEXT, 0).read(tx)?;
            }
            Ok(pairs)
        })
    }

    /// Non-transactional structural check for tests run after all threads
    /// have joined: every level is strictly sorted, every tower member is
    /// reachable at level 0, and no level links to a node shorter than it.
    pub fn is_well_formed_quiescent(&self) -> bool {
        let level0: Vec<u64> = {
            let mut keys = Vec::new();
            let mut curr = self.sim.nt_read(self.head.slot(NEXT, 0));
            while let Some(n) = curr {
                keys.push(self.sim.nt_read(n.field(KEY)));
                curr = self.sim.nt_read(n.slot(NEXT, 0));
            }
            keys
        };
        if level0.windows(2).any(|w| w[0] >= w[1]) {
            return false;
        }
        for level in 1..MAX_HEIGHT {
            let mut prev = 0u64; // head sentinel key
            let mut curr = self.sim.nt_read(self.head.slot(NEXT, level));
            while let Some(n) = curr {
                let k = self.sim.nt_read(n.field(KEY));
                let h = self.sim.nt_read(n.field(HEIGHT));
                if k <= prev || h <= level || level0.binary_search(&k).is_err() {
                    return false;
                }
                prev = k;
                curr = self.sim.nt_read(n.slot(NEXT, level));
            }
        }
        true
    }

    /// Non-transactionally seeds `key → value` during construction, before
    /// any worker thread exists (single keys; use [`TxSkipList::seeder`]
    /// for bulk prefill).  Returns [`OutOfMemory`] when the heap cannot
    /// hold the node, so scenario sizing mistakes surface as a readable
    /// error instead of an allocator panic.
    ///
    /// Must not run concurrently with transactions.
    pub fn try_seed_insert(&self, key: u64, value: u64) -> Result<(), OutOfMemory> {
        Self::check_key(key);
        let mem = self.sim.mem();
        let heap = mem.heap();
        let mut preds = [self.head; MAX_HEIGHT];
        let mut curr = self.head;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                match curr.slot(NEXT, level).load(heap) {
                    Some(n) if n.field(KEY).load(heap) < key => curr = n,
                    _ => break,
                }
            }
            preds[level] = curr;
        }
        if let Some(n) = preds[0].slot(NEXT, 0).load(heap) {
            if n.field(KEY).load(heap) == key {
                n.field(VALUE).store(heap, value);
                return Ok(());
            }
        }
        let node = mem.try_alloc_record::<SkipNode>()?;
        let height = Self::height_for(key);
        node.field(KEY).store(heap, key);
        node.field(VALUE).store(heap, value);
        node.field(HEIGHT).store(heap, height);
        for (level, pred) in preds.iter().enumerate().take(height) {
            let succ = pred.slot(NEXT, level).load(heap);
            node.slot(NEXT, level).store(heap, succ);
            pred.slot(NEXT, level).store(heap, Some(node));
        }
        Ok(())
    }

    /// [`try_seed_insert`](Self::try_seed_insert), panicking with the
    /// sizing hint on exhaustion (for tests and examples that size their
    /// heap correctly by construction).
    pub fn seed_insert(&self, key: u64, value: u64) {
        self.try_seed_insert(key, value).or_sized(SIZING_HINT)
    }

    /// A bulk seeder for construction-time prefill: O(1) per ascending
    /// key, chunked node allocation, relaxed stores.
    pub fn seeder(&self) -> SkipListSeeder<'_> {
        SkipListSeeder::new(self)
    }

    /// Seeds every other key of the key space (`1, 3, 5, …`) with
    /// `value = key * 10` — the scenario engine's standard half-full
    /// prefill, leaving room for inserts to grow the set.
    pub fn prefill_alternate(&self) {
        let mut seeder = self.seeder();
        let mut key = 1;
        while key <= self.key_space {
            seeder.insert(key, key * 10).or_sized(SIZING_HINT);
            key += 2;
        }
    }
}

/// Construction-time bulk prefill for [`TxSkipList`], proportional to
/// live data.
///
/// The general seeding path re-traverses the list per key — O(log n) at
/// best and quadratic on the sorted streams prefill actually produces
/// (every tower saturated at [`MAX_HEIGHT`] still walks the whole top
/// level).  The seeder instead keeps the **tail node of every level**:
/// a key greater than everything seeded so far appends in O(height)
/// with plain relaxed stores, and node memory is carved from the heap in
/// `SEED_CHUNK`-node chunks (one allocator CAS per chunk).  Out-of-order
/// or duplicate keys fall back to [`TxSkipList::try_seed_insert`]
/// (tails stay valid — a non-maximal key never becomes a level tail... it
/// can, so the tails are re-walked after a fallback).
///
/// Must not run concurrently with transactions (construction only).
pub struct SkipListSeeder<'a> {
    list: &'a TxSkipList,
    /// Last node linked at each level (the head sentinel when empty).
    tails: [TxPtr<SkipNode>; MAX_HEIGHT],
    /// Largest key seeded so far (0 = none: the sentinel's key).
    last_key: u64,
    /// Bulk-carved nodes not yet linked.
    chunk: Vec<TxPtr<SkipNode>>,
    seeded: u64,
}

impl<'a> SkipListSeeder<'a> {
    fn new(list: &'a TxSkipList) -> Self {
        let mut seeder = SkipListSeeder {
            list,
            tails: [list.head; MAX_HEIGHT],
            last_key: 0,
            chunk: Vec::new(),
            seeded: 0,
        };
        seeder.rewalk_tails();
        seeder
    }

    /// Keys seeded through this seeder.
    pub fn seeded(&self) -> u64 {
        self.seeded
    }

    /// Repositions every tail on the actual last node of its level
    /// (needed at construction over a non-empty list and after an
    /// out-of-order fallback insert).
    fn rewalk_tails(&mut self) {
        let heap = self.list.sim.mem().heap();
        for level in 0..MAX_HEIGHT {
            // Resume from the previous tail: it is still linked, so the
            // walk is O(new nodes), not O(list).
            let mut curr = self.tails[level];
            while let Some(n) = curr.slot(NEXT, level).load_relaxed(heap) {
                curr = n;
            }
            self.tails[level] = curr;
        }
        self.last_key = if self.tails[0] == self.list.head {
            0
        } else {
            self.tails[0].field(KEY).load_relaxed(heap)
        };
    }

    fn next_node(&mut self) -> Result<TxPtr<SkipNode>, OutOfMemory> {
        if let Some(node) = self.chunk.pop() {
            return Ok(node);
        }
        let mem = self.list.sim.mem();
        match mem.try_alloc_records::<SkipNode>(SEED_CHUNK) {
            Ok(records) => {
                // Stack the rest in reverse so pop() hands nodes out in
                // address order.
                for i in (1..records.len()).rev() {
                    self.chunk.push(records.get(i));
                }
                Ok(records.get(0))
            }
            // Near exhaustion, degrade to exact single-node requests so
            // tight test heaps fill completely and the eventual error
            // reports the true per-node request size.
            Err(_) => mem.try_alloc_record::<SkipNode>(),
        }
    }

    /// Seeds `key → value`.  Ascending fresh keys take the O(1) append
    /// path; anything else falls back to the general seeding walk.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<(), OutOfMemory> {
        TxSkipList::check_key(key);
        if key <= self.last_key {
            self.list.try_seed_insert(key, value)?;
            self.rewalk_tails();
            self.seeded += 1;
            return Ok(());
        }
        let node = self.next_node()?;
        let heap = self.list.sim.mem().heap();
        let height = TxSkipList::height_for(key);
        node.field(KEY).store_relaxed(heap, key);
        node.field(VALUE).store_relaxed(heap, value);
        node.field(HEIGHT).store_relaxed(heap, height);
        for level in 0..height {
            // Chunk memory is fresh zeroes, which do NOT decode as a null
            // link — the end-of-level marker must be stored explicitly.
            node.slot(NEXT, level).store_relaxed(heap, None);
            self.tails[level]
                .slot(NEXT, level)
                .store_relaxed(heap, Some(node));
            self.tails[level] = node;
        }
        self.last_key = key;
        self.seeded += 1;
        Ok(())
    }

    /// Returns unused bulk-carved nodes to the list's pool as spares, so
    /// chunk over-allocation is reused rather than stranded.  Called on
    /// drop; exposed for tests.
    pub fn finish(mut self) -> usize {
        self.release_chunk()
    }

    fn release_chunk(&mut self) -> usize {
        let released = self.chunk.len();
        for node in self.chunk.drain(..) {
            self.list.pool.give_back(0, node);
        }
        released
    }
}

impl Drop for SkipListSeeder<'_> {
    fn drop(&mut self) {
        self.release_chunk();
    }
}

impl std::fmt::Debug for SkipListSeeder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipListSeeder")
            .field("seeded", &self.seeded)
            .field("last_key", &self.last_key)
            .field("chunk", &self.chunk.len())
            .finish()
    }
}

/// Kind mapping: `Lookup` → membership test, `RangeSum` → value sum over
/// [`RANGE_SPAN`] consecutive keys, `Update`/`Insert` → upsert (insert or
/// overwrite), `Remove` → remove.  Driver keys are translated by +1 past
/// the head sentinel.
impl Workload for TxSkipList {
    fn name(&self) -> String {
        format!("skiplist-{}", self.key_space)
    }

    fn key_space(&self) -> u64 {
        self.key_space
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64) {
        let k = key + 1;
        match op {
            OpKind::Lookup => {
                self.contains(thread, k);
            }
            OpKind::RangeSum => {
                self.range_sum(thread, k, RANGE_SPAN);
            }
            OpKind::Update | OpKind::Insert => {
                self.insert(thread, k, rng.next_u64());
            }
            OpKind::Remove => {
                self.remove(thread, k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_core::{RhConfig, RhRuntime};
    use rhtm_htm::HtmConfig;
    use rhtm_mem::MemConfig;
    use std::collections::BTreeMap;

    fn runtime(words: usize) -> RhRuntime {
        RhRuntime::new(
            MemConfig::with_data_words(words),
            HtmConfig::default(),
            RhConfig::rh1_mixed(100),
        )
    }

    #[test]
    fn matches_a_sequential_model() {
        let rt = runtime(1 << 16);
        let list = TxSkipList::new(Arc::clone(rt.sim()), 128);
        let mut th = rt.register_thread();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = WorkloadRng::new(17);
        for _ in 0..3_000 {
            let key = 1 + rng.next_below(96);
            match rng.next_below(4) {
                0 => {
                    let value = rng.next_u64();
                    assert_eq!(
                        list.insert(&mut th, key, value),
                        model.insert(key, value).is_none()
                    );
                }
                1 => assert_eq!(list.remove(&mut th, key), model.remove(&key)),
                2 => assert_eq!(list.get(&mut th, key), model.get(&key).copied()),
                _ => {
                    let span = 1 + rng.next_below(16);
                    let want: u64 = model
                        .range(key..key.saturating_add(span))
                        .map(|(_, v)| *v)
                        .fold(0u64, |a, v| a.wrapping_add(v));
                    assert_eq!(list.range_sum(&mut th, key, span), want);
                }
            }
        }
        let snapshot = list.snapshot(&mut th);
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(snapshot, want);
        assert!(list.is_well_formed_quiescent());
        assert_eq!(
            list.pool().pending() as u64,
            list.pool().retired_count() - list.pool().reclaimed_count()
        );
        assert_eq!(list.pool().unsafe_reclaims(), 0);
    }

    #[test]
    fn freelist_recycles_removed_nodes() {
        let rt = runtime(1 << 14);
        let list = TxSkipList::new(Arc::clone(rt.sim()), 64);
        let mut th = rt.register_thread();
        let used_before = {
            // Fill once so the first allocations happen...
            for k in 1..=32u64 {
                assert!(list.insert(&mut th, k, k));
            }
            rt.mem().alloc(0).index()
        };
        // ...then churn insert/remove far beyond the live size.
        for round in 0..200u64 {
            let k = 1 + (round % 32);
            assert_eq!(list.remove(&mut th, k), Some(k));
            assert!(list.insert(&mut th, k, k));
        }
        let used_after = rt.mem().alloc(0).index();
        assert_eq!(
            used_before, used_after,
            "steady-state churn must not allocate"
        );
        assert!(list.is_well_formed_quiescent());
        // Churn retired 200 nodes and reclaimed them all back into
        // inserts (the last round's retiree may still be in flight).
        let pool = list.pool();
        assert_eq!(pool.retired_count(), 200);
        assert!(pool.reclaimed_count() >= 199);
        let mem = th.stats().mem.clone();
        assert_eq!(mem.retired, 200);
        assert!(mem.epoch_advances >= 2, "reclaim drives the epoch clock");
    }

    #[test]
    fn heights_are_deterministic_and_bounded() {
        for key in 1..2_000u64 {
            let h = TxSkipList::height_for(key);
            assert_eq!(h, TxSkipList::height_for(key));
            assert!((1..=MAX_HEIGHT).contains(&h));
        }
        // The geometry must actually produce tall towers somewhere.
        assert!((1..2_000u64).any(|k| TxSkipList::height_for(k) >= 4));
    }

    #[test]
    fn prefill_seeds_every_other_key() {
        let rt = runtime(1 << 16);
        let list = TxSkipList::new(Arc::clone(rt.sim()), 100);
        list.prefill_alternate();
        let mut th = rt.register_thread();
        assert_eq!(list.len(&mut th), 50);
        assert_eq!(list.get(&mut th, 1), Some(10));
        assert_eq!(list.get(&mut th, 99), Some(990));
        assert_eq!(list.get(&mut th, 2), None);
        assert!(list.is_well_formed_quiescent());
    }

    #[test]
    fn seeder_matches_the_general_path_and_handles_disorder() {
        let rt = runtime(1 << 16);
        let fast = TxSkipList::new(Arc::clone(rt.sim()), 512);
        let slow = TxSkipList::new(Arc::clone(rt.sim()), 512);
        // Ascending run, one out-of-order key, one duplicate overwrite.
        let keys: Vec<u64> = (1..=200).chain([57, 201, 100, 202]).collect();
        let mut seeder = fast.seeder();
        for &k in &keys {
            seeder.insert(k, k * 7).unwrap();
            slow.seed_insert(k, k * 7);
        }
        assert_eq!(seeder.seeded(), keys.len() as u64);
        drop(seeder);
        let mut th = rt.register_thread();
        assert_eq!(fast.snapshot(&mut th), slow.snapshot(&mut th));
        assert!(fast.is_well_formed_quiescent());
        // Seeding a prefilled list through a *new* seeder must keep
        // appending correctly (tails re-walked at construction).
        let mut resumed = fast.seeder();
        resumed.insert(500, 1).unwrap();
        drop(resumed);
        let mut th2 = rt.register_thread();
        assert_eq!(fast.get(&mut th2, 500), Some(1));
        assert!(fast.is_well_formed_quiescent());
    }

    #[test]
    fn undersized_prefill_reports_out_of_memory() {
        // A heap with room for the head sentinel but not for 64 seeded
        // nodes: the checked path must surface OutOfMemory, not panic
        // inside the allocator.
        let rt = runtime(4 * SkipNode::WORDS);
        let list = TxSkipList::new(Arc::clone(rt.sim()), 64);
        let mut failed = None;
        for k in 1..=64u64 {
            if let Err(oom) = list.try_seed_insert(k, k) {
                failed = Some(oom);
                break;
            }
        }
        let oom = failed.expect("undersized heap must exhaust");
        assert_eq!(oom.requested, SkipNode::WORDS);
        assert!(oom.to_string().contains("exhausted"));
        // The list must still be well-formed with the keys that did fit.
        assert!(list.is_well_formed_quiescent());
    }

    #[test]
    fn undersized_bulk_seeding_reports_out_of_memory() {
        let rt = runtime(4 * SkipNode::WORDS);
        let list = TxSkipList::new(Arc::clone(rt.sim()), 64);
        let mut seeder = list.seeder();
        let mut failed = None;
        for k in 1..=64u64 {
            if let Err(oom) = seeder.insert(k, k) {
                failed = Some(oom);
                break;
            }
        }
        let oom = failed.expect("undersized heap must exhaust");
        // The chunked path degrades to exact requests near exhaustion, so
        // the error reports the true per-node size.
        assert_eq!(oom.requested, SkipNode::WORDS);
        drop(seeder);
        assert!(list.is_well_formed_quiescent());
    }

    #[test]
    fn workload_ops_commit_once_per_call() {
        let rt = runtime(1 << 16);
        let list = TxSkipList::new(Arc::clone(rt.sim()), 64);
        list.prefill_alternate();
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(2);
        let mix = crate::mix::OpMix::new([40, 10, 10, 20, 20]);
        for _ in 0..400 {
            let op = mix.draw(&mut rng);
            let key = rng.next_below(list.key_space());
            list.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 400);
        assert!(list.is_well_formed_quiescent());
    }

    #[test]
    fn concurrent_churn_keeps_the_list_well_formed() {
        let rt = Arc::new(runtime(1 << 18));
        let list = Arc::new(TxSkipList::new(Arc::clone(rt.sim()), 64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rt = Arc::clone(&rt);
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    let mut rng = WorkloadRng::new(t as u64);
                    for _ in 0..1_500 {
                        let key = 1 + rng.next_below(64);
                        if rng.draw_percent(50) {
                            list.insert(&mut th, key, key * 1_000 + t as u64);
                        } else {
                            list.remove(&mut th, key);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(list.is_well_formed_quiescent());
        assert_eq!(list.pool().unsafe_reclaims(), 0);
        assert_eq!(
            list.pool().pending() as u64,
            list.pool().retired_count() - list.pool().reclaimed_count()
        );
        let mut th = rt.register_thread();
        let snapshot = list.snapshot(&mut th);
        for (k, v) in snapshot {
            assert_eq!(v / 1_000, k, "value {v} never written for key {k}");
        }
    }
}
