//! Fully mutable transactional data structures.
//!
//! The paper's emulation could only run "constant" structures because its
//! hardware transactions were plain loads and stores with no isolation.
//! The simulated HTM in this workspace provides real atomicity, so these
//! structures exercise the protocols on *shape-changing* workloads: inserts
//! and removals rewrite pointers.  They are used by the correctness and
//! property tests (checked against a sequential model and against the
//! global-lock oracle runtime), and by the examples.
//!
//! Memory for new nodes is taken from the shared bump allocator through
//! the typed layer ([`rhtm_api::typed::TypedAlloc`]).  Nodes removed from
//! a structure are not recycled (the allocator is append-only); this is
//! deliberate — safe memory reclamation is orthogonal to the TM protocols
//! and the paper leaves privatization to future work.  (The benchmark-grade
//! [`super::skiplist`] shows the freelist pattern where recycling matters.)

use std::sync::Arc;

use rhtm_api::typed::{Field, LayoutBuilder, Record, TxLayout, TxPtr, TxSlice, TypedAlloc};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;

/// The heap record of a map node: `key`, `value`, `next`.
pub struct MapNode;

type MapLink = Option<TxPtr<MapNode>>;

#[allow(clippy::type_complexity)] // the layout-builder tuple idiom
const MAP_NODE: (
    TxLayout<MapNode>,
    Field<MapNode, u64>,
    Field<MapNode, u64>,
    Field<MapNode, MapLink>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, value) = b.field();
    let (b, next) = b.field();
    (b.pad_to(4).finish(), key, value, next)
};
const M_KEY: Field<MapNode, u64> = MAP_NODE.1;
const M_VALUE: Field<MapNode, u64> = MAP_NODE.2;
const M_NEXT: Field<MapNode, MapLink> = MAP_NODE.3;

impl Record for MapNode {
    const LAYOUT: TxLayout<MapNode> = MAP_NODE.0;
}

/// A transactional chained hash map with a fixed bucket count.
pub struct TxHashMap {
    sim: Arc<HtmSim>,
    buckets: TxSlice<MapLink>,
    bucket_mask: u64,
}

impl TxHashMap {
    /// Creates a map with `bucket_count` (rounded up to a power of two)
    /// empty buckets.
    pub fn new(sim: Arc<HtmSim>, bucket_count: u64) -> Self {
        let bucket_count = bucket_count.next_power_of_two();
        let buckets: TxSlice<MapLink> = sim.mem().alloc_slice(bucket_count as usize);
        let heap = sim.mem().heap();
        for bucket in buckets.iter() {
            bucket.store(heap, None);
        }
        TxHashMap {
            sim,
            buckets,
            bucket_mask: bucket_count - 1,
        }
    }

    /// Heap words needed for the bucket array plus `expected_inserts` nodes.
    pub fn required_words(bucket_count: u64, expected_inserts: u64) -> usize {
        bucket_count.next_power_of_two() as usize + expected_inserts as usize * MapNode::WORDS
    }

    #[inline]
    fn bucket(&self, key: u64) -> rhtm_api::typed::TxCell<MapLink> {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        self.buckets.get((h & self.bucket_mask) as usize)
    }

    /// Transactionally gets the value stored under `key`.
    pub fn get<T: TmThread>(&self, thread: &mut T, key: u64) -> Option<u64> {
        thread.execute(|tx| self.get_in(tx, key))
    }

    /// In-transaction lookup (composable with other operations).
    pub fn get_in<X: Txn + ?Sized>(&self, tx: &mut X, key: u64) -> TxResult<Option<u64>> {
        let mut node = self.bucket(key).read(tx)?;
        while let Some(n) = node {
            if n.field(M_KEY).read(tx)? == key {
                return Ok(Some(n.field(M_VALUE).read(tx)?));
            }
            node = n.field(M_NEXT).read(tx)?;
        }
        Ok(None)
    }

    /// Transactionally inserts or updates `key`.  Returns the previous value
    /// if the key was already present.
    pub fn insert<T: TmThread>(&self, thread: &mut T, key: u64, value: u64) -> Option<u64> {
        // Pre-allocate the node outside the transaction so an abort/retry
        // does not allocate again; unused nodes are simply wasted words.
        let node = self.sim.mem().alloc_record::<MapNode>();
        thread.execute(|tx| {
            // Search the chain for the key.
            let bucket = self.bucket(key);
            let mut cursor = bucket.read(tx)?;
            while let Some(n) = cursor {
                if n.field(M_KEY).read(tx)? == key {
                    let prev = n.field(M_VALUE).read(tx)?;
                    n.field(M_VALUE).write(tx, value)?;
                    return Ok(Some(prev));
                }
                cursor = n.field(M_NEXT).read(tx)?;
            }
            // Not found: link the pre-allocated node at the head.
            let head = bucket.read(tx)?;
            node.field(M_KEY).write(tx, key)?;
            node.field(M_VALUE).write(tx, value)?;
            node.field(M_NEXT).write(tx, head)?;
            bucket.write(tx, Some(node))?;
            Ok(None)
        })
    }

    /// In-transaction update of an *existing* key (composable with other
    /// operations).  Returns `false` when the key is absent; inserting a new
    /// key requires [`TxHashMap::insert`] because it allocates a node.
    pub fn set_in<X: Txn + ?Sized>(&self, tx: &mut X, key: u64, value: u64) -> TxResult<bool> {
        let mut node = self.bucket(key).read(tx)?;
        while let Some(n) = node {
            if n.field(M_KEY).read(tx)? == key {
                n.field(M_VALUE).write(tx, value)?;
                return Ok(true);
            }
            node = n.field(M_NEXT).read(tx)?;
        }
        Ok(false)
    }

    /// Transactionally removes `key`, returning its value if present.
    pub fn remove<T: TmThread>(&self, thread: &mut T, key: u64) -> Option<u64> {
        thread.execute(|tx| {
            let bucket = self.bucket(key);
            let mut prev: Option<TxPtr<MapNode>> = None;
            let mut cursor = bucket.read(tx)?;
            while let Some(n) = cursor {
                let next = n.field(M_NEXT).read(tx)?;
                if n.field(M_KEY).read(tx)? == key {
                    let value = n.field(M_VALUE).read(tx)?;
                    match prev {
                        Some(p) => p.field(M_NEXT).write(tx, next)?,
                        None => bucket.write(tx, next)?,
                    }
                    return Ok(Some(value));
                }
                prev = Some(n);
                cursor = next;
            }
            Ok(None)
        })
    }

    /// Transactionally counts the elements (walks every bucket in one
    /// transaction — only sensible for small test maps).
    pub fn len<T: TmThread>(&self, thread: &mut T) -> u64 {
        thread.execute(|tx| {
            let mut count = 0;
            for b in 0..=self.bucket_mask {
                let mut node = self.buckets.get(b as usize).read(tx)?;
                while let Some(n) = node {
                    count += 1;
                    node = n.field(M_NEXT).read(tx)?;
                }
            }
            Ok(count)
        })
    }
}

/// The heap record of a sorted-list node: `key`, `next` (set semantics —
/// no value field; padded to the map node's four words).
pub struct ListNode;

type ListLink = Option<TxPtr<ListNode>>;

const LIST_NODE: (
    TxLayout<ListNode>,
    Field<ListNode, u64>,
    Field<ListNode, ListLink>,
) = {
    let b = LayoutBuilder::new();
    let (b, key) = b.field();
    let (b, next) = b.field();
    (b.pad_to(4).finish(), key, next)
};
const L_KEY: Field<ListNode, u64> = LIST_NODE.1;
const L_NEXT: Field<ListNode, ListLink> = LIST_NODE.2;

impl Record for ListNode {
    const LAYOUT: TxLayout<ListNode> = LIST_NODE.0;
}

/// A transactional sorted singly-linked list (set semantics) with sentinel
/// head and tail nodes.
pub struct TxSortedList {
    head: TxPtr<ListNode>,
    sim: Arc<HtmSim>,
}

impl TxSortedList {
    /// Creates an empty list.
    pub fn new(sim: Arc<HtmSim>) -> Self {
        let mem = sim.mem();
        let head = mem.alloc_record::<ListNode>();
        let tail = mem.alloc_record::<ListNode>();
        let heap = mem.heap();
        head.field(L_KEY).store(heap, 0); // sentinel: smaller than any real key + 1
        head.field(L_NEXT).store(heap, Some(tail));
        tail.field(L_KEY).store(heap, u64::MAX); // sentinel: larger than any real key
        tail.field(L_NEXT).store(heap, None);
        TxSortedList { head, sim }
    }

    /// Heap words needed for the sentinels plus `expected_inserts` nodes.
    pub fn required_words(expected_inserts: u64) -> usize {
        (expected_inserts as usize + 2) * ListNode::WORDS
    }

    /// Keys must leave room for the sentinels.
    fn check_key(key: u64) {
        assert!(key > 0 && key < u64::MAX, "keys must be in 1..u64::MAX-1");
    }

    /// Finds the pair `(predecessor, current)` such that
    /// `pred.key < key <= current.key`.
    fn locate<X: Txn + ?Sized>(
        &self,
        tx: &mut X,
        key: u64,
    ) -> TxResult<(TxPtr<ListNode>, TxPtr<ListNode>, u64)> {
        let mut pred = self.head;
        let mut curr = pred.field(L_NEXT).read(tx)?.expect("tail sentinel present");
        loop {
            let k = curr.field(L_KEY).read(tx)?;
            if k >= key {
                return Ok((pred, curr, k));
            }
            pred = curr;
            curr = curr.field(L_NEXT).read(tx)?.expect("tail sentinel present");
        }
    }

    /// Transactionally tests membership.
    pub fn contains<T: TmThread>(&self, thread: &mut T, key: u64) -> bool {
        Self::check_key(key);
        thread.execute(|tx| {
            let (_, _, found_key) = self.locate(tx, key)?;
            Ok(found_key == key)
        })
    }

    /// Transactionally inserts `key`; returns `false` if it was already
    /// present.
    pub fn insert<T: TmThread>(&self, thread: &mut T, key: u64) -> bool {
        Self::check_key(key);
        let node = self.sim.mem().alloc_record::<ListNode>();
        thread.execute(|tx| {
            let (pred, curr, found_key) = self.locate(tx, key)?;
            if found_key == key {
                return Ok(false);
            }
            node.field(L_KEY).write(tx, key)?;
            node.field(L_NEXT).write(tx, Some(curr))?;
            pred.field(L_NEXT).write(tx, Some(node))?;
            Ok(true)
        })
    }

    /// Transactionally removes `key`; returns `false` if it was absent.
    pub fn remove<T: TmThread>(&self, thread: &mut T, key: u64) -> bool {
        Self::check_key(key);
        thread.execute(|tx| {
            let (pred, curr, found_key) = self.locate(tx, key)?;
            if found_key != key {
                return Ok(false);
            }
            let next = curr.field(L_NEXT).read(tx)?;
            pred.field(L_NEXT).write(tx, next)?;
            Ok(true)
        })
    }

    /// Transactionally collects the keys in order (test helper).
    pub fn snapshot<T: TmThread>(&self, thread: &mut T) -> Vec<u64> {
        thread.execute(|tx| {
            let mut keys = Vec::new();
            let mut node = self.head.field(L_NEXT).read(tx)?;
            while let Some(n) = node {
                let k = n.field(L_KEY).read(tx)?;
                if k == u64::MAX {
                    break;
                }
                keys.push(k);
                node = n.field(L_NEXT).read(tx)?;
            }
            Ok(keys)
        })
    }

    /// Non-transactional sortedness check for tests run after all threads
    /// have joined.
    pub fn is_sorted_quiescent(&self) -> bool {
        let mut prev = 0u64;
        let mut node = self.sim.nt_read(self.head.field(L_NEXT));
        while let Some(n) = node {
            let k = self.sim.nt_read(n.field(L_KEY));
            if k == u64::MAX {
                return true;
            }
            if k <= prev {
                return false;
            }
            prev = k;
            node = self.sim.nt_read(n.field(L_NEXT));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_core::{RhConfig, RhRuntime};
    use rhtm_htm::HtmConfig;
    use rhtm_mem::MemConfig;
    use std::collections::{HashMap, HashSet};

    fn runtime() -> RhRuntime {
        RhRuntime::new(
            MemConfig::with_data_words(1 << 16),
            HtmConfig::default(),
            RhConfig::rh1_mixed(100),
        )
    }

    #[test]
    fn hashmap_matches_a_sequential_model() {
        let rt = runtime();
        let map = TxHashMap::new(Arc::clone(rt.sim()), 64);
        let mut th = rt.register_thread();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = crate::rng::WorkloadRng::new(11);
        for _ in 0..2_000 {
            let key = rng.next_below(100);
            match rng.next_below(3) {
                0 => {
                    let value = rng.next_u64();
                    assert_eq!(map.insert(&mut th, key, value), model.insert(key, value));
                }
                1 => assert_eq!(map.remove(&mut th, key), model.remove(&key)),
                _ => assert_eq!(map.get(&mut th, key), model.get(&key).copied()),
            }
        }
        assert_eq!(map.len(&mut th), model.len() as u64);
    }

    #[test]
    fn sorted_list_matches_a_sequential_model() {
        let rt = runtime();
        let list = TxSortedList::new(Arc::clone(rt.sim()));
        let mut th = rt.register_thread();
        let mut model: HashSet<u64> = HashSet::new();
        let mut rng = crate::rng::WorkloadRng::new(5);
        for _ in 0..1_500 {
            let key = 1 + rng.next_below(64);
            match rng.next_below(3) {
                0 => assert_eq!(list.insert(&mut th, key), model.insert(key)),
                1 => assert_eq!(list.remove(&mut th, key), model.remove(&key)),
                _ => assert_eq!(list.contains(&mut th, key), model.contains(&key)),
            }
        }
        let mut expected: Vec<u64> = model.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(list.snapshot(&mut th), expected);
        assert!(list.is_sorted_quiescent());
    }

    #[test]
    fn concurrent_inserts_of_disjoint_keys_all_land() {
        let rt = Arc::new(runtime());
        let map = Arc::new(TxHashMap::new(Arc::clone(rt.sim()), 256));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rt = Arc::clone(&rt);
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for i in 0..500u64 {
                        let key = t as u64 * 10_000 + i;
                        assert_eq!(map.insert(&mut th, key, key * 2), None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut th = rt.register_thread();
        assert_eq!(map.len(&mut th), 2_000);
        assert_eq!(map.get(&mut th, 30_499), Some(60_998));
    }

    #[test]
    fn concurrent_set_operations_keep_the_list_sorted() {
        let rt = Arc::new(runtime());
        let list = Arc::new(TxSortedList::new(Arc::clone(rt.sim())));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rt = Arc::clone(&rt);
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    let mut rng = crate::rng::WorkloadRng::new(t as u64);
                    for _ in 0..800 {
                        let key = 1 + rng.next_below(128);
                        if rng.draw_percent(50) {
                            list.insert(&mut th, key);
                        } else {
                            list.remove(&mut th, key);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(list.is_sorted_quiescent());
        let mut th = rt.register_thread();
        let snapshot = list.snapshot(&mut th);
        let unique: HashSet<_> = snapshot.iter().copied().collect();
        assert_eq!(unique.len(), snapshot.len(), "no duplicate keys");
    }
}
