//! A transactional bounded FIFO queue — the scenario engine's
//! producer/consumer workload.
//!
//! None of the search-structure workloads exercise this shape: every
//! operation of a queue fights over the *same two words* (the head and
//! tail cursors), so the abort behaviour is dominated by write-write
//! conflicts on two cache lines rather than by footprint or read-set
//! validation.  That is the worst case for optimistic hardware retries and
//! the best case for a quick fallback — precisely the trade-off the retry
//! policies and the RH cascade are about.
//!
//! The queue is a ring buffer over a pre-allocated slot array
//! ([`rhtm_api::typed::TxSlice`]) with monotonically increasing head/tail
//! cursors ([`rhtm_api::typed::TxCell`]s; `tail - head` = length), so
//! benchmark runs allocate nothing.  The cursors live on separate cache
//! lines to keep enqueue/dequeue conflicts semantic (full/empty checks)
//! rather than false sharing.

use std::sync::Arc;

use rhtm_api::reclaim::EpochGuard;
use rhtm_api::typed::{OrSized, TxCell, TxSlice, TypedAlloc};
use rhtm_api::{TmThread, TxResult, Txn};
use rhtm_htm::HtmSim;

use crate::mix::OpKind;
use crate::rng::WorkloadRng;
use crate::workload::Workload;

/// A transactional bounded multi-producer/multi-consumer FIFO queue of
/// `u64` values.
pub struct TxQueue {
    sim: Arc<HtmSim>,
    /// Dequeue cursor (monotonic; slot = cursor % capacity).
    head: TxCell<u64>,
    /// Enqueue cursor (monotonic).
    tail: TxCell<u64>,
    slots: TxSlice<u64>,
    capacity: u64,
}

impl TxQueue {
    /// Creates an empty queue holding at most `capacity` values.
    ///
    /// Allocation goes through the checked path: an undersized heap
    /// reports the sizing hint ([`TxQueue::required_words`]) instead of
    /// dying inside the bump allocator.
    pub fn new(sim: Arc<HtmSim>, capacity: u64) -> Self {
        assert!(capacity >= 1);
        let mem = sim.mem();
        const HINT: &str = "TxQueue::required_words(capacity)";
        let head = mem.try_alloc_cell_line_aligned().or_sized(HINT);
        let tail = mem.try_alloc_cell_line_aligned().or_sized(HINT);
        let slots = mem
            .try_alloc_slice_line_aligned(capacity as usize)
            .or_sized(HINT);
        let heap = mem.heap();
        head.store(heap, 0);
        tail.store(heap, 0);
        TxQueue {
            sim,
            head,
            tail,
            slots,
            capacity,
        }
    }

    /// Heap words for a queue of `capacity` slots (slot array plus the
    /// line-aligned cursors).
    pub fn required_words(capacity: u64) -> usize {
        capacity as usize + 64
    }

    /// The simulator the queue lives in.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// Maximum number of values the queue holds.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Pins `thread_id` in the memory's epoch set for the duration of the
    /// returned guard.  The queue itself never retires memory (the ring is
    /// pre-allocated), but its mutating wrappers pin like every other
    /// mutable structure so queue traffic participates correctly in the
    /// shared reclamation protocol — a queue operation in flight keeps
    /// concurrently retired nodes of co-located structures alive.
    pub fn pin(&self, thread_id: usize) -> EpochGuard<'_> {
        EpochGuard::pin(self.sim.mem().epochs(), thread_id)
    }

    #[inline]
    fn slot(&self, cursor: u64) -> TxCell<u64> {
        self.slots.get((cursor % self.capacity) as usize)
    }

    /// In-transaction enqueue; `Ok(false)` when the queue is full.
    pub fn enqueue_in<X: Txn + ?Sized>(&self, tx: &mut X, value: u64) -> TxResult<bool> {
        let tail = self.tail.read(tx)?;
        let head = self.head.read(tx)?;
        if tail - head == self.capacity {
            return Ok(false);
        }
        self.slot(tail).write(tx, value)?;
        self.tail.write(tx, tail + 1)?;
        Ok(true)
    }

    /// In-transaction dequeue; `Ok(None)` when the queue is empty.
    pub fn dequeue_in<X: Txn + ?Sized>(&self, tx: &mut X) -> TxResult<Option<u64>> {
        let head = self.head.read(tx)?;
        let tail = self.tail.read(tx)?;
        if head == tail {
            return Ok(None);
        }
        let value = self.slot(head).read(tx)?;
        self.head.write(tx, head + 1)?;
        Ok(Some(value))
    }

    /// Transactionally enqueues `value`; `false` when the queue was full.
    pub fn enqueue<T: TmThread>(&self, thread: &mut T, value: u64) -> bool {
        let _guard = self.pin(thread.thread_id());
        thread.execute(|tx| self.enqueue_in(tx, value))
    }

    /// Transactionally dequeues the oldest value; `None` when empty.
    pub fn dequeue<T: TmThread>(&self, thread: &mut T) -> Option<u64> {
        let _guard = self.pin(thread.thread_id());
        thread.execute(|tx| self.dequeue_in(tx))
    }

    /// Transactionally reads the oldest value without removing it.
    pub fn peek<T: TmThread>(&self, thread: &mut T) -> Option<u64> {
        thread.execute(|tx| {
            let head = self.head.read(tx)?;
            let tail = self.tail.read(tx)?;
            if head == tail {
                return Ok(None);
            }
            Ok(Some(self.slot(head).read(tx)?))
        })
    }

    /// Transactionally moves the oldest value to the back of the queue
    /// (the [`Workload`] impl's `Update`); `false` when empty.
    pub fn rotate<T: TmThread>(&self, thread: &mut T) -> bool {
        let _guard = self.pin(thread.thread_id());
        thread.execute(|tx| {
            match self.dequeue_in(tx)? {
                Some(v) => {
                    // A dequeue frees one slot, so this enqueue cannot fail.
                    self.enqueue_in(tx, v)?;
                    Ok(true)
                }
                None => Ok(false),
            }
        })
    }

    /// Transactionally counts the queued values.
    pub fn len<T: TmThread>(&self, thread: &mut T) -> u64 {
        thread.execute(|tx| {
            let head = self.head.read(tx)?;
            let tail = self.tail.read(tx)?;
            Ok(tail - head)
        })
    }

    /// Seeds `values` into the empty queue during construction, before any
    /// worker thread exists (the scenario engine's prefill).
    ///
    /// Must not run concurrently with transactions; panics when the values
    /// do not fit.
    pub fn seed_fill(&self, values: impl IntoIterator<Item = u64>) {
        let heap = self.sim.mem().heap();
        let head = self.head.load(heap);
        let mut tail = self.tail.load(heap);
        for v in values {
            assert!(tail - head < self.capacity, "seed_fill overflow");
            self.slot(tail).store(heap, v);
            tail += 1;
        }
        self.tail.store(heap, tail);
    }

    /// Non-transactional snapshot of the queued values in FIFO order, for
    /// tests run after all threads have joined.
    pub fn snapshot_quiescent(&self) -> Vec<u64> {
        let head = self.sim.nt_read(self.head);
        let tail = self.sim.nt_read(self.tail);
        (head..tail)
            .map(|c| self.sim.nt_read(self.slot(c)))
            .collect()
    }
}

/// Kind mapping: `Insert` → enqueue (payload = the drawn key),
/// `Remove` → dequeue, `Update` → rotate (dequeue + re-enqueue in one
/// transaction), `Lookup`/`RangeSum` → peek.  Full enqueues and empty
/// dequeues still commit (as read-only transactions), per the
/// operation-selection contract.
impl Workload for TxQueue {
    fn name(&self) -> String {
        format!("queue-{}", self.capacity)
    }

    fn key_space(&self) -> u64 {
        self.capacity
    }

    fn run_op<T: TmThread>(&self, thread: &mut T, _rng: &mut WorkloadRng, op: OpKind, key: u64) {
        match op {
            OpKind::Insert => {
                self.enqueue(thread, key);
            }
            OpKind::Remove => {
                self.dequeue(thread);
            }
            OpKind::Update => {
                self.rotate(thread);
            }
            OpKind::Lookup | OpKind::RangeSum => {
                self.peek(thread);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::TmRuntime;
    use rhtm_core::{RhConfig, RhRuntime};
    use rhtm_htm::HtmConfig;
    use rhtm_mem::MemConfig;
    use std::collections::VecDeque;

    fn runtime(words: usize) -> RhRuntime {
        RhRuntime::new(
            MemConfig::with_data_words(words),
            HtmConfig::default(),
            RhConfig::rh1_mixed(100),
        )
    }

    #[test]
    fn matches_a_sequential_model() {
        let rt = runtime(1 << 12);
        let q = TxQueue::new(Arc::clone(rt.sim()), 8);
        let mut th = rt.register_thread();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut rng = WorkloadRng::new(23);
        for i in 0..2_000u64 {
            match rng.next_below(4) {
                0 | 1 => {
                    let fits = model.len() < 8;
                    assert_eq!(q.enqueue(&mut th, i), fits);
                    if fits {
                        model.push_back(i);
                    }
                }
                2 => assert_eq!(q.dequeue(&mut th), model.pop_front()),
                _ => assert_eq!(q.peek(&mut th), model.front().copied()),
            }
            assert_eq!(q.len(&mut th), model.len() as u64);
        }
        assert_eq!(q.snapshot_quiescent(), Vec::from(model));
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let rt = runtime(1 << 12);
        let q = TxQueue::new(Arc::clone(rt.sim()), 4);
        let mut th = rt.register_thread();
        // Cycle far past the capacity so the cursors wrap the slot array.
        for v in 0..100u64 {
            assert!(q.enqueue(&mut th, v));
            assert_eq!(q.dequeue(&mut th), Some(v));
        }
        assert_eq!(q.dequeue(&mut th), None);
        assert!(!q.rotate(&mut th), "rotate on empty reports false");
        q.seed_fill([7, 8, 9]);
        assert!(q.rotate(&mut th));
        assert_eq!(q.snapshot_quiescent(), vec![8, 9, 7]);
    }

    #[test]
    fn seed_fill_prefills_in_order() {
        let rt = runtime(1 << 12);
        let q = TxQueue::new(Arc::clone(rt.sim()), 16);
        q.seed_fill((0..10).map(|i| i * 3));
        let mut th = rt.register_thread();
        assert_eq!(q.len(&mut th), 10);
        for i in 0..10 {
            assert_eq!(q.dequeue(&mut th), Some(i * 3));
        }
    }

    #[test]
    #[should_panic(expected = "TxQueue::required_words")]
    fn undersized_heap_reports_the_sizing_hint() {
        let rt = runtime(32);
        let _ = TxQueue::new(Arc::clone(rt.sim()), 1 << 20);
    }

    #[test]
    fn workload_ops_commit_once_per_call() {
        let rt = runtime(1 << 12);
        let q = TxQueue::new(Arc::clone(rt.sim()), 32);
        q.seed_fill(0..16);
        let mut th = rt.register_thread();
        let mut rng = WorkloadRng::new(6);
        let mix = crate::mix::OpMix::producer_consumer(40, 40);
        for _ in 0..500 {
            let op = mix.draw(&mut rng);
            let key = rng.next_below(q.key_space());
            q.run_op(&mut th, &mut rng, op, key);
        }
        assert_eq!(th.stats().commits(), 500);
    }

    // Multi-producer/multi-consumer conservation and FIFO-order stress
    // lives in `tests/scenarios.rs`, which runs it across all six figure
    // algorithms.
}
