//! Time-varying load phases: key-access patterns that *change mid-run*.
//!
//! Every [`KeyDist`] is stationary — the same keys are hot from the first
//! operation to the last.  Real workloads are not: traffic ramps up and
//! down (diurnal load), a single key suddenly goes viral (flash crowd), or
//! the hot set itself drifts across the key space (hot-spot migration).
//! Those transitions are adversarial for a hybrid TM because the *path
//! decision* machinery (retry policies, fallback thresholds) is tuned by
//! recent history — a phase shift invalidates it at once.
//!
//! A [`LoadPhase`] is one stationary segment: a [`KeyDist`] plus a key-space
//! rotation (so a "hotspot at the front" distribution can be re-aimed at
//! any region without new distribution variants) and the percentage of the
//! run it occupies.  A [`PhasePlan`] is a named, `const` schedule of phases
//! whose weights sum to 100; the driver maps run progress (operations done
//! or time elapsed, as a percentage) onto the schedule via a
//! [`PhasedSampler`].  Plans are parseable labels, so phase-shift scenarios
//! register in the scenario table and sweep through `bench_suite` like any
//! other axis.

use crate::rng::{KeyDist, KeySampler, WorkloadRng};

/// One stationary segment of a time-varying load schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LoadPhase {
    /// The key-access distribution active during this phase.
    pub dist: KeyDist,
    /// Rotation of the sampled key, as a percentage of the key space:
    /// `key ← (key + key_space·rotate_pct/100) mod key_space`.  This moves
    /// a distribution's hot region (Zipfian rank 0, the hotspot's first
    /// keys) to another part of the key space, which is how hot-spot
    /// migration is expressed without new [`KeyDist`] variants.
    pub rotate_pct: u8,
    /// Share of the run this phase occupies, in percent.  A plan's phase
    /// weights must sum to exactly 100.
    pub weight: u8,
}

/// A named schedule of [`LoadPhase`]s (weights summing to 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhasePlan {
    /// Quiet uniform traffic ramping into a broad peak-hour hotspot and
    /// back down — the retry policy must adapt twice.
    Diurnal,
    /// Uniform traffic, then 95% of operations slam onto 1% of the keys
    /// for the rest of the run: the sudden-contention worst case.
    FlashCrowd,
    /// A 90/10 hotspot whose hot region jumps to a different third of the
    /// key space twice mid-run: locality assumptions break, conflict
    /// footprints move.
    HotMigration,
}

const DIURNAL: &[LoadPhase] = &[
    LoadPhase {
        dist: KeyDist::Uniform,
        rotate_pct: 0,
        weight: 30,
    },
    LoadPhase {
        dist: KeyDist::Hotspot {
            keys_pct: 20,
            ops_pct: 60,
        },
        rotate_pct: 0,
        weight: 40,
    },
    LoadPhase {
        dist: KeyDist::Uniform,
        rotate_pct: 0,
        weight: 30,
    },
];

const FLASH_CROWD: &[LoadPhase] = &[
    LoadPhase {
        dist: KeyDist::Uniform,
        rotate_pct: 0,
        weight: 50,
    },
    LoadPhase {
        dist: KeyDist::Hotspot {
            keys_pct: 1,
            ops_pct: 95,
        },
        rotate_pct: 0,
        weight: 50,
    },
];

const HOT_MIGRATION: &[LoadPhase] = &[
    LoadPhase {
        dist: KeyDist::HOTSPOT_DEFAULT,
        rotate_pct: 0,
        weight: 34,
    },
    LoadPhase {
        dist: KeyDist::HOTSPOT_DEFAULT,
        rotate_pct: 33,
        weight: 33,
    },
    LoadPhase {
        dist: KeyDist::HOTSPOT_DEFAULT,
        rotate_pct: 66,
        weight: 33,
    },
];

impl PhasePlan {
    /// All plans, in display order.
    pub const ALL: [PhasePlan; 3] = [
        PhasePlan::Diurnal,
        PhasePlan::FlashCrowd,
        PhasePlan::HotMigration,
    ];

    /// The plan's phases, in run order; weights sum to 100.
    pub fn schedule(&self) -> &'static [LoadPhase] {
        match self {
            PhasePlan::Diurnal => DIURNAL,
            PhasePlan::FlashCrowd => FLASH_CROWD,
            PhasePlan::HotMigration => HOT_MIGRATION,
        }
    }

    /// Stable label used in scenario tables, reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            PhasePlan::Diurnal => "diurnal",
            PhasePlan::FlashCrowd => "flash-crowd",
            PhasePlan::HotMigration => "hot-migration",
        }
    }

    /// Parses a [`PhasePlan::label`] back into a plan (case-insensitive).
    pub fn parse(s: &str) -> Option<PhasePlan> {
        let l = s.trim().to_ascii_lowercase();
        PhasePlan::ALL.into_iter().find(|p| p.label() == l)
    }

    /// Builds the per-thread sampling state over a key space of
    /// `key_space` keys, for worker `thread_id` of `thread_count`
    /// (same contract as [`KeyDist::sampler`]).
    pub fn sampler(&self, key_space: u64, thread_id: usize, thread_count: usize) -> PhasedSampler {
        let phases = self
            .schedule()
            .iter()
            .map(|p| PhaseState {
                sampler: p.dist.sampler(key_space, thread_id, thread_count),
                shift: key_space * p.rotate_pct as u64 / 100,
                weight: p.weight,
            })
            .collect();
        PhasedSampler { phases, key_space }
    }
}

struct PhaseState {
    sampler: KeySampler,
    /// Absolute key shift precomputed from the phase's `rotate_pct`.
    shift: u64,
    weight: u8,
}

/// Per-thread sampling state for one [`PhasePlan`] over one key space.
///
/// The per-phase [`KeySampler`]s are built once up front (the Zipfian
/// sampler does O(key-space) precomputation), so a phase transition costs
/// nothing at sample time.  Sampling is deterministic: the phase is chosen
/// by the *caller-supplied* progress percentage and the randomness comes
/// entirely from the [`WorkloadRng`], so counted runs with equal seeds
/// replay identical key sequences.
pub struct PhasedSampler {
    phases: Vec<PhaseState>,
    key_space: u64,
}

impl PhasedSampler {
    /// Draws the next key in `[0, key_space)` for run progress
    /// `progress_pct` (0–99; values ≥ 100 are clamped into the final
    /// phase).
    #[inline]
    pub fn sample(&mut self, rng: &mut WorkloadRng, progress_pct: u8) -> u64 {
        let mut acc = 0u32;
        let last = self.phases.len() - 1;
        let mut chosen = last;
        for (i, p) in self.phases.iter().enumerate() {
            acc += p.weight as u32;
            if (progress_pct as u32) < acc {
                chosen = i;
                break;
            }
        }
        let p = &mut self.phases[chosen];
        let key = p.sampler.sample(rng);
        if p.shift == 0 {
            key
        } else {
            (key + p.shift) % self.key_space
        }
    }

    /// Index of the phase active at `progress_pct` (for tests and
    /// reporting).
    pub fn phase_at(&self, progress_pct: u8) -> usize {
        let mut acc = 0u32;
        for (i, p) in self.phases.iter().enumerate() {
            acc += p.weight as u32;
            if (progress_pct as u32) < acc {
                return i;
            }
        }
        self.phases.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_plan_has_weights_summing_to_100() {
        for plan in PhasePlan::ALL {
            let total: u32 = plan.schedule().iter().map(|p| p.weight as u32).sum();
            assert_eq!(total, 100, "{plan:?}");
            assert!(!plan.schedule().is_empty());
            for p in plan.schedule() {
                assert!(p.rotate_pct < 100, "{plan:?}");
                assert!(p.weight > 0, "{plan:?}: zero-weight phase is dead");
            }
        }
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for plan in PhasePlan::ALL {
            assert_eq!(PhasePlan::parse(plan.label()), Some(plan));
            assert_eq!(
                PhasePlan::parse(&plan.label().to_ascii_uppercase()),
                Some(plan)
            );
        }
        assert_eq!(PhasePlan::parse("no-such-plan"), None);
        assert_eq!(PhasePlan::parse(""), None);
    }

    #[test]
    fn progress_selects_phases_in_schedule_order() {
        let s = PhasePlan::Diurnal.sampler(1_000, 0, 1);
        assert_eq!(s.phase_at(0), 0);
        assert_eq!(s.phase_at(29), 0);
        assert_eq!(s.phase_at(30), 1);
        assert_eq!(s.phase_at(69), 1);
        assert_eq!(s.phase_at(70), 2);
        assert_eq!(s.phase_at(99), 2);
        assert_eq!(s.phase_at(255), 2, "overshoot clamps to the last phase");
    }

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let n = 997; // deliberately not a round number
        for plan in PhasePlan::ALL {
            let mut a = plan.sampler(n, 1, 4);
            let mut b = plan.sampler(n, 1, 4);
            let mut ra = WorkloadRng::new(11);
            let mut rb = WorkloadRng::new(11);
            for i in 0..3_000u64 {
                let progress = (i * 100 / 3_000) as u8;
                let ka = a.sample(&mut ra, progress);
                assert!(ka < n, "{plan:?} out of range");
                assert_eq!(ka, b.sample(&mut rb, progress), "{plan:?}");
            }
        }
    }

    #[test]
    fn hot_migration_actually_moves_the_hot_region() {
        let n = 3_000u64;
        let mut s = PhasePlan::HotMigration.sampler(n, 0, 1);
        let mut rng = WorkloadRng::new(5);
        let region = |progress: u8, rng: &mut WorkloadRng, s: &mut PhasedSampler| {
            let mut counts = [0u64; 3];
            for _ in 0..10_000 {
                counts[(s.sample(rng, progress) * 3 / n) as usize] += 1;
            }
            (0..3).max_by_key(|&i| counts[i]).unwrap()
        };
        let early = region(10, &mut rng, &mut s);
        let mid = region(50, &mut rng, &mut s);
        let late = region(90, &mut rng, &mut s);
        assert_eq!(early, 0, "phase 1 hot region at the front");
        assert_ne!(mid, early, "mid-run migration");
        assert_ne!(late, mid, "second migration");
    }

    #[test]
    fn flash_crowd_concentrates_late_traffic() {
        let n = 10_000u64;
        let mut s = PhasePlan::FlashCrowd.sampler(n, 0, 1);
        let mut rng = WorkloadRng::new(9);
        let hot_share = |progress: u8, rng: &mut WorkloadRng, s: &mut PhasedSampler| {
            let hits = (0..10_000)
                .filter(|_| s.sample(rng, progress) < n / 100)
                .count();
            hits as f64 / 10_000.0
        };
        assert!(hot_share(10, &mut rng, &mut s) < 0.05, "pre-crowd uniform");
        assert!(
            hot_share(80, &mut rng, &mut s) > 0.9,
            "the crowd hits 1% of the keys"
        );
    }
}
