//! A small, fast, deterministic PRNG for workload key selection.
//!
//! The benchmark loops pick a random key and decide lookup-vs-update for
//! every operation, so the generator must be cheap enough not to perturb
//! the measured transaction cost (the paper's operations are O(log n) tree
//! walks; a ChaCha-class generator would be a visible fraction of that).
//! xorshift64* is more than random enough for key selection and is seeded
//! per thread for reproducibility.

/// A xorshift64* generator.
#[derive(Clone, Debug)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// Creates a generator from a seed (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so that consecutive seeds (thread ids) do not
        // produce correlated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        WorkloadRng { state: z | 1 }
    }

    /// Next raw 64-bit value.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    #[inline(always)]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiplicative range reduction (Lemire); the slight modulo bias of
        // the plain approach would be irrelevant here, but this is cheaper
        // than a modulo anyway.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 100)`, used for percentage draws.
    #[inline(always)]
    pub fn next_percent(&mut self) -> u8 {
        self.next_below(100) as u8
    }

    /// Bernoulli draw with probability `percent`/100.
    #[inline(always)]
    pub fn draw_percent(&mut self, percent: u8) -> bool {
        self.next_percent() < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = WorkloadRng::new(7);
        let mut b = WorkloadRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = WorkloadRng::new(1);
        let mut b = WorkloadRng::new(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    fn bounded_values_stay_in_range_and_cover_it() {
        let mut rng = WorkloadRng::new(42);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn percentage_draws_are_roughly_calibrated() {
        let mut rng = WorkloadRng::new(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.draw_percent(20)).count();
        let ratio = hits as f64 / n as f64;
        assert!((ratio - 0.20).abs() < 0.02, "got {ratio}");
        let zero = (0..1_000).filter(|_| rng.draw_percent(0)).count();
        assert_eq!(zero, 0);
        let hundred = (0..1_000).filter(|_| rng.draw_percent(100)).count();
        assert_eq!(hundred, 1_000);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = WorkloadRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
