//! A small, fast, deterministic PRNG for workload key selection, plus the
//! pluggable key-access distributions ([`KeyDist`]) of the scenario engine.
//!
//! The benchmark loops pick a random key and decide the operation kind for
//! every operation, so the generator must be cheap enough not to perturb
//! the measured transaction cost (the paper's operations are O(log n) tree
//! walks; a ChaCha-class generator would be a visible fraction of that).
//! xorshift64* is more than random enough for key selection and is seeded
//! per thread for reproducibility.
//!
//! The paper's evaluation only exercises *uniform* key access.  Real
//! workloads are skewed, and skew changes which TM protocol wins (hot keys
//! concentrate conflicts on a few cache lines, which is exactly where the
//! RH1 fast-path's uninstrumented reads stop helping), so the distribution
//! is a first-class benchmark axis: every [`KeyDist`] turns into a
//! per-thread [`KeySampler`] that draws keys from the workload's key space
//! deterministically from the thread's seed.

/// A xorshift64* generator.
#[derive(Clone, Debug)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// Creates a generator from a seed (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so that consecutive seeds (thread ids) do not
        // produce correlated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        WorkloadRng { state: z | 1 }
    }

    /// Next raw 64-bit value.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    #[inline(always)]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiplicative range reduction (Lemire); the slight modulo bias of
        // the plain approach would be irrelevant here, but this is cheaper
        // than a modulo anyway.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 100)`, used for percentage draws.
    #[inline(always)]
    pub fn next_percent(&mut self) -> u8 {
        self.next_below(100) as u8
    }

    /// Bernoulli draw with probability `percent`/100.
    #[inline(always)]
    pub fn draw_percent(&mut self, percent: u8) -> bool {
        self.next_percent() < percent
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A key-access distribution: *which* keys of a workload's key space the
/// driver hammers, orthogonal to the operation mix
/// ([`crate::mix::OpMix`]) and the structure.
///
/// A distribution is pure configuration (`Copy`, comparable, parseable);
/// the per-thread sampling state lives in the [`KeySampler`] built by
/// [`KeyDist::sampler`].  Skew parameters are stored as scaled integers so
/// distributions can be compared, hashed and embedded in `const` scenario
/// tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyDist {
    /// Every key equally likely — the paper's evaluation setting.
    Uniform,
    /// Zipfian skew with exponent `theta = theta_centi / 100` (YCSB-style;
    /// `theta_centi` must be in `1..=99`).  Rank 0 — the lowest key — is
    /// the hottest, so skew also clusters spatially (adjacent hot keys
    /// share stripes and cache lines), which is the adversarial case for
    /// conflict detection.
    Zipfian {
        /// Skew exponent in hundredths (99 ⇒ the classic θ = 0.99).
        theta_centi: u16,
    },
    /// A two-class hotspot: `ops_pct`% of operations target the first
    /// `keys_pct`% of the key space, the rest go to the cold remainder.
    Hotspot {
        /// Size of the hot set, as a percentage of the key space (≥ 1 key).
        keys_pct: u8,
        /// Share of operations that hit the hot set.
        ops_pct: u8,
    },
    /// Each thread owns an equal contiguous slice of the key space and only
    /// draws from it — the conflict-free extreme (threads still collide on
    /// shared structure skeleton: list heads, queue cursors, tree root).
    Partitioned,
}

impl KeyDist {
    /// The classic YCSB Zipfian (θ = 0.99).
    pub const ZIPF_DEFAULT: KeyDist = KeyDist::Zipfian { theta_centi: 99 };

    /// The classic 90/10 hotspot (90% of operations on 10% of the keys).
    pub const HOTSPOT_DEFAULT: KeyDist = KeyDist::Hotspot {
        keys_pct: 10,
        ops_pct: 90,
    };

    /// All distribution shapes at their default parameters, in display
    /// order (used by sweeps and CLI help).
    pub const ALL: [KeyDist; 4] = [
        KeyDist::Uniform,
        KeyDist::ZIPF_DEFAULT,
        KeyDist::HOTSPOT_DEFAULT,
        KeyDist::Partitioned,
    ];

    /// Display label, stable across runs (used in reports and JSON):
    /// `uniform`, `zipf-0.99`, `hotspot-10-90`, `partitioned`.
    pub fn label(&self) -> String {
        match *self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipfian { theta_centi } => {
                format!("zipf-{}.{:02}", theta_centi / 100, theta_centi % 100)
            }
            KeyDist::Hotspot { keys_pct, ops_pct } => format!("hotspot-{keys_pct}-{ops_pct}"),
            KeyDist::Partitioned => "partitioned".to_string(),
        }
    }

    /// Parses a [`KeyDist::label`] back into a distribution (used by the
    /// bench binaries' CLI).  `zipf` and `hotspot` without parameters give
    /// the defaults.
    pub fn parse(s: &str) -> Option<KeyDist> {
        let l = s.trim().to_ascii_lowercase();
        match l.as_str() {
            "uniform" => return Some(KeyDist::Uniform),
            "partitioned" => return Some(KeyDist::Partitioned),
            "zipf" | "zipfian" => return Some(KeyDist::ZIPF_DEFAULT),
            "hotspot" => return Some(KeyDist::HOTSPOT_DEFAULT),
            _ => {}
        }
        if let Some(theta) = l.strip_prefix("zipf-") {
            // "0.99" → 99 hundredths.
            let (int, frac) = theta.split_once('.')?;
            let int: u16 = int.parse().ok()?;
            if frac.len() != 2 || int != 0 {
                return None;
            }
            let frac: u16 = frac.parse().ok()?;
            return match frac {
                1..=99 => Some(KeyDist::Zipfian { theta_centi: frac }),
                _ => None,
            };
        }
        if let Some(rest) = l.strip_prefix("hotspot-") {
            let (keys, ops) = rest.split_once('-')?;
            let keys_pct: u8 = keys.parse().ok()?;
            let ops_pct: u8 = ops.parse().ok()?;
            if (1..=100).contains(&keys_pct) && ops_pct <= 100 {
                return Some(KeyDist::Hotspot { keys_pct, ops_pct });
            }
            return None;
        }
        None
    }

    /// Builds the per-thread sampling state for a key space of `key_space`
    /// keys (`key_space ≥ 1`), for worker `thread_id` of `thread_count`.
    ///
    /// Sampling is deterministic: the randomness comes entirely from the
    /// [`WorkloadRng`] passed to [`KeySampler::sample`], so equal seeds
    /// yield identical key sequences for every distribution.
    pub fn sampler(&self, key_space: u64, thread_id: usize, thread_count: usize) -> KeySampler {
        assert!(key_space >= 1, "key space must be non-empty");
        assert!(thread_id < thread_count.max(1));
        let imp = match *self {
            KeyDist::Uniform => SamplerImp::Uniform { n: key_space },
            KeyDist::Zipfian { theta_centi } if key_space == 1 => {
                debug_assert!((1..=99).contains(&theta_centi));
                SamplerImp::Uniform { n: key_space }
            }
            KeyDist::Zipfian { theta_centi } => {
                assert!(
                    (1..=99).contains(&theta_centi),
                    "zipfian theta must be in 0.01..=0.99"
                );
                SamplerImp::Zipfian(ZipfState::new(key_space, theta_centi as f64 / 100.0))
            }
            KeyDist::Hotspot { keys_pct, ops_pct } => {
                assert!((1..=100).contains(&keys_pct) && ops_pct <= 100);
                let hot = (key_space * keys_pct as u64 / 100).max(1).min(key_space);
                SamplerImp::Hotspot {
                    n: key_space,
                    hot,
                    ops_pct,
                }
            }
            KeyDist::Partitioned => {
                let threads = thread_count.max(1) as u64;
                let tid = thread_id as u64;
                let base = key_space * tid / threads;
                let end = key_space * (tid + 1) / threads;
                // Threads beyond the key space share the last key rather
                // than sampling an empty slice.
                let base = base.min(key_space - 1);
                let len = end.max(base + 1) - base;
                SamplerImp::Partitioned { base, len }
            }
        };
        KeySampler { imp }
    }
}

/// Per-thread sampling state for one [`KeyDist`] over one key space.
///
/// Construction may do O(key-space) work (the Zipfian harmonic sum), which
/// is why samplers are built once per worker thread, not per operation;
/// [`KeySampler::sample`] itself is O(1).
#[derive(Clone, Debug)]
pub struct KeySampler {
    imp: SamplerImp,
}

#[derive(Clone, Debug)]
enum SamplerImp {
    Uniform { n: u64 },
    Zipfian(ZipfState),
    Hotspot { n: u64, hot: u64, ops_pct: u8 },
    Partitioned { base: u64, len: u64 },
}

/// Bounded Zipfian sampler state (Gray et al., "Quickly generating
/// billion-record synthetic databases", SIGMOD '94 — the YCSB generator).
#[derive(Clone, Debug)]
struct ZipfState {
    n: u64,
    zetan: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> Self {
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfState {
            n,
            zetan,
            zeta2,
            alpha,
            eta,
        }
    }

    fn sample(&self, rng: &mut WorkloadRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.zeta2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

impl KeySampler {
    /// Draws the next key in `[0, key_space)`.
    #[inline]
    pub fn sample(&mut self, rng: &mut WorkloadRng) -> u64 {
        match &self.imp {
            SamplerImp::Uniform { n } => rng.next_below(*n),
            SamplerImp::Zipfian(z) => z.sample(rng),
            SamplerImp::Hotspot { n, hot, ops_pct } => {
                if rng.draw_percent(*ops_pct) || *hot == *n {
                    rng.next_below(*hot)
                } else {
                    hot + rng.next_below(n - hot)
                }
            }
            SamplerImp::Partitioned { base, len } => base + rng.next_below(*len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = WorkloadRng::new(7);
        let mut b = WorkloadRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = WorkloadRng::new(1);
        let mut b = WorkloadRng::new(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    fn bounded_values_stay_in_range_and_cover_it() {
        let mut rng = WorkloadRng::new(42);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn percentage_draws_are_roughly_calibrated() {
        let mut rng = WorkloadRng::new(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.draw_percent(20)).count();
        let ratio = hits as f64 / n as f64;
        assert!((ratio - 0.20).abs() < 0.02, "got {ratio}");
        let zero = (0..1_000).filter(|_| rng.draw_percent(0)).count();
        assert_eq!(zero, 0);
        let hundred = (0..1_000).filter(|_| rng.draw_percent(100)).count();
        assert_eq!(hundred, 1_000);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = WorkloadRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn dist_labels_round_trip_through_parse() {
        for dist in KeyDist::ALL {
            assert_eq!(KeyDist::parse(&dist.label()), Some(dist), "{dist:?}");
        }
        assert_eq!(
            KeyDist::parse("zipf-0.70"),
            Some(KeyDist::Zipfian { theta_centi: 70 })
        );
        assert_eq!(
            KeyDist::parse("hotspot-5-95"),
            Some(KeyDist::Hotspot {
                keys_pct: 5,
                ops_pct: 95
            })
        );
        assert_eq!(KeyDist::parse("zipf"), Some(KeyDist::ZIPF_DEFAULT));
        assert_eq!(KeyDist::parse("hotspot"), Some(KeyDist::HOTSPOT_DEFAULT));
        for bad in ["zipf-1.50", "zipf-0.999", "hotspot-0-50", "gauss", ""] {
            assert_eq!(KeyDist::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn every_distribution_stays_in_range_and_is_deterministic() {
        let n = 1_000;
        for dist in KeyDist::ALL {
            let mut a = WorkloadRng::new(7);
            let mut b = WorkloadRng::new(7);
            let mut sa = dist.sampler(n, 1, 4);
            let mut sb = dist.sampler(n, 1, 4);
            for _ in 0..2_000 {
                let ka = sa.sample(&mut a);
                assert!(ka < n, "{dist:?} out of range");
                assert_eq!(ka, sb.sample(&mut b), "{dist:?} not deterministic");
            }
        }
    }

    #[test]
    fn zipfian_concentrates_mass_on_low_ranks() {
        let n = 10_000u64;
        let mut rng = WorkloadRng::new(11);
        let mut s = KeyDist::ZIPF_DEFAULT.sampler(n, 0, 1);
        let draws = 50_000;
        let mut head = 0u64; // keys 0..n/100 — 1% of the key space
        let mut zero = 0u64;
        for _ in 0..draws {
            let k = s.sample(&mut rng);
            if k < n / 100 {
                head += 1;
            }
            if k == 0 {
                zero += 1;
            }
        }
        let head_share = head as f64 / draws as f64;
        assert!(
            head_share > 0.4,
            "1% hottest keys should draw >40% of accesses, got {head_share}"
        );
        assert!(zero > draws / 100, "rank 0 must be the hottest key");
    }

    #[test]
    fn hotspot_is_calibrated() {
        let n = 10_000u64;
        let mut rng = WorkloadRng::new(3);
        let mut s = KeyDist::HOTSPOT_DEFAULT.sampler(n, 0, 1);
        let draws = 50_000;
        let hot = (0..draws).filter(|_| s.sample(&mut rng) < n / 10).count() as f64;
        let share = hot / draws as f64;
        assert!((share - 0.90).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn partitioned_threads_stay_in_their_slices() {
        let n = 1_003u64; // deliberately not divisible by the thread count
        let threads = 4;
        let mut covered = vec![false; n as usize];
        for tid in 0..threads {
            let mut rng = WorkloadRng::new(tid as u64);
            let mut s = KeyDist::Partitioned.sampler(n, tid, threads);
            let lo = n * tid as u64 / threads as u64;
            let hi = n * (tid as u64 + 1) / threads as u64;
            for _ in 0..5_000 {
                let k = s.sample(&mut rng);
                assert!(
                    k >= lo && k < hi,
                    "thread {tid} drew {k} outside [{lo},{hi})"
                );
                covered[k as usize] = true;
            }
        }
        assert!(covered.iter().filter(|&&c| c).count() > (n as usize * 9 / 10));
    }

    #[test]
    fn degenerate_key_spaces_are_safe() {
        for dist in KeyDist::ALL {
            let mut rng = WorkloadRng::new(5);
            let mut s = dist.sampler(1, 0, 8);
            for _ in 0..50 {
                assert_eq!(s.sample(&mut rng), 0, "{dist:?}");
            }
            // More threads than keys: partitioned threads share the last key.
            let mut s = dist.sampler(2, 7, 8);
            for _ in 0..50 {
                assert!(s.sample(&mut rng) < 2, "{dist:?}");
            }
        }
    }
}
