//! # rhtm-workloads
//!
//! The paper's benchmark workloads and the multi-threaded driver that runs
//! them against every runtime in the workspace.
//!
//! ## "Constant" workloads (the paper's emulation methodology)
//!
//! Section 3 of the paper evaluates the protocols with data structures whose
//! *shape* never changes: update operations write only dummy fields inside
//! nodes, never pointers or keys.  This lets transactions run without
//! instrumented conflict detection on the structure itself while still
//! paying the cache-coherence cost of the writes.  The same four workloads
//! are implemented here:
//!
//! * [`ConstantRbTree`] — a 100 K-node search tree (Figure 1 / Figure 2),
//! * [`ConstantHashTable`] — a chained hash table (Figure 3, left),
//! * [`ConstantSortedList`] — a 1 K-element sorted linked list (Figure 3,
//!   middle),
//! * [`RandomArray`] — a 128 K-word array with configurable transaction
//!   length and write fraction (Figure 3, right).
//!
//! ## Mutable structures (beyond the paper)
//!
//! Because the simulated HTM provides real atomicity (the authors' plain
//! load/store emulation could not), this crate also ships fully mutable
//! transactional structures — [`mutable::TxHashMap`] and
//! [`mutable::TxSortedList`] — used by the correctness and property tests.
//!
//! ## Driver
//!
//! [`driver::run_benchmark`] spawns the requested number of threads, runs a
//! key-distribution/op-mix loop for a fixed duration or operation count and
//! merges per-thread [`rhtm_api::TxStats`].  [`algos::AlgoKind`] +
//! [`algos::run_on_algo`] instantiate any of the paper's algorithm variants
//! by name, so that a whole figure is a loop over `(AlgoKind, threads)`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod algos;
pub mod driver;
pub mod report;
pub mod rng;
pub mod structures;
pub mod workload;

pub use algos::{run_on_algo, run_on_algo_with_clock, run_on_algo_with_policy, AlgoKind};
pub use driver::{run_benchmark, DriverOpts};
pub use report::{BenchResult, Breakdown};
pub use rng::WorkloadRng;
pub use structures::hashtable::ConstantHashTable;
pub use structures::mutable;
pub use structures::random_array::RandomArray;
pub use structures::rbtree::ConstantRbTree;
pub use structures::sortedlist::ConstantSortedList;
pub use workload::Workload;
