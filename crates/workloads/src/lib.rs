//! # rhtm-workloads
//!
//! The scenario engine: the paper's benchmark workloads, the skew/mix
//! generalisations beyond them, and the multi-threaded driver that runs
//! them against every runtime in the workspace.
//!
//! ## "Constant" workloads (the paper's emulation methodology)
//!
//! Section 3 of the paper evaluates the protocols with data structures whose
//! *shape* never changes: update operations write only dummy fields inside
//! nodes, never pointers or keys.  This lets transactions run without
//! instrumented conflict detection on the structure itself while still
//! paying the cache-coherence cost of the writes.  The same four workloads
//! are implemented here:
//!
//! * [`ConstantRbTree`] — a 100 K-node search tree (Figure 1 / Figure 2),
//! * [`ConstantHashTable`] — a chained hash table (Figure 3, left),
//! * [`ConstantSortedList`] — a 1 K-element sorted linked list (Figure 3,
//!   middle),
//! * [`RandomArray`] — a 128 K-word array with configurable transaction
//!   length and write fraction (Figure 3, right).
//!
//! ## Mutable structures (beyond the paper)
//!
//! Because the simulated HTM provides real atomicity (the authors' plain
//! load/store emulation could not), this crate also ships fully mutable
//! transactional structures: [`TxSkipList`] (O(log n) ordered map with a
//! transactional node freelist) and [`TxQueue`] (bounded FIFO ring buffer
//! — the producer/consumer shape no search structure covers) as
//! first-class benchmark workloads, plus the [`mutable`] map/list used by
//! the correctness and property tests.
//!
//! ## The scenario engine
//!
//! Workload *shape* is pluggable along three axes, all cheap `Copy`
//! configuration:
//!
//! * **Key distribution** ([`KeyDist`] → per-thread [`KeySampler`]):
//!   uniform, Zipfian skew, hotspot, thread-partitioned.
//! * **Operation mix** ([`OpMix`] over [`OpKind`]): weighted
//!   lookup/range-sum/update/insert/remove instead of the paper's binary
//!   read/update coin.
//! * **Structure** (everything implementing [`Workload`]).
//!
//! [`driver::run_benchmark`] spawns the requested number of threads, draws
//! `(op, key)` pairs per the configured mix and distribution for a fixed
//! duration or operation count and merges per-thread
//! [`rhtm_api::TxStats`].  A [`spec::TmSpec`] names one full runtime
//! point — `algorithm × clock scheme × retry policy × memory/HTM shape`
//! — as a single builder with a stable, parseable label
//! (`rh2+gv6+adaptive`); it is the only place runtime configs are
//! assembled, and it exposes three consumption paths (monomorphised
//! [`spec::TmSpec::visit`], erased [`spec::TmSpec::instantiate_dyn`],
//! driven [`spec::TmSpec::bench`]).  The [`scenario`] registry names the
//! interesting `structure × size × mix × distribution` combinations, so
//! that a whole benchmark campaign is a loop over
//! `(Scenario, TmSpec, threads)` — driven by the `bench_suite` binary in
//! `rhtm-bench`.
//!
//! Two generalisations layer on top: [`TxBank`] composes a *pair* of
//! structures (hash-table accounts + skiplist audit ring) inside one
//! transaction, and [`PhasePlan`] schedules time-varying key
//! distributions (diurnal ramp, flash crowd, hot-spot migration) over any
//! [`KeyDist`] via [`DriverOpts::with_phases`].
//!
//! ## Correctness checking
//!
//! The [`check`] module is the reusable history/invariant checker:
//! stress drivers record per-thread invocation/response [`Event`]s
//! (tagged with the commit path that served each one, via
//! [`rhtm_api::PathProbe`]) into a [`HistoryRecorder`], merge them into a
//! [`History`], and verify it offline with pluggable [`Checker`]s —
//! set/map semantics, FIFO order, bank conservation, scan atomicity.
//! See `docs/ARCHITECTURE.md` § "Correctness checking".
//!
//! All structures are written on the typed data layer
//! ([`rhtm_api::typed`]); code that wants a runtime as a *value* rather
//! than through the visitor (tests, examples, setup) uses
//! [`AlgoKind::instantiate_dyn`] → `Box<dyn `[`rhtm_api::DynRuntime`]`>`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod algos;
pub mod check;
pub mod driver;
pub mod mix;
pub mod phase;
pub mod report;
pub mod rng;
pub mod scenario;
pub mod spec;
pub mod structures;
pub mod workload;

pub use algos::{run_on_algo, visit_algo, AlgoKind, AlgoVisitor};
pub use check::{Checker, Event, EventKind, History, HistoryRecorder, Violation};
pub use driver::{run_benchmark, DriverOpts};
pub use mix::{OpKind, OpMix};
pub use phase::{LoadPhase, PhasePlan, PhasedSampler};
pub use report::{BenchResult, Breakdown};
pub use rng::{KeyDist, KeySampler, WorkloadRng};
pub use scenario::{suite_to_json, Scenario, ScenarioRun, StructureKind};
pub use spec::{TmInstance, TmSpec};
pub use structures::bank::{BankSnapshot, TransferOutcome, TxBank};
pub use structures::hashtable::ConstantHashTable;
pub use structures::mutable;
pub use structures::queue::TxQueue;
pub use structures::random_array::RandomArray;
pub use structures::rbtree::ConstantRbTree;
pub use structures::skiplist::TxSkipList;
pub use structures::sortedlist::ConstantSortedList;
pub use workload::Workload;
