//! Benchmark result records and report formatting.

use std::time::Duration;

use rhtm_api::{AbortCause, PathKind, TxStats};

/// Single-thread time breakdown, the quantity behind the paper's Figure 2
/// (bottom) and its embedded `20_100_R` / `80_100_R` tables.
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// Nanoseconds spent in transactional reads.
    pub read_ns: u64,
    /// Nanoseconds spent in transactional writes.
    pub write_ns: u64,
    /// Nanoseconds spent in commit.
    pub commit_ns: u64,
    /// Nanoseconds spent inside transactions but outside read/write/commit
    /// (the paper's "Private Time": local computation inside the
    /// transaction body).
    pub private_ns: u64,
    /// Nanoseconds spent outside transactions (the paper's "InterTX Time":
    /// the benchmark loop, key selection, ...).
    pub intertx_ns: u64,
}

impl Breakdown {
    /// Total measured nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.read_ns + self.write_ns + self.commit_ns + self.private_ns + self.intertx_ns
    }

    /// The five components as percentages of the total, in the paper's
    /// column order (Read, Write, Commit, Private, InterTX).
    pub fn percentages(&self) -> [f64; 5] {
        let total = self.total_ns().max(1) as f64;
        [
            self.read_ns as f64 * 100.0 / total,
            self.write_ns as f64 * 100.0 / total,
            self.commit_ns as f64 * 100.0 / total,
            self.private_ns as f64 * 100.0 / total,
            self.intertx_ns as f64 * 100.0 / total,
        ]
    }
}

/// The outcome of one benchmark run (one algorithm, one workload, one
/// thread count).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Algorithm name ("HTM", "TL2", "Standard HyTM", "RH1 Fast", ...).
    pub algorithm: String,
    /// The full spec label of the runtime point this row measured
    /// (`algo+clock+policy`, e.g. `rh2+gv6+adaptive`; see
    /// `TmSpec::label`).  Empty when the run was driven directly through
    /// `run_benchmark` without a spec.
    pub spec: String,
    /// Workload name.
    pub workload: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Write (update) percentage of the operation mix (the sum of the
    /// mutating kinds' weights — the paper's knob, derived from `op_mix`).
    pub write_percent: u8,
    /// Stable label of the weighted operation mix (e.g. `l80-u20`,
    /// `l70-i15-r15`); see `OpMix::label`.
    pub op_mix: String,
    /// Stable label of the key-access distribution (e.g. `uniform`,
    /// `zipf-0.99`); see `KeyDist::label`.
    pub key_dist: String,
    /// Base RNG seed of the run (per-thread streams derive from it).
    pub seed: u64,
    /// Total committed operations across all threads.
    pub total_ops: u64,
    /// Wall-clock duration of the measurement interval.
    pub elapsed: Duration,
    /// Merged per-thread statistics.
    pub stats: TxStats,
    /// Optional single-thread time breakdown (only collected in breakdown
    /// mode).
    pub breakdown: Option<Breakdown>,
}

impl BenchResult {
    /// Committed operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.total_ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of attempts that aborted.
    pub fn abort_ratio(&self) -> f64 {
        self.stats.abort_ratio()
    }

    /// The paper's "Commit Counter": attempts per committed transaction.
    pub fn commit_ratio(&self) -> f64 {
        self.stats.commit_ratio()
    }

    /// One line of a throughput table.
    pub fn throughput_row(&self) -> String {
        format!(
            "{:<16} {:>3} threads  {:>12.0} ops/s  abort-ratio {:>6.2}%  commits {:>10} (hw {:>9} / mixed {:>8} / sw {:>8})",
            self.algorithm,
            self.threads,
            self.throughput(),
            self.abort_ratio() * 100.0,
            self.stats.commits(),
            self.stats.commits_on(PathKind::HardwareFast),
            self.stats.commits_on(PathKind::MixedSlow),
            self.stats.commits_on(PathKind::Software),
        )
    }

    /// One line of the paper's breakdown table (times in percent, counters
    /// absolute), or a note when the run was not in breakdown mode.
    pub fn breakdown_row(&self) -> String {
        match &self.breakdown {
            None => format!("{:<16} (no breakdown collected)", self.algorithm),
            Some(b) => {
                let p = b.percentages();
                format!(
                    "{:<16} read {:>5.1}%  write {:>5.1}%  commit {:>5.1}%  private {:>5.1}%  intertx {:>5.1}%  reads {:>9}  writes {:>8}  aborts {:>7}  commit-counter {:>6.3}",
                    self.algorithm,
                    p[0],
                    p[1],
                    p[2],
                    p[3],
                    p[4],
                    self.stats.reads,
                    self.stats.writes,
                    self.stats.aborts(),
                    self.commit_ratio(),
                )
            }
        }
    }

    /// Abort counts per cause, for diagnostic output.
    pub fn abort_causes(&self) -> Vec<(AbortCause, u64)> {
        AbortCause::ALL
            .iter()
            .map(|&c| (c, self.stats.aborts_for(c)))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

/// Formats a whole figure series (same workload, varying algorithm and
/// thread count) as an aligned text table, one row per result.
pub fn format_series(title: &str, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    for r in results {
        out.push_str(&r.throughput_row());
        out.push('\n');
    }
    out
}

/// Serialises a series to JSON (one object per result) for plotting.
///
/// Hand-rolled (the workspace builds without a crates registry, so no
/// `serde_json`): every numeric field of the result and its merged stats is
/// emitted, which is what the plotting scripts consume.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&result_json(r));
    }
    out.push_str("\n]");
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn result_json(r: &BenchResult) -> String {
    let mut fields = vec![
        format!("\"algorithm\": {}", json_str(&r.algorithm)),
        format!("\"spec\": {}", json_str(&r.spec)),
        format!("\"workload\": {}", json_str(&r.workload)),
        format!("\"threads\": {}", r.threads),
        format!("\"write_percent\": {}", r.write_percent),
        format!("\"op_mix\": {}", json_str(&r.op_mix)),
        format!("\"key_dist\": {}", json_str(&r.key_dist)),
        format!("\"seed\": {}", r.seed),
        format!("\"total_ops\": {}", r.total_ops),
        format!("\"elapsed_secs\": {}", r.elapsed.as_secs_f64()),
        format!("\"throughput_ops_per_sec\": {}", r.throughput()),
        format!("\"abort_ratio\": {}", r.abort_ratio()),
        format!("\"commit_ratio\": {}", r.commit_ratio()),
        format!("\"commits\": {}", r.stats.commits()),
        format!("\"aborts\": {}", r.stats.aborts()),
        format!("\"reads\": {}", r.stats.reads),
        format!("\"writes\": {}", r.stats.writes),
        format!("\"htm_commits\": {}", r.stats.htm_commits),
        format!("\"htm_aborts\": {}", r.stats.htm_aborts),
    ];
    for path in PathKind::ALL {
        fields.push(format!(
            "\"commits_{}\": {}",
            path.json_key(),
            r.stats.commits_on(path)
        ));
    }
    for (cause, n) in r.abort_causes() {
        fields.push(format!("\"aborts_{}\": {n}", cause.json_key()));
    }
    // Retry 2.0 observability: always emitted (all-zero for runs that never
    // abort) so downstream schema checks can rely on the fields existing.
    let m = &r.stats.retry;
    fields.push(format!(
        "\"retry_metrics\": {{\"retry_here\": {}, \"demote\": {}, \"backoff\": {}, \
         \"circuit_opens\": {}, \"circuit_probes\": {}, \"circuit_closes\": {}, \
         \"budget_exhausted\": {}}}",
        m.retry_here,
        m.demote,
        m.backoff,
        m.circuit_opens,
        m.circuit_probes,
        m.circuit_closes,
        m.budget_exhausted
    ));
    // Memory-subsystem observability: same always-on contract as
    // `retry_metrics` (all-zero for workloads that never allocate).
    let mm = &r.stats.mem;
    fields.push(format!(
        "\"mem_metrics\": {{\"alloc_words\": {}, \"retired\": {}, \
         \"reclaimed\": {}, \"epoch_advances\": {}}}",
        mm.alloc_words, mm.retired, mm.reclaimed, mm.epoch_advances
    ));
    if let Some(b) = &r.breakdown {
        fields.push(format!(
            "\"breakdown_ns\": {{\"read\": {}, \"write\": {}, \"commit\": {}, \"private\": {}, \"intertx\": {}}}",
            b.read_ns, b.write_ns, b.commit_ns, b.private_ns, b.intertx_ns
        ));
    }
    format!("  {{\n    {}\n  }}", fields.join(",\n    "))
}

/// Checks that `s` is one syntactically well-formed JSON value.
///
/// A minimal recursive-descent validator (the workspace builds offline with
/// no `serde_json`), used by tests and the `bench_suite --smoke` CI job to
/// guarantee the hand-rolled emitters above never produce an unparseable
/// document.  Validates syntax only — numbers, strings (with escapes),
/// arrays, objects, literals — not any schema.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected value at byte {}", *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(|c| c.is_ascii_hexdigit()) {
                        return Err(format!("bad \\u escape at byte {}", *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {}", *pos)),
            },
            0x00..=0x1f => return Err(format!("raw control character at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(algorithm: &str, ops: u64, millis: u64) -> BenchResult {
        let mut stats = TxStats::new(false);
        for _ in 0..ops {
            stats.record_commit(PathKind::HardwareFast);
        }
        stats.record_abort(AbortCause::Conflict);
        BenchResult {
            algorithm: algorithm.to_string(),
            spec: "tl2+gv-strict+paper-default".to_string(),
            workload: "unit".to_string(),
            threads: 4,
            write_percent: 20,
            op_mix: "l80-u20".to_string(),
            key_dist: "uniform".to_string(),
            seed: 0xbe6c_c0de,
            total_ops: ops,
            elapsed: Duration::from_millis(millis),
            stats,
            breakdown: None,
        }
    }

    #[test]
    fn throughput_is_ops_over_time() {
        let r = result("HTM", 1_000, 500);
        assert!((r.throughput() - 2_000.0).abs() < 1e-6);
        assert!(r.abort_ratio() > 0.0);
        assert!(r.commit_ratio() > 1.0);
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let r = result("HTM", 10, 0);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let b = Breakdown {
            read_ns: 400,
            write_ns: 100,
            commit_ns: 100,
            private_ns: 300,
            intertx_ns: 100,
        };
        let sum: f64 = b.percentages().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(b.total_ns(), 1_000);
    }

    #[test]
    fn rows_and_series_render() {
        let r = result("RH1 Fast", 123, 10);
        assert!(r.throughput_row().contains("RH1 Fast"));
        assert!(r.breakdown_row().contains("no breakdown"));
        let s = format_series("fig1", std::slice::from_ref(&r));
        assert!(s.starts_with("# fig1\n"));
        let json = to_json(&[r]);
        assert!(json.contains("\"algorithm\""));
        assert!(json.contains("RH1 Fast"));
        for field in [
            "\"op_mix\": \"l80-u20\"",
            "\"key_dist\": \"uniform\"",
            "\"spec\": \"tl2+gv-strict+paper-default\"",
            "\"seed\": ",
            "\"retry_metrics\": ",
            "\"circuit_opens\": 0",
            "\"budget_exhausted\": 0",
            "\"mem_metrics\": ",
            "\"alloc_words\": 0",
            "\"epoch_advances\": 0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        validate_json(&json).expect("emitted JSON must parse");
    }

    #[test]
    fn validator_accepts_json_and_rejects_non_json() {
        for good in [
            "null",
            "-12.5e+3",
            "[]",
            "{}",
            r#"{"a": [1, 2, {"b": "c\nd"}], "e": true}"#,
            "  [1]  ",
            r#""é""#,
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good:?}: {e}"));
        }
        for bad in [
            "",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01x",
            "[1 2]",
            "{1: 2}",
            "nul",
            r#""\q""#,
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn abort_causes_filters_zero_counts() {
        let r = result("TL2", 5, 1);
        let causes = r.abort_causes();
        assert_eq!(causes, vec![(AbortCause::Conflict, 1)]);
    }
}
