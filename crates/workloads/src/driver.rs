//! The multi-threaded benchmark driver.
//!
//! `run_benchmark` generalises the paper's measurement loop into the
//! scenario engine's: every worker thread repeatedly draws an operation
//! kind from the configured [`OpMix`], a key from the configured
//! [`KeyDist`] sampler, and executes one transaction, until either the
//! measurement interval elapses or a fixed per-thread operation budget is
//! exhausted.  Per-thread statistics are merged into a single
//! [`BenchResult`].  The paper's loop (uniform keys, binary
//! lookup/update coin) is the default configuration.
//!
//! The spawn/register/barrier/join choreography lives in
//! [`rhtm_api::session`] ([`run_scoped`]): workers run in scoped
//! sessions, and the controller closure owns the measurement clock and
//! the deadline of time-bounded runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rhtm_api::session::run_scoped;
use rhtm_api::{TmRuntime, TmThread};

use crate::mix::OpMix;
use crate::phase::{PhasePlan, PhasedSampler};
use crate::report::{BenchResult, Breakdown};
use crate::rng::{KeyDist, KeySampler, WorkloadRng};
use crate::workload::Workload;

/// Options of a benchmark run.
#[derive(Clone, Debug)]
pub struct DriverOpts {
    /// Number of worker threads.
    pub threads: usize,
    /// The weighted operation mix drawn once per operation.
    pub mix: OpMix,
    /// The key-access distribution drawn once per operation.
    pub dist: KeyDist,
    /// Optional time-varying load schedule.  When set, it *replaces*
    /// `dist`: each worker samples from the [`LoadPhase`](crate::phase::LoadPhase)
    /// active at the run's current progress (operations done for counted
    /// runs, wall-clock share for timed runs).
    pub phases: Option<PhasePlan>,
    /// Fixed per-thread operation budget.  When `None`, the run is
    /// time-bounded by `duration`.
    pub ops_per_thread: Option<u64>,
    /// Measurement interval for time-bounded runs.
    pub duration: Duration,
    /// Collect the fine-grained single-thread time breakdown (enables
    /// per-operation timing; meaningful for `threads == 1`).
    pub breakdown: bool,
    /// Base RNG seed (each thread derives its own stream).
    pub seed: u64,
}

impl Default for DriverOpts {
    fn default() -> Self {
        DriverOpts {
            threads: 1,
            mix: OpMix::read_update(20),
            dist: KeyDist::Uniform,
            phases: None,
            ops_per_thread: None,
            duration: Duration::from_millis(300),
            breakdown: false,
            seed: 0xbe6c_c0de,
        }
    }
}

impl DriverOpts {
    /// A time-bounded run with the given operation mix over uniform keys.
    pub fn timed_mix(threads: usize, mix: OpMix, duration: Duration) -> Self {
        DriverOpts {
            threads,
            mix,
            duration,
            ..Default::default()
        }
    }

    /// An operation-count-bounded run (used by the Criterion benches, whose
    /// iteration model wants deterministic work per measurement) with the
    /// given operation mix over uniform keys.
    pub fn counted_mix(threads: usize, mix: OpMix, ops_per_thread: u64) -> Self {
        DriverOpts {
            threads,
            mix,
            ops_per_thread: Some(ops_per_thread),
            ..Default::default()
        }
    }

    /// Enables the single-thread time-breakdown mode.
    pub fn with_breakdown(mut self) -> Self {
        self.breakdown = true;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the operation mix.
    pub fn with_mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the key-access distribution.
    pub fn with_dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Sets (or clears) the time-varying load schedule.
    pub fn with_phases(mut self, phases: Option<PhasePlan>) -> Self {
        self.phases = phases;
        self
    }
}

/// The per-worker key source: a stationary sampler, or a phased one plus
/// the state needed to track run progress.
enum KeySource {
    Stationary(KeySampler),
    Phased {
        sampler: PhasedSampler,
        /// Cached progress percentage, refreshed every
        /// [`PROGRESS_REFRESH`] operations for timed runs (counted runs
        /// recompute exactly — integer math is free).
        progress: u8,
    },
}

/// Operations between wall-clock progress refreshes of timed phased runs
/// (matches the deadline-check cadence).
const PROGRESS_REFRESH: u64 = 64;

impl KeySource {
    fn new(opts: &DriverOpts, key_space: u64, tid: usize) -> Self {
        match opts.phases {
            Some(plan) => KeySource::Phased {
                sampler: plan.sampler(key_space, tid, opts.threads),
                progress: 0,
            },
            None => KeySource::Stationary(opts.dist.sampler(key_space, tid, opts.threads)),
        }
    }

    #[inline]
    fn sample(
        &mut self,
        rng: &mut WorkloadRng,
        ops: u64,
        opts: &DriverOpts,
        started: &Instant,
    ) -> u64 {
        match self {
            KeySource::Stationary(s) => s.sample(rng),
            KeySource::Phased { sampler, progress } => {
                match opts.ops_per_thread {
                    // Counted runs: progress is exact and deterministic.
                    Some(budget) => *progress = (ops * 100 / budget.max(1)).min(99) as u8,
                    // Timed runs: refresh from the wall clock at the same
                    // cadence as the deadline check.
                    None => {
                        if ops.is_multiple_of(PROGRESS_REFRESH) {
                            let total = opts.duration.as_nanos().max(1);
                            let done = started.elapsed().as_nanos() * 100 / total;
                            *progress = done.min(99) as u8;
                        }
                    }
                }
                sampler.sample(rng, *progress)
            }
        }
    }
}

struct ThreadOutcome {
    ops: u64,
    stats: rhtm_api::TxStats,
    txn_ns: u64,
    loop_ns: u64,
}

/// Runs `workload` on `runtime` according to `opts` and returns the merged
/// result.
pub fn run_benchmark<RT, W>(runtime: &RT, workload: &W, opts: &DriverOpts) -> BenchResult
where
    RT: TmRuntime,
    W: Workload,
{
    assert!(opts.threads >= 1, "at least one worker thread is required");
    assert!(workload.key_space() >= 1, "workload key space is empty");
    let stop = AtomicBool::new(false);

    let (outcomes, started) = run_scoped(
        opts.threads,
        |_| runtime.register_thread(),
        |session| {
            // Sampler construction is setup, not measured work (the
            // Zipfian sampler does O(key-space) precomputation) — the
            // session sync below holds every worker until setup is done
            // everywhere, so the measurement clock starts clean.
            let tid = session.index();
            session.stats_mut().timing = opts.breakdown;
            let mut rng = WorkloadRng::new(opts.seed ^ ((tid as u64 + 1) * 0x9E37_79B9));
            let mut source = KeySource::new(opts, workload.key_space(), tid);
            let mut ops = 0u64;
            let mut txn_ns = 0u64;
            session.sync();
            let loop_started = Instant::now();
            loop {
                match opts.ops_per_thread {
                    Some(budget) => {
                        if ops >= budget {
                            break;
                        }
                    }
                    None => {
                        // Check the deadline every few operations to
                        // keep the check off the per-op critical path.
                        if ops.is_multiple_of(64) && stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
                let op = opts.mix.draw(&mut rng);
                let key = source.sample(&mut rng, ops, opts, &loop_started);
                if opts.breakdown {
                    let t = Instant::now();
                    workload.run_op(session.thread_mut(), &mut rng, op, key);
                    txn_ns += t.elapsed().as_nanos() as u64;
                } else {
                    workload.run_op(session.thread_mut(), &mut rng, op, key);
                }
                ops += 1;
            }
            ThreadOutcome {
                ops,
                stats: session.stats().clone(),
                txn_ns,
                loop_ns: loop_started.elapsed().as_nanos() as u64,
            }
        },
        |mut ctl| {
            // The controller is released exactly when the workers are:
            // that instant is the start of the measurement interval.
            ctl.wait_ready();
            let started = Instant::now();
            if opts.ops_per_thread.is_none() {
                std::thread::sleep(opts.duration);
                stop.store(true, Ordering::SeqCst);
            }
            started
        },
    );

    let elapsed = started.elapsed();
    let mut stats = rhtm_api::TxStats::new(opts.breakdown);
    let mut total_ops = 0u64;
    let mut txn_ns = 0u64;
    let mut loop_ns = 0u64;
    for o in &outcomes {
        stats.merge(&o.stats);
        total_ops += o.ops;
        txn_ns += o.txn_ns;
        loop_ns += o.loop_ns;
    }
    let breakdown = if opts.breakdown {
        let accounted = stats.read_ns + stats.write_ns + stats.commit_ns;
        Some(Breakdown {
            read_ns: stats.read_ns,
            write_ns: stats.write_ns,
            commit_ns: stats.commit_ns,
            private_ns: txn_ns.saturating_sub(accounted),
            intertx_ns: loop_ns.saturating_sub(txn_ns),
        })
    } else {
        None
    };

    BenchResult {
        algorithm: runtime.name().to_string(),
        // The driver sees only the runtime, not the axes it was built
        // from; TmSpec::bench overwrites this with the spec's label.
        spec: String::new(),
        workload: workload.name(),
        threads: opts.threads,
        write_percent: opts.mix.update_percent(),
        op_mix: opts.mix.label(),
        key_dist: opts.dist.label(),
        seed: opts.seed,
        total_ops,
        elapsed,
        stats,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::hashtable::ConstantHashTable;
    use rhtm_htm::{HtmConfig, HtmRuntime, HtmSim};
    use rhtm_mem::{MemConfig, TmMemory};
    use std::sync::Arc;

    fn setup(elements: u64) -> (HtmRuntime, ConstantHashTable) {
        let mem_cfg =
            MemConfig::with_data_words(ConstantHashTable::required_words(elements) + 1024);
        let mem = Arc::new(TmMemory::new(mem_cfg));
        let sim = HtmSim::new(mem, HtmConfig::default());
        let table = ConstantHashTable::new(Arc::clone(&sim), elements);
        (HtmRuntime::with_sim(sim), table)
    }

    #[test]
    fn counted_run_executes_exactly_the_budget() {
        let (rt, table) = setup(512);
        let opts = DriverOpts::counted_mix(2, OpMix::read_update(20), 250);
        let result = run_benchmark(&rt, &table, &opts);
        assert_eq!(result.total_ops, 500);
        assert_eq!(result.stats.commits(), 500);
        assert_eq!(result.threads, 2);
        assert!(result.throughput() > 0.0);
    }

    #[test]
    fn timed_run_stops_near_the_deadline() {
        let (rt, table) = setup(512);
        let opts = DriverOpts::timed_mix(2, OpMix::read_update(20), Duration::from_millis(60));
        let result = run_benchmark(&rt, &table, &opts);
        assert!(result.total_ops > 0);
        assert!(result.elapsed >= Duration::from_millis(60));
        assert!(
            result.elapsed < Duration::from_millis(2_000),
            "run should stop promptly after the deadline"
        );
    }

    #[test]
    fn write_percentage_controls_update_share() {
        let (rt, table) = setup(512);
        let result = run_benchmark(
            &rt,
            &table,
            &DriverOpts::counted_mix(1, OpMix::read_update(0), 300),
        );
        assert_eq!(result.stats.writes, 0, "0% writes must never update");
        let (rt, table) = setup(512);
        let result = run_benchmark(
            &rt,
            &table,
            &DriverOpts::counted_mix(1, OpMix::read_update(100), 300),
        );
        assert!(result.stats.writes > 0, "100% writes must update");
    }

    #[test]
    fn breakdown_mode_accounts_time() {
        let (rt, table) = setup(512);
        let opts = DriverOpts::counted_mix(1, OpMix::read_update(20), 400).with_breakdown();
        let result = run_benchmark(&rt, &table, &opts);
        let b = result.breakdown.expect("breakdown requested");
        assert!(b.read_ns > 0);
        assert!(b.total_ns() > 0);
        let percentages = b.percentages();
        assert!((percentages.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn mix_and_dist_are_recorded_in_the_result() {
        let (rt, table) = setup(512);
        let opts = DriverOpts::counted_mix(2, OpMix::read_update(20), 100)
            .with_mix(OpMix::read_update(35))
            .with_dist(KeyDist::ZIPF_DEFAULT);
        let result = run_benchmark(&rt, &table, &opts);
        assert_eq!(result.write_percent, 35);
        assert_eq!(result.op_mix, "l65-u35");
        assert_eq!(result.key_dist, "zipf-0.99");
        assert_eq!(result.seed, opts.seed);
        assert_eq!(result.total_ops, 200);
    }

    #[test]
    fn every_distribution_drives_the_run_deterministically() {
        for dist in KeyDist::ALL {
            let run = || {
                let (rt, table) = setup(512);
                run_benchmark(
                    &rt,
                    &table,
                    &DriverOpts::counted_mix(1, OpMix::read_update(50), 200)
                        .with_seed(9)
                        .with_dist(dist),
                )
            };
            let (a, b) = (run(), run());
            assert_eq!(a.total_ops, 200, "{dist:?}");
            assert_eq!(a.stats.reads, b.stats.reads, "{dist:?}");
            assert_eq!(a.stats.writes, b.stats.writes, "{dist:?}");
        }
    }

    #[test]
    fn phased_counted_runs_complete_and_replay_deterministically() {
        for plan in PhasePlan::ALL {
            // Single-threaded so abort/retry noise cannot perturb the
            // read/write counts (as in the stationary determinism test).
            let run = || {
                let (rt, table) = setup(512);
                run_benchmark(
                    &rt,
                    &table,
                    &DriverOpts::counted_mix(1, OpMix::read_update(30), 400)
                        .with_seed(4)
                        .with_phases(Some(plan)),
                )
            };
            let (a, b) = (run(), run());
            assert_eq!(a.total_ops, 400, "{plan:?}");
            assert_eq!(a.stats.commits(), 400, "{plan:?}");
            assert_eq!(a.stats.reads, b.stats.reads, "{plan:?}");
            assert_eq!(a.stats.writes, b.stats.writes, "{plan:?}");
        }
    }

    #[test]
    fn phased_timed_runs_stop_at_the_deadline() {
        let (rt, table) = setup(512);
        let opts = DriverOpts::timed_mix(2, OpMix::read_update(20), Duration::from_millis(40))
            .with_phases(Some(PhasePlan::FlashCrowd));
        let result = run_benchmark(&rt, &table, &opts);
        assert!(result.total_ops > 0);
        assert!(result.elapsed >= Duration::from_millis(40));
        assert!(result.elapsed < Duration::from_millis(2_000));
    }

    #[test]
    fn results_are_deterministic_for_counted_runs_with_same_seed() {
        let (rt, table) = setup(256);
        let a = run_benchmark(
            &rt,
            &table,
            &DriverOpts::counted_mix(1, OpMix::read_update(50), 200).with_seed(9),
        );
        let (rt, table) = setup(256);
        let b = run_benchmark(
            &rt,
            &table,
            &DriverOpts::counted_mix(1, OpMix::read_update(50), 200).with_seed(9),
        );
        assert_eq!(a.stats.reads, b.stats.reads);
        assert_eq!(a.stats.writes, b.stats.writes);
    }
}
