//! The workload abstraction the driver runs.

use rhtm_api::TmThread;

use crate::rng::WorkloadRng;

/// A benchmark workload: a shared data structure plus the operation mix the
/// paper runs against it.
///
/// Implementations are constructed over a runtime's shared memory
/// (allocating and initialising their nodes with non-transactional stores)
/// and are then shared read-only between the worker threads; all mutation
/// happens through the transactions issued in [`Workload::run_op`].
pub trait Workload: Send + Sync {
    /// A short name used in reports (e.g. `"rbtree-100k"`).
    fn name(&self) -> String;

    /// Executes one operation on `thread`.  `is_update` selects between the
    /// workload's read-only operation (lookup/search/query) and its update
    /// operation, according to the driver's write-percentage draw.
    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, is_update: bool);
}
