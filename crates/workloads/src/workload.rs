//! The workload abstraction the driver runs.

use rhtm_api::TmThread;

use crate::mix::OpKind;
use crate::rng::WorkloadRng;

/// A benchmark workload: a shared data structure plus the operations the
/// scenario engine runs against it.
///
/// Implementations are constructed over a runtime's shared memory
/// (allocating and initialising their nodes with non-transactional stores)
/// and are then shared read-only between the worker threads; all mutation
/// happens through the transactions issued in [`Workload::run_op`].
///
/// # Operation-selection contract
///
/// The *driver* owns operation selection, not the workload: for every
/// operation it draws one [`OpKind`] from the configured
/// [`OpMix`](crate::mix::OpMix) and one key from the configured
/// [`KeyDist`](crate::rng::KeyDist) sampler over `[0, key_space())`, then
/// calls [`Workload::run_op`] exactly once.  That split is what makes
/// workload shape a sweepable axis: the same structure can be driven
/// uniform or Zipfian, read-heavy or churning, without the structure
/// knowing.
///
/// Implementations must uphold:
///
/// * **One committed transaction per call.**  Every `run_op` call executes
///   (at least) one transaction to completion, even when the operation is
///   a no-op at the semantic level (lookup of an absent key, dequeue from
///   an empty queue, insert of a present key) — the driver counts calls as
///   operations.
/// * **Kind mapping.**  A workload that cannot express a kind maps it to
///   the nearest supported operation and documents the mapping on its
///   impl.  The mapping must respect [`OpKind::is_update`]: a read-only
///   kind (`Lookup`, `RangeSum`) must map to a read-only operation.  The
///   one sanctioned exception is a workload whose transaction shape is
///   its *own* configuration ([`RandomArray`](crate::RandomArray) with
///   its internal `write_percent`): such a workload may ignore `op` and
///   `key` entirely, must say so on its impl, and is not read-only under
///   any mix.
/// * **Key mapping.**  `key` is always in `[0, key_space())`; workloads
///   with reserved sentinel keys translate internally.
/// * **Determinism.**  Any extra randomness (payload values, transaction
///   shapes) must come from `rng`, so fixed-seed runs replay bit-identical
///   operation sequences.
pub trait Workload: Send + Sync {
    /// A short name used in reports (e.g. `"rbtree-100k"`).
    fn name(&self) -> String;

    /// Number of distinct keys operations address; the driver draws every
    /// `key` from `[0, key_space())`.  Must be ≥ 1 and constant for the
    /// lifetime of the run.
    fn key_space(&self) -> u64;

    /// Executes one operation of kind `op` on `key` (see the
    /// operation-selection contract above).
    fn run_op<T: TmThread>(&self, thread: &mut T, rng: &mut WorkloadRng, op: OpKind, key: u64);
}
