//! # rhtm-hytm-std — the "Standard HyTM" baseline
//!
//! The classic hybrid-TM design the paper compares against (its "Standard
//! HyTM" series, representative of Damron et al. and Kumar et al.): hardware
//! transactions whose **reads and writes are both instrumented** with
//! accesses to the STM metadata, so that they can run concurrently with a
//! TL2-style software fallback.
//!
//! * Hardware path: every read loads the location's stripe version and
//!   branches on its lock bit before loading the data; every write installs
//!   a new stripe version next to the data store.  This per-access metadata
//!   traffic is precisely the overhead the paper's Figure 1 quantifies and
//!   the RH protocols eliminate.
//! * Software path: the [`rhtm_stm::Tl2Engine`].  By default the runtime
//!   falls back to it after a bounded number of hardware failures; the
//!   `hardware_only` configuration reproduces the paper's measurement
//!   variant, which retries in hardware forever ("to make the hybrid as
//!   fast as possible").

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::sync::Arc;

use rhtm_api::{
    retry, AbortCause, AttemptContext, Backoff, PathClass, PathKind, RetryDecision,
    RetryPolicyHandle, RetryRng, Stopwatch, TmRuntime, TmThread, TxResult, TxStats, Txn,
};
use rhtm_htm::{HtmConfig, HtmSim, HtmThread};
use rhtm_mem::{stamp, Addr, MemConfig, ThreadRegistry, ThreadToken, TmMemory};
use rhtm_stm::Tl2Engine;

/// Policy of the Standard-HyTM runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdHytmConfig {
    /// Retry aborted transactions in hardware only, never falling back to
    /// software.  This is the paper's benchmark variant ("we execute only
    /// the hardware mode implementation ... without any software fallback").
    /// Transactions that abort for a hardware-limitation reason still fall
    /// back, since retrying them in hardware can never succeed.
    ///
    /// This is a contract, not a tunable: besides setting the hardware
    /// retry budget seen by the retry policy to `u32::MAX`, the runtime
    /// ignores contention-demote decisions from budget-ignoring policies
    /// (e.g. `adaptive`), so a `hardware_only` run commits on the software
    /// path only for hardware limitations, whatever the policy.
    pub hardware_only: bool,
    /// Hardware retry budget: the maximum number of *extra* hardware
    /// attempts after the first contention failure (so `N` allows `N + 1`
    /// hardware attempts in total) before falling back to the software
    /// path.  Ignored in `hardware_only` mode.
    pub hw_retries: u32,
    /// The contention-management policy consulted after every abort (see
    /// [`rhtm_api::RetryPolicy`]).  The default reproduces the seed
    /// behaviour: demote to software after `hw_retries` extra hardware
    /// failures, immediately on a hardware limitation.
    pub retry_policy: RetryPolicyHandle,
}

impl Default for StdHytmConfig {
    fn default() -> Self {
        StdHytmConfig {
            hardware_only: false,
            hw_retries: 4,
            retry_policy: RetryPolicyHandle::paper_default(),
        }
    }
}

impl StdHytmConfig {
    /// The paper's benchmark variant: hardware retries only.
    pub fn hardware_only() -> Self {
        StdHytmConfig {
            hardware_only: true,
            hw_retries: u32::MAX,
            ..Default::default()
        }
    }

    /// Returns the configuration with a different retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicyHandle) -> Self {
        self.retry_policy = policy;
        self
    }

    /// The hardware retry budget the policy sees: unbounded when
    /// `hardware_only`, the configured `hw_retries` otherwise.
    fn hw_budget(&self) -> u32 {
        if self.hardware_only {
            u32::MAX
        } else {
            self.hw_retries
        }
    }
}

/// The Standard-HyTM runtime ("Standard HyTM" in the figures).
pub struct StdHytmRuntime {
    sim: Arc<HtmSim>,
    registry: Arc<ThreadRegistry>,
    config: StdHytmConfig,
}

impl StdHytmRuntime {
    /// Creates a runtime over its own fresh memory.
    pub fn new(mem_config: MemConfig, htm_config: HtmConfig, config: StdHytmConfig) -> Self {
        let max_threads = mem_config.max_threads;
        let mem = Arc::new(TmMemory::new(mem_config));
        let sim = HtmSim::new(mem, htm_config);
        StdHytmRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// Creates a runtime over an existing simulator.
    pub fn with_sim(sim: Arc<HtmSim>, config: StdHytmConfig) -> Self {
        let max_threads = sim.mem().layout().config().max_threads;
        StdHytmRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The configuration.
    pub fn config(&self) -> &StdHytmConfig {
        &self.config
    }
}

impl TmRuntime for StdHytmRuntime {
    type Thread = StdHytmThread;

    fn name(&self) -> &'static str {
        "Standard HyTM"
    }

    fn mem(&self) -> &Arc<TmMemory> {
        self.sim.mem()
    }

    fn register_thread(&self) -> StdHytmThread {
        let token = self.registry.register();
        let htm = HtmThread::new(Arc::clone(&self.sim), token.id() as u64);
        let tl2 = Tl2Engine::new(Arc::clone(&self.sim), token.id());
        let rng = RetryRng::new(0x5354_4459_544d ^ (token.id() as u64 + 1) << 17);
        let policy_wants_commit = self.config.retry_policy.wants_commit_hook();
        StdHytmThread {
            sim: Arc::clone(&self.sim),
            htm,
            tl2,
            token,
            config: self.config.clone(),
            policy_wants_commit,
            stats: TxStats::new(false),
            on_hardware: true,
            next_ver: 0,
            in_txn: false,
            rng,
        }
    }
}

/// Per-thread handle of the Standard-HyTM runtime.
pub struct StdHytmThread {
    sim: Arc<HtmSim>,
    htm: HtmThread,
    tl2: Tl2Engine,
    token: ThreadToken,
    config: StdHytmConfig,
    /// Cached [`rhtm_api::RetryPolicy::wants_commit_hook`] answer.
    policy_wants_commit: bool,
    stats: TxStats,
    /// Whether the attempt in progress runs on the hardware path.
    on_hardware: bool,
    /// Version the hardware path installs on written stripes.
    next_ver: u64,
    in_txn: bool,
    /// Per-thread RNG feeding the retry policy (backoff jitter).
    rng: RetryRng,
}

impl StdHytmThread {
    fn hw_begin(&mut self) -> TxResult<()> {
        self.htm.begin();
        let clock_addr = self.sim.mem().clock().addr();
        self.next_ver = self.htm.read(clock_addr)? + 1;
        // Under the conventional incrementing clock scheme (ablation
        // baseline) the hardware transaction also advances the shared clock
        // speculatively, exactly like the RH1 fast-path does.  Every GV
        // scheme keeps the clock read-only here.
        if rhtm_htm::gv::htm_advances(&self.sim) {
            self.htm.write(clock_addr, self.next_ver)?;
        }
        Ok(())
    }

    #[inline]
    fn hw_read(&mut self, addr: Addr) -> TxResult<u64> {
        // The instrumentation the paper measures: a metadata load and a
        // conditional branch in front of every hardware read.
        let layout = self.sim.mem().layout();
        let ver_addr = layout.stripe_version_addr(layout.stripe_of(addr));
        let version = self.htm.read(ver_addr)?;
        if stamp::is_locked(version) {
            return Err(self.htm.abort(AbortCause::Locked));
        }
        self.htm.read(addr)
    }

    #[inline]
    fn hw_write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        let layout = self.sim.mem().layout();
        let ver_addr = layout.stripe_version_addr(layout.stripe_of(addr));
        let current = self.htm.read(ver_addr)?;
        if stamp::is_locked(current) {
            return Err(self.htm.abort(AbortCause::Locked));
        }
        self.htm.write(ver_addr, stamp::encode_ts(self.next_ver))?;
        self.htm.write(addr, value)
    }
}

impl Txn for StdHytmThread {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = if self.on_hardware {
            self.hw_read(addr)
        } else {
            self.tl2.read(addr)
        };
        self.stats.record_read(sw.stop());
        result
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = if self.on_hardware {
            self.hw_write(addr, value)
        } else {
            self.tl2.write(addr, value)
        };
        self.stats.record_write(sw.stop());
        result
    }

    fn protected_instruction(&mut self) -> TxResult<()> {
        if self.on_hardware {
            Err(self.htm.abort(AbortCause::Unsupported))
        } else {
            Ok(())
        }
    }
}

impl TmThread for StdHytmThread {
    fn execute<R, F>(&mut self, mut body: F) -> R
    where
        F: FnMut(&mut Self) -> TxResult<R>,
    {
        assert!(!self.in_txn, "nested execute is not supported");
        self.in_txn = true;
        let backoff = Backoff::new();
        let hw_budget = self.config.hw_budget();
        let mut hw_failures = 0u32;
        let mut sw_failures = 0u32;
        let mut force_software = false;
        let result = loop {
            self.on_hardware = !force_software;
            let begun: TxResult<()> = if self.on_hardware {
                self.hw_begin()
            } else {
                self.tl2.start();
                Ok(())
            };
            let attempt: TxResult<R> = begun.and_then(|()| {
                body(self).and_then(|r| {
                    let sw = Stopwatch::start(self.stats.timing);
                    let committed = if self.on_hardware {
                        self.htm.commit()
                    } else {
                        self.tl2.commit()
                    };
                    self.stats.record_commit_time(sw.stop());
                    committed.map(|()| r)
                })
            });
            match attempt {
                Ok(r) => {
                    if self.on_hardware {
                        self.stats.htm_commits += 1;
                        self.stats.record_commit(PathKind::HardwareFast);
                    } else {
                        self.stats.record_commit(PathKind::Software);
                    }
                    if self.policy_wants_commit {
                        self.config
                            .retry_policy
                            .on_commit(self.on_hardware, &mut self.stats.retry);
                    }
                    break r;
                }
                Err(abort) => {
                    self.stats.record_abort(abort.cause);
                    let (path, attempt, budget) = if self.on_hardware {
                        self.stats.htm_aborts += 1;
                        hw_failures += 1;
                        (PathClass::Hardware, hw_failures, hw_budget)
                    } else {
                        sw_failures += 1;
                        (PathClass::Software, sw_failures, u32::MAX)
                    };
                    let ctx = AttemptContext {
                        attempt,
                        path,
                        cause: abort.cause,
                        // The software fallback is the bottom tier; only
                        // hardware attempts can demote.
                        can_demote: self.on_hardware,
                        retry_budget: budget,
                        mix_percent: 100,
                        fallback_rh2: 0,
                        fallback_all_software: 0,
                    };
                    let decision = self.config.retry_policy.decide_clamped_observed(
                        &ctx,
                        &mut self.rng,
                        &mut self.stats.retry,
                    );
                    if self.on_hardware {
                        // `hardware_only` is a contract: a contention
                        // demote from a budget-ignoring policy is dropped;
                        // only hardware limitations may fall back.
                        force_software = decision == RetryDecision::Demote
                            && (!self.config.hardware_only || abort.cause.is_hardware_limitation());
                    }
                    match decision {
                        RetryDecision::BackoffThen(spins) => retry::spin(spins),
                        _ => backoff.snooze(),
                    }
                }
            }
        };
        self.in_txn = false;
        result
    }

    fn thread_id(&self) -> usize {
        self.token.id()
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut TxStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(config: StdHytmConfig) -> StdHytmRuntime {
        StdHytmRuntime::new(
            MemConfig::with_data_words(8192),
            HtmConfig::default(),
            config,
        )
    }

    #[test]
    fn single_thread_counter() {
        let rt = runtime(StdHytmConfig::default());
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        for _ in 0..100 {
            th.execute(|tx| {
                let v = tx.read(addr)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(rt.sim().nt_load(addr), 100);
        assert_eq!(th.stats().commits_on(PathKind::HardwareFast), 100);
    }

    #[test]
    fn concurrent_counter_is_exact_for_both_policies() {
        for config in [StdHytmConfig::default(), StdHytmConfig::hardware_only()] {
            let rt = Arc::new(runtime(config));
            let addr = rt.mem().alloc(1);
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let rt = Arc::clone(&rt);
                    std::thread::spawn(move || {
                        let mut th = rt.register_thread();
                        for _ in 0..3_000 {
                            th.execute(|tx| {
                                let v = tx.read(addr)?;
                                tx.write(addr, v + 1)?;
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(rt.sim().nt_load(addr), 18_000);
        }
    }

    #[test]
    fn bank_transfer_mixing_hardware_and_software_paths() {
        // Force frequent software fallbacks with a tiny hardware retry
        // budget, exercising hardware/software concurrency.
        let rt = Arc::new(runtime(StdHytmConfig {
            hardware_only: false,
            hw_retries: 0,
            ..Default::default()
        }));
        let accounts: Vec<Addr> = (0..16).map(|_| rt.mem().alloc(1)).collect();
        for &a in &accounts {
            rt.sim().nt_store(a, 1_000);
        }
        let accounts = Arc::new(accounts);
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let rt = Arc::clone(&rt);
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for k in 0..4_000usize {
                        let from = accounts[(k * 3 + i) % accounts.len()];
                        let to = accounts[(k * 5 + 2 * i + 1) % accounts.len()];
                        if from == to {
                            continue;
                        }
                        th.execute(|tx| {
                            let f = tx.read(from)?;
                            if f == 0 {
                                return Ok(());
                            }
                            let t = tx.read(to)?;
                            tx.write(from, f - 1)?;
                            tx.write(to, t + 1)?;
                            Ok(())
                        });
                    }
                    th.stats().clone()
                })
            })
            .collect();
        let mut total_stats = TxStats::new(false);
        for h in handles {
            total_stats.merge(&h.join().unwrap());
        }
        let total: u64 = accounts.iter().map(|&a| rt.sim().nt_load(a)).sum();
        assert_eq!(total, 16_000);
        // With a zero hardware-retry budget and contention, some commits
        // must have taken the software path.
        assert!(total_stats.commits_on(PathKind::Software) > 0);
        assert!(total_stats.commits_on(PathKind::HardwareFast) > 0);
    }

    #[test]
    fn protected_instruction_falls_back_to_software() {
        let rt = runtime(StdHytmConfig::default());
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        let v = th.execute(|tx| {
            tx.protected_instruction()?;
            let v = tx.read(addr)?;
            tx.write(addr, v + 5)?;
            Ok(v + 5)
        });
        assert_eq!(v, 5);
        assert_eq!(th.stats().commits_on(PathKind::Software), 1);
    }

    #[test]
    fn hardware_reads_observe_software_locks() {
        // A stripe locked by a (simulated) software committer must abort the
        // instrumented hardware read.
        let rt = runtime(StdHytmConfig::hardware_only());
        let addr = rt.mem().alloc(1);
        let layout = rt.mem().layout();
        let ver_addr = layout.stripe_version_addr(layout.stripe_of(addr));
        rt.sim().nt_store(ver_addr, stamp::lock_word(13));
        let mut th = rt.register_thread();
        // Run the raw hardware path once: it must abort with `Locked`.
        th.on_hardware = true;
        th.hw_begin().unwrap();
        assert_eq!(th.hw_read(addr).unwrap_err().cause, AbortCause::Locked);
        // Release the lock so execute() can finish normally afterwards.
        rt.sim().nt_store(ver_addr, stamp::encode_ts(0));
        let v = th.execute(|tx| tx.read(addr));
        assert_eq!(v, 0);
    }

    #[test]
    fn runtime_name() {
        assert_eq!(runtime(StdHytmConfig::default()).name(), "Standard HyTM");
    }

    #[test]
    fn hardware_only_ignores_contention_demotes_from_any_policy() {
        // `adaptive` demotes after 2 failures regardless of budget; the
        // hardware_only contract must override it for anything short of a
        // hardware limitation.
        for policy in RetryPolicyHandle::builtin() {
            let rt = StdHytmRuntime::new(
                MemConfig::with_data_words(8192),
                HtmConfig::default()
                    .with_spurious_abort_rate(0.5)
                    .with_seed(9),
                StdHytmConfig::hardware_only().with_retry_policy(policy.clone()),
            );
            let addr = rt.mem().alloc(1);
            let mut th = rt.register_thread();
            for _ in 0..100 {
                th.execute(|tx| {
                    let v = tx.read(addr)?;
                    tx.write(addr, v + 1)?;
                    Ok(())
                });
            }
            assert_eq!(
                th.stats().commits_on(PathKind::HardwareFast),
                100,
                "{}: hardware_only must stay in hardware",
                policy.label()
            );
            assert_eq!(
                th.stats().commits_on(PathKind::Software),
                0,
                "{}",
                policy.label()
            );
            // The escape hatch stays open: a protected instruction (a
            // hardware limitation) still reaches the software path.
            let v = th.execute(|tx| {
                tx.protected_instruction()?;
                tx.read(addr)
            });
            assert_eq!(v, 100);
            assert_eq!(
                th.stats().commits_on(PathKind::Software),
                1,
                "{}",
                policy.label()
            );
        }
    }

    #[test]
    fn retry_policy_threads_through_the_config() {
        let config = StdHytmConfig::default().with_retry_policy(RetryPolicyHandle::aggressive());
        assert_eq!(config.retry_policy.label(), "aggressive");
        // An aggressive policy never demotes on contention, so a
        // zero-budget config still commits everything in hardware.
        let rt = runtime(StdHytmConfig {
            hw_retries: 0,
            ..config
        });
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        for _ in 0..50 {
            th.execute(|tx| {
                let v = tx.read(addr)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(th.stats().commits_on(PathKind::HardwareFast), 50);
        assert_eq!(th.stats().commits_on(PathKind::Software), 0);
    }
}
