//! Configuration of the reduced-hardware runtime.

use rhtm_api::RetryPolicyHandle;
use rhtm_mem::ClockScheme;

/// Which protocol family a fresh transaction starts in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMode {
    /// Start on the RH1 fast-path and use the full cascade
    /// (RH1 fast → RH1 mixed slow → RH2 commit → all-software).  This is the
    /// paper's main configuration.
    Rh1,
    /// Run the RH2 protocol stand-alone: RH2 fast-path with an RH2 slow-path
    /// (lock + visible-read-set commit).  The paper uses RH2 only as RH1's
    /// fallback, but the protocol is complete on its own and this mode is
    /// used by tests and the fallback ablation.
    Rh2,
}

/// Tunable policy of the [`crate::RhRuntime`].
#[derive(Clone, Debug, PartialEq)]
pub struct RhConfig {
    /// Protocol family to start transactions in.
    pub mode: ProtocolMode,
    /// The paper's "Mix" parameter: the percentage (0–100) of
    /// contention-aborted fast-path transactions that are retried on the
    /// mixed slow-path instead of in hardware.  `0` reproduces "RH1 Fast",
    /// `10` and `100` reproduce "RH1 Mixed 10" / "RH1 Mixed 100".
    ///
    /// Aborts caused by hardware limitations (capacity overflow, protected
    /// instructions) always fall back to the slow-path regardless of this
    /// percentage — retrying them in hardware could never succeed.
    ///
    /// The percentage reaches the decision through
    /// [`rhtm_api::AttemptContext::mix_percent`]; how it is interpreted is
    /// up to [`RhConfig::retry_policy`] (the default [`PaperDefault`]
    /// applies it exactly as described above).
    ///
    /// [`PaperDefault`]: rhtm_api::retry::PaperDefault
    pub slow_path_percent: u8,
    /// Retry budget of the RH1 slow-path commit-time hardware transaction:
    /// the maximum number of *extra* attempts after its first contention
    /// failure (so `N` allows `N + 1` attempts in total) before the whole
    /// transaction restarts.
    pub commit_htm_retries: u32,
    /// Retry budget of the RH2 commit-time write-back hardware transaction:
    /// the maximum number of *extra* attempts after its first contention
    /// failure (so `N` allows `N + 1` attempts in total) before switching
    /// to the all-software write-back.
    pub writeback_htm_retries: u32,
    /// The contention-management policy consulted after every abort: it
    /// decides when an attempt gives up on its current path (fast-path →
    /// slow-path, commit/write-back HTM → next fallback) and how retries
    /// are paced.  The default, [`PaperDefault`], reproduces the paper's
    /// hardcoded thresholds exactly — the budgets above and
    /// `slow_path_percent` are carried into each decision's
    /// [`rhtm_api::AttemptContext`].
    ///
    /// [`PaperDefault`]: rhtm_api::retry::PaperDefault
    pub retry_policy: RetryPolicyHandle,
    /// Run every transaction on the mixed slow-path (no fast-path attempts).
    /// This is the "RH1 Slow" row of the paper's single-thread breakdown
    /// table; it is never the right choice for production use.
    pub always_slow: bool,
    /// Global-clock advancement scheme override (see [`ClockScheme`]).
    ///
    /// `Some(scheme)` makes [`crate::RhRuntime::new`] build its memory with
    /// that scheme, overriding `mem_config.clock_scheme`; `None` (the
    /// default) defers to the [`rhtm_mem::MemConfig`].  When sharing an
    /// existing simulator ([`crate::RhRuntime::with_sim`]) the memory's
    /// configured scheme always wins, since the clock is a property of the
    /// shared heap.
    pub clock_scheme: Option<ClockScheme>,
    /// Seed for the per-thread slow-path-admission RNG (reproducibility).
    pub seed: u64,
}

impl Default for RhConfig {
    fn default() -> Self {
        RhConfig {
            mode: ProtocolMode::Rh1,
            slow_path_percent: 100,
            commit_htm_retries: 8,
            writeback_htm_retries: 8,
            retry_policy: RetryPolicyHandle::paper_default(),
            always_slow: false,
            clock_scheme: None,
            seed: 0x5248_544d_5345_4544,
        }
    }
}

impl RhConfig {
    /// "RH1 Fast": every abort is retried in hardware (except hardware
    /// limitations, which have no choice but the slow-path).
    pub fn rh1_fast() -> Self {
        RhConfig {
            slow_path_percent: 0,
            ..Default::default()
        }
    }

    /// "RH1 Mixed N": `percent`% of contention-aborted fast-path
    /// transactions retry on the mixed slow-path.
    pub fn rh1_mixed(percent: u8) -> Self {
        assert!(percent <= 100, "slow-path percentage must be 0..=100");
        RhConfig {
            slow_path_percent: percent,
            ..Default::default()
        }
    }

    /// "RH1 Slow": every transaction runs on the mixed slow-path (software
    /// body, hardware commit).  Used by the single-thread breakdown table.
    pub fn rh1_slow() -> Self {
        RhConfig {
            always_slow: true,
            ..Default::default()
        }
    }

    /// Stand-alone RH2.
    pub fn rh2() -> Self {
        RhConfig {
            mode: ProtocolMode::Rh2,
            slow_path_percent: 100,
            ..Default::default()
        }
    }

    /// Returns the configuration with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a global-clock scheme override.
    pub fn with_clock_scheme(mut self, scheme: ClockScheme) -> Self {
        self.clock_scheme = Some(scheme);
        self
    }

    /// Returns the configuration with a different retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicyHandle) -> Self {
        self.retry_policy = policy;
        self
    }

    /// The display name the paper uses for this configuration.
    pub fn display_name(&self) -> &'static str {
        if self.always_slow {
            return "RH1 Slow";
        }
        match (self.mode, self.slow_path_percent) {
            (ProtocolMode::Rh2, _) => "RH2",
            (ProtocolMode::Rh1, 0) => "RH1 Fast",
            (ProtocolMode::Rh1, 10) => "RH1 Mixed 10",
            (ProtocolMode::Rh1, 100) => "RH1 Mixed 100",
            (ProtocolMode::Rh1, _) => "RH1 Mixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_variants() {
        assert_eq!(RhConfig::rh1_fast().display_name(), "RH1 Fast");
        assert_eq!(RhConfig::rh1_fast().slow_path_percent, 0);
        assert_eq!(RhConfig::rh1_mixed(10).display_name(), "RH1 Mixed 10");
        assert_eq!(RhConfig::rh1_mixed(100).display_name(), "RH1 Mixed 100");
        assert_eq!(RhConfig::rh1_mixed(37).display_name(), "RH1 Mixed");
        assert_eq!(RhConfig::rh2().display_name(), "RH2");
        assert_eq!(RhConfig::rh2().mode, ProtocolMode::Rh2);
        assert_eq!(RhConfig::rh1_slow().display_name(), "RH1 Slow");
        assert!(RhConfig::rh1_slow().always_slow);
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn mixed_percentage_is_validated() {
        let _ = RhConfig::rh1_mixed(101);
    }

    #[test]
    fn default_is_full_cascade() {
        let c = RhConfig::default();
        assert_eq!(c.mode, ProtocolMode::Rh1);
        assert_eq!(c.slow_path_percent, 100);
        assert!(c.commit_htm_retries > 0);
        assert!(c.writeback_htm_retries > 0);
    }

    #[test]
    fn seed_builder() {
        let c = RhConfig::rh1_fast().with_seed(99);
        assert_eq!(c.seed, 99);
        assert_eq!(c.slow_path_percent, 0);
    }

    #[test]
    fn clock_scheme_builder_and_default() {
        assert_eq!(RhConfig::default().clock_scheme, None);
        let c = RhConfig::rh2().with_clock_scheme(ClockScheme::Gv6);
        assert_eq!(c.clock_scheme, Some(ClockScheme::Gv6));
        assert_eq!(c.mode, ProtocolMode::Rh2);
    }

    #[test]
    fn retry_policy_builder_and_default() {
        assert_eq!(RhConfig::default().retry_policy.label(), "paper-default");
        let c = RhConfig::rh1_mixed(100).with_retry_policy(RetryPolicyHandle::adaptive());
        assert_eq!(c.retry_policy.label(), "adaptive");
        assert_eq!(c.slow_path_percent, 100);
    }
}
