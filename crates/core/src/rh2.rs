//! The RH2 protocol (Algorithms 4–7 of the paper).
//!
//! RH2 reduces the hardware requirement of the slow-path to the *write-back
//! only*: the slow-path commit locks its write-set stripes, makes its
//! read-set **visible** through per-stripe read masks, revalidates in
//! software, and then performs just the write-back inside a (small)
//! hardware transaction.  If even that write-back cannot fit in hardware,
//! it is performed in pure software after switching every fast-path
//! transaction into the instrumented *fast-path-slow-read* mode (the
//! "all-software slow-slow-path").
//!
//! The fast-path pays for this with a commit-time check: before committing
//! it verifies (speculatively) that none of the stripes it wrote is
//! currently marked as read by a committing slow-path transaction, and it
//! locks its written stripes speculatively so that its data writes and the
//! locks become visible atomically.  Reads remain uninstrumented.

use rhtm_api::{retry, AbortCause, PathKind, RetryDecision, TxResult};
use rhtm_htm::gv;
use rhtm_mem::{stamp, Addr};

use crate::runtime::RhThread;

impl RhThread {
    // ------------------------------------------------------------------
    // RH2 fast-path (Algorithm 4)
    // ------------------------------------------------------------------

    /// `RH2_FastPath_start`: open the hardware transaction and monitor the
    /// `is_all_software_slow_path` counter speculatively.
    pub(crate) fn rh2_fast_begin(&mut self) -> TxResult<()> {
        self.fp_write_stripes.clear();
        self.htm.begin();
        let all_software = self.htm.read(self.fallback.all_software_addr())?;
        if all_software > 0 {
            return Err(self.htm.abort(AbortCause::Explicit));
        }
        Ok(())
    }

    /// `RH2_FastPath_write` / `RH2_FastPath_SR_write`: log the written
    /// stripe and store the value speculatively.
    #[inline]
    pub(crate) fn rh2_fast_write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        let stripe = self.sim.mem().layout().stripe_of(addr);
        self.fp_write_stripes.push(stripe);
        self.htm.write(addr, value)
    }

    /// `RH2_FastPath_commit` (also used by the fast-path-slow-read mode):
    /// check the read masks of the written stripes, lock them speculatively,
    /// commit the hardware transaction, then install the next version
    /// (which releases the locks).
    pub(crate) fn rh2_fast_commit(&mut self) -> TxResult<()> {
        // Read-only transactions commit immediately.
        if self.fp_write_stripes.is_empty() {
            return self.htm.commit();
        }
        let layout = self.sim.mem().layout();
        let mask_words = layout.mask_words_per_stripe();
        self.fp_write_stripes.sort_unstable();
        self.fp_write_stripes.dedup();

        // Verify no concurrently committing software transaction has made a
        // read of these stripes visible.
        let mut total_mask: u64 = 0;
        for i in 0..self.fp_write_stripes.len() {
            let stripe = self.fp_write_stripes[i];
            for word in 0..mask_words {
                total_mask |= self.htm.read(layout.read_mask_addr(stripe, word))?;
            }
        }
        if total_mask != 0 {
            return Err(self.htm.abort(AbortCause::Explicit));
        }

        // Speculatively lock the written stripes: the data writes and the
        // locks become visible atomically at the hardware commit.
        let lock_word = self.lock_word();
        for i in 0..self.fp_write_stripes.len() {
            let stripe = self.fp_write_stripes[i];
            let ver_addr = layout.stripe_version_addr(stripe);
            let current = self.htm.read(ver_addr)?;
            if current == lock_word {
                continue;
            }
            if stamp::is_locked(current) {
                return Err(self.htm.abort(AbortCause::Locked));
            }
            self.htm.write(ver_addr, lock_word)?;
        }

        self.htm.commit()?;

        // The write locations are now updated and locked.  Install the next
        // global version (per the configured clock scheme — the locks were
        // taken speculatively above, so sampling after the hardware commit
        // preserves the lock-before-sample ordering the relaxed schemes
        // need), which releases the locks.
        let salt = self.bump_commit_salt();
        let next_version = gv::next_commit(&self.sim, salt);
        let new_word = stamp::encode_ts(next_version);
        let layout = self.sim.mem().layout();
        for i in 0..self.fp_write_stripes.len() {
            let stripe = self.fp_write_stripes[i];
            self.sim
                .nt_store(layout.stripe_version_addr(stripe), new_word);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // RH2 fast-path-slow-read (Algorithm 6)
    // ------------------------------------------------------------------

    /// `RH2_FastPath_SR_start`: sample the clock non-speculatively, then
    /// open the hardware transaction.
    pub(crate) fn rh2_fpsr_begin(&mut self) -> TxResult<()> {
        self.fp_write_stripes.clear();
        self.tx_version = gv::read(&self.sim);
        self.htm.begin();
        Ok(())
    }

    /// `RH2_FastPath_SR_read`: an instrumented speculative read with a
    /// TL2-style consistency check, safe against concurrent pure-software
    /// write-backs.
    #[inline]
    pub(crate) fn rh2_fpsr_read(&mut self, addr: Addr) -> TxResult<u64> {
        let layout = self.sim.mem().layout();
        let stripe = layout.stripe_of(addr);
        let version = self.htm.read(layout.stripe_version_addr(stripe))?;
        let value = self.htm.read(addr)?;
        if !stamp::is_locked(version) && stamp::decode_ts(version) <= self.tx_version {
            Ok(value)
        } else {
            let abort = self.htm.abort(if stamp::is_locked(version) {
                AbortCause::Locked
            } else {
                AbortCause::Validation
            });
            if !stamp::is_locked(version) {
                gv::on_abort(&self.sim, stamp::decode_ts(version));
            }
            Err(abort)
        }
    }

    // ------------------------------------------------------------------
    // RH2 slow-path commit (Algorithms 5 and 7)
    // ------------------------------------------------------------------

    /// `RH2_SlowPath_commit`: lock the write-set, make the read-set visible,
    /// revalidate, write back (hardware transaction if possible, otherwise
    /// pure software under the all-software switch), release.
    ///
    /// The caller guarantees the write-set is non-empty.
    pub(crate) fn rh2_slow_commit(&mut self) -> TxResult<PathKind> {
        debug_assert!(!self.write_set.is_empty());
        let lock_word = self.lock_word();

        // Phase 1: lock the write-set stripes (Algorithm 7, LOCK_WRITE_SET),
        // collected into the thread-owned scratch buffer so the commit
        // performs no allocation.
        self.commit_stripes.clear();
        {
            let layout = self.sim.mem().layout();
            self.commit_stripes.extend(
                self.write_set
                    .iter()
                    .map(|(addr, _)| layout.stripe_of(addr)),
            );
        }
        self.commit_stripes.sort_unstable();
        self.commit_stripes.dedup();
        for i in 0..self.commit_stripes.len() {
            let stripe = self.commit_stripes[i];
            let ver_addr = self.sim.mem().layout().stripe_version_addr(stripe);
            let current = self.sim.nt_load(ver_addr);
            if current == lock_word {
                continue;
            }
            if stamp::is_locked(current) || self.sim.nt_cas(ver_addr, current, lock_word).is_err() {
                return Err(self.rh2_slow_abort(AbortCause::Locked, self.tx_version + 1));
            }
            self.locked.push((stripe, current));
        }

        // Phase 2: make the read-set visible (Algorithm 7,
        // MAKE_VISIBLE_READ_SET) using fetch-and-add on the stripes' read
        // masks.
        let mask_word_index = self.token.mask_word();
        let mask_bit = self.token.mask_bit();
        for i in 0..self.read_set.len() {
            let stripe = self.read_set[i];
            let mask_addr = self
                .sim
                .mem()
                .layout()
                .read_mask_addr(stripe, mask_word_index);
            if self.sim.nt_load(mask_addr) & mask_bit == 0 {
                self.sim.nt_fetch_add(mask_addr, mask_bit);
                self.visible.push(stripe);
            }
        }

        // Phase 3: revalidate the read-set (Algorithm 7,
        // REVALIDATE_READ_SET).
        for i in 0..self.read_set.len() {
            let stripe = self.read_set[i];
            let word = self
                .sim
                .nt_load(self.sim.mem().layout().stripe_version_addr(stripe));
            if word == lock_word {
                // Locked by us: compare against the pre-lock version so a
                // conflicting commit that slipped in between our read and
                // our lock is not missed.
                let prev = self
                    .locked
                    .iter()
                    .find(|&&(s, _)| s == stripe)
                    .map(|&(_, p)| p)
                    .expect("stripe locked by us must be recorded");
                if stamp::decode_ts(prev) > self.tx_version {
                    return Err(self.rh2_slow_abort(AbortCause::Validation, stamp::decode_ts(prev)));
                }
                continue;
            }
            if stamp::is_locked(word) {
                return Err(self.rh2_slow_abort(AbortCause::Locked, self.tx_version + 1));
            }
            if stamp::decode_ts(word) > self.tx_version {
                return Err(self.rh2_slow_abort(AbortCause::Validation, stamp::decode_ts(word)));
            }
        }

        // Phase 4: write back.  Try the small hardware transaction first;
        // fall back to a pure software write-back under the all-software
        // switch if it keeps failing or overflows (Algorithm 5 lines 32–43).
        self.htm.set_forced_abort_injection(false);
        let budget = self.config.writeback_htm_retries;
        let mut wrote_in_software = false;
        let mut failures = 0u32;
        loop {
            self.htm.begin();
            let attempt: TxResult<()> =
                (|htm: &mut rhtm_htm::HtmThread, ws: &rhtm_htm::linemap::WriteSet| {
                    for (addr, value) in ws.iter() {
                        htm.write(addr, value)?;
                    }
                    htm.commit()
                })(&mut self.htm, &self.write_set);
            match attempt {
                Ok(()) => {
                    self.stats.htm_commits += 1;
                    break;
                }
                Err(abort) => {
                    self.stats.htm_aborts += 1;
                    failures += 1;
                    match self.decide_commit_retry(failures, abort.cause, budget) {
                        RetryDecision::RetryHere => std::hint::spin_loop(),
                        RetryDecision::BackoffThen(spins) => retry::spin(spins),
                        RetryDecision::Demote => {
                            // All-software slow-slow-path: switch every
                            // fast-path transaction to the slow-read mode
                            // for the duration of the plain-store
                            // write-back.  The region guard releases the
                            // counter on every exit path.
                            let region = self.fallback.all_software_region(&self.sim);
                            for (addr, value) in self.write_set.iter() {
                                self.sim.nt_store(addr, value);
                            }
                            drop(region);
                            wrote_in_software = true;
                            break;
                        }
                    }
                }
            }
        }
        self.htm.set_forced_abort_injection(true);

        // Phase 5: release the locks by installing the next global version
        // (per the configured clock scheme), then drop the read-set
        // visibility.
        let salt = self.bump_commit_salt();
        let next_version = gv::next_commit(&self.sim, salt);
        let new_word = stamp::encode_ts(next_version);
        while let Some((stripe, _prev)) = self.locked.pop() {
            let ver_addr = self.sim.mem().layout().stripe_version_addr(stripe);
            self.sim.nt_store(ver_addr, new_word);
        }
        self.reset_visibility();

        Ok(if wrote_in_software {
            PathKind::Software
        } else {
            PathKind::MixedSlow
        })
    }

    /// Aborts an RH2 slow-path commit: undo visibility, release the locks
    /// unchanged and bump the clock.
    fn rh2_slow_abort(&mut self, cause: AbortCause, observed: u64) -> rhtm_api::Abort {
        self.reset_visibility();
        while let Some((stripe, prev)) = self.locked.pop() {
            let ver_addr = self.sim.mem().layout().stripe_version_addr(stripe);
            self.sim.nt_store(ver_addr, prev);
        }
        self.slow_abort(cause, observed)
    }

    /// Clears this thread's visibility bit from every stripe it set it on
    /// (Algorithm 7, RESET_VISIBLE_READ_SET).
    fn reset_visibility(&mut self) {
        let mask_word_index = self.token.mask_word();
        let mask_bit = self.token.mask_bit();
        while let Some(stripe) = self.visible.pop() {
            let mask_addr = self
                .sim
                .mem()
                .layout()
                .read_mask_addr(stripe, mask_word_index);
            self.sim.nt_fetch_sub(mask_addr, mask_bit);
        }
    }
}
