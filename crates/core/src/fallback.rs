//! The global fallback state: the two counters that coordinate the mode
//! switches of the cascade.
//!
//! * `is_RH2_fallback` — number of RH1 slow-path transactions currently
//!   executing their commit through the RH2 fallback (Algorithm 3).  While
//!   it is non-zero, fast-path transactions must run the RH2 fast-path
//!   (which checks read masks and locks) instead of the RH1 fast-path.
//! * `is_all_software_slow_path` — number of RH2 slow-path transactions
//!   currently performing their write-back in pure software (Algorithm 5).
//!   While it is non-zero, fast-path transactions must run in the
//!   *fast-path-slow-read* mode, whose reads are instrumented with TL2-style
//!   version checks.
//!
//! Both counters live in the transactional heap (each on its own simulated
//! cache line) so that fast-path hardware transactions can monitor them
//! *speculatively*: the increment performed by a slow-path transaction is a
//! conflict-visible store, so every fast-path transaction that read the
//! counter at its start aborts immediately — the paper's mechanism for
//! draining incompatible fast-path transactions on a mode switch.

use rhtm_htm::HtmSim;
use rhtm_mem::Addr;

/// A view of the two fallback counters of a shared memory.
#[derive(Clone, Debug)]
pub struct FallbackState {
    rh2_fallback: Addr,
    all_software: Addr,
}

impl FallbackState {
    /// Creates the view for a simulator's memory.
    pub fn new(sim: &HtmSim) -> Self {
        let layout = sim.mem().layout();
        FallbackState {
            rh2_fallback: layout.rh2_fallback_addr(),
            all_software: layout.all_software_addr(),
        }
    }

    /// Heap address of the `is_RH2_fallback` counter (for speculative
    /// monitoring inside hardware transactions).
    #[inline(always)]
    pub fn rh2_fallback_addr(&self) -> Addr {
        self.rh2_fallback
    }

    /// Heap address of the `is_all_software_slow_path` counter.
    #[inline(always)]
    pub fn all_software_addr(&self) -> Addr {
        self.all_software
    }

    /// Number of RH1 slow-path transactions currently committing through the
    /// RH2 fallback.
    #[inline(always)]
    pub fn rh2_fallback_count(&self, sim: &HtmSim) -> u64 {
        sim.nt_load(self.rh2_fallback)
    }

    /// Number of RH2 slow-path transactions currently performing a pure
    /// software write-back.
    #[inline(always)]
    pub fn all_software_count(&self, sim: &HtmSim) -> u64 {
        sim.nt_load(self.all_software)
    }

    /// Enters the RH2-fallback region (increment `is_RH2_fallback`
    /// visibly, aborting concurrent RH1 fast-path transactions).
    #[inline]
    pub fn enter_rh2_fallback(&self, sim: &HtmSim) {
        sim.nt_fetch_add(self.rh2_fallback, 1);
    }

    /// Leaves the RH2-fallback region.
    #[inline]
    pub fn leave_rh2_fallback(&self, sim: &HtmSim) {
        sim.nt_fetch_sub(self.rh2_fallback, 1);
    }

    /// Enters the all-software write-back region (increment
    /// `is_all_software_slow_path` visibly, aborting concurrent RH2
    /// fast-path transactions).
    #[inline]
    pub fn enter_all_software(&self, sim: &HtmSim) {
        sim.nt_fetch_add(self.all_software, 1);
    }

    /// Leaves the all-software write-back region.
    #[inline]
    pub fn leave_all_software(&self, sim: &HtmSim) {
        sim.nt_fetch_sub(self.all_software, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::AbortCause;
    use rhtm_htm::{HtmConfig, HtmThread};
    use rhtm_mem::{MemConfig, TmMemory};
    use std::sync::Arc;

    fn sim() -> Arc<HtmSim> {
        HtmSim::new(
            Arc::new(TmMemory::new(MemConfig::with_data_words(256))),
            HtmConfig::default(),
        )
    }

    #[test]
    fn counters_start_at_zero_and_nest() {
        let s = sim();
        let fb = FallbackState::new(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 0);
        assert_eq!(fb.all_software_count(&s), 0);
        fb.enter_rh2_fallback(&s);
        fb.enter_rh2_fallback(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 2);
        fb.leave_rh2_fallback(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 1);
        fb.leave_rh2_fallback(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 0);

        fb.enter_all_software(&s);
        assert_eq!(fb.all_software_count(&s), 1);
        fb.leave_all_software(&s);
        assert_eq!(fb.all_software_count(&s), 0);
    }

    #[test]
    fn counters_live_on_distinct_lines() {
        let s = sim();
        let fb = FallbackState::new(&s);
        assert_ne!(fb.rh2_fallback_addr().line(), fb.all_software_addr().line());
        assert_ne!(
            fb.rh2_fallback_addr().line(),
            s.mem().layout().clock_addr().line()
        );
    }

    #[test]
    fn increment_aborts_speculative_monitor() {
        // An RH1 fast-path transaction monitors is_RH2_fallback by reading
        // it speculatively; a concurrent increment must doom it.
        let s = sim();
        let fb = FallbackState::new(&s);
        let data = s.mem().alloc(1);
        let mut t = HtmThread::new(Arc::clone(&s), 0);
        t.begin();
        assert_eq!(t.read(fb.rh2_fallback_addr()).unwrap(), 0);
        t.write(data, 1).unwrap();
        fb.enter_rh2_fallback(&s);
        let err = t.commit().unwrap_err();
        assert_eq!(err.cause, AbortCause::Conflict);
        assert_eq!(s.nt_load(data), 0);
        fb.leave_rh2_fallback(&s);
    }
}
