//! The global fallback state: the two counters that coordinate the mode
//! switches of the cascade.
//!
//! * `is_RH2_fallback` — number of RH1 slow-path transactions currently
//!   executing their commit through the RH2 fallback (Algorithm 3).  While
//!   it is non-zero, fast-path transactions must run the RH2 fast-path
//!   (which checks read masks and locks) instead of the RH1 fast-path.
//! * `is_all_software_slow_path` — number of RH2 slow-path transactions
//!   currently performing their write-back in pure software (Algorithm 5).
//!   While it is non-zero, fast-path transactions must run in the
//!   *fast-path-slow-read* mode, whose reads are instrumented with TL2-style
//!   version checks.
//!
//! Both counters live in the transactional heap (each on its own simulated
//! cache line) so that fast-path hardware transactions can monitor them
//! *speculatively*: the increment performed by a slow-path transaction is a
//! conflict-visible store, so every fast-path transaction that read the
//! counter at its start aborts immediately — the paper's mechanism for
//! draining incompatible fast-path transactions on a mode switch.

use std::sync::Arc;

use rhtm_htm::HtmSim;
use rhtm_mem::Addr;

/// A view of the two fallback counters of a shared memory.
#[derive(Clone, Debug)]
pub struct FallbackState {
    rh2_fallback: Addr,
    all_software: Addr,
}

impl FallbackState {
    /// Creates the view for a simulator's memory.
    pub fn new(sim: &HtmSim) -> Self {
        let layout = sim.mem().layout();
        FallbackState {
            rh2_fallback: layout.rh2_fallback_addr(),
            all_software: layout.all_software_addr(),
        }
    }

    /// Heap address of the `is_RH2_fallback` counter (for speculative
    /// monitoring inside hardware transactions).
    #[inline(always)]
    pub fn rh2_fallback_addr(&self) -> Addr {
        self.rh2_fallback
    }

    /// Heap address of the `is_all_software_slow_path` counter.
    #[inline(always)]
    pub fn all_software_addr(&self) -> Addr {
        self.all_software
    }

    /// Number of RH1 slow-path transactions currently committing through the
    /// RH2 fallback.
    #[inline(always)]
    pub fn rh2_fallback_count(&self, sim: &HtmSim) -> u64 {
        sim.nt_load(self.rh2_fallback)
    }

    /// Number of RH2 slow-path transactions currently performing a pure
    /// software write-back.
    #[inline(always)]
    pub fn all_software_count(&self, sim: &HtmSim) -> u64 {
        sim.nt_load(self.all_software)
    }

    /// Enters the RH2-fallback region (increment `is_RH2_fallback`
    /// visibly, aborting concurrent RH1 fast-path transactions).
    #[inline]
    pub fn enter_rh2_fallback(&self, sim: &HtmSim) {
        sim.nt_fetch_add(self.rh2_fallback, 1);
    }

    /// Leaves the RH2-fallback region.
    #[inline]
    pub fn leave_rh2_fallback(&self, sim: &HtmSim) {
        sim.nt_fetch_sub(self.rh2_fallback, 1);
    }

    /// Enters the all-software write-back region (increment
    /// `is_all_software_slow_path` visibly, aborting concurrent RH2
    /// fast-path transactions).
    #[inline]
    pub fn enter_all_software(&self, sim: &HtmSim) {
        sim.nt_fetch_add(self.all_software, 1);
    }

    /// Leaves the all-software write-back region.
    #[inline]
    pub fn leave_all_software(&self, sim: &HtmSim) {
        sim.nt_fetch_sub(self.all_software, 1);
    }

    /// Enters the RH2-fallback region, returning a guard that leaves it on
    /// drop — so early returns, `?`-propagated aborts and panics can never
    /// leak the counter increment (a leaked increment would pin every
    /// fast-path transaction on the slower RH2 fast-path forever).
    #[must_use = "dropping the guard immediately leaves the region"]
    pub fn rh2_fallback_region(&self, sim: &Arc<HtmSim>) -> FallbackRegion {
        self.enter_rh2_fallback(sim);
        FallbackRegion {
            sim: Arc::clone(sim),
            counter: self.rh2_fallback,
        }
    }

    /// Enters the all-software write-back region, returning a guard that
    /// leaves it on drop (see [`FallbackState::rh2_fallback_region`]).
    #[must_use = "dropping the guard immediately leaves the region"]
    pub fn all_software_region(&self, sim: &Arc<HtmSim>) -> FallbackRegion {
        self.enter_all_software(sim);
        FallbackRegion {
            sim: Arc::clone(sim),
            counter: self.all_software,
        }
    }
}

/// RAII guard for a fallback-counter region: the counter was incremented on
/// creation and is decremented exactly once when the guard drops.
///
/// The guard owns its own reference to the simulator (rather than borrowing
/// the thread that created it), so protocol code can keep mutating the
/// thread state while the region is open.
#[derive(Debug)]
pub struct FallbackRegion {
    sim: Arc<HtmSim>,
    counter: Addr,
}

impl Drop for FallbackRegion {
    fn drop(&mut self) {
        self.sim.nt_fetch_sub(self.counter, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_api::AbortCause;
    use rhtm_htm::{HtmConfig, HtmThread};
    use rhtm_mem::{MemConfig, TmMemory};
    use std::sync::Arc;

    fn sim() -> Arc<HtmSim> {
        HtmSim::new(
            Arc::new(TmMemory::new(MemConfig::with_data_words(256))),
            HtmConfig::default(),
        )
    }

    #[test]
    fn counters_start_at_zero_and_nest() {
        let s = sim();
        let fb = FallbackState::new(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 0);
        assert_eq!(fb.all_software_count(&s), 0);
        fb.enter_rh2_fallback(&s);
        fb.enter_rh2_fallback(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 2);
        fb.leave_rh2_fallback(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 1);
        fb.leave_rh2_fallback(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 0);

        fb.enter_all_software(&s);
        assert_eq!(fb.all_software_count(&s), 1);
        fb.leave_all_software(&s);
        assert_eq!(fb.all_software_count(&s), 0);
    }

    #[test]
    fn counters_live_on_distinct_lines() {
        let s = sim();
        let fb = FallbackState::new(&s);
        assert_ne!(fb.rh2_fallback_addr().line(), fb.all_software_addr().line());
        assert_ne!(
            fb.rh2_fallback_addr().line(),
            s.mem().layout().clock_addr().line()
        );
    }

    #[test]
    fn region_guards_balance_on_every_exit_path() {
        let s = sim();
        let fb = FallbackState::new(&s);

        // Normal scope exit.
        {
            let _r = fb.rh2_fallback_region(&s);
            assert_eq!(fb.rh2_fallback_count(&s), 1);
            let _r2 = fb.all_software_region(&s);
            assert_eq!(fb.all_software_count(&s), 1);
        }
        assert_eq!(fb.rh2_fallback_count(&s), 0);
        assert_eq!(fb.all_software_count(&s), 0);

        // Early return.
        fn early(fb: &FallbackState, s: &Arc<HtmSim>, bail: bool) -> u64 {
            let _r = fb.rh2_fallback_region(s);
            if bail {
                return fb.rh2_fallback_count(s);
            }
            fb.rh2_fallback_count(s) + 100
        }
        assert_eq!(early(&fb, &s, true), 1);
        assert_eq!(fb.rh2_fallback_count(&s), 0);

        // Panic unwinding.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _r = fb.all_software_region(&s);
            panic!("boom");
        }));
        assert!(caught.is_err());
        assert_eq!(fb.all_software_count(&s), 0, "panic leaked the counter");
    }

    #[test]
    fn regions_nest_like_raw_counters() {
        let s = sim();
        let fb = FallbackState::new(&s);
        let a = fb.rh2_fallback_region(&s);
        let b = fb.rh2_fallback_region(&s);
        assert_eq!(fb.rh2_fallback_count(&s), 2);
        drop(a);
        assert_eq!(fb.rh2_fallback_count(&s), 1);
        drop(b);
        assert_eq!(fb.rh2_fallback_count(&s), 0);
    }

    #[test]
    fn increment_aborts_speculative_monitor() {
        // An RH1 fast-path transaction monitors is_RH2_fallback by reading
        // it speculatively; a concurrent increment must doom it.
        let s = sim();
        let fb = FallbackState::new(&s);
        let data = s.mem().alloc(1);
        let mut t = HtmThread::new(Arc::clone(&s), 0);
        t.begin();
        assert_eq!(t.read(fb.rh2_fallback_addr()).unwrap(), 0);
        t.write(data, 1).unwrap();
        fb.enter_rh2_fallback(&s);
        let err = t.commit().unwrap_err();
        assert_eq!(err.cause, AbortCause::Conflict);
        assert_eq!(s.nt_load(data), 0);
        fb.leave_rh2_fallback(&s);
    }
}
