//! The reduced-hardware runtime: path selection, retry policy and the
//! fallback cascade.

use std::sync::Arc;

use rhtm_api::Backoff;

use rhtm_api::{
    AbortCause, AttemptContext, PathClass, PathKind, RetryDecision, RetryRng, Stopwatch, TmRuntime,
    TmThread, TxResult, TxStats, Txn,
};
use rhtm_htm::linemap::{StripeMarks, WriteSet};
use rhtm_htm::{HtmConfig, HtmSim, HtmThread};
use rhtm_mem::{Addr, MemConfig, StripeId, ThreadRegistry, ThreadToken, TmMemory};

use crate::config::{ProtocolMode, RhConfig};
use crate::fallback::FallbackState;

/// Which execution path the current attempt is running on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Path {
    /// No attempt in progress.
    Idle,
    /// RH1 all-hardware fast-path (Algorithm 1/3).
    Rh1Fast,
    /// RH2 all-hardware fast-path (Algorithm 4).
    Rh2Fast,
    /// RH2 fast-path-slow-read: hardware transaction with TL2-style
    /// instrumented reads (Algorithm 6), used while a pure-software
    /// write-back is in flight.
    Rh2FastSlowRead,
    /// The mostly-software slow-path (Algorithm 2/5): software body, commit
    /// through a hardware transaction (or the further fallbacks).
    Slow,
}

/// The reduced-hardware hybrid TM runtime.
///
/// One `RhRuntime` owns (or shares) a simulated machine — heap plus HTM —
/// and hands out per-thread [`RhThread`] handles.  The protocol variant is
/// purely a matter of [`RhConfig`]: "RH1 Fast", "RH1 Mixed N" and
/// stand-alone "RH2" are all this same type.
pub struct RhRuntime {
    sim: Arc<HtmSim>,
    registry: Arc<ThreadRegistry>,
    config: RhConfig,
}

impl RhRuntime {
    /// Creates a runtime over its own fresh memory.
    ///
    /// A global-clock scheme requested via [`RhConfig::clock_scheme`]
    /// overrides `mem_config.clock_scheme` for the memory being created, so
    /// configuring a runtime variant and its clock in one place works as
    /// expected.
    pub fn new(mem_config: MemConfig, htm_config: HtmConfig, config: RhConfig) -> Self {
        let max_threads = mem_config.max_threads;
        let mem_config = MemConfig {
            clock_scheme: config.clock_scheme.unwrap_or(mem_config.clock_scheme),
            ..mem_config
        };
        let mem = Arc::new(TmMemory::new(mem_config));
        let sim = HtmSim::new(mem, htm_config);
        RhRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// Creates a runtime over an existing simulator (sharing memory with
    /// other runtimes).
    ///
    /// The clock is a property of the shared memory, so
    /// [`RhConfig::clock_scheme`] cannot be applied here.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests a clock scheme different from
    /// the one the shared memory was built with — silently running (and
    /// labelling results) under the wrong scheme would corrupt any
    /// clock-scheme comparison.
    pub fn with_sim(sim: Arc<HtmSim>, config: RhConfig) -> Self {
        let memory_scheme = sim.mem().clock().scheme();
        if let Some(requested) = config.clock_scheme {
            assert_eq!(
                requested, memory_scheme,
                "RhConfig requests clock scheme {requested:?} but the shared memory \
                 was built with {memory_scheme:?}; build the memory with the desired \
                 scheme (MemConfig::clock_scheme) or drop the RhConfig override"
            );
        }
        let max_threads = sim.mem().layout().config().max_threads;
        RhRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RhConfig {
        &self.config
    }

    /// The fallback-counter view (used by tests and the fallback ablation).
    pub fn fallback_state(&self) -> FallbackState {
        FallbackState::new(&self.sim)
    }
}

impl TmRuntime for RhRuntime {
    type Thread = RhThread;

    fn name(&self) -> &'static str {
        self.config.display_name()
    }

    fn mem(&self) -> &Arc<TmMemory> {
        self.sim.mem()
    }

    fn register_thread(&self) -> RhThread {
        let token = self.registry.register();
        let htm = HtmThread::new(Arc::clone(&self.sim), token.id() as u64);
        let rng = RetryRng::new(
            self.config.seed ^ ((token.id() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1,
        );
        let policy_wants_fallback = self.config.retry_policy.wants_fallback_snapshot();
        let policy_wants_commit = self.config.retry_policy.wants_commit_hook();
        RhThread {
            fallback: FallbackState::new(&self.sim),
            policy_wants_fallback,
            policy_wants_commit,
            sim: Arc::clone(&self.sim),
            htm,
            token,
            config: self.config.clone(),
            stats: TxStats::new(false),
            path: Path::Idle,
            next_ver: 0,
            tx_version: 0,
            fp_write_stripes: Vec::with_capacity(16),
            read_set: Vec::with_capacity(64),
            read_marks: StripeMarks::with_capacity(512),
            last_read_stripe: u64::MAX,
            write_set: WriteSet::with_capacity(32),
            locked: Vec::with_capacity(16),
            commit_stripes: Vec::with_capacity(16),
            visible: Vec::with_capacity(64),
            commit_salt: 0,
            in_txn: false,
            rng,
        }
    }
}

/// Per-thread handle of the reduced-hardware runtime.
pub struct RhThread {
    pub(crate) sim: Arc<HtmSim>,
    pub(crate) htm: HtmThread,
    pub(crate) fallback: FallbackState,
    pub(crate) token: ThreadToken,
    pub(crate) config: RhConfig,
    pub(crate) stats: TxStats,
    pub(crate) path: Path,
    /// RH1 fast-path: the version to install on written stripes
    /// (`GVNext()` sampled speculatively at transaction start).
    pub(crate) next_ver: u64,
    /// Slow-path / fast-path-slow-read: the start time-stamp.
    pub(crate) tx_version: u64,
    /// RH2 fast-path: stripes written speculatively (checked against read
    /// masks and locked at commit).
    pub(crate) fp_write_stripes: Vec<StripeId>,
    /// Slow-path read-set (distinct stripes, first-read order).
    pub(crate) read_set: Vec<StripeId>,
    /// Per-stripe membership filter deduplicating `read_set` inserts, so
    /// commit-time revalidation is O(distinct stripes) instead of O(reads).
    /// Generation-stamped: clearing it between attempts is O(1).
    pub(crate) read_marks: StripeMarks,
    /// Stripe recorded by the most recent slow-path read (`u64::MAX` =
    /// none); a one-entry cache in front of `read_marks` for scan streaks.
    pub(crate) last_read_stripe: u64,
    /// Slow-path write-set (deferred writes in program order).
    pub(crate) write_set: WriteSet,
    /// Stripes locked by an RH2 slow-path commit, with their pre-lock
    /// version words.
    pub(crate) locked: Vec<(StripeId, u64)>,
    /// Scratch for the sorted, deduplicated write-stripe list built by the
    /// RH2 slow commit, reused so a commit performs no allocation.
    pub(crate) commit_stripes: Vec<StripeId>,
    /// Stripes whose read mask currently carries this thread's visibility
    /// bit.
    pub(crate) visible: Vec<StripeId>,
    /// Writing commits performed by this thread; sampling salt for the GV6
    /// clock scheme.
    pub(crate) commit_salt: u64,
    in_txn: bool,
    /// Per-thread RNG feeding the retry policy (the "Mix" draw, backoff
    /// jitter) — policies are shared and stateless, randomness lives here.
    rng: RetryRng,
    /// Cached [`rhtm_api::RetryPolicy::wants_fallback_snapshot`], so
    /// policies that ignore the cascade state (the default) cost no
    /// shared-counter reads on the abort path.
    policy_wants_fallback: bool,
    /// Cached [`rhtm_api::RetryPolicy::wants_commit_hook`], so stateless
    /// policies (the default) cost nothing on the commit fast path.
    policy_wants_commit: bool,
}

impl RhThread {
    /// This thread's stripe-lock word (`thread_id * 2 + 1`).
    #[inline(always)]
    pub(crate) fn lock_word(&self) -> u64 {
        rhtm_mem::stamp::lock_word(self.token.id())
    }

    /// Read access to the hardware transaction unit (tests, ablations).
    pub fn htm(&self) -> &HtmThread {
        &self.htm
    }

    /// Advances and returns the per-thread commit salt (GV6 clock-scheme
    /// sampling).
    #[inline(always)]
    pub(crate) fn bump_commit_salt(&mut self) -> u64 {
        self.commit_salt = self.commit_salt.wrapping_add(1);
        self.commit_salt
    }

    /// Decides the path of the next attempt.
    fn choose_path(&mut self, force_slow: bool) -> Path {
        if force_slow || self.config.always_slow {
            return Path::Slow;
        }
        // The all-software write-back window dominates every other mode.
        if self.fallback.all_software_count(&self.sim) > 0 {
            return Path::Rh2FastSlowRead;
        }
        match self.config.mode {
            ProtocolMode::Rh2 => Path::Rh2Fast,
            ProtocolMode::Rh1 => {
                if self.fallback.rh2_fallback_count(&self.sim) > 0 {
                    Path::Rh2Fast
                } else {
                    Path::Rh1Fast
                }
            }
        }
    }

    /// Starts an attempt on `path`.
    fn begin_path(&mut self, path: Path) -> TxResult<()> {
        self.path = path;
        match path {
            Path::Rh1Fast => self.rh1_fast_begin(),
            Path::Rh2Fast => self.rh2_fast_begin(),
            Path::Rh2FastSlowRead => self.rh2_fpsr_begin(),
            Path::Slow => {
                self.slow_begin();
                Ok(())
            }
            Path::Idle => unreachable!("begin_path(Idle)"),
        }
    }

    /// Commits the attempt in progress, returning the path kind that should
    /// be recorded for it.
    fn commit_path(&mut self) -> TxResult<PathKind> {
        match self.path {
            Path::Rh1Fast => {
                self.htm.commit()?;
                self.stats.htm_commits += 1;
                Ok(PathKind::HardwareFast)
            }
            Path::Rh2Fast | Path::Rh2FastSlowRead => {
                self.rh2_fast_commit()?;
                self.stats.htm_commits += 1;
                Ok(PathKind::HardwareFast)
            }
            Path::Slow => match self.config.mode {
                ProtocolMode::Rh1 => self.rh1_slow_commit(),
                ProtocolMode::Rh2 => {
                    if self.write_set.is_empty() {
                        Ok(PathKind::MixedSlow)
                    } else {
                        self.rh2_slow_commit()
                    }
                }
            },
            Path::Idle => unreachable!("commit_path(Idle)"),
        }
    }

    /// Consults the configured retry policy about the `attempt`-th failure
    /// of the current transaction.
    ///
    /// The decision is clamped ([`AttemptContext::clamp`]): a
    /// hardware-limitation abort always demotes, and a slow-path attempt
    /// (already the slowest whole-transaction tier) never does — the body
    /// has to be re-executed after a validation failure, and it still
    /// cannot run in hardware if it could not before.
    fn decide_retry(&mut self, attempt: u32, cause: AbortCause) -> RetryDecision {
        let on_slow = self.path == Path::Slow;
        let (fallback_rh2, fallback_all_software) = self.fallback_snapshot();
        let ctx = AttemptContext {
            attempt,
            path: if on_slow {
                PathClass::Software
            } else {
                PathClass::Hardware
            },
            cause,
            can_demote: !on_slow,
            // The fast-path has no fixed retry budget; the "Mix" percentage
            // governs every contention abort (the paper's policy).
            retry_budget: 0,
            mix_percent: self.config.slow_path_percent,
            fallback_rh2,
            fallback_all_software,
        };
        self.config
            .retry_policy
            .decide_clamped_observed(&ctx, &mut self.rng, &mut self.stats.retry)
    }

    /// The fallback counters as the policy context wants them: real
    /// snapshots for policies that consult the cascade state, zeros (no
    /// shared-line reads on the abort path) for the rest.
    fn fallback_snapshot(&self) -> (u64, u64) {
        if self.policy_wants_fallback {
            (
                self.fallback.rh2_fallback_count(&self.sim),
                self.fallback.all_software_count(&self.sim),
            )
        } else {
            (0, 0)
        }
    }

    /// Consults the retry policy at a commit-time decision site (the RH1
    /// commit transaction or the RH2 write-back), where `attempt` counts
    /// the failures of the current commit and `budget` is the site's
    /// configured maximum of *extra* attempts.
    pub(crate) fn decide_commit_retry(
        &mut self,
        attempt: u32,
        cause: AbortCause,
        budget: u32,
    ) -> RetryDecision {
        let (fallback_rh2, fallback_all_software) = self.fallback_snapshot();
        let ctx = AttemptContext {
            attempt,
            path: PathClass::CommitHtm,
            cause,
            can_demote: true,
            retry_budget: budget,
            mix_percent: 100,
            fallback_rh2,
            fallback_all_software,
        };
        self.config
            .retry_policy
            .decide_clamped_observed(&ctx, &mut self.rng, &mut self.stats.retry)
    }
}

impl Txn for RhThread {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = match self.path {
            Path::Rh1Fast | Path::Rh2Fast => self.htm.read(addr),
            Path::Rh2FastSlowRead => self.rh2_fpsr_read(addr),
            Path::Slow => self.slow_read(addr),
            Path::Idle => panic!("transactional read outside execute()"),
        };
        self.stats.record_read(sw.stop());
        result
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = match self.path {
            Path::Rh1Fast => self.rh1_fast_write(addr, value),
            Path::Rh2Fast | Path::Rh2FastSlowRead => self.rh2_fast_write(addr, value),
            Path::Slow => self.slow_write(addr, value),
            Path::Idle => panic!("transactional write outside execute()"),
        };
        self.stats.record_write(sw.stop());
        result
    }

    fn protected_instruction(&mut self) -> TxResult<()> {
        match self.path {
            // A hardware transaction cannot run protected instructions; the
            // abort's `Unsupported` cause steers the retry to the slow-path,
            // where the software body can execute them before the commit.
            Path::Rh1Fast | Path::Rh2Fast | Path::Rh2FastSlowRead => {
                Err(self.htm.abort(AbortCause::Unsupported))
            }
            Path::Slow => Ok(()),
            Path::Idle => panic!("protected_instruction outside execute()"),
        }
    }
}

impl TmThread for RhThread {
    fn execute<R, F>(&mut self, mut body: F) -> R
    where
        F: FnMut(&mut Self) -> TxResult<R>,
    {
        assert!(!self.in_txn, "nested execute is not supported");
        self.in_txn = true;
        let backoff = Backoff::new();
        let mut force_slow = false;
        let mut failures = 0u32;
        let result = loop {
            let path = self.choose_path(force_slow);
            let attempt: TxResult<(R, PathKind)> = self.begin_path(path).and_then(|()| {
                body(self).and_then(|r| {
                    let sw = Stopwatch::start(self.stats.timing);
                    let committed = self.commit_path();
                    self.stats.record_commit_time(sw.stop());
                    committed.map(|kind| (r, kind))
                })
            });
            match attempt {
                Ok((r, kind)) => {
                    self.stats.record_commit(kind);
                    if self.policy_wants_commit {
                        self.config
                            .retry_policy
                            .on_commit(kind == PathKind::HardwareFast, &mut self.stats.retry);
                    }
                    break r;
                }
                Err(abort) => {
                    self.stats.record_abort(abort.cause);
                    failures += 1;
                    let decision = self.decide_retry(failures, abort.cause);
                    // An aborted slow-path attempt always re-runs on the
                    // slow-path; a fast-path attempt demotes when the
                    // policy says so.
                    force_slow = self.path == Path::Slow || decision == RetryDecision::Demote;
                    match decision {
                        RetryDecision::BackoffThen(spins) => rhtm_api::retry::spin(spins),
                        _ => backoff.snooze(),
                    }
                }
            }
        };
        self.path = Path::Idle;
        self.in_txn = false;
        result
    }

    fn thread_id(&self) -> usize {
        self.token.id()
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut TxStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(config: RhConfig) -> RhRuntime {
        RhRuntime::new(
            MemConfig::with_data_words(8192),
            HtmConfig::default(),
            config,
        )
    }

    fn all_variants() -> Vec<RhConfig> {
        vec![
            RhConfig::rh1_fast(),
            RhConfig::rh1_mixed(10),
            RhConfig::rh1_mixed(100),
            RhConfig::rh2(),
        ]
    }

    #[test]
    fn single_thread_counter_on_every_variant() {
        for config in all_variants() {
            let rt = runtime(config);
            let addr = rt.mem().alloc(1);
            let mut th = rt.register_thread();
            for _ in 0..200 {
                th.execute(|tx| {
                    let v = tx.read(addr)?;
                    tx.write(addr, v + 1)?;
                    Ok(())
                });
            }
            assert_eq!(rt.sim().nt_load(addr), 200, "runtime {}", rt.name());
            assert_eq!(th.stats().commits(), 200);
        }
    }

    #[test]
    fn concurrent_counter_exact_on_every_variant() {
        for config in all_variants() {
            let rt = Arc::new(runtime(config));
            let addr = rt.mem().alloc(1);
            let threads = 6;
            let per = 3_000;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let rt = Arc::clone(&rt);
                    std::thread::spawn(move || {
                        let mut th = rt.register_thread();
                        for _ in 0..per {
                            th.execute(|tx| {
                                let v = tx.read(addr)?;
                                tx.write(addr, v + 1)?;
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                rt.sim().nt_load(addr),
                (threads * per) as u64,
                "runtime {}",
                rt.name()
            );
        }
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(runtime(RhConfig::rh1_fast()).name(), "RH1 Fast");
        assert_eq!(runtime(RhConfig::rh1_mixed(100)).name(), "RH1 Mixed 100");
        assert_eq!(runtime(RhConfig::rh2()).name(), "RH2");
    }

    #[test]
    fn fast_path_commits_dominate_without_contention() {
        let rt = runtime(RhConfig::rh1_mixed(100));
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        for _ in 0..500 {
            th.execute(|tx| {
                let v = tx.read(addr)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(th.stats().commits_on(PathKind::HardwareFast), 500);
        assert_eq!(th.stats().commits_on(PathKind::MixedSlow), 0);
    }

    #[test]
    fn protected_instruction_forces_the_slow_path() {
        let rt = runtime(RhConfig::rh1_fast());
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        let v = th.execute(|tx| {
            tx.protected_instruction()?;
            let v = tx.read(addr)?;
            tx.write(addr, v + 7)?;
            Ok(v + 7)
        });
        assert_eq!(v, 7);
        assert_eq!(rt.sim().nt_load(addr), 7);
        assert_eq!(th.stats().commits_on(PathKind::MixedSlow), 1);
        assert_eq!(th.stats().aborts_for(AbortCause::Unsupported), 1);
    }

    #[test]
    fn capacity_overflow_falls_back_to_the_slow_path() {
        // Tiny hardware capacity: the fast-path cannot hold the footprint,
        // the mixed slow-path (whose hardware commit only touches the
        // metadata) can.
        let rt = RhRuntime::new(
            MemConfig::with_data_words(8192),
            HtmConfig::with_capacity(4, 4),
            RhConfig::rh1_fast(),
        );
        let base = rt.mem().alloc(1024);
        let mut th = rt.register_thread();
        let sum = th.execute(|tx| {
            let mut sum = 0;
            // 64 distinct cache lines read: far beyond the 4-line budget.
            for i in 0..64 {
                sum += tx.read(base.offset(i * 8))?;
            }
            tx.write(base, sum + 1)?;
            Ok(sum)
        });
        assert_eq!(sum, 0);
        assert_eq!(rt.sim().nt_load(base), 1);
        assert_eq!(th.stats().commits_on(PathKind::MixedSlow), 1);
        assert!(th.stats().aborts_for(AbortCause::Capacity) >= 1);
    }

    #[test]
    fn bank_transfer_preserves_balance_on_every_variant() {
        for config in all_variants() {
            let rt = Arc::new(runtime(config));
            let accounts: Vec<Addr> = (0..24).map(|_| rt.mem().alloc(1)).collect();
            for &a in &accounts {
                rt.sim().nt_store(a, 500);
            }
            let accounts = Arc::new(accounts);
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let rt = Arc::clone(&rt);
                    let accounts = Arc::clone(&accounts);
                    std::thread::spawn(move || {
                        let mut th = rt.register_thread();
                        for k in 0..4_000usize {
                            let from = accounts[(k * 7 + i) % accounts.len()];
                            let to = accounts[(k * 13 + 3 * i + 1) % accounts.len()];
                            if from == to {
                                continue;
                            }
                            th.execute(|tx| {
                                let f = tx.read(from)?;
                                if f == 0 {
                                    return Ok(());
                                }
                                let t = tx.read(to)?;
                                tx.write(from, f - 1)?;
                                tx.write(to, t + 1)?;
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total: u64 = accounts.iter().map(|&a| rt.sim().nt_load(a)).sum();
            assert_eq!(total, 24 * 500, "runtime {}", rt.name());
        }
    }

    #[test]
    fn mixed_policy_uses_slow_path_under_forced_aborts() {
        // With a forced abort ratio, RH1 Mixed 100 must retry aborted
        // transactions on the slow-path, and those must commit.
        let rt = RhRuntime::new(
            MemConfig::with_data_words(4096),
            HtmConfig::default().with_forced_abort_ratio(1.0),
            RhConfig::rh1_mixed(100),
        );
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        for _ in 0..100 {
            th.execute(|tx| {
                let v = tx.read(addr)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(rt.sim().nt_load(addr), 100);
        // Every transaction aborted once in hardware, then committed on the
        // mixed slow-path (whose commit hardware transaction is not subject
        // to the forced ratio ... it is, actually, but retried).
        assert_eq!(th.stats().commits(), 100);
        assert!(th.stats().commits_on(PathKind::MixedSlow) > 0);
        assert!(th.stats().aborts_for(AbortCause::Forced) >= 100);
    }

    #[test]
    fn rh1_fast_policy_retries_in_hardware() {
        let rt = RhRuntime::new(
            MemConfig::with_data_words(4096),
            HtmConfig::default()
                .with_spurious_abort_rate(0.5)
                .with_seed(7),
            RhConfig::rh1_fast(),
        );
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        for _ in 0..200 {
            th.execute(|tx| {
                let v = tx.read(addr)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(rt.sim().nt_load(addr), 200);
        assert_eq!(th.stats().commits_on(PathKind::HardwareFast), 200);
        assert_eq!(th.stats().commits_on(PathKind::MixedSlow), 0);
        assert!(th.stats().aborts_for(AbortCause::Spurious) > 0);
    }
}
