//! # rhtm-core — Reduced Hardware Transactions
//!
//! This crate implements the paper's contribution: the **RH1** and **RH2**
//! reduced-hardware hybrid transactional memory protocols (Matveev & Shavit,
//! *Reduced Hardware Transactions: A New Approach to Hybrid Transactional
//! Memory*, 2013), together with the multi-level fallback cascade that ties
//! them together:
//!
//! ```text
//!   RH1 fast-path          all-hardware, uninstrumented reads, one extra
//!        |                  metadata store per write
//!        v  (contention: percentage per the "Mix" policy;
//!            capacity/protected instruction: always)
//!   RH1 mixed slow-path    transaction body in software, commit = ONE
//!        |                  hardware transaction (read-set revalidation +
//!        |                  write-back + version install)
//!        v  (commit hardware transaction hits a capacity limit)
//!   RH2 slow-path commit   locks + commit-time visible read-set, hardware
//!        |                  transaction only for the write-back
//!        v  (write-back hardware transaction hits a capacity limit)
//!   all-software           pure software write-back; concurrent fast-paths
//!   slow-slow-path         switch to the instrumented "fast-path-slow-read"
//!                          mode until it finishes
//! ```
//!
//! The global mode switches are mediated by two counters that live in the
//! transactional heap and are monitored *speculatively* by the hardware
//! fast-paths, exactly as in the paper: `is_RH2_fallback` (Algorithm 3) and
//! `is_all_software_slow_path` (Algorithms 4–6).
//!
//! The public entry point is [`RhRuntime`], which implements
//! [`rhtm_api::TmRuntime`]; the "RH1 Fast" / "RH1 Mixed N" / "RH2" variants
//! of the paper's evaluation are obtained purely through [`RhConfig`].
//!
//! ```
//! use rhtm_api::{TmRuntime, TmThread, Txn};
//! use rhtm_core::{RhConfig, RhRuntime};
//! use rhtm_htm::HtmConfig;
//! use rhtm_mem::MemConfig;
//!
//! let rt = RhRuntime::new(
//!     MemConfig::with_data_words(1024),
//!     HtmConfig::default(),
//!     RhConfig::rh1_mixed(100),
//! );
//! let counter = rt.mem().alloc(1);
//! let mut thread = rt.register_thread();
//! let new_value = thread.execute(|tx| {
//!     let v = tx.read(counter)?;
//!     tx.write(counter, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(new_value, 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod fallback;
pub mod rh1;
pub mod rh2;
pub mod runtime;

pub use config::{ProtocolMode, RhConfig};
pub use fallback::FallbackState;
pub use runtime::{RhRuntime, RhThread};
