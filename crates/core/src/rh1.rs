//! The RH1 protocol (Algorithms 1–3 of the paper).
//!
//! * **Fast-path** — an all-hardware transaction.  Reads are completely
//!   uninstrumented.  Each write additionally stores the transaction's
//!   `next_ver` (sampled speculatively from the global clock at start) into the
//!   written location's stripe version.  The fast-path also monitors the
//!   `is_RH2_fallback` counter speculatively so that a slow-path transaction
//!   entering the RH2 fallback immediately aborts every incompatible
//!   fast-path transaction (Algorithm 3).
//!
//! * **Mixed slow-path** — the transaction body runs entirely in software,
//!   collecting a read-set (stripes) and a deferred write-set, with
//!   TL2-style per-read consistency checks against `tx_version`.  The commit
//!   is a *single hardware transaction* that revalidates the read-set's
//!   stripe versions, samples `GVNext()` and performs the write-back
//!   together with the version installs.  There are no locks — the
//!   atomicity of the commit-time hardware transaction replaces them, which
//!   is what makes the slow-path obstruction-free.
//!
//! The correctness argument for the non-advancing speculative clock read
//! (every [`rhtm_mem::ClockScheme`] except the incrementing baseline) rests on the
//! commit-time hardware transaction having the clock *in its read-set*: if
//! the clock advances (which only abort paths do, with a conflict-visible
//! store), every in-flight fast-path or slow-path commit aborts, so every
//! *committed* transaction installed a version strictly greater than any
//! `tx_version` sampled before its commit.

use rhtm_api::{retry, Abort, AbortCause, PathKind, RetryDecision, TxResult};
use rhtm_htm::gv;
use rhtm_mem::{stamp, Addr};

use crate::runtime::RhThread;

impl RhThread {
    // ------------------------------------------------------------------
    // RH1 fast-path (Algorithm 1, with the Algorithm 3 fallback monitor)
    // ------------------------------------------------------------------

    /// `RH1_FastPath_start`: open the hardware transaction, monitor the
    /// fallback counter speculatively and sample `GVNext()`.
    pub(crate) fn rh1_fast_begin(&mut self) -> TxResult<()> {
        self.htm.begin();
        // Speculative monitor: a concurrent `is_RH2_fallback` increment must
        // abort us for the duration of the transaction.
        let fallback = self.htm.read(self.fallback.rh2_fallback_addr())?;
        if fallback > 0 {
            return Err(self.htm.abort(AbortCause::Explicit));
        }
        // GVNext() under the GV schemes: read the clock speculatively, use
        // clock + 1, do not write it.  The speculative read is also what
        // guarantees the clock cannot advance under our feet without
        // aborting us.
        let clock_addr = self.sim.mem().clock().addr();
        self.next_ver = self.htm.read(clock_addr)? + 1;
        // Under the conventional incrementing clock (the ablation baseline),
        // the committing transaction must also advance the shared clock —
        // speculatively, so it happens atomically with the commit.  This is
        // precisely the extra clock-line write every GV scheme avoids.
        if gv::htm_advances(&self.sim) {
            self.htm.write(clock_addr, self.next_ver)?;
        }
        Ok(())
    }

    /// `RH1_FastPath_write`: update the stripe version, then store the
    /// value (both speculatively; the order matters for slow-path readers).
    #[inline]
    pub(crate) fn rh1_fast_write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        let layout = self.sim.mem().layout();
        let stripe = layout.stripe_of(addr);
        let ver_addr = layout.stripe_version_addr(stripe);
        let new_word = stamp::encode_ts(self.next_ver);
        self.htm.write(ver_addr, new_word)?;
        self.htm.write(addr, value)
    }

    // ------------------------------------------------------------------
    // Mixed slow-path body (Algorithm 2): shared with the RH2 slow-path
    // ------------------------------------------------------------------

    /// `RH1_SlowPath_start` / `RH2_SlowPath_start`.
    pub(crate) fn slow_begin(&mut self) {
        self.tx_version = gv::read(&self.sim);
        self.read_set.clear();
        self.read_marks.clear();
        self.last_read_stripe = u64::MAX;
        self.write_set.clear();
        self.locked.clear();
        self.visible.clear();
    }

    /// `RH1_SlowPath_write` / `RH2_SlowPath_write`: defer to the write-set.
    #[inline]
    pub(crate) fn slow_write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        self.write_set.insert(addr, value);
        Ok(())
    }

    /// `RH1_SlowPath_read` / `RH2_SlowPath_read`: read-own-writes, then a
    /// direct memory read bracketed by stripe-version consistency checks.
    #[inline]
    pub(crate) fn slow_read(&mut self, addr: Addr) -> TxResult<u64> {
        if let Some(v) = self.write_set.get(addr) {
            return Ok(v);
        }
        let (stripe, ver_addr) = {
            let layout = self.sim.mem().layout();
            let stripe = layout.stripe_of(addr);
            (stripe, layout.stripe_version_addr(stripe))
        };
        // The loads go through the simulator's publication-aware path so a
        // hardware commit in flight appears atomic, as it would on real
        // hardware.
        let ver_before = self.sim.nt_load(ver_addr);
        let value = self.sim.nt_load(addr);
        let ver_after = self.sim.nt_load(ver_addr);

        let consistent = !stamp::is_locked(ver_before)
            && ver_before == ver_after
            && stamp::decode_ts(ver_before) <= self.tx_version;
        if !consistent {
            let (cause, observed) = if stamp::is_locked(ver_before) {
                (AbortCause::Locked, self.tx_version + 1)
            } else {
                (AbortCause::Validation, stamp::decode_ts(ver_before))
            };
            return Err(self.slow_abort(cause, observed));
        }
        // Record the stripe once per attempt: commit-time revalidation is
        // idempotent, so duplicates only inflate the validation loop (and,
        // for RH1, the commit-time hardware transaction's read footprint
        // stays unchanged — duplicate stripes share their version line).
        // The one-entry cache short-circuits the same-stripe streaks scans
        // produce before the filter probe.
        let key = stripe.0 as u64;
        if key != self.last_read_stripe {
            self.last_read_stripe = key;
            if self.read_marks.test_and_set(stripe.0) {
                self.read_set.push(stripe);
            }
        }
        Ok(value)
    }

    /// Aborts the software attempt: bump the global clock past the offending
    /// version so the retry starts from a fresh time-stamp.
    pub(crate) fn slow_abort(&mut self, cause: AbortCause, observed: u64) -> Abort {
        gv::on_abort(&self.sim, observed);
        Abort::new(cause)
    }

    // ------------------------------------------------------------------
    // RH1 slow-path commit (Algorithm 2 lines 25–50, Algorithm 3)
    // ------------------------------------------------------------------

    /// `RH1_SlowPath_commit`: read-only transactions commit immediately;
    /// writers run the single commit-time hardware transaction, retrying it
    /// on contention and falling back to the RH2 commit on a hardware
    /// limitation.
    pub(crate) fn rh1_slow_commit(&mut self) -> TxResult<PathKind> {
        if self.write_set.is_empty() {
            return Ok(PathKind::MixedSlow);
        }
        // The forced-abort-ratio knob models fast-path aborts; the
        // commit-time hardware transaction is not subject to it.
        self.htm.set_forced_abort_injection(false);
        let budget = self.config.commit_htm_retries;
        let mut failures = 0u32;
        let result = loop {
            match self.rh1_slow_commit_attempt() {
                Ok(()) => {
                    self.stats.htm_commits += 1;
                    break Ok(PathKind::MixedSlow);
                }
                Err(abort) => {
                    self.stats.htm_aborts += 1;
                    // A stale transaction cannot be saved by the policy:
                    // restart the whole transaction (the caller's retry
                    // loop re-executes the body).
                    if matches!(abort.cause, AbortCause::Validation | AbortCause::Locked) {
                        break Err(abort);
                    }
                    failures += 1;
                    match self.decide_commit_retry(failures, abort.cause, budget) {
                        RetryDecision::RetryHere => std::hint::spin_loop(),
                        RetryDecision::BackoffThen(spins) => retry::spin(spins),
                        RetryDecision::Demote => {
                            if abort.cause.is_hardware_limitation() {
                                // This commit can never succeed in hardware
                                // — enter the RH2 fallback (Algorithm 3
                                // lines 35–39).  The region guard releases
                                // the counter on every exit path.
                                let region = self.fallback.rh2_fallback_region(&self.sim);
                                let r = self.rh2_slow_commit();
                                drop(region);
                                break r;
                            }
                            // Contention budget spent: restart the whole
                            // transaction with a fresh snapshot.
                            break Err(abort);
                        }
                    }
                }
            }
        };
        self.htm.set_forced_abort_injection(true);
        result
    }

    /// One attempt of the commit-time hardware transaction: revalidate the
    /// read-set, sample `GVNext()`, write back with version installs.
    fn rh1_slow_commit_attempt(&mut self) -> TxResult<()> {
        self.htm.begin();
        let layout = self.sim.mem().layout();

        // Read-set revalidation (speculative reads of the stripe versions).
        for i in 0..self.read_set.len() {
            let stripe = self.read_set[i];
            let word = self.htm.read(layout.stripe_version_addr(stripe))?;
            if stamp::is_locked(word) {
                return Err(self.htm.abort(AbortCause::Locked));
            }
            if stamp::decode_ts(word) > self.tx_version {
                let abort = self.htm.abort(AbortCause::Validation);
                gv::on_abort(&self.sim, stamp::decode_ts(word));
                return Err(abort);
            }
        }

        // GVNext() inside the hardware transaction: the clock joins the
        // read-set, so any concurrent clock advance aborts this commit.
        let clock_addr = self.sim.mem().clock().addr();
        let next_ver = self.htm.read(clock_addr)? + 1;
        if gv::htm_advances(&self.sim) {
            // Conventional clock: advance it as part of the commit.
            self.htm.write(clock_addr, next_ver)?;
        }
        let new_word = stamp::encode_ts(next_ver);

        // Write-back: install the new stripe version, then the value, for
        // every deferred write (program order is preserved by the write
        // buffer and by commit publication).
        for (addr, value) in self.write_set.iter() {
            let stripe = layout.stripe_of(addr);
            self.htm
                .write(layout.stripe_version_addr(stripe), new_word)?;
            self.htm.write(addr, value)?;
        }
        self.htm.commit()
    }
}
