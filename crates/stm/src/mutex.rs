//! A coarse-grained global-lock "transactional memory".
//!
//! Every transaction takes one global mutex, so transactions are trivially
//! serialisable.  It is far too slow to be a baseline of interest, but it is
//! an ideal *test oracle*: the concurrent data-structure and property tests
//! run the same operation sequences against a real runtime and against this
//! one and compare the outcomes.

use std::sync::Arc;

use std::sync::Mutex;

use rhtm_api::{PathKind, TmRuntime, TmThread, TxResult, TxStats, Txn};
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::{Addr, MemConfig, ThreadRegistry, ThreadToken, TmMemory};

/// The global-lock runtime.
pub struct MutexRuntime {
    sim: Arc<HtmSim>,
    registry: Arc<ThreadRegistry>,
    lock: Arc<Mutex<()>>,
}

impl MutexRuntime {
    /// Creates a global-lock runtime over its own fresh memory.
    pub fn new(mem_config: MemConfig) -> Self {
        let max_threads = mem_config.max_threads;
        let mem = Arc::new(TmMemory::new(mem_config));
        let sim = HtmSim::new(mem, HtmConfig::default());
        MutexRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            lock: Arc::new(Mutex::new(())),
        }
    }

    /// Creates a global-lock runtime over an existing simulator.
    pub fn with_sim(sim: Arc<HtmSim>) -> Self {
        let max_threads = sim.mem().layout().config().max_threads;
        MutexRuntime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            lock: Arc::new(Mutex::new(())),
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }
}

impl TmRuntime for MutexRuntime {
    type Thread = MutexThread;

    fn name(&self) -> &'static str {
        "GlobalLock"
    }

    fn mem(&self) -> &Arc<TmMemory> {
        self.sim.mem()
    }

    fn register_thread(&self) -> MutexThread {
        MutexThread {
            sim: Arc::clone(&self.sim),
            lock: Arc::clone(&self.lock),
            token: self.registry.register(),
            stats: TxStats::new(false),
            in_txn: false,
        }
    }
}

/// Per-thread handle of the global-lock runtime.
pub struct MutexThread {
    sim: Arc<HtmSim>,
    lock: Arc<Mutex<()>>,
    token: ThreadToken,
    stats: TxStats,
    in_txn: bool,
}

impl Txn for MutexThread {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        self.stats.record_read(0);
        Ok(self.sim.mem().heap().load(addr))
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        self.stats.record_write(0);
        // Conflict-visible so hardware transactions in mixed test setups
        // sharing the same memory observe the update.
        self.sim.nt_store(addr, value);
        Ok(())
    }
}

impl TmThread for MutexThread {
    fn execute<R, F>(&mut self, mut body: F) -> R
    where
        F: FnMut(&mut Self) -> TxResult<R>,
    {
        assert!(!self.in_txn, "nested execute is not supported");
        self.in_txn = true;
        let lock = Arc::clone(&self.lock);
        let guard = lock.lock().unwrap_or_else(|poison| poison.into_inner());
        let result = loop {
            match body(self) {
                Ok(r) => {
                    self.stats.record_commit(PathKind::Software);
                    break r;
                }
                Err(abort) => self.stats.record_abort(abort.cause),
            }
        };
        drop(guard);
        self.in_txn = false;
        result
    }

    fn thread_id(&self) -> usize {
        self.token.id()
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut TxStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_exact_under_contention() {
        let rt = Arc::new(MutexRuntime::new(MemConfig::with_data_words(256)));
        let addr = rt.mem().alloc(1);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for _ in 0..2_000 {
                        th.execute(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rt.sim().nt_load(addr), 16_000);
    }

    #[test]
    fn name_and_stats() {
        let rt = MutexRuntime::new(MemConfig::with_data_words(64));
        assert_eq!(rt.name(), "GlobalLock");
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        let v = th.execute(|tx| {
            tx.write(addr, 3)?;
            tx.read(addr)
        });
        assert_eq!(v, 3);
        assert_eq!(th.stats().commits(), 1);
        assert_eq!(th.stats().reads, 1);
        assert_eq!(th.stats().writes, 1);
        assert!(th.thread_id() < 64);
    }
}
