//! The TL2 transaction engine.
//!
//! TL2 (Transactional Locking II) is a word/stripe-based, lazy-versioning
//! STM: the transaction body collects a read-set and a write-set; commit
//! acquires the write-set stripes' locks, validates the read-set against the
//! transaction's start time-stamp, writes back and releases the locks with a
//! new time-stamp.  The paper uses TL2 as its STM baseline, and the RH1/RH2
//! slow-paths are "TL2 minus the locks plus a hardware commit", so this
//! engine doubles as the reference for their software halves.  The commit's
//! clock discipline is pluggable ([`rhtm_mem::ClockScheme`]): the default
//! strict fetch-and-add, GV4's fail-soft CAS, GV5's commit-skip or GV6's
//! sampled advance.
//!
//! The engine is deliberately separated from the [`crate::Tl2Runtime`]
//! wrapper so the Standard-HyTM baseline can embed it as its software
//! fallback path.

use std::sync::Arc;

use rhtm_api::{Abort, AbortCause, TxResult};
use rhtm_htm::gv;
use rhtm_htm::linemap::{StripeMarks, WriteSet};
use rhtm_htm::HtmSim;
use rhtm_mem::{stamp, Addr, StripeId};

/// Per-thread TL2 transaction engine.
///
/// The engine does not retry by itself: `start` / `read` / `write` /
/// `commit` execute one attempt, and the caller (a runtime's `execute`
/// retry loop) decides what to do with an [`Abort`].
pub struct Tl2Engine {
    sim: Arc<HtmSim>,
    thread_id: usize,
    /// Start-time value of the global version clock (`rv` in the TL2
    /// paper, `tx_version` in the RH paper).
    tx_version: u64,
    /// Distinct stripes read so far, in first-read order.
    read_set: Vec<StripeId>,
    /// Per-stripe membership filter deduplicating `read_set` inserts, so
    /// commit-time validation is O(distinct stripes) instead of O(reads).
    /// Generation-stamped: clearing it between attempts is O(1).
    read_marks: StripeMarks,
    /// Stripe recorded by the most recent read (`u64::MAX` = none).  Scans
    /// touch the same stripe many times in a row, so this one-entry cache
    /// answers most membership queries without probing `read_marks`.
    last_read_stripe: u64,
    /// Deferred writes in program order.
    write_set: WriteSet,
    /// Stripes locked during commit, with the version word each was locked
    /// from (needed both to restore on abort and to validate read-set
    /// entries that we locked ourselves).
    locked: Vec<(StripeId, u64)>,
    /// Scratch for the sorted, deduplicated write-stripe list built in
    /// commit Phase 1, reused so a writing commit performs no allocation.
    commit_stripes: Vec<StripeId>,
    /// Writing commits performed by this engine; used as the sampling salt
    /// for the GV6 clock scheme.
    commit_salt: u64,
    active: bool,
}

impl Tl2Engine {
    /// Creates an engine for `thread_id` over the shared simulator.
    pub fn new(sim: Arc<HtmSim>, thread_id: usize) -> Self {
        Tl2Engine {
            sim,
            thread_id,
            tx_version: 0,
            read_set: Vec::with_capacity(64),
            read_marks: StripeMarks::with_capacity(512),
            last_read_stripe: u64::MAX,
            write_set: WriteSet::with_capacity(32),
            locked: Vec::with_capacity(32),
            commit_stripes: Vec::with_capacity(32),
            commit_salt: 0,
            active: false,
        }
    }

    /// The simulator this engine runs against.
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The transaction's start time-stamp (valid between `start` and the end
    /// of the attempt).
    #[inline(always)]
    pub fn tx_version(&self) -> u64 {
        self.tx_version
    }

    /// Returns `true` while an attempt is in progress.
    #[inline(always)]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of **distinct** stripes recorded in the read-set so far
    /// (repeat reads of a stripe are deduplicated at insert).
    #[inline(always)]
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Number of distinct words in the write-set so far.
    #[inline(always)]
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }

    /// Begins a new attempt: samples the global clock and clears the sets.
    pub fn start(&mut self) {
        self.tx_version = gv::read(&self.sim);
        self.read_set.clear();
        self.read_marks.clear();
        self.last_read_stripe = u64::MAX;
        self.write_set.clear();
        self.locked.clear();
        self.active = true;
    }

    /// Aborts the current attempt: releases any commit-time locks, advances
    /// the global clock past the version whose observation caused the abort,
    /// and clears the sets.
    pub fn abort(&mut self, cause: AbortCause, observed_version: u64) -> Abort {
        self.release_locks_unchanged();
        gv::on_abort(&self.sim, observed_version);
        self.read_set.clear();
        self.read_marks.clear();
        self.last_read_stripe = u64::MAX;
        self.write_set.clear();
        self.active = false;
        Abort::new(cause)
    }

    fn release_locks_unchanged(&mut self) {
        while let Some((stripe, prev)) = self.locked.pop() {
            let addr = self.sim.mem().layout().stripe_version_addr(stripe);
            // We hold the lock, so a plain visible store suffices.
            self.sim.nt_store(addr, prev);
        }
    }

    /// Transactional read of `addr` (Algorithm: TL2 read with pre/post
    /// version check against `tx_version`).
    #[inline]
    pub fn read(&mut self, addr: Addr) -> TxResult<u64> {
        debug_assert!(self.active, "read outside a TL2 transaction");
        if let Some(v) = self.write_set.get(addr) {
            return Ok(v);
        }
        let (stripe, ver_addr) = {
            let layout = self.sim.mem().layout();
            let stripe = layout.stripe_of(addr);
            (stripe, layout.stripe_version_addr(stripe))
        };
        // Publication-aware loads: when this engine is embedded in a hybrid
        // runtime, an in-flight hardware commit appears atomic to them.
        let ver_before = self.sim.nt_load(ver_addr);
        let value = self.sim.nt_load(addr);
        let ver_after = self.sim.nt_load(ver_addr);

        if stamp::is_locked(ver_before)
            || ver_before != ver_after
            || stamp::decode_ts(ver_before) > self.tx_version
        {
            let observed = if stamp::is_locked(ver_before) {
                self.tx_version + 1
            } else {
                stamp::decode_ts(ver_before)
            };
            let cause = if stamp::is_locked(ver_before) {
                AbortCause::Locked
            } else {
                AbortCause::Validation
            };
            return Err(self.abort(cause, observed));
        }
        // Record the stripe once per attempt: repeat reads contribute
        // nothing to validation, and the filter's O(1) epoch reset keeps
        // this cheaper than scanning or re-validating duplicates.  The
        // one-entry cache short-circuits the streak of same-stripe reads a
        // scan produces (a stripe holds several adjacent words).
        let key = stripe.0 as u64;
        if key != self.last_read_stripe {
            self.last_read_stripe = key;
            if self.read_marks.test_and_set(stripe.0) {
                self.read_set.push(stripe);
            }
        }
        Ok(value)
    }

    /// Transactional (deferred) write of `value` to `addr`.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        debug_assert!(self.active, "write outside a TL2 transaction");
        self.write_set.insert(addr, value);
        Ok(())
    }

    /// Attempts to commit the current attempt.
    pub fn commit(&mut self) -> TxResult<()> {
        debug_assert!(self.active, "commit outside a TL2 transaction");
        // Read-only transactions commit immediately: every read was
        // individually validated against tx_version.
        if self.write_set.is_empty() {
            self.active = false;
            self.read_set.clear();
            self.read_marks.clear();
            self.last_read_stripe = u64::MAX;
            self.last_read_stripe = u64::MAX;
            return Ok(());
        }

        let layout = self.sim.mem().layout();
        let lock_word = stamp::lock_word(self.thread_id);

        // Phase 1: lock the write-set stripes (sorted for determinism; the
        // try-lock discipline makes deadlock impossible regardless).  The
        // dedup is load-bearing: this phase has no locked-by-us check, so a
        // repeated stripe would self-conflict.  Built in the engine-owned
        // scratch buffer, so a writing commit performs no allocation.
        self.commit_stripes.clear();
        self.commit_stripes.extend(
            self.write_set
                .iter()
                .map(|(addr, _)| layout.stripe_of(addr)),
        );
        self.commit_stripes.sort_unstable();
        self.commit_stripes.dedup();
        for i in 0..self.commit_stripes.len() {
            let stripe = self.commit_stripes[i];
            let ver_addr = layout.stripe_version_addr(stripe);
            let current = self.sim.nt_load(ver_addr);
            if stamp::is_locked(current) {
                let observed = self.tx_version + 1;
                return Err(self.abort(AbortCause::Locked, observed));
            }
            if self.sim.nt_cas(ver_addr, current, lock_word).is_err() {
                let observed = self.tx_version + 1;
                return Err(self.abort(AbortCause::Locked, observed));
            }
            self.locked.push((stripe, current));
        }

        // Phase 2: compute the write version, applying the configured
        // [`rhtm_mem::ClockScheme`].  Under the default strict scheme this
        // is the classic fetch-and-add (unique write versions); GV4/GV5/GV6
        // relax or skip the clock RMW.  Sampling the version *after* the
        // locks are held is what keeps the relaxed schemes serialisable —
        // see the ordering argument in `rhtm_mem::clock`.
        self.commit_salt = self.commit_salt.wrapping_add(1);
        let wv = gv::next_commit(&self.sim, self.commit_salt);

        // Phase 3: validate the read-set.
        for i in 0..self.read_set.len() {
            let stripe = self.read_set[i];
            let word = self.sim.nt_load(layout.stripe_version_addr(stripe));
            if stamp::is_locked(word) {
                if word != lock_word {
                    let observed = self.tx_version + 1;
                    return Err(self.abort(AbortCause::Locked, observed));
                }
                // Locked by us: validate against the version the stripe
                // carried when we locked it, otherwise a conflicting commit
                // that slipped in between our read and our lock would be
                // missed (lost update).
                let prev = self
                    .locked
                    .iter()
                    .find(|&&(s, _)| s == stripe)
                    .map(|&(_, p)| p)
                    .expect("stripe locked by us must be in the locked list");
                if stamp::decode_ts(prev) > self.tx_version {
                    let observed = stamp::decode_ts(prev);
                    return Err(self.abort(AbortCause::Validation, observed));
                }
                continue;
            }
            if stamp::decode_ts(word) > self.tx_version {
                let observed = stamp::decode_ts(word);
                return Err(self.abort(AbortCause::Validation, observed));
            }
        }

        // Phase 4: write back (conflict-visible stores so hardware
        // transactions in hybrid runtimes observe them), then release the
        // locks by installing the new version.
        for (addr, value) in self.write_set.iter() {
            self.sim.nt_store(addr, value);
        }
        let new_word = stamp::encode_ts(wv);
        while let Some((stripe, _prev)) = self.locked.pop() {
            self.sim
                .nt_store(layout.stripe_version_addr(stripe), new_word);
        }

        self.active = false;
        self.read_set.clear();
        self.read_marks.clear();
        self.last_read_stripe = u64::MAX;
        self.write_set.clear();
        Ok(())
    }
}

impl std::fmt::Debug for Tl2Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tl2Engine")
            .field("thread_id", &self.thread_id)
            .field("active", &self.active)
            .field("tx_version", &self.tx_version)
            .field("read_set", &self.read_set.len())
            .field("write_set", &self.write_set.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_htm::HtmConfig;
    use rhtm_mem::{MemConfig, TmMemory};

    fn sim() -> Arc<HtmSim> {
        let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(4096)));
        HtmSim::new(mem, HtmConfig::default())
    }

    #[test]
    fn read_write_commit_roundtrip() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let mut e = Tl2Engine::new(Arc::clone(&s), 0);
        e.start();
        assert_eq!(e.read(addr).unwrap(), 0);
        e.write(addr, 9).unwrap();
        assert_eq!(e.read(addr).unwrap(), 9, "read-own-write");
        assert_eq!(s.nt_load(addr), 0, "writes are deferred");
        e.commit().unwrap();
        assert_eq!(s.nt_load(addr), 9);
        let stripe = s.mem().layout().stripe_of(addr);
        let word = s.nt_load(s.mem().layout().stripe_version_addr(stripe));
        assert!(!stamp::is_locked(word), "locks must be released");
        assert!(stamp::decode_ts(word) > 0, "version must advance");
    }

    #[test]
    fn read_only_commit_is_immediate() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let mut e = Tl2Engine::new(s, 0);
        e.start();
        e.read(addr).unwrap();
        assert_eq!(e.write_set_len(), 0);
        e.commit().unwrap();
        assert!(!e.is_active());
    }

    #[test]
    fn stale_read_aborts_with_validation() {
        let s = sim();
        let addr = s.mem().alloc(1);
        // A committed writer gives the stripe a version of 1.
        let mut w = Tl2Engine::new(Arc::clone(&s), 0);
        w.start();
        w.write(addr, 5).unwrap();
        w.commit().unwrap();

        // A reader that started before that commit (tx_version still 0,
        // because the stripe now carries a newer version) must abort.
        let mut r = Tl2Engine::new(Arc::clone(&s), 1);
        r.tx_version = 0;
        r.active = true;
        let err = r.read(addr).unwrap_err();
        assert_eq!(err.cause, AbortCause::Validation);
        // The abort advanced the clock so the retry can succeed.
        let mut r2 = Tl2Engine::new(Arc::clone(&s), 1);
        r2.start();
        assert_eq!(r2.read(addr).unwrap(), 5);
    }

    #[test]
    fn locked_stripe_aborts_reader() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let layout = s.mem().layout();
        let stripe = layout.stripe_of(addr);
        // Simulate another thread holding the stripe lock.
        s.nt_store(layout.stripe_version_addr(stripe), stamp::lock_word(7));
        let mut e = Tl2Engine::new(Arc::clone(&s), 0);
        e.start();
        assert_eq!(e.read(addr).unwrap_err().cause, AbortCause::Locked);
    }

    #[test]
    fn locked_stripe_aborts_committer() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let layout = s.mem().layout();
        let stripe = layout.stripe_of(addr);
        let mut e = Tl2Engine::new(Arc::clone(&s), 0);
        e.start();
        e.write(addr, 1).unwrap();
        s.nt_store(layout.stripe_version_addr(stripe), stamp::lock_word(7));
        assert_eq!(e.commit().unwrap_err().cause, AbortCause::Locked);
        assert_eq!(s.nt_load(addr), 0, "aborted commit must not write back");
    }

    #[test]
    fn write_write_conflict_second_committer_aborts_or_serialises() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let mut a = Tl2Engine::new(Arc::clone(&s), 0);
        let mut b = Tl2Engine::new(Arc::clone(&s), 1);
        a.start();
        b.start();
        let va = a.read(addr).unwrap();
        let vb = b.read(addr).unwrap();
        a.write(addr, va + 1).unwrap();
        b.write(addr, vb + 1).unwrap();
        a.commit().unwrap();
        // b read version 0 but the stripe now has a newer version; b must
        // abort at commit-time validation of its read-set.
        let err = b.commit().unwrap_err();
        assert!(matches!(
            err.cause,
            AbortCause::Validation | AbortCause::Locked
        ));
        assert_eq!(s.nt_load(addr), 1);
    }

    #[test]
    fn abort_releases_partially_acquired_locks() {
        let s = sim();
        let a0 = s.mem().alloc(1);
        let _spacer = s.mem().alloc(64);
        let a1 = s.mem().alloc(1); // a different stripe from a0
        let layout = s.mem().layout();
        let s1 = layout.stripe_of(a1);
        // Another thread holds the lock for a1's stripe.
        s.nt_store(layout.stripe_version_addr(s1), stamp::lock_word(9));
        let mut e = Tl2Engine::new(Arc::clone(&s), 0);
        e.start();
        e.write(a0, 1).unwrap();
        e.write(a1, 2).unwrap();
        assert!(e.commit().is_err());
        // The stripe for a0 must have been unlocked again.
        let s0 = layout.stripe_of(a0);
        let w0 = s.nt_load(layout.stripe_version_addr(s0));
        assert!(
            !stamp::is_locked(w0),
            "partially acquired locks must be released"
        );
    }

    #[test]
    fn duplicate_reads_of_one_stripe_record_once() {
        let s = sim();
        let a = s.mem().alloc(1);
        let _spacer = s.mem().alloc(64);
        let b = s.mem().alloc(1); // a different stripe from a
        let mut e = Tl2Engine::new(Arc::clone(&s), 0);
        e.start();
        for _ in 0..10 {
            e.read(a).unwrap();
        }
        assert_eq!(e.read_set_len(), 1, "repeat reads must dedup");
        e.read(b).unwrap();
        assert_eq!(e.read_set_len(), 2, "a distinct stripe must record");
        for _ in 0..10 {
            e.read(b).unwrap();
            e.read(a).unwrap();
        }
        assert_eq!(e.read_set_len(), 2);
        e.write(a, 1).unwrap();
        e.commit().unwrap();
        // The next attempt starts from an empty, fully reset filter.
        e.start();
        e.read(a).unwrap();
        assert_eq!(e.read_set_len(), 1);
        e.commit().unwrap();
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let s = sim();
        let addr = s.mem().alloc(1);
        let threads = 6;
        let per = 3_000;
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut e = Tl2Engine::new(s, tid);
                    for _ in 0..per {
                        loop {
                            e.start();
                            let ok = (|| {
                                let v = e.read(addr)?;
                                e.write(addr, v + 1)?;
                                e.commit()
                            })();
                            if ok.is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.nt_load(addr), (threads * per) as u64);
    }
}
