//! The TL2 STM runtime: the paper's software baseline.

use std::sync::Arc;

use rhtm_api::Backoff;

use rhtm_api::{
    retry, AbortCause, AttemptContext, PathClass, PathKind, RetryDecision, RetryPolicyHandle,
    RetryRng, Stopwatch, TmRuntime, TmThread, TxResult, TxStats, Txn,
};
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::{Addr, MemConfig, ThreadRegistry, ThreadToken, TmMemory};

use crate::tl2::Tl2Engine;

/// Policy of the TL2 runtime.
///
/// TL2 is the bottom of every fallback cascade, so there is nowhere to
/// demote to: the retry policy only controls how aborted attempts are
/// paced (e.g. [`rhtm_api::retry::CappedExponential`] jittered backoff).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tl2Config {
    /// The contention-management policy consulted after every abort.
    pub retry_policy: RetryPolicyHandle,
}

impl Tl2Config {
    /// Returns the configuration with a different retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicyHandle) -> Self {
        self.retry_policy = policy;
        self
    }
}

/// The TL2 software transactional memory runtime ("TL2" in the figures).
pub struct Tl2Runtime {
    sim: Arc<HtmSim>,
    registry: Arc<ThreadRegistry>,
    config: Tl2Config,
}

impl Tl2Runtime {
    /// Creates a TL2 runtime over its own fresh memory.
    pub fn new(mem_config: MemConfig) -> Self {
        Self::with_config(mem_config, Tl2Config::default())
    }

    /// Creates a TL2 runtime over its own fresh memory with an explicit
    /// runtime configuration.
    pub fn with_config(mem_config: MemConfig, config: Tl2Config) -> Self {
        let max_threads = mem_config.max_threads;
        let mem = Arc::new(TmMemory::new(mem_config));
        let sim = HtmSim::new(mem, HtmConfig::default());
        Tl2Runtime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// Creates a TL2 runtime over an existing simulator (shared memory).
    pub fn with_sim(sim: Arc<HtmSim>) -> Self {
        Self::with_sim_config(sim, Tl2Config::default())
    }

    /// [`Tl2Runtime::with_sim`] with an explicit runtime configuration.
    pub fn with_sim_config(sim: Arc<HtmSim>, config: Tl2Config) -> Self {
        let max_threads = sim.mem().layout().config().max_threads;
        Tl2Runtime {
            sim,
            registry: ThreadRegistry::new(max_threads),
            config,
        }
    }

    /// The underlying simulator (shared with any co-resident runtimes).
    pub fn sim(&self) -> &Arc<HtmSim> {
        &self.sim
    }

    /// The runtime configuration.
    pub fn config(&self) -> &Tl2Config {
        &self.config
    }
}

impl TmRuntime for Tl2Runtime {
    type Thread = Tl2Thread;

    fn name(&self) -> &'static str {
        "TL2"
    }

    fn mem(&self) -> &Arc<TmMemory> {
        self.sim.mem()
    }

    fn register_thread(&self) -> Tl2Thread {
        let token = self.registry.register();
        let engine = Tl2Engine::new(Arc::clone(&self.sim), token.id());
        let rng = RetryRng::new(0x544c_3252 ^ (token.id() as u64 + 1) << 19);
        let policy_wants_commit = self.config.retry_policy.wants_commit_hook();
        Tl2Thread {
            engine,
            token,
            policy: self.config.retry_policy.clone(),
            policy_wants_commit,
            stats: TxStats::new(false),
            in_txn: false,
            rng,
        }
    }
}

/// Per-thread handle of the TL2 runtime.
pub struct Tl2Thread {
    engine: Tl2Engine,
    token: ThreadToken,
    policy: RetryPolicyHandle,
    /// Cached [`rhtm_api::RetryPolicy::wants_commit_hook`] answer.
    policy_wants_commit: bool,
    stats: TxStats,
    in_txn: bool,
    /// Per-thread RNG feeding the retry policy (backoff jitter).
    rng: RetryRng,
}

impl Tl2Thread {
    /// Read access to the underlying engine (tests, diagnostics).
    pub fn engine(&self) -> &Tl2Engine {
        &self.engine
    }
}

impl Txn for Tl2Thread {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = self.engine.read(addr);
        self.stats.record_read(sw.stop());
        result
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        let sw = Stopwatch::start(self.stats.timing);
        let result = self.engine.write(addr, value);
        self.stats.record_write(sw.stop());
        result
    }

    fn protected_instruction(&mut self) -> TxResult<()> {
        // A software transaction can execute anything before its commit
        // point.
        Ok(())
    }
}

impl TmThread for Tl2Thread {
    fn execute<R, F>(&mut self, mut body: F) -> R
    where
        F: FnMut(&mut Self) -> TxResult<R>,
    {
        assert!(!self.in_txn, "nested execute is not supported");
        self.in_txn = true;
        let backoff = Backoff::new();
        let mut failures = 0u32;
        let result = loop {
            self.engine.start();
            let outcome: TxResult<R> = body(self).and_then(|r| {
                let sw = Stopwatch::start(self.stats.timing);
                let committed = self.engine.commit();
                self.stats.record_commit_time(sw.stop());
                committed.map(|()| r)
            });
            match outcome {
                Ok(r) => {
                    self.stats.record_commit(PathKind::Software);
                    if self.policy_wants_commit {
                        self.policy.on_commit(false, &mut self.stats.retry);
                    }
                    break r;
                }
                Err(abort) => {
                    self.stats.record_abort(abort.cause);
                    failures += 1;
                    // The engine rolled itself back when it raised the
                    // abort; an abort raised by user code (e.g. an explicit
                    // retry) leaves it active, which `start` discards.
                    let ctx = AttemptContext {
                        attempt: failures,
                        path: PathClass::Software,
                        cause: abort.cause,
                        // TL2 is the bottom tier: the clamp keeps any
                        // Demote decision retrying in software.
                        can_demote: false,
                        retry_budget: u32::MAX,
                        mix_percent: 0,
                        fallback_rh2: 0,
                        fallback_all_software: 0,
                    };
                    match self.policy.decide_clamped_observed(
                        &ctx,
                        &mut self.rng,
                        &mut self.stats.retry,
                    ) {
                        RetryDecision::BackoffThen(spins) => retry::spin(spins),
                        _ => {
                            if abort.cause == AbortCause::Explicit {
                                // Explicit user aborts back off a little
                                // harder to avoid spinning on a condition
                                // that has not changed.
                                backoff.snooze();
                            }
                            backoff.snooze();
                        }
                    }
                }
            }
        };
        self.in_txn = false;
        result
    }

    fn thread_id(&self) -> usize {
        self.token.id()
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut TxStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Tl2Runtime {
        Tl2Runtime::new(MemConfig::with_data_words(4096))
    }

    #[test]
    fn single_thread_counter() {
        let rt = runtime();
        let addr = rt.mem().alloc(1);
        let mut th = rt.register_thread();
        for _ in 0..50 {
            th.execute(|tx| {
                let v = tx.read(addr)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(rt.sim().nt_load(addr), 50);
        assert_eq!(th.stats().commits_on(PathKind::Software), 50);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let rt = Arc::new(runtime());
        let addr = rt.mem().alloc(1);
        let threads = 8;
        let per = 3_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for _ in 0..per {
                        th.execute(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rt.sim().nt_load(addr), (threads * per) as u64);
    }

    #[test]
    fn disjoint_transactions_do_not_abort_each_other() {
        let rt = Arc::new(runtime());
        // Allocate well-separated words so they land on distinct stripes.
        let addrs: Vec<Addr> = (0..4).map(|_| rt.mem().alloc(64)).collect();
        let handles: Vec<_> = addrs
            .iter()
            .map(|&addr| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for _ in 0..2_000 {
                        th.execute(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)?;
                            Ok(())
                        });
                    }
                    th.stats().aborts()
                })
            })
            .collect();
        let total_aborts: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        for &addr in &addrs {
            assert_eq!(rt.sim().nt_load(addr), 2_000);
        }
        assert_eq!(total_aborts, 0, "disjoint stripes must not conflict");
    }

    #[test]
    fn bank_transfer_preserves_total_balance() {
        let rt = Arc::new(runtime());
        let accounts: Vec<Addr> = (0..32).map(|_| rt.mem().alloc(1)).collect();
        for &a in &accounts {
            rt.sim().nt_store(a, 100);
        }
        let accounts = Arc::new(accounts);
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let rt = Arc::clone(&rt);
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let mut th = rt.register_thread();
                    for k in 0..5_000usize {
                        let from = accounts[(k * 5 + i) % accounts.len()];
                        let to = accounts[(k * 11 + 3 * i + 1) % accounts.len()];
                        if from == to {
                            continue;
                        }
                        th.execute(|tx| {
                            let f = tx.read(from)?;
                            if f == 0 {
                                return Ok(());
                            }
                            let t = tx.read(to)?;
                            tx.write(from, f - 1)?;
                            tx.write(to, t + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = accounts.iter().map(|&a| rt.sim().nt_load(a)).sum();
        assert_eq!(total, 3200);
    }

    #[test]
    fn protected_instructions_are_allowed_in_software() {
        let rt = runtime();
        let mut th = rt.register_thread();
        let ok = th.execute(|tx| {
            tx.protected_instruction()?;
            Ok(true)
        });
        assert!(ok);
    }

    #[test]
    fn runtime_metadata() {
        let rt = runtime();
        assert_eq!(rt.name(), "TL2");
        let th = rt.register_thread();
        assert!(!th.engine().is_active());
    }
}
