//! # rhtm-stm
//!
//! Software transactional memory baselines:
//!
//! * [`Tl2Engine`] / [`Tl2Runtime`] — the TL2 algorithm of Dice, Shalev and
//!   Shavit (DISC 2006) with a pluggable global clock, exactly the STM the paper
//!   benchmarks against (and the style of STM the RH1/RH2 slow-paths are
//!   derived from).  The engine type is reusable: the Standard-HyTM
//!   baseline embeds it as its software fallback path.
//! * [`MutexRuntime`] — a trivially-correct coarse-grained-lock "STM" used
//!   as a test oracle for the concurrent data-structure tests.
//!
//! All shared writes performed by the TL2 commit go through the simulated
//! HTM's strongly-isolated non-transactional operations so that, when the
//! engine is reused inside a hybrid runtime, hardware transactions observe
//! its write-back exactly the way real HTM observes coherence traffic.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod mutex;
pub mod runtime;
pub mod tl2;

pub use mutex::{MutexRuntime, MutexThread};
pub use runtime::{Tl2Config, Tl2Runtime, Tl2Thread};
pub use tl2::Tl2Engine;
