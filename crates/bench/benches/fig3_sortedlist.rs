//! Criterion bench reproducing Figure 3 middle (constant sorted list, 5% writes) at quick scale.
//!
//! `cargo bench --workspace` runs every figure this way; the paper-scale
//! sweeps are produced by the corresponding `fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rhtm_bench::{FigureParams, Scale};

use rhtm_mem::MemConfig;
use rhtm_workloads::{AlgoKind, ConstantSortedList, DriverOpts, OpMix, TmSpec};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let params = FigureParams::new(Scale::Quick).clamp_threads_to_host();
    let elements = params.sortedlist_elements;
    let threads = *params.thread_counts.last().unwrap();
    let mut group = c.benchmark_group("fig3_sortedlist_5pct");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for algo in [
        AlgoKind::Htm,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Fast,
        AlgoKind::Rh1Mixed(100),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    TmSpec::new(algo)
                        .mem(MemConfig::with_data_words(
                            ConstantSortedList::required_words(elements) + 4096,
                        ))
                        .bench(
                            |sim| ConstantSortedList::new(Arc::clone(sim), elements),
                            &DriverOpts::counted_mix(
                                threads,
                                OpMix::read_update(5),
                                params.ops_per_thread / 4,
                            ),
                        )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
