//! Micro-benchmarks of the transaction-local set structures every software
//! read and write goes through: [`LineMap`] (read-marks, write-set index)
//! and [`WriteSet`] (deferred writes).  Footprints of 8, 64 and 1024 keys
//! cover a small RMW transaction, a typical traversal and a worst-case
//! large-write-set commit.  These are the structures the PR-7 speed pass
//! targets (epoch-stamped clear, single-probe insert, fingerprint-gated
//! misses), so regressions here surface before they show up in the
//! figure-level runs.

use criterion::{criterion_group, criterion_main, Criterion};
use rhtm_htm::linemap::{LineMap, WriteSet};
use rhtm_mem::Addr;

const FOOTPRINTS: [usize; 3] = [8, 64, 1024];

/// Key stream with the same shape the runtimes produce: word addresses a
/// stripe apart, permuted so probes do not walk the table in order.
fn keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9).wrapping_add(7)) % (4 * n as u64))
        .collect()
}

fn bench_linemap(c: &mut Criterion) {
    for n in FOOTPRINTS {
        let ks = keys(n);

        let mut m = LineMap::with_capacity(n);
        c.bench_function(&format!("linemap_insert_clear/{n}"), |b| {
            b.iter(|| {
                for &k in &ks {
                    m.insert_if_absent(k, k);
                }
                let len = m.len();
                m.clear();
                len
            })
        });

        let mut m = LineMap::with_capacity(n);
        for &k in &ks {
            m.insert_if_absent(k, k);
        }
        c.bench_function(&format!("linemap_get_hit/{n}"), |b| {
            b.iter(|| {
                let mut sum = 0u64;
                for &k in &ks {
                    sum = sum.wrapping_add(m.get(k).unwrap_or(0));
                }
                sum
            })
        });
        c.bench_function(&format!("linemap_get_miss/{n}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &k in &ks {
                    // Shifted past the populated key range: all misses.
                    hits += usize::from(m.get(k + (8 * n) as u64).is_some());
                }
                hits
            })
        });
    }
}

fn bench_writeset(c: &mut Criterion) {
    for n in FOOTPRINTS {
        let ks = keys(n);

        let mut w = WriteSet::with_capacity(n);
        c.bench_function(&format!("writeset_insert_clear/{n}"), |b| {
            b.iter(|| {
                for &k in &ks {
                    w.insert(Addr(k as usize), k);
                }
                let len = w.len();
                w.clear();
                len
            })
        });

        let mut w = WriteSet::with_capacity(n);
        for &k in &ks {
            w.insert(Addr(k as usize), k);
        }
        c.bench_function(&format!("writeset_get_hit/{n}"), |b| {
            b.iter(|| {
                let mut sum = 0u64;
                for &k in &ks {
                    sum = sum.wrapping_add(w.get(Addr(k as usize)).unwrap_or(0));
                }
                sum
            })
        });
        // The read path's common case: a read probing a write-set that does
        // not contain the address (the fingerprint filter's fast miss).
        c.bench_function(&format!("writeset_get_miss/{n}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &k in &ks {
                    hits += usize::from(w.get(Addr(k as usize + 8 * n)).is_some());
                }
                hits
            })
        });
    }
}

fn bench(c: &mut Criterion) {
    bench_linemap(c);
    bench_writeset(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
