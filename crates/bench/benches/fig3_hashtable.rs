//! Criterion bench reproducing Figure 3 left (constant hash table, 20% writes) at quick scale.
//!
//! `cargo bench --workspace` runs every figure this way; the paper-scale
//! sweeps are produced by the corresponding `fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rhtm_bench::{FigureParams, Scale};

use rhtm_mem::MemConfig;
use rhtm_workloads::{AlgoKind, ConstantHashTable, DriverOpts, OpMix, TmSpec};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let params = FigureParams::new(Scale::Quick).clamp_threads_to_host();
    let elements = params.hashtable_elements;
    let threads = *params.thread_counts.last().unwrap();
    let mut group = c.benchmark_group("fig3_hashtable_20pct");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for algo in [
        AlgoKind::Htm,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
        AlgoKind::Rh1Mixed(100),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    TmSpec::new(algo)
                        .mem(MemConfig::with_data_words(
                            ConstantHashTable::required_words(elements) + 4096,
                        ))
                        .bench(
                            |sim| ConstantHashTable::new(Arc::clone(sim), elements),
                            &DriverOpts::counted_mix(
                                threads,
                                OpMix::read_update(20),
                                params.ops_per_thread,
                            ),
                        )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
