//! Micro-benchmarks of the per-operation costs the paper reasons about:
//! an uninstrumented hardware read (HTM / RH1 fast-path), an instrumented
//! hardware read (Standard HyTM), a TL2 software read, and the commit-time
//! hardware transaction of the RH1 mixed slow-path.

use criterion::{criterion_group, criterion_main, Criterion};
use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_core::{RhConfig, RhRuntime};
use rhtm_htm::{HtmConfig, HtmRuntime};
use rhtm_hytm_std::{StdHytmConfig, StdHytmRuntime};
use rhtm_mem::MemConfig;
use rhtm_stm::Tl2Runtime;

const READS_PER_TXN: usize = 64;

fn bench_reads<R: TmRuntime>(c: &mut Criterion, name: &str, rt: &R) {
    let base = rt.mem().alloc(READS_PER_TXN * 8);
    let mut th = rt.register_thread();
    c.bench_function(&format!("read_txn_64/{name}"), |b| {
        b.iter(|| {
            th.execute(|tx| {
                let mut sum = 0u64;
                for i in 0..READS_PER_TXN {
                    sum = sum.wrapping_add(tx.read(base.offset(i * 8))?);
                }
                Ok(sum)
            })
        })
    });
}

fn bench_update<R: TmRuntime>(c: &mut Criterion, name: &str, rt: &R) {
    let base = rt.mem().alloc(64 * 8);
    let mut th = rt.register_thread();
    let mut k = 0usize;
    c.bench_function(&format!("update_txn_8w/{name}"), |b| {
        b.iter(|| {
            k = (k + 1) % 8;
            th.execute(|tx| {
                for i in 0..8 {
                    let addr = base.offset(((k + i) % 64) * 8);
                    let v = tx.read(addr)?;
                    tx.write(addr, v + 1)?;
                }
                Ok(())
            })
        })
    });
}

fn bench(c: &mut Criterion) {
    let mem = || MemConfig::with_data_words(1 << 14);
    let htm = HtmRuntime::new(mem(), HtmConfig::default());
    bench_reads(c, "HTM", &htm);
    bench_update(c, "HTM", &htm);

    let rh1 = RhRuntime::new(mem(), HtmConfig::default(), RhConfig::rh1_fast());
    bench_reads(c, "RH1 Fast", &rh1);
    bench_update(c, "RH1 Fast", &rh1);

    let rh1_slow = RhRuntime::new(mem(), HtmConfig::default(), RhConfig::rh1_slow());
    bench_reads(c, "RH1 Slow", &rh1_slow);
    bench_update(c, "RH1 Slow", &rh1_slow);

    let std_hytm = StdHytmRuntime::new(mem(), HtmConfig::default(), StdHytmConfig::hardware_only());
    bench_reads(c, "Standard HyTM", &std_hytm);
    bench_update(c, "Standard HyTM", &std_hytm);

    let tl2 = Tl2Runtime::new(mem());
    bench_reads(c, "TL2", &tl2);
    bench_update(c, "TL2", &tl2);
}

criterion_group!(benches, bench);
criterion_main!(benches);
