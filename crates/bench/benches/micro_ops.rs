//! Micro-benchmarks of the per-operation costs the paper reasons about:
//! an uninstrumented hardware read (HTM / RH1 fast-path), an instrumented
//! hardware read (Standard HyTM), a TL2 software read, and the commit-time
//! hardware transaction of the RH1 mixed slow-path.
//!
//! Runtimes are constructed through `TmSpec::visit` — the monomorphised
//! consumption path — so the measured loops stay free of virtual dispatch
//! while construction goes through the same spec machinery as everything
//! else.

use criterion::{criterion_group, criterion_main, Criterion};
use rhtm_api::{TmRuntime, TmThread, Txn};
use rhtm_mem::MemConfig;
use rhtm_workloads::{AlgoKind, AlgoVisitor, TmSpec};

const READS_PER_TXN: usize = 64;

fn bench_reads<R: TmRuntime>(c: &mut Criterion, name: &str, rt: &R) {
    let base = rt.mem().alloc(READS_PER_TXN * 8);
    let mut th = rt.register_thread();
    c.bench_function(&format!("read_txn_64/{name}"), |b| {
        b.iter(|| {
            th.execute(|tx| {
                let mut sum = 0u64;
                for i in 0..READS_PER_TXN {
                    sum = sum.wrapping_add(tx.read(base.offset(i * 8))?);
                }
                Ok(sum)
            })
        })
    });
}

fn bench_update<R: TmRuntime>(c: &mut Criterion, name: &str, rt: &R) {
    let base = rt.mem().alloc(64 * 8);
    let mut th = rt.register_thread();
    let mut k = 0usize;
    c.bench_function(&format!("update_txn_8w/{name}"), |b| {
        b.iter(|| {
            k = (k + 1) % 8;
            th.execute(|tx| {
                for i in 0..8 {
                    let addr = base.offset(((k + i) % 64) * 8);
                    let v = tx.read(addr)?;
                    tx.write(addr, v + 1)?;
                }
                Ok(())
            })
        })
    });
}

struct MicroOps<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl AlgoVisitor for MicroOps<'_> {
    type Out = ();

    fn visit<R: TmRuntime>(self, runtime: R) {
        bench_reads(self.c, &self.name, &runtime);
        bench_update(self.c, &self.name, &runtime);
    }
}

fn bench(c: &mut Criterion) {
    for kind in [
        AlgoKind::Htm,
        AlgoKind::Rh1Fast,
        AlgoKind::Rh1Slow,
        AlgoKind::StdHytm,
        AlgoKind::Tl2,
    ] {
        TmSpec::new(kind)
            .mem(MemConfig::with_data_words(1 << 14))
            .visit(MicroOps {
                c,
                name: kind.label(),
            });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
