//! Criterion bench reproducing Figure 3 right (random array, RH1 vs Standard HyTM across write ratios) at quick scale.
//!
//! `cargo bench --workspace` runs every figure this way; the paper-scale
//! sweeps are produced by the corresponding `fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rhtm_bench::{FigureParams, Scale};

use rhtm_mem::MemConfig;
use rhtm_workloads::{AlgoKind, DriverOpts, OpMix, RandomArray, TmSpec};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let params = FigureParams::new(Scale::Quick).clamp_threads_to_host();
    let entries = params.random_array_entries;
    let threads = *params.thread_counts.last().unwrap();
    for txn_len in [200usize, 40] {
        let mut group = c.benchmark_group(format!("fig3_random_array_len{txn_len}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for writes in [0u8, 50, 90] {
            for algo in [AlgoKind::Rh1Fast, AlgoKind::StdHytm] {
                let id = BenchmarkId::new(algo.label(), format!("writes{writes}"));
                group.bench_with_input(id, &(algo, writes), |b, &(algo, writes)| {
                    b.iter(|| {
                        TmSpec::new(algo)
                            .mem(MemConfig::with_data_words(
                                RandomArray::required_words(entries) + 4096,
                            ))
                            .bench(
                                |sim| RandomArray::new(Arc::clone(sim), entries, txn_len, writes),
                                &DriverOpts::counted_mix(
                                    threads,
                                    OpMix::read_update(100),
                                    params.ops_per_thread / 8,
                                ),
                            )
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
