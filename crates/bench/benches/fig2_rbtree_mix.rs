//! Criterion bench reproducing Figure 2 (constant RB-tree with the RH1 Mixed slow-path variants, 20% and 80% writes) at quick scale.
//!
//! `cargo bench --workspace` runs every figure this way; the paper-scale
//! sweeps are produced by the corresponding `fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rhtm_bench::{FigureParams, Scale};

use rhtm_mem::MemConfig;
use rhtm_workloads::{AlgoKind, ConstantRbTree, DriverOpts, OpMix, TmSpec};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let params = FigureParams::new(Scale::Quick).clamp_threads_to_host();
    let nodes = params.rbtree_nodes;
    let threads = *params.thread_counts.last().unwrap();
    for writes in [20u8, 80] {
        let mut group = c.benchmark_group(format!("fig2_rbtree_{writes}pct"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for algo in [
            AlgoKind::Rh1Fast,
            AlgoKind::Rh1Mixed(10),
            AlgoKind::Rh1Mixed(100),
            AlgoKind::StdHytm,
        ] {
            group.bench_with_input(
                BenchmarkId::from_parameter(algo.label()),
                &algo,
                |b, &algo| {
                    b.iter(|| {
                        TmSpec::new(algo)
                            .mem(MemConfig::with_data_words(
                                ConstantRbTree::required_words(nodes) + 4096,
                            ))
                            .bench(
                                |sim| ConstantRbTree::new(Arc::clone(sim), nodes),
                                &DriverOpts::counted_mix(
                                    threads,
                                    OpMix::read_update(writes),
                                    params.ops_per_thread,
                                ),
                            )
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
