//! The persisted perf trajectory: a canonical subset of the scenario
//! registry, run at a fixed seed/thread-count and emitted as a small,
//! schema-stable JSON document (`BENCH_<n>.json` at the repo root).
//!
//! The full `bench_suite` sweep is hours at paper scale; the trajectory is
//! the receipts-sized complement — a handful of scenarios chosen to cover
//! the hot paths this crate optimises (short transactions, large write-set
//! commits, duplicate-heavy range scans) across the three software commit
//! paths (TL2, the RH1 mixed slow-path, RH2).  Three binaries drive it:
//!
//! * `bench_trajectory` — runs the canonical subset and prints a trajectory
//!   document on stdout,
//! * `bench_compare` — diffs two trajectory documents with a noise
//!   tolerance and exits non-zero on a median regression (the CI gate),
//! * `bench_compare --merge` — folds a before/after pair into the
//!   committed `BENCH_<n>.json` form, attributing probe scenarios to the
//!   named optimizations of the PR.
//!
//! See `docs/BENCHMARKS.md` ("Perf trajectory") for the workflow.

use std::time::Duration;

use rhtm_api::LatencyHistogram;
use rhtm_htm::HtmConfig;
use rhtm_kv::{run_open_loop, KvScenario, LoadOpts};
use rhtm_workloads::{AlgoKind, DriverOpts, OpMix, Scenario, TmSpec};

/// Escapes a string as a JSON string literal (the workspace builds
/// offline, so the emitters here are hand-rolled like the ones in
/// `rhtm_workloads::report`).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Schema tag of every trajectory document (bump on breaking changes).
pub const TRAJECTORY_SCHEMA: &str = "rhtm-trajectory-v1";

/// The canonical scenario subset.  Chosen to exercise every optimisation
/// target: short-transaction overhead (hashtable/rbtree/queue), large
/// write-set commits (random-array), duplicate-heavy range scans
/// (skiplist-range, bank-analytics) and ordered-structure read chains
/// (sortedlist).  Names key the registry in
/// `rhtm_workloads::scenario`; they must stay stable.
pub const CANONICAL_SCENARIOS: [&str; 7] = [
    "hashtable-uniform",
    "rbtree-uniform",
    "sortedlist-uniform",
    "random-array-uniform",
    "skiplist-range-zipf",
    "bank-analytics-scan",
    "queue-balanced",
];

/// The canonical spec axis: the three software commit paths the speed pass
/// touches (TL2 engine, RH1 mixed slow-path, RH2 slow-path).
pub const CANONICAL_ALGOS: [AlgoKind; 3] = [AlgoKind::Tl2, AlgoKind::Rh1Mixed(100), AlgoKind::Rh2];

/// Retry 2.0 probe points appended to every trajectory run:
/// `(scenario, spec label, threads)`.
///
/// The phased flash-crowd skiplist is run under the paper-default pacing
/// policy and under the circuit breaker, on RH1 Mixed 10 (which retries
/// contention aborts in hardware 90% of the time — the load shape the
/// breaker was built to shed).  The pairs document the breaker's win in
/// the committed `BENCH_<n>.json`; `bench_compare` gates only on points
/// present in the *baseline* document, so the probes ride along without
/// widening the regression gate retroactively.
pub const RETRY2_PROBES: [(&str, &str, usize); 4] = [
    (
        "skiplist-flash-crowd",
        "rh1-mixed-10+gv-strict+paper-default",
        2,
    ),
    ("skiplist-flash-crowd", "rh1-mixed-10+gv-strict+cb", 2),
    (
        "skiplist-flash-crowd",
        "rh1-mixed-10+gv-strict+paper-default",
        4,
    ),
    ("skiplist-flash-crowd", "rh1-mixed-10+gv-strict+cb", 4),
];

/// The HTM shape the probe points run under: the paper's §3.1 abort-ratio
/// emulation, forcing aborts onto the hardware fast path so the flash
/// crowd produces the storm the breaker exists for.  Genuine conflicts on
/// a small (or single-core, time-sliced) CI host are far too rare to
/// separate the two pacing policies; the injected ratios make the probe
/// pairs meaningful anywhere.  Probe points are only ever compared
/// probe-vs-probe (both sides of a pair share this shape), never against
/// the canonical uninjected points.
pub fn retry2_probe_htm() -> HtmConfig {
    HtmConfig {
        forced_abort_ratio: 0.4,
        spurious_abort_rate: 0.25,
        ..HtmConfig::default()
    }
}

/// Offered-load probe points appended to every trajectory run:
/// `(KV scenario, shards, offered req/s, spec label)`.
///
/// These are **open-loop** points from the `rhtm_kv` sharded service
/// (Poisson arrivals, one worker, see `docs/BENCHMARKS.md`): the recorded
/// median is *goodput* at the configured offered rate, and each point
/// additionally carries the p99 request latency, which `bench_compare`
/// gates alongside throughput once a baseline document contains it.  The
/// pairs cover two shard counts at each of two rates — the scaling story
/// (1 -> 4 shards on single-key traffic) and the cross-shard commit story
/// (2 -> 4 shards under transfers).
pub const KV_PROBES: [(&str, usize, u64, &str); 4] = [
    ("kv-point-ops", 1, 20_000, "tl2+gv-strict+paper-default"),
    ("kv-point-ops", 4, 20_000, "tl2+gv-strict+paper-default"),
    ("kv-transfer", 2, 10_000, "rh2+gv-strict+paper-default"),
    ("kv-transfer", 4, 10_000, "rh2+gv-strict+paper-default"),
];

/// The large-footprint churn probes `(scenario, shards, rate, keys,
/// spec)`: insert/remove steady state with the key space overridden (the
/// `keys=` axis), exercising segmented heaps, arena allocation and epoch
/// reclamation at a quarter-million and a million live keys.  They ride
/// the same trajectory document as [`KV_PROBES`]; the key-space override
/// is folded into the scenario string by
/// [`kv_probe_scenario_with_keys`].
pub const MEM_PROBES: [(&str, usize, u64, u64, &str); 2] = [
    (
        "kv-churn-1m",
        4,
        40_000,
        250_000,
        "rh2+gv-strict+paper-default",
    ),
    (
        "kv-churn-1m",
        4,
        40_000,
        1_000_000,
        "rh2+gv-strict+paper-default",
    ),
];

/// The synthetic scenario string identifying one KV probe inside a
/// trajectory document (the probe axes are folded into the name so the
/// flat [`point_key`] identity keeps working).
pub fn kv_probe_scenario(name: &str, shards: usize, rate: u64) -> String {
    format!("{name}[shards={shards},rate={rate},arrival=poisson]")
}

/// [`kv_probe_scenario`] with a key-space override folded in — the
/// identity of the [`MEM_PROBES`] points.
pub fn kv_probe_scenario_with_keys(name: &str, shards: usize, rate: u64, keys: u64) -> String {
    format!("{name}[shards={shards},rate={rate},keys={keys},arrival=poisson]")
}

/// Parameters of one trajectory run.
#[derive(Clone, Debug)]
pub struct TrajectoryParams {
    /// Worker threads per point (fixed; 1 keeps CI noise down and measures
    /// exactly the per-transaction software overhead this crate optimises).
    pub threads: usize,
    /// Repetitions per point; the median is recorded.
    pub reps: usize,
    /// Measurement interval of each repetition.
    pub duration: Duration,
    /// Divisor applied to each scenario's registered (paper-like) size.
    pub size_divisor: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TrajectoryParams {
    fn default() -> Self {
        TrajectoryParams {
            threads: 1,
            reps: 5,
            duration: Duration::from_millis(40),
            size_divisor: 8,
            seed: 0xbe6c_c0de,
        }
    }
}

/// One measured `(scenario, spec, threads)` point of the trajectory.
#[derive(Clone, Debug)]
pub struct TrajectoryPoint {
    /// Scenario name (registry key).
    pub scenario: String,
    /// Full spec label of the runtime point (`algo+clock+policy`).
    pub spec: String,
    /// Worker threads.
    pub threads: usize,
    /// Median committed-ops/s over the repetitions.
    pub median_ops_per_sec: f64,
    /// Fastest repetition.
    pub max_ops_per_sec: f64,
    /// Slowest repetition.
    pub min_ops_per_sec: f64,
    /// Commits of the median repetition.
    pub commits: u64,
    /// Aborts of the median repetition.
    pub aborts: u64,
    /// p99 request latency (ns) — only present on open-loop points (the
    /// [`KV_PROBES`] and [`MEM_PROBES`]); closed-loop points have no
    /// per-request latency to report.  Computed from the per-request
    /// samples of *all* repetitions pooled into one histogram: a single
    /// 40 ms repetition holds ~400 requests, so its p99 sits ~4 requests
    /// from the top and is scheduler-hiccup-dominated, while the pooled
    /// p99 sits ~20 samples deep over ~2000 requests.  Pooling lowers
    /// variance without biasing the direction (unlike a min-across-reps
    /// statistic, which systematically underestimates the tail and would
    /// let an intermittent regression hide behind one clean repetition).
    /// Documents from before PR 10 recorded the median-by-goodput
    /// repetition's p99 — an estimate of the same location — so the
    /// normalized latency gate stays armed across that boundary.
    pub p99_ns: Option<u64>,
}

/// Pools the per-repetition request-latency histograms of one open-loop
/// point and returns the p99 of the combined sample (see
/// [`TrajectoryPoint::p99_ns`] for why pooling, not a per-rep pick).
fn pooled_p99(reps: &[(f64, u64, u64, LatencyHistogram)]) -> Option<u64> {
    let mut pooled = LatencyHistogram::new();
    for (_, _, _, h) in reps {
        pooled.merge(h);
    }
    let p99 = pooled.value_at_quantile(0.99);
    (p99 > 0).then_some(p99)
}

/// Runs the canonical subset, calling `progress` before each point.
///
/// # Panics
///
/// Panics if a canonical scenario name is missing from the registry — the
/// names key the persisted trajectory, so a silent skip would corrupt every
/// future comparison.
pub fn run_trajectory(
    params: &TrajectoryParams,
    mut progress: impl FnMut(&str, &str),
) -> Vec<TrajectoryPoint> {
    let run_point = |name: &str, spec: &TmSpec, threads: usize| -> TrajectoryPoint {
        let scenario = Scenario::find(name)
            .unwrap_or_else(|| panic!("canonical scenario '{name}' missing from the registry"));
        let size = scenario.sized(params.size_divisor);
        let opts = DriverOpts::timed_mix(threads, OpMix::read_update(0), params.duration)
            .with_seed(params.seed);
        let mut reps: Vec<(f64, u64, u64)> = (0..params.reps.max(1))
            .map(|_| {
                let r = scenario.run_spec(spec, size, &opts);
                (r.throughput(), r.stats.commits(), r.stats.aborts())
            })
            .collect();
        reps.sort_by(|a, b| a.0.total_cmp(&b.0));
        let median = reps[reps.len() / 2];
        TrajectoryPoint {
            scenario: name.to_string(),
            spec: spec.label(),
            threads,
            median_ops_per_sec: median.0,
            max_ops_per_sec: reps.last().unwrap().0,
            min_ops_per_sec: reps[0].0,
            commits: median.1,
            aborts: median.2,
            p99_ns: None,
        }
    };
    let mut points = Vec::new();
    for name in CANONICAL_SCENARIOS {
        for kind in CANONICAL_ALGOS {
            let spec = TmSpec::new(kind);
            progress(name, &spec.label());
            points.push(run_point(name, &spec, params.threads));
        }
    }
    for (name, label, threads) in RETRY2_PROBES {
        let spec = TmSpec::parse(label)
            .unwrap_or_else(|| panic!("retry2 probe spec '{label}' failed to parse"))
            .htm(retry2_probe_htm());
        progress(name, label);
        points.push(run_point(name, &spec, threads));
    }
    for (name, shards, rate, label) in KV_PROBES {
        let kv = KvScenario::find(name)
            .unwrap_or_else(|| panic!("KV probe scenario '{name}' missing from the registry"));
        let spec = TmSpec::parse(label)
            .unwrap_or_else(|| panic!("KV probe spec '{label}' failed to parse"));
        let scenario = kv_probe_scenario(name, shards, rate);
        progress(&scenario, label);
        // One worker keeps the plan (and thus the probe) fully
        // deterministic per seed; the service is rebuilt per repetition
        // so every rep starts from the seeded state.
        let workers = 1;
        let mut reps: Vec<(f64, u64, u64, LatencyHistogram)> = (0..params.reps.max(1))
            .map(|_| {
                let service = kv.service(&spec, shards, workers);
                let opts = LoadOpts::new(rate as f64, params.duration)
                    .with_workers(workers)
                    .with_mix(kv.mix)
                    .with_seed(params.seed);
                let report = run_open_loop(&service, &opts);
                (
                    report.goodput,
                    report.commits,
                    report.aborts,
                    report.latency,
                )
            })
            .collect();
        let p99 = pooled_p99(&reps);
        reps.sort_by(|a, b| a.0.total_cmp(&b.0));
        let median = &reps[reps.len() / 2];
        points.push(TrajectoryPoint {
            scenario,
            spec: spec.label(),
            threads: workers,
            median_ops_per_sec: median.0,
            max_ops_per_sec: reps.last().unwrap().0,
            min_ops_per_sec: reps[0].0,
            commits: median.1,
            aborts: median.2,
            p99_ns: p99,
        });
    }
    for (name, shards, rate, keys, label) in MEM_PROBES {
        let kv = KvScenario::find(name)
            .unwrap_or_else(|| panic!("mem probe scenario '{name}' missing from the registry"));
        let spec = TmSpec::parse(label)
            .unwrap_or_else(|| panic!("mem probe spec '{label}' failed to parse"));
        let scenario = kv_probe_scenario_with_keys(name, shards, rate, keys);
        progress(&scenario, label);
        let workers = 1;
        let mut reps: Vec<(f64, u64, u64, LatencyHistogram)> = (0..params.reps.max(1))
            .map(|_| {
                let service = kv.service_with_keys(&spec, shards, workers, keys);
                let opts = LoadOpts::new(rate as f64, params.duration)
                    .with_workers(workers)
                    .with_mix(kv.mix)
                    .with_seed(params.seed);
                let report = run_open_loop(&service, &opts);
                (
                    report.goodput,
                    report.commits,
                    report.aborts,
                    report.latency,
                )
            })
            .collect();
        let p99 = pooled_p99(&reps);
        reps.sort_by(|a, b| a.0.total_cmp(&b.0));
        let median = &reps[reps.len() / 2];
        points.push(TrajectoryPoint {
            scenario,
            spec: spec.label(),
            threads: workers,
            median_ops_per_sec: median.0,
            max_ops_per_sec: reps.last().unwrap().0,
            min_ops_per_sec: reps[0].0,
            commits: median.1,
            aborts: median.2,
            p99_ns: p99,
        });
    }
    points
}

/// A before/after row attributing one named optimization to a probe point
/// of the trajectory (the committed `BENCH_<n>.json` carries one per
/// optimization of the PR).
#[derive(Clone, Debug)]
pub struct OptimizationRow {
    /// Optimization name (matches the PR/ARCHITECTURE.md terminology).
    pub name: String,
    /// The `(scenario, spec)` probe whose median the row reports.
    pub probe: String,
    /// Median ops/s before the optimization.
    pub before_ops_per_sec: f64,
    /// Median ops/s after.
    pub after_ops_per_sec: f64,
}

impl OptimizationRow {
    /// Relative change in percent (positive = faster).
    pub fn delta_percent(&self) -> f64 {
        if self.before_ops_per_sec <= 0.0 {
            0.0
        } else {
            (self.after_ops_per_sec / self.before_ops_per_sec - 1.0) * 100.0
        }
    }
}

/// Maps each named optimization of the speed pass to the trajectory probe
/// most sensitive to it (scenario name, algorithm of the spec axis).
///
/// The attribution is a measurement aid, not a claim of isolation: every
/// probe runs all optimizations at once, and the microbenches
/// (`benches/micro_sets.rs`) are the per-layer A/B instrument.
pub const OPTIMIZATION_PROBES: [(&str, &str, AlgoKind); 5] = [
    (
        "generation-stamped-clear",
        "hashtable-uniform",
        AlgoKind::Tl2,
    ),
    (
        "allocation-free-commit",
        "random-array-uniform",
        AlgoKind::Tl2,
    ),
    ("read-set-dedup", "skiplist-range-zipf", AlgoKind::Tl2),
    (
        "write-set-fast-miss-filter",
        "rbtree-uniform",
        AlgoKind::Tl2,
    ),
    (
        "cache-line-padding",
        "bank-analytics-scan",
        AlgoKind::Rh1Mixed(100),
    ),
];

/// Serialises a trajectory document.  `pr` tags the document with the PR
/// that produced it; `optimizations` is empty for fresh runs and populated
/// by the `--merge` mode; `before` supplies per-point before-medians keyed
/// like [`point_key`].
pub fn trajectory_to_json(
    pr: u64,
    params: &TrajectoryParams,
    points: &[TrajectoryPoint],
    before: &[(String, f64)],
    optimizations: &[OptimizationRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema\": {},\n",
        json_escape(TRAJECTORY_SCHEMA)
    ));
    out.push_str(&format!("  \"pr\": {pr},\n"));
    out.push_str(&format!("  \"seed\": {},\n", params.seed));
    out.push_str(&format!("  \"threads\": {},\n", params.threads));
    out.push_str(&format!("  \"reps\": {},\n", params.reps));
    out.push_str(&format!(
        "  \"duration_ms\": {},\n",
        params.duration.as_millis()
    ));
    out.push_str(&format!("  \"size_divisor\": {},\n", params.size_divisor));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut fields = vec![
            format!("\"scenario\": {}", json_escape(&p.scenario)),
            format!("\"spec\": {}", json_escape(&p.spec)),
            format!("\"threads\": {}", p.threads),
            format!("\"median_ops_per_sec\": {:.1}", p.median_ops_per_sec),
            format!("\"min_ops_per_sec\": {:.1}", p.min_ops_per_sec),
            format!("\"max_ops_per_sec\": {:.1}", p.max_ops_per_sec),
            format!("\"commits\": {}", p.commits),
            format!("\"aborts\": {}", p.aborts),
        ];
        if let Some(p99) = p.p99_ns {
            fields.push(format!("\"p99_ns\": {p99}"));
        }
        let key = point_key(&p.scenario, &p.spec, p.threads);
        if let Some((_, b)) = before.iter().find(|(k, _)| *k == key) {
            fields.push(format!("\"before_median_ops_per_sec\": {b:.1}"));
        }
        out.push_str(&format!("    {{{}}}", fields.join(", ")));
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"optimizations\": [\n");
    for (i, o) in optimizations.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": {}, \"probe\": {}, \"before_ops_per_sec\": {:.1}, \
             \"after_ops_per_sec\": {:.1}, \"delta_percent\": {:.1}}}",
            json_escape(&o.name),
            json_escape(&o.probe),
            o.before_ops_per_sec,
            o.after_ops_per_sec,
            o.delta_percent()
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The identity of a trajectory point inside a document.
pub fn point_key(scenario: &str, spec: &str, threads: usize) -> String {
    format!("{scenario}|{spec}|{threads}")
}

// ---------------------------------------------------------------------
// A minimal JSON value parser (the workspace builds offline, so no
// serde_json).  The emitters above and in `rhtm_workloads::report` are
// hand-rolled too; this is their reading half, used by `bench_compare`.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`; the trajectory's counters fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        let escaped = match b.get(*pos + 1) {
                            Some(b'"') => '"',
                            Some(b'\\') => '\\',
                            Some(b'/') => '/',
                            Some(b'n') => '\n',
                            Some(b't') => '\t',
                            Some(b'r') => '\r',
                            Some(b'b') => '\u{8}',
                            Some(b'f') => '\u{c}',
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 6;
                                continue;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        };
                        s.push(escaped);
                        *pos += 2;
                    }
                    Some(&c) if c < 0x20 => {
                        return Err(format!("raw control character at byte {pos}"))
                    }
                    Some(&c) if c < 0x80 => {
                        s.push(c as char);
                        *pos += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8: copy the whole code point.
                        let rest = std::str::from_utf8(&b[*pos..])
                            .map_err(|_| "invalid UTF-8".to_string())?;
                        let ch = rest.chars().next().unwrap();
                        s.push(ch);
                        *pos += ch.len_utf8();
                    }
                }
            }
        }
        Some(b't') => parse_literal(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null").map(|_| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while b.get(*pos).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
        _ => Err(format!("unexpected value at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

// ---------------------------------------------------------------------
// Document-level helpers shared by bench_compare and the tests.
// ---------------------------------------------------------------------

/// A trajectory document reduced to its comparable points.
#[derive(Clone, Debug)]
pub struct TrajectoryDoc {
    /// `(point key, median ops/s)` per point, in document order.
    pub points: Vec<(String, f64)>,
    /// `(point key, p99 latency ns)` for the points that carry one (the
    /// open-loop KV probes; documents from before PR 9 have none).
    pub lat_points: Vec<(String, f64)>,
}

/// Parses and schema-checks a trajectory document.
pub fn parse_trajectory(text: &str) -> Result<TrajectoryDoc, String> {
    let doc = Json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != TRAJECTORY_SCHEMA {
        return Err(format!(
            "schema mismatch: got '{schema}', expected '{TRAJECTORY_SCHEMA}'"
        ));
    }
    for field in ["seed", "threads", "reps", "duration_ms", "size_divisor"] {
        doc.get(field)
            .and_then(Json::as_num)
            .ok_or(format!("missing numeric \"{field}\""))?;
    }
    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("missing \"points\" array")?;
    if points.is_empty() {
        return Err("empty \"points\" array".to_string());
    }
    let mut out = Vec::with_capacity(points.len());
    let mut lat_points = Vec::new();
    for p in points {
        let scenario = p
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("point missing \"scenario\"")?;
        let spec = p
            .get("spec")
            .and_then(Json::as_str)
            .ok_or("point missing \"spec\"")?;
        let threads = p
            .get("threads")
            .and_then(Json::as_num)
            .ok_or("point missing \"threads\"")? as usize;
        let median = p
            .get("median_ops_per_sec")
            .and_then(Json::as_num)
            .ok_or("point missing \"median_ops_per_sec\"")?;
        for field in ["min_ops_per_sec", "max_ops_per_sec", "commits", "aborts"] {
            p.get(field)
                .and_then(Json::as_num)
                .ok_or(format!("point missing numeric \"{field}\""))?;
        }
        let key = point_key(scenario, spec, threads);
        if let Some(p99) = p.get("p99_ns").and_then(Json::as_num) {
            if p99 <= 0.0 {
                return Err(format!("point '{key}' has non-positive \"p99_ns\""));
            }
            lat_points.push((key.clone(), p99));
        }
        out.push((key, median));
    }
    Ok(TrajectoryDoc {
        points: out,
        lat_points,
    })
}

/// Parses a trajectory document back into its full run form (parameters
/// and complete points) — the reading half of [`trajectory_to_json`],
/// used by `bench_compare --merge` to re-emit the merged document.
pub fn parse_full_trajectory(
    text: &str,
) -> Result<(TrajectoryParams, Vec<TrajectoryPoint>), String> {
    parse_trajectory(text)?; // schema check first, for uniform errors
    let doc = Json::parse(text)?;
    let num = |field: &str| -> Result<f64, String> {
        doc.get(field)
            .and_then(Json::as_num)
            .ok_or(format!("missing numeric \"{field}\""))
    };
    let params = TrajectoryParams {
        threads: num("threads")? as usize,
        reps: num("reps")? as usize,
        duration: Duration::from_millis(num("duration_ms")? as u64),
        size_divisor: num("size_divisor")? as u64,
        seed: num("seed")? as u64,
    };
    let mut points = Vec::new();
    for p in doc.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
        let field = |name: &str| -> Result<f64, String> {
            p.get(name)
                .and_then(Json::as_num)
                .ok_or(format!("point missing numeric \"{name}\""))
        };
        points.push(TrajectoryPoint {
            scenario: p
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("point missing \"scenario\"")?
                .to_string(),
            spec: p
                .get("spec")
                .and_then(Json::as_str)
                .ok_or("point missing \"spec\"")?
                .to_string(),
            threads: field("threads")? as usize,
            median_ops_per_sec: field("median_ops_per_sec")?,
            min_ops_per_sec: field("min_ops_per_sec")?,
            max_ops_per_sec: field("max_ops_per_sec")?,
            commits: field("commits")? as u64,
            aborts: field("aborts")? as u64,
            p99_ns: p.get("p99_ns").and_then(Json::as_num).map(|v| v as u64),
        });
    }
    Ok((params, points))
}

/// The verdict of one compared point.
#[derive(Clone, Debug)]
pub struct ComparedPoint {
    /// Point key ([`point_key`]).
    pub key: String,
    /// Baseline median ops/s.
    pub base: f64,
    /// Candidate median ops/s.
    pub new: f64,
    /// Candidate/baseline ratio after normalization.
    pub ratio: f64,
    /// `true` when the point regresses past the tolerance.
    pub regressed: bool,
}

/// Compares two trajectory documents point-by-point.
///
/// With `normalize` the per-point ratios are divided by the geometric mean
/// of all ratios first, so a uniform machine-speed difference between the
/// two runs (the committed baseline was produced on different hardware than
/// CI) cancels out and only *relative* regressions are flagged.  Without it
/// the ratios are compared raw (same-machine A/B).
pub fn compare_trajectories(
    base: &TrajectoryDoc,
    new: &TrajectoryDoc,
    tolerance: f64,
    normalize: bool,
) -> Result<Vec<ComparedPoint>, String> {
    let mut pairs = Vec::new();
    for (key, b) in &base.points {
        let n = new
            .points
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .ok_or(format!("candidate is missing point '{key}'"))?;
        if *b <= 0.0 {
            return Err(format!("baseline point '{key}' has non-positive median"));
        }
        pairs.push((key.clone(), *b, n));
    }
    let scale = if normalize {
        let log_sum: f64 = pairs.iter().map(|(_, b, n)| (n / b).ln()).sum();
        (log_sum / pairs.len() as f64).exp()
    } else {
        1.0
    };
    Ok(pairs
        .into_iter()
        .map(|(key, base, new)| {
            let ratio = (new / base) / scale;
            ComparedPoint {
                key,
                base,
                new,
                ratio,
                regressed: ratio < 1.0 - tolerance,
            }
        })
        .collect())
}

/// Compares the p99 latency of the points that carry one, mirroring
/// [`compare_trajectories`] with the verdict inverted: latency regresses
/// *upward*, so a point is flagged when its normalized ratio exceeds
/// `1 + tolerance`.
///
/// Only points present in the **baseline's** `lat_points` are gated (a
/// candidate must still carry every one of them), so a baseline from
/// before PR 9 — no `p99_ns` fields anywhere — yields an empty result and
/// the latency gate passes vacuously.  Any baseline that does carry
/// `p99_ns` points arms the gate unconditionally: estimator changes must
/// not ride along with (and thereby un-gate) the hot-path changes they
/// would otherwise mask.
/// Normalization uses its own geometric mean: machine-speed differences
/// shift latency and throughput by different factors.
pub fn compare_latencies(
    base: &TrajectoryDoc,
    new: &TrajectoryDoc,
    tolerance: f64,
    normalize: bool,
) -> Result<Vec<ComparedPoint>, String> {
    let mut pairs = Vec::new();
    for (key, b) in &base.lat_points {
        let n = new
            .lat_points
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .ok_or(format!("candidate is missing p99 for point '{key}'"))?;
        pairs.push((key.clone(), *b, n));
    }
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let scale = if normalize {
        let log_sum: f64 = pairs.iter().map(|(_, b, n)| (n / b).ln()).sum();
        (log_sum / pairs.len() as f64).exp()
    } else {
        1.0
    };
    Ok(pairs
        .into_iter()
        .map(|(key, base, new)| {
            let ratio = (new / base) / scale;
            ComparedPoint {
                key,
                base,
                new,
                ratio,
                regressed: ratio > 1.0 + tolerance,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(points: &[(&str, f64)]) -> TrajectoryDoc {
        TrajectoryDoc {
            points: points.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            lat_points: Vec::new(),
        }
    }

    fn lat_doc(lat_points: &[(&str, f64)]) -> TrajectoryDoc {
        TrajectoryDoc {
            points: Vec::new(),
            lat_points: lat_points
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    #[test]
    fn canonical_scenarios_exist_in_the_registry() {
        for name in CANONICAL_SCENARIOS {
            assert!(Scenario::find(name).is_some(), "missing scenario {name}");
        }
        for (_, probe, _) in OPTIMIZATION_PROBES {
            assert!(
                CANONICAL_SCENARIOS.contains(&probe),
                "probe {probe} not in the canonical subset"
            );
        }
        for (scenario, label, threads) in RETRY2_PROBES {
            assert!(
                Scenario::find(scenario).is_some(),
                "missing probe scenario {scenario}"
            );
            let spec = TmSpec::parse(label).expect(label);
            assert_eq!(spec.label(), label, "probe labels must be canonical");
            assert!(threads >= 2, "the probes need contention to be meaningful");
        }
    }

    #[test]
    fn trajectory_roundtrips_through_emit_and_parse() {
        let params = TrajectoryParams {
            reps: 1,
            duration: Duration::from_millis(2),
            size_divisor: 512,
            ..TrajectoryParams::default()
        };
        // A tiny real run over one scenario to keep the test fast.
        let scenario = Scenario::find("hashtable-uniform").unwrap();
        let spec = TmSpec::new(AlgoKind::Tl2);
        let opts =
            DriverOpts::timed_mix(1, OpMix::read_update(0), params.duration).with_seed(params.seed);
        let r = scenario.run_spec(&spec, scenario.sized(params.size_divisor), &opts);
        let points = vec![TrajectoryPoint {
            scenario: scenario.name.to_string(),
            spec: spec.label(),
            threads: 1,
            median_ops_per_sec: r.throughput(),
            min_ops_per_sec: r.throughput(),
            max_ops_per_sec: r.throughput(),
            commits: r.stats.commits(),
            aborts: r.stats.aborts(),
            p99_ns: None,
        }];
        let json = trajectory_to_json(7, &params, &points, &[], &[]);
        rhtm_workloads::report::validate_json(&json).expect("emitted JSON must parse");
        let parsed = parse_trajectory(&json).expect("document must schema-check");
        assert_eq!(parsed.points.len(), 1);
        assert!(parsed.points[0].0.starts_with("hashtable-uniform|tl2+"));
    }

    #[test]
    fn merge_fields_appear_in_the_document() {
        let params = TrajectoryParams::default();
        let point = TrajectoryPoint {
            scenario: "s".into(),
            spec: "tl2+gv-strict+paper-default".into(),
            threads: 1,
            median_ops_per_sec: 200.0,
            min_ops_per_sec: 190.0,
            max_ops_per_sec: 210.0,
            commits: 10,
            aborts: 0,
            p99_ns: None,
        };
        let key = point_key("s", "tl2+gv-strict+paper-default", 1);
        let opt = OptimizationRow {
            name: "read-set-dedup".into(),
            probe: "s / tl2".into(),
            before_ops_per_sec: 100.0,
            after_ops_per_sec: 200.0,
        };
        let json = trajectory_to_json(7, &params, &[point], &[(key, 100.0)], &[opt]);
        assert!(json.contains("\"before_median_ops_per_sec\": 100.0"));
        assert!(json.contains("\"delta_percent\": 100.0"));
        rhtm_workloads::report::validate_json(&json).unwrap();
    }

    #[test]
    fn json_parser_reads_values_and_rejects_garbage() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        for bad in ["", "[1,]", "{\"a\" 1}", "{\"a\": 1} x", "\"oops", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn compare_flags_relative_regressions_only_after_normalization() {
        let base = doc(&[("a", 100.0), ("b", 100.0), ("c", 100.0)]);
        // The candidate machine is uniformly 2x slower, and point c
        // additionally regressed ~30% relative to its peers.
        let new = doc(&[("a", 50.0), ("b", 50.0), ("c", 35.0)]);
        let raw = compare_trajectories(&base, &new, 0.15, false).unwrap();
        assert!(raw.iter().all(|p| p.regressed), "raw mode sees the 2x");
        let norm = compare_trajectories(&base, &new, 0.15, true).unwrap();
        assert!(!norm[0].regressed && !norm[1].regressed);
        assert!(norm[2].regressed, "relative regression must survive");
    }

    #[test]
    fn compare_requires_matching_points() {
        let base = doc(&[("a", 100.0)]);
        let new = doc(&[("b", 100.0)]);
        assert!(compare_trajectories(&base, &new, 0.1, true).is_err());
    }

    #[test]
    fn kv_probes_resolve_against_both_registries() {
        for (name, shards, rate, label) in KV_PROBES {
            let kv = KvScenario::find(name).unwrap_or_else(|| panic!("missing KV probe {name}"));
            assert!(shards >= 1 && kv.key_space as usize >= shards);
            assert!(rate > 0);
            let spec = TmSpec::parse(label).expect(label);
            assert_eq!(spec.label(), label, "probe labels must be canonical");
        }
        // The probes cover at least two shard counts and two rates.
        let shard_counts: std::collections::HashSet<_> =
            KV_PROBES.iter().map(|&(_, s, _, _)| s).collect();
        let rates: std::collections::HashSet<_> = KV_PROBES.iter().map(|&(_, _, r, _)| r).collect();
        assert!(shard_counts.len() >= 2 && rates.len() >= 2);
    }

    #[test]
    fn mem_probes_resolve_and_scale_the_key_space() {
        let mut keyed = std::collections::HashSet::new();
        for (name, shards, rate, keys, label) in MEM_PROBES {
            let kv = KvScenario::find(name).unwrap_or_else(|| panic!("missing mem probe {name}"));
            // The churn mix is what makes these memory probes: puts insert,
            // deletes retire, so allocation/reclamation stays on the hot path.
            assert!(kv.mix.put_pct > 0 && kv.mix.delete_pct > 0, "{name}");
            assert!(shards >= 1 && rate > 0 && keys as usize >= shards);
            let spec = TmSpec::parse(label).expect(label);
            assert_eq!(spec.label(), label, "probe labels must be canonical");
            assert!(
                keyed.insert(kv_probe_scenario_with_keys(name, shards, rate, keys)),
                "duplicate mem probe identity"
            );
        }
        // The sweep reaches a million keys and covers at least two sizes.
        assert!(MEM_PROBES.iter().any(|&(_, _, _, k, _)| k >= 1_000_000));
        let sizes: std::collections::HashSet<_> =
            MEM_PROBES.iter().map(|&(_, _, _, k, _)| k).collect();
        assert!(sizes.len() >= 2);
    }

    #[test]
    fn p99_round_trips_through_emit_and_parse() {
        let params = TrajectoryParams::default();
        let with_lat = TrajectoryPoint {
            scenario: kv_probe_scenario("kv-point-ops", 2, 20_000),
            spec: "tl2+gv-strict+paper-default".into(),
            threads: 1,
            median_ops_per_sec: 19_000.0,
            min_ops_per_sec: 18_500.0,
            max_ops_per_sec: 19_400.0,
            commits: 800,
            aborts: 2,
            p99_ns: Some(42_000),
        };
        let without = TrajectoryPoint {
            scenario: "hashtable-uniform".into(),
            spec: "tl2+gv-strict+paper-default".into(),
            threads: 1,
            median_ops_per_sec: 100.0,
            min_ops_per_sec: 90.0,
            max_ops_per_sec: 110.0,
            commits: 10,
            aborts: 0,
            p99_ns: None,
        };
        let json = trajectory_to_json(9, &params, &[with_lat.clone(), without], &[], &[]);
        assert!(json.contains("\"p99_ns\": 42000"));
        let parsed = parse_trajectory(&json).unwrap();
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.lat_points.len(), 1, "only the KV probe carries p99");
        assert_eq!(parsed.lat_points[0].1, 42_000.0);
        let (_, full) = parse_full_trajectory(&json).unwrap();
        assert_eq!(full[0].p99_ns, Some(42_000));
        assert_eq!(full[1].p99_ns, None);
        // Re-emitting the parsed form preserves the field (the --merge path).
        let again = trajectory_to_json(9, &params, &full, &[], &[]);
        assert!(again.contains("\"p99_ns\": 42000"));
    }

    #[test]
    fn latency_compare_flags_upward_regressions_and_skips_bare_baselines() {
        let base = lat_doc(&[("a", 1000.0), ("b", 1000.0), ("c", 1000.0)]);
        // Uniformly 2x slower machine, with c an extra ~40% worse.
        let new = lat_doc(&[("a", 2000.0), ("b", 2000.0), ("c", 2800.0)]);
        let norm = compare_latencies(&base, &new, 0.15, true).unwrap();
        assert!(!norm[0].regressed && !norm[1].regressed);
        assert!(norm[2].regressed, "relative latency regression must fire");
        // An improvement is never a regression.
        let faster = lat_doc(&[("a", 500.0), ("b", 500.0), ("c", 500.0)]);
        let ok = compare_latencies(&base, &faster, 0.15, false).unwrap();
        assert!(ok.iter().all(|p| !p.regressed));
        // Pre-PR-9 baseline: no lat points at all -> vacuous pass, even
        // when the candidate has them.
        let bare = lat_doc(&[]);
        assert!(compare_latencies(&bare, &new, 0.15, true)
            .unwrap()
            .is_empty());
        // But a baseline point whose p99 the candidate dropped is an error.
        assert!(compare_latencies(&base, &bare, 0.15, true).is_err());
    }

    #[test]
    fn latency_gate_arms_whenever_the_baseline_carries_p99_points() {
        // No estimator-identity escape hatch: a baseline with p99 points
        // always gates, whatever metadata either document carries (the
        // PR-10 review caught a `p99_estimator`-mismatch bypass that
        // disarmed the gate exactly for the PR changing the estimator).
        let base = lat_doc(&[("a", 1000.0), ("b", 1000.0)]);
        let new = lat_doc(&[("a", 9000.0), ("b", 9000.0)]);
        let cmp = compare_latencies(&base, &new, 0.15, false).unwrap();
        assert_eq!(cmp.len(), 2);
        assert!(cmp.iter().all(|p| p.regressed));
    }

    #[test]
    fn wide_latency_tolerance_passes_noise_but_fails_blowups() {
        // CI gates latency at --lat-tolerance=9.0 (fail above 10x): the
        // ~2-4x preemption scatter of a time-sliced host passes, an
        // order-of-magnitude tail blow-up does not.
        let base = lat_doc(&[("a", 1000.0), ("b", 1000.0)]);
        let noisy = lat_doc(&[("a", 3000.0), ("b", 4000.0)]);
        let cmp = compare_latencies(&base, &noisy, 9.0, false).unwrap();
        assert!(cmp.iter().all(|p| !p.regressed));
        let blown = lat_doc(&[("a", 3000.0), ("b", 11000.0)]);
        let cmp = compare_latencies(&base, &blown, 9.0, false).unwrap();
        assert!(!cmp[0].regressed);
        assert!(cmp[1].regressed, "an 11x p99 must fail the 10x guardrail");
    }
}
