//! Shared CLI plumbing for the benchmark binaries.
//!
//! Every binary accepts the same `spec=` axis: a comma-separated list of
//! [`TmSpec`] labels (`spec=rh2+gv6+adaptive,tl2+gv5`) selecting the
//! runtime points the experiment sweeps instead of its paper-default
//! series.  The grammar is documented on [`rhtm_workloads::spec`] and in
//! `docs/BENCHMARKS.md`.

use rhtm_workloads::TmSpec;

use crate::params::Scale;

/// Extracts the `spec=` axis from a binary's raw arguments.
///
/// Returns `Ok(None)` when no `spec=` argument is present (the binary
/// runs its paper-default series), `Ok(Some(specs))` for a well-formed
/// axis, and `Err` with a printable message for a malformed or duplicated
/// one.
pub fn spec_axis(args: &[String]) -> Result<Option<Vec<TmSpec>>, String> {
    let mut found = None;
    for arg in args {
        if let Some(list) = arg.strip_prefix("spec=") {
            if found.is_some() {
                return Err("spec= given more than once".to_string());
            }
            match TmSpec::parse_list(list) {
                Some(specs) => found = Some(specs),
                None => {
                    return Err(format!(
                        "bad spec list '{list}' (grammar: algo[+clock][+policy], \
                         e.g. spec=rh2+gv6+adaptive,tl2+gv5)"
                    ))
                }
            }
        }
    }
    Ok(found)
}

/// Parses the figure binaries' shared positional arguments: an optional
/// scale (`paper`/`quick`) plus the `spec=` axis; anything else is an
/// error.  Extra argument names a binary handles itself (e.g. fig2's
/// `--writes`) are listed in `extra_with_value`; each consumes exactly
/// one following **numeric** value, which is validated here so a
/// forgotten value cannot silently swallow the next real argument
/// (`--writes quick` is an error, not a paper-scale run).
pub fn figure_args(args: &[String], extra_with_value: &[&str]) -> Result<FigureArgs, String> {
    let mut out = FigureArgs {
        scale: Scale::Paper,
        specs: spec_axis(args)?,
    };
    let mut value_of: Option<&str> = None;
    for arg in args {
        if let Some(flag) = value_of.take() {
            if arg.parse::<i64>().is_err() {
                return Err(format!("'{flag}' expects a numeric value, got '{arg}'"));
            }
            continue;
        }
        if extra_with_value.contains(&arg.as_str()) {
            value_of = Some(arg);
        } else if let Some(scale) = Scale::parse(arg) {
            out.scale = scale;
        } else if arg.starts_with("spec=") {
            // Validated by spec_axis above.
        } else {
            return Err(format!(
                "unknown argument '{arg}' (expected paper|quick or spec=..)"
            ));
        }
    }
    if let Some(flag) = value_of {
        return Err(format!("'{flag}' expects a value"));
    }
    Ok(out)
}

/// The figure binaries' shared arguments (see [`figure_args`]).
pub struct FigureArgs {
    /// The experiment scale (defaults to paper scale).
    pub scale: Scale,
    /// The `spec=` axis, when given.
    pub specs: Option<Vec<TmSpec>>,
}

/// Prints `msg` as an error and exits with status 2 (the binaries' shared
/// bad-usage convention).
pub fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn spec_axis_extracts_and_validates() {
        assert_eq!(spec_axis(&args(&["quick"])).unwrap(), None);
        let specs = spec_axis(&args(&["spec=rh2+gv6+adaptive,tl2"]))
            .unwrap()
            .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label(), "rh2+gv6+adaptive");
        assert!(spec_axis(&args(&["spec=rh3"])).is_err());
        assert!(spec_axis(&args(&["spec=tl2", "spec=rh2"])).is_err());
    }

    #[test]
    fn figure_args_parse_scale_spec_and_extras() {
        let parsed = figure_args(&args(&["quick", "spec=tl2"]), &[]).unwrap();
        assert_eq!(parsed.scale, Scale::Quick);
        assert_eq!(
            parsed.specs.unwrap()[0].label(),
            "tl2+gv-strict+paper-default"
        );
        let parsed = figure_args(&args(&["--writes", "80"]), &["--writes"]).unwrap();
        assert_eq!(parsed.scale, Scale::Paper);
        assert!(parsed.specs.is_none());
        assert!(figure_args(&args(&["bogus"]), &[]).is_err());
    }

    #[test]
    fn flag_values_are_validated_not_swallowed() {
        // A flag given without its value must not eat the next argument.
        assert!(figure_args(&args(&["--writes", "quick"]), &["--writes"]).is_err());
        assert!(figure_args(&args(&["--writes", "spec=tl2"]), &["--writes"]).is_err());
        assert!(figure_args(&args(&["--writes"]), &["--writes"]).is_err());
        // ...while a proper value composes with the other arguments.
        let parsed = figure_args(
            &args(&["quick", "--writes", "80", "spec=tl2"]),
            &["--writes"],
        )
        .unwrap();
        assert_eq!(parsed.scale, Scale::Quick);
        assert!(parsed.specs.is_some());
    }
}
