//! Experiment scales and shared parameters.

use std::time::Duration;

/// Which scale to run an experiment at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes and thread counts.
    Paper,
    /// Reduced sizes for Criterion / CI runs.
    Quick,
}

impl Scale {
    /// Parses `"paper"` / `"quick"` (used by the binaries' CLI).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.trim().to_ascii_lowercase().as_str() {
            "paper" | "full" => Some(Scale::Paper),
            "quick" | "ci" => Some(Scale::Quick),
            _ => None,
        }
    }
}

/// Parameters shared by the figure definitions.
#[derive(Clone, Debug)]
pub struct FigureParams {
    /// Red-black-tree size (paper: 100 000).
    pub rbtree_nodes: u64,
    /// Hash-table size (the paper's figure caption: 10 000 elements).
    pub hashtable_elements: u64,
    /// Sorted-list size (paper: 1 000).
    pub sortedlist_elements: u64,
    /// Random-array entries (paper: 128 K).
    pub random_array_entries: u64,
    /// Thread counts swept by the throughput figures (paper: 1..20 on a
    /// 20-way Xeon).
    pub thread_counts: Vec<usize>,
    /// Measurement interval per (algorithm, thread-count) point.
    pub duration: Duration,
    /// Operations per thread for the operation-bounded (Criterion) mode.
    pub ops_per_thread: u64,
}

impl FigureParams {
    /// Parameters for a scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Paper => FigureParams {
                rbtree_nodes: 100_000,
                hashtable_elements: 10_000,
                sortedlist_elements: 1_000,
                random_array_entries: 128 * 1024,
                thread_counts: vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20],
                duration: Duration::from_millis(400),
                ops_per_thread: 20_000,
            },
            Scale::Quick => FigureParams {
                rbtree_nodes: 20_000,
                hashtable_elements: 4_000,
                sortedlist_elements: 512,
                random_array_entries: 32 * 1024,
                thread_counts: vec![1, 4, 8],
                duration: Duration::from_millis(120),
                ops_per_thread: 2_000,
            },
        }
    }

    /// Caps the thread sweep at the host's available parallelism so the
    /// scaling shape is not polluted by oversubscription noise.
    pub fn clamp_threads_to_host(mut self) -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        self.thread_counts.retain(|&t| t <= host.max(1));
        if self.thread_counts.is_empty() {
            self.thread_counts.push(1);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_the_paper() {
        let p = FigureParams::new(Scale::Paper);
        assert_eq!(p.rbtree_nodes, 100_000);
        assert_eq!(p.sortedlist_elements, 1_000);
        assert_eq!(p.random_array_entries, 128 * 1024);
        assert_eq!(p.thread_counts.last(), Some(&20));
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = FigureParams::new(Scale::Quick);
        let p = FigureParams::new(Scale::Paper);
        assert!(q.rbtree_nodes < p.rbtree_nodes);
        assert!(q.thread_counts.len() < p.thread_counts.len());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn clamping_never_leaves_an_empty_sweep() {
        let p = FigureParams::new(Scale::Paper).clamp_threads_to_host();
        assert!(!p.thread_counts.is_empty());
    }
}
