//! The unified benchmark suite: every registered scenario swept over
//! algorithms and thread counts, emitted as **one** schema-stable JSON
//! document for the benchmark trajectory.
//!
//! The `fig*`/`ablation_*` binaries each reproduce one experiment of the
//! paper (or one ablation) with bespoke output; this module is the
//! machine-facing complement — a single sweep definition whose output
//! (`suite_to_json`, schema in `docs/BENCHMARKS.md`) downstream tooling
//! can diff across commits.

use std::time::Duration;

use rhtm_workloads::scenario::{suite_to_json, Scenario, ScenarioRun};
use rhtm_workloads::{AlgoKind, DriverOpts, OpMix, TmSpec};

use crate::params::Scale;

/// Parameters of one suite sweep.
#[derive(Clone, Debug)]
pub struct SuiteParams {
    /// Label recorded in the JSON document (`paper`, `quick`, `smoke`).
    pub scale_label: String,
    /// Scenarios to run (defaults to the whole registry).
    pub scenarios: Vec<&'static Scenario>,
    /// Runtime points each scenario is swept over (the `spec=` CLI axis;
    /// a plain algorithm sweep is just specs with default clock/policy).
    pub specs: Vec<TmSpec>,
    /// Thread counts each `(scenario, algorithm)` pair is swept over.
    pub thread_counts: Vec<usize>,
    /// Divisor applied to every scenario's registered (paper-like) size.
    pub size_divisor: u64,
    /// Measurement interval per point.
    pub duration: Duration,
    /// Base RNG seed (recorded in the document; per-thread streams derive
    /// from it).
    pub seed: u64,
}

impl SuiteParams {
    /// The default sweep at a scale: the whole registry across the paper's
    /// six figure algorithms ([`AlgoKind::FIGURE_SET`]) at default
    /// clock/policy specs.
    pub fn new(scale: Scale) -> Self {
        // Like every other bench binary, never sweep past the host's
        // parallelism by default (an explicit `threads=` override still
        // can).
        let figure = crate::params::FigureParams::new(scale).clamp_threads_to_host();
        let (label, divisor) = match scale {
            Scale::Paper => ("paper", 1),
            Scale::Quick => ("quick", 8),
        };
        SuiteParams {
            scale_label: label.to_string(),
            scenarios: Scenario::all().iter().collect(),
            specs: AlgoKind::FIGURE_SET
                .iter()
                .map(|&k| TmSpec::new(k))
                .collect(),
            thread_counts: figure.thread_counts,
            size_divisor: divisor,
            duration: figure.duration,
            seed: 0xbe6c_c0de,
        }
    }

    /// The CI smoke configuration: every scenario and algorithm, but tiny
    /// sizes, two threads and a 10 ms interval — enough to validate the
    /// plumbing and the emitted document, fast enough for every push.
    pub fn smoke() -> Self {
        SuiteParams {
            scale_label: "smoke".to_string(),
            thread_counts: vec![2],
            size_divisor: 64,
            duration: Duration::from_millis(10),
            ..SuiteParams::new(Scale::Quick)
        }
    }
}

/// Runs the sweep: for every scenario, every algorithm × thread count.
///
/// `progress` is called before each scenario starts (the binary reports on
/// stderr so stdout stays a single JSON document).
pub fn run_suite(
    params: &SuiteParams,
    mut progress: impl FnMut(&Scenario, u64),
) -> Vec<ScenarioRun> {
    let mut runs = Vec::new();
    for &scenario in &params.scenarios {
        let size = scenario.sized(params.size_divisor);
        progress(scenario, size);
        let mut results = Vec::new();
        for &threads in &params.thread_counts {
            for spec in &params.specs {
                let opts = DriverOpts::timed_mix(threads, OpMix::read_update(0), params.duration)
                    .with_seed(params.seed);
                results.push(scenario.run_spec(spec, size, &opts));
            }
        }
        runs.push(ScenarioRun {
            scenario,
            size,
            results,
        });
    }
    runs
}

/// [`run_suite`] + [`suite_to_json`] in one step.
pub fn run_suite_to_json(params: &SuiteParams, progress: impl FnMut(&Scenario, u64)) -> String {
    let runs = run_suite(params, progress);
    suite_to_json(&params.scale_label, params.seed, &runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhtm_workloads::report::validate_json;

    fn tiny() -> SuiteParams {
        SuiteParams {
            scenarios: vec![
                Scenario::find("skiplist-zipf").unwrap(),
                Scenario::find("queue-balanced").unwrap(),
                Scenario::find("hashtable-partitioned").unwrap(),
            ],
            specs: vec![
                TmSpec::parse("tl2+gv5").unwrap(),
                TmSpec::new(AlgoKind::Rh1Mixed(100)),
            ],
            thread_counts: vec![2],
            size_divisor: 1_024,
            duration: Duration::from_millis(5),
            ..SuiteParams::smoke()
        }
    }

    #[test]
    fn suite_produces_a_row_per_point_and_valid_json() {
        let params = tiny();
        let mut seen = Vec::new();
        let runs = run_suite(&params, |s, _| seen.push(s.name));
        assert_eq!(seen.len(), 3);
        assert_eq!(runs.len(), 3);
        for run in &runs {
            assert_eq!(run.results.len(), 2, "{}", run.scenario.name);
            for r in &run.results {
                assert!(r.total_ops > 0, "{} produced no ops", run.scenario.name);
                assert_eq!(r.key_dist, run.scenario.dist.label());
                assert_eq!(r.op_mix, run.scenario.mix.label());
                assert_eq!(r.seed, params.seed);
            }
            assert_eq!(run.results[0].spec, "tl2+gv5+paper-default");
            assert_eq!(run.results[1].spec, "rh1-mixed-100+gv-strict+paper-default");
        }
        let json = suite_to_json(&params.scale_label, params.seed, &runs);
        validate_json(&json).expect("suite JSON must parse");
        for field in [
            "\"scale\": \"smoke\"",
            "\"key_dist\"",
            "\"op_mix\"",
            "\"spec\": \"tl2+gv5+paper-default\"",
            "\"seed\"",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }

    #[test]
    fn smoke_params_cover_the_whole_registry() {
        let p = SuiteParams::smoke();
        assert_eq!(p.scenarios.len(), Scenario::all().len());
        assert_eq!(p.specs.len(), 6, "all six figure algorithms");
        assert_eq!(p.thread_counts, vec![2]);
    }
}
