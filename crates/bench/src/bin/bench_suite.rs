//! The unified benchmark suite: sweep every registered scenario
//! (`structure × size × mix × distribution`) across a series of runtime
//! points and a thread sweep, and emit **one** JSON document on
//! stdout (progress goes to stderr).  Schema: `docs/BENCHMARKS.md`.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin bench_suite \
//!     [paper|quick] [--smoke] [--list] [scenarios=a,b,..] [spec=a,b,..] \
//!     [algos=a,b,..] [threads=N,M,..] [seed=N]
//! ```
//!
//! * `--list` prints the scenario registry (name, structure, paper-scale
//!   size, distribution, mix, phase plan, description) and exits.
//! * `--smoke` is the CI configuration: every scenario and algorithm at
//!   tiny sizes, 2 threads, 10 ms per point.
//! * `spec=` selects the runtime points to sweep as `TmSpec` labels
//!   (`spec=rh2+gv6+adaptive,tl2+gv5`); `algos=` is the algorithm-only
//!   shorthand (default clock/policy).  The two are mutually exclusive.
//! * `scenarios=` / `threads=` restrict the sweep; `seed=` pins the base
//!   RNG seed recorded in the document.

use rhtm_bench::{cli, Scale, SuiteParams};
use rhtm_workloads::{AlgoKind, Scenario, TmSpec};

fn fail(msg: String) -> ! {
    cli::fail(msg)
}

fn print_list() {
    let header = [
        "scenario",
        "structure",
        "size",
        "distribution",
        "mix",
        "phases",
        "description",
    ];
    println!(
        "{:<26} {:<12} {:>10}  {:<13} {:<15} {:<13} {}",
        header[0], header[1], header[2], header[3], header[4], header[5], header[6]
    );
    for s in Scenario::all() {
        println!(
            "{:<26} {:<12} {:>10}  {:<13} {:<15} {:<13} {}",
            s.name,
            s.structure.label(),
            s.base_size,
            s.dist.label(),
            s.mix.label(),
            s.phases_label(),
            s.about
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        print_list();
        return;
    }
    let mut scale = Scale::Paper;
    let mut scale_explicit = false;
    let mut smoke = false;
    let mut scenarios: Option<Vec<&'static Scenario>> = None;
    let mut algos: Option<Vec<AlgoKind>> = None;
    let specs: Option<Vec<TmSpec>> = cli::spec_axis(&args).unwrap_or_else(|e| fail(e));
    let mut threads: Option<Vec<usize>> = None;
    let mut seed: Option<u64> = None;
    for arg in &args {
        if let Some(s) = Scale::parse(arg) {
            scale = s;
            scale_explicit = true;
        } else if arg == "--smoke" {
            smoke = true;
        } else if arg.starts_with("spec=") {
            // Parsed by cli::spec_axis above.
        } else if let Some(list) = arg.strip_prefix("scenarios=") {
            let parsed: Option<Vec<_>> = list.split(',').map(Scenario::find).collect();
            match parsed {
                Some(s) if !s.is_empty() => scenarios = Some(s),
                _ => fail(format!(
                    "bad scenario list '{list}' (see bench_suite --list)"
                )),
            }
        } else if let Some(list) = arg.strip_prefix("algos=") {
            let parsed: Option<Vec<_>> = list.split(',').map(AlgoKind::parse).collect();
            match parsed {
                Some(a) if !a.is_empty() => algos = Some(a),
                _ => fail(format!("bad algorithm list '{list}'")),
            }
        } else if let Some(list) = arg.strip_prefix("threads=") {
            let parsed: Result<Vec<usize>, _> = list.split(',').map(|t| t.trim().parse()).collect();
            match parsed {
                Ok(t) if !t.is_empty() && t.iter().all(|&n| n >= 1) => threads = Some(t),
                _ => fail(format!(
                    "bad thread list '{list}' (expected e.g. threads=1,2,4)"
                )),
            }
        } else if let Some(v) = arg.strip_prefix("seed=") {
            match v.parse() {
                Ok(v) => seed = Some(v),
                Err(_) => fail(format!("bad seed '{v}'")),
            }
        } else {
            fail(format!(
                "unknown argument '{arg}' (expected paper|quick, --smoke, --list, \
                 scenarios=.., spec=.., algos=.., threads=.., seed=..)"
            ));
        }
    }

    if smoke && scale_explicit {
        fail("--smoke is its own scale; drop the paper|quick argument".to_string());
    }
    if specs.is_some() && algos.is_some() {
        fail("spec= and algos= are mutually exclusive (spec= subsumes algos=)".to_string());
    }
    let mut params = if smoke {
        SuiteParams::smoke()
    } else {
        SuiteParams::new(scale)
    };
    if let Some(s) = scenarios {
        params.scenarios = s;
    }
    if let Some(s) = specs {
        params.specs = s;
    } else if let Some(a) = algos {
        params.specs = a.into_iter().map(TmSpec::new).collect();
    }
    if let Some(t) = threads {
        params.thread_counts = t;
    }
    if let Some(s) = seed {
        params.seed = s;
    }

    let total = params.scenarios.len();
    eprintln!(
        "# bench_suite: {} scenarios x {} specs x {:?} threads ({} scale)",
        total,
        params.specs.len(),
        params.thread_counts,
        params.scale_label
    );
    let mut done = 0usize;
    let json = rhtm_bench::run_suite_to_json(&params, |s, size| {
        done += 1;
        eprintln!("# [{done}/{total}] {} (size {size})", s.name);
    });
    println!("{json}");
}
