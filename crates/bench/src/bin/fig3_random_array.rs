//! Figure 3 (right): 128K random array — RH1 speedup over the Standard HyTM across transaction lengths and write ratios.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin fig3_random_array [paper|quick] [spec=..]
//! ```
//!
//! The `spec=` axis takes exactly two `TmSpec` labels —
//! `spec=treatment,baseline` — replacing the paper's RH1-Fast /
//! Standard-HyTM pair.

use rhtm_bench::cli;
use rhtm_bench::FigureParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = cli::figure_args(&args, &[]).unwrap_or_else(|e| cli::fail(e));
    let params = FigureParams::new(parsed.scale).clamp_threads_to_host();
    eprintln!(
        "running Figure 3 (random array speedup matrix) at {} threads",
        params.thread_counts.iter().max().unwrap()
    );
    let points = match &parsed.specs {
        Some(specs) if specs.len() == 2 => {
            rhtm_bench::fig3_random_array_specs(&params, &specs[0], &specs[1])
        }
        Some(_) => cli::fail(
            "fig3_random_array takes exactly two specs: spec=treatment,baseline".to_string(),
        ),
        None => rhtm_bench::fig3_random_array(&params),
    };
    println!("# Figure 3 (right): 128K Random Array — RH1 speedup vs Standard HyTM");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>9}",
        "txn-len", "writes%", "RH1 ops/s", "StdHyTM ops/s", "speedup"
    );
    for p in &points {
        println!(
            "{:>8} {:>8} {:>14.0} {:>14.0} {:>8.2}x",
            p.txn_len, p.write_percent, p.rh1_ops_per_sec, p.std_hytm_ops_per_sec, p.speedup
        );
    }
    // Hand-rolled JSON (offline build, no serde_json) for plotting scripts.
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "  {{\"txn_len\": {}, \"write_percent\": {}, \"rh1_ops_per_sec\": {}, \"std_hytm_ops_per_sec\": {}, \"speedup\": {}}}",
                p.txn_len, p.write_percent, p.rh1_ops_per_sec, p.std_hytm_ops_per_sec, p.speedup
            )
        })
        .collect();
    println!("[\n{}\n]", rows.join(",\n"));
}
