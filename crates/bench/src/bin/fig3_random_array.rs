//! Figure 3 (right): 128K random array — RH1 speedup over the Standard HyTM across transaction lengths and write ratios.

use rhtm_bench::{FigureParams, Scale};

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args()).clamp_threads_to_host();
    eprintln!(
        "running Figure 3 (random array speedup matrix) at {} threads",
        params.thread_counts.iter().max().unwrap()
    );
    let points = rhtm_bench::fig3_random_array(&params);
    println!("# Figure 3 (right): 128K Random Array — RH1 speedup vs Standard HyTM");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>9}",
        "txn-len", "writes%", "RH1 ops/s", "StdHyTM ops/s", "speedup"
    );
    for p in &points {
        println!(
            "{:>8} {:>8} {:>14.0} {:>14.0} {:>8.2}x",
            p.txn_len, p.write_percent, p.rh1_ops_per_sec, p.std_hytm_ops_per_sec, p.speedup
        );
    }
    // Hand-rolled JSON (offline build, no serde_json) for plotting scripts.
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "  {{\"txn_len\": {}, \"write_percent\": {}, \"rh1_ops_per_sec\": {}, \"std_hytm_ops_per_sec\": {}, \"speedup\": {}}}",
                p.txn_len, p.write_percent, p.rh1_ops_per_sec, p.std_hytm_ops_per_sec, p.speedup
            )
        })
        .collect();
    println!("[\n{}\n]", rows.join(",\n"));
}
