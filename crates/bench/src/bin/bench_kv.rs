//! Open-loop benchmark of the `rhtm_kv` sharded service: sweep
//! `scenario × spec × shards × offered rate` at a fixed arrival process,
//! emit one `rhtm-kv-bench` JSON document on stdout (progress on stderr),
//! and — on conservation-checkable mixes — verify every run with the
//! cross-shard [`ShardedBankChecker`] before reporting it.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin bench_kv -- \
//!     [--smoke] [--list] [scenarios=a,b,..] [spec=l1,l2,..] \
//!     [shards=N,M,..] [rate=N,M,..] [keys=N,M,..] \
//!     [arrival=poisson|burst-N] [threads=N] [--duration-ms=N] [--seed=N]
//! ```
//!
//! * `--list` prints the KV scenario registry and exits.
//! * `--smoke` is the CI configuration: two scenarios, two shard counts,
//!   two offered rates, short horizons.
//! * `shards=` / `rate=` / `keys=` are sweep axes (every combination
//!   runs); omitting `shards=` uses each scenario's registered default,
//!   omitting `keys=` uses each scenario's registered key space.  `keys=`
//!   scales the footprint without changing the mix — the axis behind the
//!   million-key memory-subsystem runs.
//! * `threads=` sets the open-loop *worker* count.  One worker (the
//!   default) makes each run a pure function of the seed.
//!
//! Sweeping `rate=` at a fixed shape traces the goodput-vs-offered-load
//! curve; see `docs/BENCHMARKS.md` ("Open-loop KV benchmark").

use std::time::Duration;

use rhtm_kv::{
    kv_suite_to_json, run_open_loop, Arrival, KvRow, KvScenario, LoadOpts, ShardedBankChecker,
};
use rhtm_workloads::check::{Checker, History};
use rhtm_workloads::TmSpec;

fn fail(msg: String) -> ! {
    rhtm_bench::cli::fail(msg)
}

fn print_list() {
    println!(
        "{:<24} {:>6} {:>10} {:<18} description",
        "scenario", "shards", "keys", "mix"
    );
    for s in KvScenario::all() {
        println!(
            "{:<24} {:>6} {:>10} {:<18} {}",
            s.name,
            s.shards,
            s.key_space,
            s.mix.label(),
            s.about
        );
    }
}

struct Sweep {
    scenarios: Vec<&'static KvScenario>,
    specs: Vec<TmSpec>,
    shards: Option<Vec<usize>>,
    keys: Option<Vec<u64>>,
    rates: Vec<u64>,
    arrival: Arrival,
    workers: usize,
    duration: Duration,
    seed: u64,
}

impl Sweep {
    fn smoke() -> Sweep {
        Sweep {
            scenarios: ["kv-point-ops", "kv-transfer"]
                .iter()
                .map(|n| KvScenario::find(n).expect("smoke scenario"))
                .collect(),
            specs: vec![TmSpec::parse("rh2").expect("rh2")],
            shards: Some(vec![1, 2]),
            keys: None,
            rates: vec![10_000, 40_000],
            arrival: Arrival::Poisson,
            workers: 1,
            duration: Duration::from_millis(20),
            seed: 0xbe6c_c0de,
        }
    }

    fn default() -> Sweep {
        Sweep {
            scenarios: KvScenario::all().iter().collect(),
            specs: ["tl2", "rh2"]
                .iter()
                .map(|l| TmSpec::parse(l).expect("default spec"))
                .collect(),
            shards: None,
            keys: None,
            rates: vec![20_000],
            arrival: Arrival::Poisson,
            workers: 1,
            duration: Duration::from_millis(100),
            seed: 0xbe6c_c0de,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        print_list();
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut sweep = if smoke {
        Sweep::smoke()
    } else {
        Sweep::default()
    };
    let specs = rhtm_bench::cli::spec_axis(&args).unwrap_or_else(|e| fail(e));
    if let Some(specs) = specs {
        sweep.specs = specs;
    }
    for arg in &args {
        if arg == "--smoke" || arg.starts_with("spec=") {
            // Handled above.
        } else if let Some(list) = arg.strip_prefix("scenarios=") {
            let parsed: Option<Vec<_>> = list.split(',').map(KvScenario::find).collect();
            match parsed {
                Some(s) if !s.is_empty() => sweep.scenarios = s,
                _ => fail(format!(
                    "bad KV scenario list '{list}' (see bench_kv --list)"
                )),
            }
        } else if let Some(list) = arg.strip_prefix("shards=") {
            let parsed: Result<Vec<usize>, _> = list.split(',').map(|s| s.trim().parse()).collect();
            match parsed {
                Ok(s) if !s.is_empty() && s.iter().all(|&n| n >= 1) => sweep.shards = Some(s),
                _ => fail(format!(
                    "bad shard list '{list}' (expected e.g. shards=1,2,4)"
                )),
            }
        } else if let Some(list) = arg.strip_prefix("keys=") {
            let parsed: Result<Vec<u64>, _> = list.split(',').map(|s| s.trim().parse()).collect();
            match parsed {
                Ok(k) if !k.is_empty() && k.iter().all(|&n| n >= 1) => sweep.keys = Some(k),
                _ => fail(format!(
                    "bad key-space list '{list}' (expected e.g. keys=8192,1000000)"
                )),
            }
        } else if let Some(list) = arg.strip_prefix("rate=") {
            let parsed: Result<Vec<u64>, _> = list.split(',').map(|s| s.trim().parse()).collect();
            match parsed {
                Ok(r) if !r.is_empty() && r.iter().all(|&n| n >= 1) => sweep.rates = r,
                _ => fail(format!(
                    "bad rate list '{list}' (req/s, e.g. rate=10000,40000)"
                )),
            }
        } else if let Some(v) = arg.strip_prefix("arrival=") {
            sweep.arrival = Arrival::parse(v)
                .unwrap_or_else(|| fail(format!("bad arrival '{v}' (poisson or burst-N)")));
        } else if let Some(v) = arg.strip_prefix("threads=") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => sweep.workers = n,
                _ => fail(format!("bad worker count '{v}'")),
            }
        } else if let Some(v) = arg.strip_prefix("--duration-ms=") {
            match v.parse::<u64>() {
                Ok(ms) if ms >= 1 => sweep.duration = Duration::from_millis(ms),
                _ => fail(format!("bad duration '{v}'")),
            }
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            sweep.seed = v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad seed '{v}'")));
        } else {
            fail(format!(
                "unknown argument '{arg}' (expected --smoke, --list, scenarios=, \
                 spec=, shards=, rate=, keys=, arrival=, threads=, --duration-ms=, \
                 --seed=)"
            ));
        }
    }

    let total = sweep.scenarios.len()
        * sweep.specs.len()
        * sweep.shards.as_ref().map_or(1, Vec::len)
        * sweep.keys.as_ref().map_or(1, Vec::len)
        * sweep.rates.len();
    eprintln!(
        "# bench_kv: {total} rows ({} ms horizon, {} worker(s), {} arrivals, seed {:#x})",
        sweep.duration.as_millis(),
        sweep.workers,
        sweep.arrival.label(),
        sweep.seed
    );
    let mut rows = Vec::new();
    for scenario in &sweep.scenarios {
        let shard_axis = sweep
            .shards
            .clone()
            .unwrap_or_else(|| vec![scenario.shards]);
        let key_axis = sweep
            .keys
            .clone()
            .unwrap_or_else(|| vec![scenario.key_space]);
        for spec in &sweep.specs {
            for &shards in &shard_axis {
                for &keys in &key_axis {
                    for &rate in &sweep.rates {
                        eprintln!(
                            "# [{}/{total}] {} / {} / {shards} shard(s) / {keys} keys @ {rate}/s",
                            rows.len() + 1,
                            scenario.name,
                            spec.label()
                        );
                        let service = scenario.service_with_keys(spec, shards, sweep.workers, keys);
                        let opts = LoadOpts::new(rate as f64, sweep.duration)
                            .with_workers(sweep.workers)
                            .with_arrival(sweep.arrival)
                            .with_mix(scenario.mix)
                            .with_seed(sweep.seed);
                        let report = run_open_loop(&service, &opts);
                        if scenario.mix.conserves_balance() {
                            let checker = ShardedBankChecker::for_service(&service);
                            let history = History::from_recorders(report.histories);
                            if let Err(v) = checker.check(&history) {
                                fail(format!(
                                    "consistency violation in {} ({} shards): {}",
                                    scenario.name, shards, v.detail
                                ));
                            }
                        }
                        rows.push(KvRow {
                            scenario: scenario.name.to_string(),
                            spec: spec.label(),
                            shards,
                            key_space: keys,
                            op_mix: scenario.mix.label(),
                            offered_rate: report.offered_rate,
                            arrival: report.arrival.label(),
                            threads: sweep.workers,
                            generated: report.generated,
                            completed: report.completed,
                            applied_transfers: report.applied_transfers,
                            declined_transfers: report.declined_transfers,
                            goodput_ops_per_sec: report.goodput,
                            commits: report.commits,
                            aborts: report.aborts,
                            mem: report.mem,
                            latency: report.latency.summary(),
                        });
                    }
                }
            }
        }
    }
    print!(
        "{}",
        kv_suite_to_json(
            sweep.seed,
            sweep.duration.as_millis() as u64,
            sweep.workers,
            &rows
        )
    );
}
