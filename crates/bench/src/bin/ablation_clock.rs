//! Ablation A2: global-clock advancement schemes (strict fetch-and-add vs
//! GV4/GV5/GV6 vs the fully incrementing baseline) across a thread sweep.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin ablation_clock [paper|quick] [scheme...] [spec=..]
//! ```
//!
//! With no scheme arguments every scheme in [`rhtm_mem::ClockScheme::ALL`]
//! is swept; otherwise only the named ones (`gv-strict`, `gv4`, `gv5`,
//! `gv6`, `incrementing`) run.  The `spec=` axis (comma-separated `TmSpec`
//! labels) replaces the default TL2 / RH1-Mixed-100 base specs; each swept
//! scheme overrides the base spec's clock axis, everything else (algorithm,
//! retry policy) is honoured as given.  Threads sweep 1–32 (clamped to the
//! host).

use rhtm_bench::cli;
use rhtm_bench::{FigureParams, Scale};
use rhtm_mem::ClockScheme;
use rhtm_workloads::{AlgoKind, TmSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut named: Vec<ClockScheme> = Vec::new();
    let specs = cli::spec_axis(&args).unwrap_or_else(|e| cli::fail(e));
    for arg in &args {
        if let Some(s) = Scale::parse(arg) {
            scale = s;
        } else if let Some(scheme) = ClockScheme::parse(arg) {
            named.push(scheme);
        } else if arg.starts_with("spec=") {
            // Parsed by cli::spec_axis above.
        } else {
            cli::fail(format!(
                "unknown argument '{arg}' (expected paper|quick, spec=.. or a scheme: {})",
                ClockScheme::ALL
                    .iter()
                    .map(|s| s.label())
                    .collect::<Vec<_>>()
                    .join("|")
            ));
        }
    }
    let schemes: Vec<ClockScheme> = if named.is_empty() {
        ClockScheme::ALL.to_vec()
    } else {
        named
    };
    let base_specs: Vec<TmSpec> =
        specs.unwrap_or_else(|| rhtm_bench::specs_of(&[AlgoKind::Tl2, AlgoKind::Rh1Mixed(100)]));

    // The clock bottleneck is a thread-scaling story: sweep 1–32 threads
    // (clamped to the host's parallelism) regardless of the figure scale.
    let mut params = FigureParams::new(scale);
    params.thread_counts = vec![1, 2, 4, 8, 16, 32];
    let params = params.clamp_threads_to_host();

    println!("# Ablation A2: global-clock scheme (constant RB-tree, 20% writes)");
    println!("# threads swept: {:?}", params.thread_counts);
    println!(
        "{:<14} {:<16} {:>8} {:>14} {:>12} {:>12}",
        "scheme", "algorithm", "threads", "ops/s", "abort-rate", "commit-ctr"
    );
    for row in rhtm_bench::ablation_clock_specs(&params, &schemes, &base_specs) {
        println!(
            "{:<14} {:<16} {:>8} {:>14.0} {:>11.2}% {:>12.3}",
            row.scheme.label(),
            row.algo.label(),
            row.result.threads,
            row.result.throughput(),
            row.result.abort_ratio() * 100.0,
            row.result.commit_ratio(),
        );
    }
}
