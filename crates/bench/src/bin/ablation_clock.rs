//! Ablation A2: global-clock advancement schemes (strict fetch-and-add vs
//! GV4/GV5/GV6 vs the fully incrementing baseline) across a thread sweep.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin ablation_clock [paper|quick] [scheme...]
//! ```
//!
//! With no scheme arguments every scheme in [`rhtm_mem::ClockScheme::ALL`]
//! is swept; otherwise only the named ones (`gv-strict`, `gv4`, `gv5`,
//! `gv6`, `incrementing`) run.  Threads sweep 1–32 (clamped to the host).

use rhtm_bench::{FigureParams, Scale};
use rhtm_mem::ClockScheme;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut named: Vec<ClockScheme> = Vec::new();
    for arg in &args {
        if let Some(s) = Scale::parse(arg) {
            scale = s;
        } else if let Some(scheme) = ClockScheme::parse(arg) {
            named.push(scheme);
        } else {
            eprintln!(
                "error: unknown argument '{arg}' (expected paper|quick or a scheme: {})",
                ClockScheme::ALL
                    .iter()
                    .map(|s| s.label())
                    .collect::<Vec<_>>()
                    .join("|")
            );
            std::process::exit(2);
        }
    }
    let schemes: Vec<ClockScheme> = if named.is_empty() {
        ClockScheme::ALL.to_vec()
    } else {
        named
    };

    // The clock bottleneck is a thread-scaling story: sweep 1–32 threads
    // (clamped to the host's parallelism) regardless of the figure scale.
    let mut params = FigureParams::new(scale);
    params.thread_counts = vec![1, 2, 4, 8, 16, 32];
    let params = params.clamp_threads_to_host();

    println!("# Ablation A2: global-clock scheme (constant RB-tree, 20% writes)");
    println!("# threads swept: {:?}", params.thread_counts);
    println!(
        "{:<14} {:<16} {:>8} {:>14} {:>12} {:>12}",
        "scheme", "algorithm", "threads", "ops/s", "abort-rate", "commit-ctr"
    );
    for row in rhtm_bench::ablation_clock_schemes(&params, &schemes) {
        println!(
            "{:<14} {:<16} {:>8} {:>14.0} {:>11.2}% {:>12.3}",
            row.scheme.label(),
            row.algo.label(),
            row.result.threads,
            row.result.throughput(),
            row.result.abort_ratio() * 100.0,
            row.result.commit_ratio(),
        );
    }
}
