//! Ablation A2: the GV6 non-advancing global clock versus a conventional incrementing clock (design choice of paper section 2.2).

use rhtm_bench::{FigureParams, Scale};

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args()).clamp_threads_to_host();
    println!("# Ablation A2: global-clock algorithm (RH1 Mixed 100, constant RB-tree, 20% writes)");
    for (label, row) in rhtm_bench::ablation_clock(&params) {
        println!("{:<14} {}", label, row.throughput_row());
    }
}
