//! Figure 2 (top): constant red-black tree with the RH1 Mixed slow-path variants; pass `--writes 20|80`.

use rhtm_bench::{FigureParams, Scale};
use rhtm_workloads::report;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn write_percent_from_args() -> u8 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--writes")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn main() {
    let params = FigureParams::new(scale_from_args()).clamp_threads_to_host();
    let writes = write_percent_from_args();
    eprintln!(
        "running Figure 2 (constant RB-tree, {}% writes), threads {:?}",
        writes, params.thread_counts
    );
    let rows = rhtm_bench::fig2_rbtree(&params, writes);
    let title = format!("Figure 2: 100K Nodes Constant RB-Tree, {writes}% mutations");
    println!("{}", report::format_series(&title, &rows));
    println!("{}", report::to_json(&rows));
}
