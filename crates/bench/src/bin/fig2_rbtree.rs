//! Figure 2 (top): constant red-black tree with the RH1 Mixed slow-path variants; pass `--writes 20|80`.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin fig2_rbtree [paper|quick] [--writes N] [spec=..]
//! ```
//!
//! The `spec=` axis (comma-separated `TmSpec` labels) replaces the
//! figure's paper-default algorithm series.

use rhtm_bench::cli;
use rhtm_bench::FigureParams;
use rhtm_workloads::report;

fn write_percent_from_args(args: &[String]) -> u8 {
    match args.iter().position(|a| a == "--writes") {
        None => 20,
        Some(i) => {
            let v = args.get(i + 1).map(String::as_str).unwrap_or("");
            v.parse().unwrap_or_else(|_| {
                cli::fail(format!("bad --writes value '{v}' (expected 0..=100)"))
            })
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = cli::figure_args(&args, &["--writes"]).unwrap_or_else(|e| cli::fail(e));
    let params = FigureParams::new(parsed.scale).clamp_threads_to_host();
    let writes = write_percent_from_args(&args);
    eprintln!(
        "running Figure 2 (constant RB-tree, {}% writes), threads {:?}",
        writes, params.thread_counts
    );
    let rows = match &parsed.specs {
        Some(specs) => rhtm_bench::fig2_rbtree_specs(&params, specs, writes),
        None => rhtm_bench::fig2_rbtree(&params, writes),
    };
    let title = format!("Figure 2: 100K Nodes Constant RB-Tree, {writes}% mutations");
    println!("{}", report::format_series(&title, &rows));
    println!("{}", report::to_json(&rows));
}
