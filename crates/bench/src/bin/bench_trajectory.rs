//! Runs the canonical perf-trajectory subset and prints one
//! `rhtm-trajectory-v1` JSON document on stdout (progress on stderr).
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin bench_trajectory \
//!     [--pr=N] [--reps=N] [--duration-ms=N] [--threads=N] \
//!     [--seed=N] [--size-divisor=N]
//! ```
//!
//! The defaults are the committed-baseline configuration (see
//! `docs/BENCHMARKS.md`, "Perf trajectory"); pass flags only for local
//! experiments — a document produced with non-default parameters is not
//! comparable to the committed `BENCH_<n>.json`.

use std::time::Duration;

use rhtm_bench::trajectory::{self, TrajectoryParams};

fn fail(msg: String) -> ! {
    rhtm_bench::cli::fail(msg)
}

fn num_arg(arg: &str, prefix: &str) -> Option<u64> {
    arg.strip_prefix(prefix).map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(format!("bad value '{v}' for {prefix}")))
    })
}

fn main() {
    let mut params = TrajectoryParams::default();
    let mut pr = 9u64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = num_arg(&arg, "--pr=") {
            pr = v;
        } else if let Some(v) = num_arg(&arg, "--reps=") {
            params.reps = v as usize;
        } else if let Some(v) = num_arg(&arg, "--duration-ms=") {
            params.duration = Duration::from_millis(v);
        } else if let Some(v) = num_arg(&arg, "--threads=") {
            params.threads = (v as usize).max(1);
        } else if let Some(v) = num_arg(&arg, "--seed=") {
            params.seed = v;
        } else if let Some(v) = num_arg(&arg, "--size-divisor=") {
            params.size_divisor = v.max(1);
        } else {
            fail(format!(
                "unknown argument '{arg}' (expected --pr=, --reps=, \
                 --duration-ms=, --threads=, --seed=, --size-divisor=)"
            ));
        }
    }

    let total = trajectory::CANONICAL_SCENARIOS.len() * trajectory::CANONICAL_ALGOS.len()
        + trajectory::RETRY2_PROBES.len()
        + trajectory::KV_PROBES.len()
        + trajectory::MEM_PROBES.len();
    eprintln!(
        "# bench_trajectory: {} points ({} reps x {} ms, {} threads, seed {:#x})",
        total,
        params.reps,
        params.duration.as_millis(),
        params.threads,
        params.seed
    );
    let mut done = 0usize;
    let points = trajectory::run_trajectory(&params, |scenario, spec| {
        done += 1;
        eprintln!("# [{done}/{total}] {scenario} / {spec}");
    });
    print!(
        "{}",
        trajectory::trajectory_to_json(pr, &params, &points, &[], &[])
    );
}
