//! Ablation A1: shrinking hardware read capacity pushes RH1 from the fast-path to the mixed slow-path, whose hardware commit only touches the (4x smaller) metadata.

use rhtm_bench::{FigureParams, Scale};

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args());
    println!("# Ablation A1: hardware read-capacity sweep (RH1 Mixed 100, random array, 200 accesses/txn)");
    for (capacity, row) in rhtm_bench::ablation_capacity(&params) {
        println!(
            "read-capacity {:>4} lines: {}",
            capacity,
            row.throughput_row()
        );
    }
}
