//! Ablation A1: shrinking hardware read capacity pushes RH1 from the fast-path to the mixed slow-path, whose hardware commit only touches the (4x smaller) metadata.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin ablation_capacity [paper|quick] [spec=..]
//! ```
//!
//! The `spec=` axis (comma-separated `TmSpec` labels) replaces the
//! default RH1-Mixed-100 spec; the capacity sweep runs once per spec.

use rhtm_bench::cli;
use rhtm_bench::FigureParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = cli::figure_args(&args, &[]).unwrap_or_else(|e| cli::fail(e));
    let params = FigureParams::new(parsed.scale);
    println!("# Ablation A1: hardware read-capacity sweep (RH1 Mixed 100, random array, 200 accesses/txn)");
    let rows = match &parsed.specs {
        Some(specs) => rhtm_bench::ablation_capacity_specs(&params, specs),
        None => rhtm_bench::ablation_capacity(&params),
    };
    for (capacity, row) in rows {
        println!(
            "read-capacity {:>4} lines: {}",
            capacity,
            row.throughput_row()
        );
    }
}
