//! Ablation A4: retry policies (paper-default vs capped-exp vs aggressive
//! vs adaptive) across a thread sweep.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin ablation_retry [paper|quick] [policy...] [threads=N,M,..] [spec=..]
//! ```
//!
//! With no policy arguments every built-in policy
//! ([`rhtm_api::RetryPolicyHandle::builtin`]) is swept; otherwise only the
//! named ones (`paper-default`, `capped-exp`, `aggressive`, `adaptive`)
//! run.  The `spec=` axis (comma-separated `TmSpec` labels) replaces the
//! default five-algorithm base specs; each swept policy overrides the base
//! spec's retry axis, everything else (algorithm, clock) is honoured as
//! given.  Threads default to a 1–32 sweep (clamped to the host); a
//! `threads=` argument pins the sweep explicitly (the CI smoke run uses
//! `threads=2`).

use rhtm_api::RetryPolicyHandle;
use rhtm_bench::cli;
use rhtm_bench::{FigureParams, Scale};
use rhtm_workloads::{AlgoKind, TmSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut named: Vec<RetryPolicyHandle> = Vec::new();
    let mut threads_override: Option<Vec<usize>> = None;
    let specs = cli::spec_axis(&args).unwrap_or_else(|e| cli::fail(e));
    for arg in &args {
        if let Some(s) = Scale::parse(arg) {
            scale = s;
        } else if let Some(policy) = RetryPolicyHandle::parse(arg) {
            named.push(policy);
        } else if arg.starts_with("spec=") {
            // Parsed by cli::spec_axis above.
        } else if let Some(list) = arg.strip_prefix("threads=") {
            let parsed: Result<Vec<usize>, _> = list.split(',').map(|t| t.trim().parse()).collect();
            match parsed {
                Ok(t) if !t.is_empty() && t.iter().all(|&n| n >= 1) => {
                    threads_override = Some(t);
                }
                _ => {
                    cli::fail(format!(
                        "bad thread list '{list}' (expected e.g. threads=1,2,4)"
                    ));
                }
            }
        } else {
            cli::fail(format!(
                "unknown argument '{arg}' (expected paper|quick, threads=N,.., spec=.. or a policy: {})",
                RetryPolicyHandle::builtin()
                    .iter()
                    .map(|p| p.label())
                    .collect::<Vec<_>>()
                    .join("|")
            ));
        }
    }
    let policies: Vec<RetryPolicyHandle> = if named.is_empty() {
        RetryPolicyHandle::builtin()
    } else {
        named
    };
    let base_specs: Vec<TmSpec> = specs.unwrap_or_else(|| {
        rhtm_bench::specs_of(&[
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Mixed(100),
            AlgoKind::Rh2,
        ])
    });

    // Contention management is a thread-scaling story: sweep 1–32 threads
    // (clamped to the host) unless the CLI pins the sweep.
    let mut params = FigureParams::new(scale);
    params.thread_counts = threads_override.unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32]);
    let params = if args.iter().any(|a| a.starts_with("threads=")) {
        params
    } else {
        params.clamp_threads_to_host()
    };

    println!("# Ablation A4: retry policy (constant RB-tree, 20% writes)");
    println!("# threads swept: {:?}", params.thread_counts);
    println!(
        "{:<14} {:<16} {:>8} {:>14} {:>12} {:>12}",
        "policy", "algorithm", "threads", "ops/s", "abort-rate", "commit-ctr"
    );
    for row in rhtm_bench::ablation_retry_specs(&params, &policies, &base_specs) {
        println!(
            "{:<14} {:<16} {:>8} {:>14.0} {:>11.2}% {:>12.3}",
            row.policy.label(),
            row.algo.label(),
            row.result.threads,
            row.result.throughput(),
            row.result.abort_ratio() * 100.0,
            row.result.commit_ratio(),
        );
    }
}
