//! Figure 1: 100K-node constant red-black tree, 20% mutations — instrumentation cost of the hardware fast-path.

use rhtm_bench::{FigureParams, Scale};
use rhtm_workloads::report;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args()).clamp_threads_to_host();
    eprintln!(
        "running Figure 1 (constant RB-tree, 20% writes), threads {:?}",
        params.thread_counts
    );
    let rows = rhtm_bench::fig1_rbtree(&params);
    println!(
        "{}",
        report::format_series(
            "Figure 1: 100K Nodes Constant RB-Tree, 20% mutations",
            &rows
        )
    );
    println!("{}", report::to_json(&rows));
}
