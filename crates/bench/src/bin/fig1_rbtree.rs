//! Figure 1: 100K-node constant red-black tree, 20% mutations — instrumentation cost of the hardware fast-path.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin fig1_rbtree [paper|quick] [spec=..]
//! ```
//!
//! The `spec=` axis (comma-separated `TmSpec` labels, e.g.
//! `spec=rh2+gv6+adaptive,tl2+gv5`) replaces the figure's paper-default
//! algorithm series.

use rhtm_bench::cli;
use rhtm_bench::FigureParams;
use rhtm_workloads::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = cli::figure_args(&args, &[]).unwrap_or_else(|e| cli::fail(e));
    let params = FigureParams::new(parsed.scale).clamp_threads_to_host();
    eprintln!(
        "running Figure 1 (constant RB-tree, 20% writes), threads {:?}",
        params.thread_counts
    );
    let rows = match &parsed.specs {
        Some(specs) => rhtm_bench::fig1_rbtree_specs(&params, specs),
        None => rhtm_bench::fig1_rbtree(&params),
    };
    println!(
        "{}",
        report::format_series(
            "Figure 1: 100K Nodes Constant RB-Tree, 20% mutations",
            &rows
        )
    );
    println!("{}", report::to_json(&rows));
}
