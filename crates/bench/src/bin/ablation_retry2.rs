//! Ablation A5: the Retry 2.0 policies (circuit breaker, retry budget,
//! full-jitter and fibonacci backoff) under a flash crowd.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin ablation_retry2 [paper|quick] [policy...] [threads=N,M,..] [spec=..]
//! ```
//!
//! Runs the phased `skiplist-flash-crowd` scenario (uniform load, then
//! 95% of operations on 1% of the keys) and prints one row per
//! `(policy, algorithm, threads)` point, including the always-on retry
//! observability counters: circuit opens/probes/closes and budget
//! exhaustions.  With no policy arguments the Retry 2.0 series
//! ([`rhtm_bench::retry2_policies`]: `paper-default` baseline plus
//! `full-jitter`, `fib`, `cb`, `budgeted`) is swept; otherwise only the
//! named ones run.  The `spec=` axis (comma-separated `TmSpec` labels)
//! replaces the default base specs; each swept policy overrides the base
//! spec's retry axis, everything else (algorithm, clock) is honoured as
//! given.  Threads default to a 1–32 sweep (clamped to the host); a
//! `threads=` argument pins the sweep explicitly (the CI smoke run uses
//! `threads=2`).

use rhtm_api::RetryPolicyHandle;
use rhtm_bench::cli;
use rhtm_bench::{FigureParams, Scale};
use rhtm_workloads::{AlgoKind, TmSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut named: Vec<RetryPolicyHandle> = Vec::new();
    let mut threads_override: Option<Vec<usize>> = None;
    let specs = cli::spec_axis(&args).unwrap_or_else(|e| cli::fail(e));
    for arg in &args {
        if let Some(s) = Scale::parse(arg) {
            scale = s;
        } else if let Some(policy) = RetryPolicyHandle::parse(arg) {
            named.push(policy);
        } else if arg.starts_with("spec=") {
            // Parsed by cli::spec_axis above.
        } else if let Some(list) = arg.strip_prefix("threads=") {
            let parsed: Result<Vec<usize>, _> = list.split(',').map(|t| t.trim().parse()).collect();
            match parsed {
                Ok(t) if !t.is_empty() && t.iter().all(|&n| n >= 1) => {
                    threads_override = Some(t);
                }
                _ => {
                    cli::fail(format!(
                        "bad thread list '{list}' (expected e.g. threads=1,2,4)"
                    ));
                }
            }
        } else {
            cli::fail(format!(
                "unknown argument '{arg}' (expected paper|quick, threads=N,.., spec=.. or a policy: {})",
                RetryPolicyHandle::builtin()
                    .iter()
                    .map(|p| p.label())
                    .collect::<Vec<_>>()
                    .join("|")
            ));
        }
    }
    let policies: Vec<RetryPolicyHandle> = if named.is_empty() {
        rhtm_bench::retry2_policies()
    } else {
        named
    };
    let base_specs: Vec<TmSpec> = specs.unwrap_or_else(|| {
        rhtm_bench::specs_of(&[
            AlgoKind::Rh1Mixed(10),
            AlgoKind::Rh1Mixed(100),
            AlgoKind::Rh2,
        ])
    });

    // The breaker/budget story is a contention story: sweep 1–32 threads
    // (clamped to the host) unless the CLI pins the sweep.
    let mut params = FigureParams::new(scale);
    params.thread_counts = threads_override.unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32]);
    let params = if args.iter().any(|a| a.starts_with("threads=")) {
        params
    } else {
        params.clamp_threads_to_host()
    };

    println!(
        "# Ablation A5: Retry 2.0 policies ({} scenario)",
        rhtm_bench::ABLATION_RETRY2_SCENARIO
    );
    println!("# threads swept: {:?}", params.thread_counts);
    println!(
        "{:<14} {:<16} {:>8} {:>14} {:>12} {:>7} {:>7} {:>7} {:>9}",
        "policy",
        "algorithm",
        "threads",
        "ops/s",
        "abort-rate",
        "opens",
        "probes",
        "closes",
        "exhausted"
    );
    for row in rhtm_bench::ablation_retry2_specs(&params, &policies, &base_specs) {
        let m = &row.result.stats.retry;
        println!(
            "{:<14} {:<16} {:>8} {:>14.0} {:>11.2}% {:>7} {:>7} {:>7} {:>9}",
            row.policy.label(),
            row.algo.label(),
            row.result.threads,
            row.result.throughput(),
            row.result.abort_ratio() * 100.0,
            m.circuit_opens,
            m.circuit_probes,
            m.circuit_closes,
            m.budget_exhausted,
        );
    }
}
