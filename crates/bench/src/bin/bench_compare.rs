//! Diffs, schema-checks and merges perf-trajectory documents
//! (`rhtm-trajectory-v1`, produced by `bench_trajectory`).
//!
//! ```text
//! bench_compare BASELINE.json CANDIDATE.json [--tolerance=0.15] \
//!     [--lat-tolerance=9.0] [--raw]
//! bench_compare --check FILE.json
//! bench_compare --merge BEFORE.json AFTER.json [--pr=N]
//! ```
//!
//! * Default mode compares candidate medians against the baseline
//!   point-by-point and **exits 1 if any point regresses past the
//!   tolerance** (this is the CI gate).  Per-point ratios are first
//!   normalized by their geometric mean, so a uniform machine-speed
//!   difference between the committed baseline and the CI host cancels
//!   out and only *relative* regressions are flagged.
//! * p99 latency points gate under their own `--lat-tolerance` (default
//!   9.0: a point fails above 10x its normalized baseline).  Latency
//!   needs a far wider band than throughput: on a time-sliced
//!   single-core CI host the p99 of a 40 ms open-loop point is
//!   preemption-dominated, with measured run-to-run swings of ~2-4x
//!   after normalization, so the latency gate is a guardrail against
//!   order-of-magnitude tail regressions (reclamation stalls, lock
//!   convoys) — per-operation overhead is what the 15% throughput gate
//!   on the closed-loop canonical points catches (see
//!   `docs/BENCHMARKS.md`).
//! * `--raw` skips the normalization — use it for same-machine A/B runs,
//!   where absolute throughput is directly comparable.
//! * `--check` validates a document's schema and exits (1 on failure).
//! * `--merge` folds a same-machine before/after pair into the committed
//!   `BENCH_<n>.json` form: the after document, each point annotated with
//!   its before median, plus per-optimization rows derived from the fixed
//!   probe mapping ([`rhtm_bench::trajectory::OPTIMIZATION_PROBES`]).
//!
//! See `docs/BENCHMARKS.md`, "Perf trajectory".

use rhtm_bench::trajectory::{
    self, compare_latencies, compare_trajectories, parse_full_trajectory, parse_trajectory,
    point_key, OptimizationRow, TrajectoryPoint,
};
use rhtm_workloads::TmSpec;

fn fail(msg: String) -> ! {
    rhtm_bench::cli::fail(msg)
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")))
}

fn check(path: &str) -> ! {
    match parse_trajectory(&read(path)) {
        Ok(doc) => {
            println!(
                "ok: {path} is a valid trajectory ({} points)",
                doc.points.len()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn find_median(points: &[TrajectoryPoint], key: &str) -> Option<f64> {
    points
        .iter()
        .find(|p| point_key(&p.scenario, &p.spec, p.threads) == key)
        .map(|p| p.median_ops_per_sec)
}

fn merge(before_path: &str, after_path: &str, pr: u64) -> ! {
    let (_, before) = parse_full_trajectory(&read(before_path))
        .unwrap_or_else(|e| fail(format!("{before_path}: {e}")));
    let (params, after) = parse_full_trajectory(&read(after_path))
        .unwrap_or_else(|e| fail(format!("{after_path}: {e}")));
    let before_medians: Vec<(String, f64)> = before
        .iter()
        .map(|p| {
            (
                point_key(&p.scenario, &p.spec, p.threads),
                p.median_ops_per_sec,
            )
        })
        .collect();
    let mut optimizations = Vec::new();
    for (name, scenario, kind) in trajectory::OPTIMIZATION_PROBES {
        let spec = TmSpec::new(kind).label();
        let key = point_key(scenario, &spec, params.threads);
        let (Some(b), Some(a)) = (find_median(&before, &key), find_median(&after, &key)) else {
            fail(format!(
                "probe point '{key}' missing from an input document"
            ));
        };
        optimizations.push(OptimizationRow {
            name: name.to_string(),
            probe: format!("{scenario} / {spec}"),
            before_ops_per_sec: b,
            after_ops_per_sec: a,
        });
    }
    print!(
        "{}",
        trajectory::trajectory_to_json(pr, &params, &after, &before_medians, &optimizations)
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut tolerance = 0.15f64;
    let mut lat_tolerance = 9.0f64;
    let mut raw = false;
    let mut mode_check = false;
    let mut mode_merge = false;
    let mut pr = 9u64;
    for arg in &args {
        if arg == "--check" {
            mode_check = true;
        } else if arg == "--merge" {
            mode_merge = true;
        } else if arg == "--raw" {
            raw = true;
        } else if let Some(v) = arg.strip_prefix("--tolerance=") {
            tolerance = v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad tolerance '{v}'")));
            if !(0.0..1.0).contains(&tolerance) {
                fail(format!("tolerance {tolerance} must be in [0, 1)"));
            }
        } else if let Some(v) = arg.strip_prefix("--lat-tolerance=") {
            lat_tolerance = v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad lat-tolerance '{v}'")));
            if lat_tolerance < 0.0 {
                fail(format!("lat-tolerance {lat_tolerance} must be >= 0"));
            }
        } else if let Some(v) = arg.strip_prefix("--pr=") {
            pr = v.parse().unwrap_or_else(|_| fail(format!("bad pr '{v}'")));
        } else if arg.starts_with("--") {
            fail(format!(
                "unknown flag '{arg}' (expected --check, --merge, --raw, \
                 --tolerance=, --lat-tolerance=, --pr=)"
            ));
        } else {
            files.push(arg);
        }
    }

    if mode_check {
        match files.as_slice() {
            [path] => check(path),
            _ => fail("--check takes exactly one file".to_string()),
        }
    }
    if mode_merge {
        match files.as_slice() {
            [before, after] => merge(before, after, pr),
            _ => fail("--merge takes BEFORE.json AFTER.json".to_string()),
        }
    }
    let [base_path, new_path] = files.as_slice() else {
        fail("expected BASELINE.json CANDIDATE.json (or --check/--merge)".to_string());
    };
    let base =
        parse_trajectory(&read(base_path)).unwrap_or_else(|e| fail(format!("{base_path}: {e}")));
    let new =
        parse_trajectory(&read(new_path)).unwrap_or_else(|e| fail(format!("{new_path}: {e}")));
    let compared = compare_trajectories(&base, &new, tolerance, !raw)
        .unwrap_or_else(|e| fail(format!("cannot compare: {e}")));
    let lat_compared = compare_latencies(&base, &new, lat_tolerance, !raw)
        .unwrap_or_else(|e| fail(format!("cannot compare latencies: {e}")));

    println!(
        "{:<58} {:>14} {:>14} {:>8}  verdict",
        "point", "baseline", "candidate", "ratio"
    );
    let mut regressions = 0usize;
    for p in &compared {
        println!(
            "{:<58} {:>14.0} {:>14.0} {:>8.3}  {}",
            p.key,
            p.base,
            p.new,
            p.ratio,
            if p.regressed { "REGRESSED" } else { "ok" }
        );
        regressions += p.regressed as usize;
    }
    if !lat_compared.is_empty() {
        println!(
            "{:<58} {:>14} {:>14} {:>8}  verdict",
            "point (p99 latency, ns)", "baseline", "candidate", "ratio"
        );
        for p in &lat_compared {
            println!(
                "{:<58} {:>14.0} {:>14.0} {:>8.3}  {}",
                p.key,
                p.base,
                p.new,
                p.ratio,
                if p.regressed { "REGRESSED" } else { "ok" }
            );
            regressions += p.regressed as usize;
        }
    }
    let mode = if raw { "raw" } else { "normalized" };
    let total = compared.len() + lat_compared.len();
    if regressions > 0 {
        eprintln!(
            "error: {regressions}/{total} points regressed past tolerance \
             ({:.0}% throughput, {:.0}x latency, {mode})",
            tolerance * 100.0,
            1.0 + lat_tolerance
        );
        std::process::exit(1);
    }
    println!(
        "ok: no point regressed past tolerance ({:.0}% throughput on {} points, \
         {:.0}x latency on {} points, {mode})",
        tolerance * 100.0,
        compared.len(),
        1.0 + lat_tolerance,
        lat_compared.len()
    );
}
