//! Figure 2 (middle & bottom) and the embedded tables: single-thread speedup and read/write/commit/private/inter-tx time breakdown.

use rhtm_bench::{FigureParams, Scale};

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args());
    for writes in [20u8, 80] {
        println!(
            "# Single-thread breakdown, {writes}% writes (paper table {}_100_R)",
            writes
        );
        let rows = rhtm_bench::fig2_breakdown(&params, writes);
        for row in &rows {
            println!("{}", row.breakdown_row());
        }
        println!("# Single-thread speedup normalised to TL2");
        for (name, speedup) in rhtm_bench::single_thread_speedups(&rows) {
            println!("{name:<16} {speedup:>6.2}x");
        }
        println!();
    }
}
