//! Figure 2 (middle & bottom) and the embedded tables: single-thread speedup and read/write/commit/private/inter-tx time breakdown.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin fig2_breakdown [paper|quick] [spec=..]
//! ```
//!
//! The `spec=` axis (comma-separated `TmSpec` labels) replaces the
//! table's paper-default algorithm series (speedups stay normalised to
//! TL2, so include `tl2` in a custom series for meaningful ratios).

use rhtm_bench::cli;
use rhtm_bench::FigureParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = cli::figure_args(&args, &[]).unwrap_or_else(|e| cli::fail(e));
    let params = FigureParams::new(parsed.scale);
    for writes in [20u8, 80] {
        println!(
            "# Single-thread breakdown, {writes}% writes (paper table {}_100_R)",
            writes
        );
        let rows = match &parsed.specs {
            Some(specs) => rhtm_bench::fig2_breakdown_specs(&params, specs, writes),
            None => rhtm_bench::fig2_breakdown(&params, writes),
        };
        for row in &rows {
            println!("{}", row.breakdown_row());
        }
        let speedups = rhtm_bench::single_thread_speedups(&rows);
        if speedups.is_empty() {
            println!("# (no TL2 row in the series; speedups-normalised-to-TL2 skipped)");
        } else {
            println!("# Single-thread speedup normalised to TL2");
            for (name, speedup) in speedups {
                println!("{name:<16} {speedup:>6.2}x");
            }
        }
        println!();
    }
}
