//! Figure 3 (middle): 1K-element constant sorted list, 5% writes.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin fig3_sortedlist [paper|quick] [spec=..]
//! ```
//!
//! The `spec=` axis (comma-separated `TmSpec` labels) replaces the
//! figure's paper-default algorithm series.

use rhtm_bench::cli;
use rhtm_bench::FigureParams;
use rhtm_workloads::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = cli::figure_args(&args, &[]).unwrap_or_else(|e| cli::fail(e));
    let params = FigureParams::new(parsed.scale).clamp_threads_to_host();
    eprintln!(
        "running Figure 3 (constant sorted list, 5% writes), threads {:?}",
        params.thread_counts
    );
    let rows = match &parsed.specs {
        Some(specs) => rhtm_bench::fig3_sortedlist_specs(&params, specs),
        None => rhtm_bench::fig3_sortedlist(&params),
    };
    println!(
        "{}",
        report::format_series(
            "Figure 3 (middle): 1K Nodes Constant Sorted List, 5% mutations",
            &rows
        )
    );
    println!("{}", report::to_json(&rows));
}
