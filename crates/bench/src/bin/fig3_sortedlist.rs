//! Figure 3 (middle): 1K-element constant sorted list, 5% writes.

use rhtm_bench::{FigureParams, Scale};
use rhtm_workloads::report;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args()).clamp_threads_to_host();
    eprintln!(
        "running Figure 3 (constant sorted list, 5% writes), threads {:?}",
        params.thread_counts
    );
    let rows = rhtm_bench::fig3_sortedlist(&params);
    println!(
        "{}",
        report::format_series(
            "Figure 3 (middle): 1K Nodes Constant Sorted List, 5% mutations",
            &rows
        )
    );
    println!("{}", report::to_json(&rows));
}
