//! Figure 3 (left): constant hash table, 20% writes.

use rhtm_bench::{FigureParams, Scale};
use rhtm_workloads::report;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args()).clamp_threads_to_host();
    eprintln!(
        "running Figure 3 (constant hash table, 20% writes), threads {:?}",
        params.thread_counts
    );
    let rows = rhtm_bench::fig3_hashtable(&params);
    println!(
        "{}",
        report::format_series("Figure 3 (left): Constant Hash Table, 20% mutations", &rows)
    );
    println!("{}", report::to_json(&rows));
}
