//! Ablation A3: the fallback cascade (fast-path, mixed slow-path, RH2 commit, all-software write-back) under shrinking hardware capacity.

use rhtm_bench::{FigureParams, Scale};

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Paper)
}

fn main() {
    let params = FigureParams::new(scale_from_args());
    println!("# Ablation A3: fallback cascade under shrinking hardware capacity (RH1 Mixed 100, constant hash table, 50% writes)");
    for (capacity, row) in rhtm_bench::ablation_fallback(&params) {
        println!("capacity {:>4} lines: {}", capacity, row.throughput_row());
        for (cause, count) in row.abort_causes() {
            println!("    aborts[{cause}] = {count}");
        }
    }
}
