//! Ablation A3: the fallback cascade (fast-path, mixed slow-path, RH2 commit, all-software write-back) under shrinking hardware capacity.
//!
//! ```text
//! cargo run -p rhtm-bench --release --bin ablation_fallback [paper|quick] [spec=..]
//! ```
//!
//! The `spec=` axis (comma-separated `TmSpec` labels) replaces the
//! default RH1-Mixed-100 spec; the capacity sweep runs once per spec.

use rhtm_bench::cli;
use rhtm_bench::FigureParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = cli::figure_args(&args, &[]).unwrap_or_else(|e| cli::fail(e));
    let params = FigureParams::new(parsed.scale);
    println!("# Ablation A3: fallback cascade under shrinking hardware capacity (RH1 Mixed 100, constant hash table, 50% writes)");
    let rows = match &parsed.specs {
        Some(specs) => rhtm_bench::ablation_fallback_specs(&params, specs),
        None => rhtm_bench::ablation_fallback(&params),
    };
    for (capacity, row) in rows {
        println!("capacity {:>4} lines: {}", capacity, row.throughput_row());
        for (cause, count) in row.abort_causes() {
            println!("    aborts[{cause}] = {count}");
        }
    }
}
