//! # rhtm-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see the workspace `README.md` for the
//! experiment-by-experiment index), plus the clock/capacity/fallback
//! ablations that probe the design space around the paper's choices.
//!
//! The same figure definitions are exposed at two scales:
//!
//! * **Paper scale** ([`Scale::Paper`]) — the sizes the paper uses (100 K
//!   node tree, 1 K element list, 128 K entry array, threads 1..20).  Run
//!   through the `fig*` binaries, e.g.
//!   `cargo run -p rhtm-bench --release --bin fig1_rbtree`.
//! * **Quick scale** ([`Scale::Quick`]) — reduced sizes so that
//!   `cargo bench --workspace` exercises every figure in a few minutes
//!   through the Criterion benches.
//!
//! Each figure function returns the raw [`rhtm_workloads::BenchResult`] rows so binaries,
//! benches and tests all share one definition of the experiment.  Every
//! experiment is defined over [`rhtm_workloads::TmSpec`] runtime points,
//! and every binary accepts the shared `spec=` CLI axis ([`cli`]) to
//! replace its paper-default series — see `docs/BENCHMARKS.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cli;
pub mod figures;
pub mod params;
pub mod suite;
pub mod trajectory;

pub use figures::*;
pub use params::{FigureParams, Scale};
pub use suite::{run_suite, run_suite_to_json, SuiteParams};
pub use trajectory::{run_trajectory, TrajectoryParams, TrajectoryPoint};
