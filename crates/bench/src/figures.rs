//! Figure and table definitions.
//!
//! Each function reproduces one experiment of the paper's evaluation and
//! returns its raw rows; the `fig*` binaries print them at paper scale and
//! the Criterion benches run them at quick scale.  The workspace `README.md`
//! maps every binary to the paper's figure/table it regenerates.
//!
//! Every experiment is defined over [`TmSpec`]s — the declarative runtime
//! point (`algorithm × clock × retry policy`) — and comes in two forms:
//! the paper-default form (`fig1_rbtree`), whose spec series is the
//! paper's algorithm set, and a `*_specs` form that sweeps any caller-
//! provided series, which is what the binaries' `spec=` CLI axis feeds
//! (see `docs/BENCHMARKS.md`).

use std::sync::Arc;

use rhtm_api::RetryPolicyHandle;
use rhtm_htm::{HtmConfig, HtmSim};
use rhtm_mem::{ClockScheme, MemConfig};
use rhtm_workloads::{
    AlgoKind, BenchResult, ConstantHashTable, ConstantRbTree, ConstantSortedList, DriverOpts,
    OpMix, RandomArray, Scenario, TmSpec,
};

use crate::params::FigureParams;

/// Sizes the shared memory for a workload that needs `data_words` words.
fn mem_config(data_words: usize) -> MemConfig {
    MemConfig::with_data_words(data_words + 4096)
}

/// The default spec series for a list of algorithm kinds (clock and retry
/// policy at their defaults).
pub fn specs_of(kinds: &[AlgoKind]) -> Vec<TmSpec> {
    kinds.iter().map(|&k| TmSpec::new(k)).collect()
}

fn timed_opts(params: &FigureParams, threads: usize, write_percent: u8) -> DriverOpts {
    DriverOpts::timed_mix(threads, OpMix::read_update(write_percent), params.duration)
}

/// One point of a throughput figure: `spec` on the constant red-black tree.
fn rbtree_point(
    params: &FigureParams,
    spec: &TmSpec,
    threads: usize,
    write_percent: u8,
) -> BenchResult {
    let nodes = params.rbtree_nodes;
    spec.clone()
        .mem(mem_config(ConstantRbTree::required_words(nodes)))
        .bench(
            |sim: &Arc<HtmSim>| ConstantRbTree::new(Arc::clone(sim), nodes),
            &timed_opts(params, threads, write_percent),
        )
}

/// **Figure 1**: constant red-black tree, 20% mutations, thread sweep over
/// {HTM, Standard HyTM, TL2, RH1 Fast} — the instrumentation-cost
/// experiment.
pub fn fig1_rbtree(params: &FigureParams) -> Vec<BenchResult> {
    fig1_rbtree_specs(
        params,
        &specs_of(&[
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Fast,
        ]),
    )
}

/// [`fig1_rbtree`] over an arbitrary spec series (the `spec=` CLI axis).
pub fn fig1_rbtree_specs(params: &FigureParams, specs: &[TmSpec]) -> Vec<BenchResult> {
    let mut rows = Vec::new();
    for &threads in &params.thread_counts {
        for spec in specs {
            rows.push(rbtree_point(params, spec, threads, 20));
        }
    }
    rows
}

/// **Figure 2 (top)**: constant red-black tree with the slow-path-mix
/// variants at the given write percentage (the paper shows 20% and 80%).
pub fn fig2_rbtree(params: &FigureParams, write_percent: u8) -> Vec<BenchResult> {
    fig2_rbtree_specs(params, &specs_of(&AlgoKind::FIGURE_SET), write_percent)
}

/// [`fig2_rbtree`] over an arbitrary spec series (the `spec=` CLI axis).
pub fn fig2_rbtree_specs(
    params: &FigureParams,
    specs: &[TmSpec],
    write_percent: u8,
) -> Vec<BenchResult> {
    let mut rows = Vec::new();
    for &threads in &params.thread_counts {
        for spec in specs {
            rows.push(rbtree_point(params, spec, threads, write_percent));
        }
    }
    rows
}

/// **Figure 2 (middle & bottom) and the `20_100_R` / `80_100_R` tables**:
/// single-thread speedup and time breakdown for
/// {RH1 Slow, TL2, Standard HyTM, RH1 Fast, HTM}.
pub fn fig2_breakdown(params: &FigureParams, write_percent: u8) -> Vec<BenchResult> {
    fig2_breakdown_specs(
        params,
        &specs_of(&[
            AlgoKind::Rh1Slow,
            AlgoKind::Tl2,
            AlgoKind::StdHytm,
            AlgoKind::Rh1Fast,
            AlgoKind::Htm,
        ]),
        write_percent,
    )
}

/// [`fig2_breakdown`] over an arbitrary spec series (the `spec=` CLI
/// axis).
pub fn fig2_breakdown_specs(
    params: &FigureParams,
    specs: &[TmSpec],
    write_percent: u8,
) -> Vec<BenchResult> {
    let nodes = params.rbtree_nodes;
    specs
        .iter()
        .map(|spec| {
            spec.clone()
                .mem(mem_config(ConstantRbTree::required_words(nodes)))
                .bench(
                    |sim: &Arc<HtmSim>| ConstantRbTree::new(Arc::clone(sim), nodes),
                    &DriverOpts::counted_mix(
                        1,
                        OpMix::read_update(write_percent),
                        params.ops_per_thread,
                    )
                    .with_breakdown(),
                )
        })
        .collect()
}

/// Single-thread speedups normalised to TL2 (the paper's Figure 2 middle
/// charts), computed from breakdown rows.
///
/// Returns an empty vector when the series carries no TL2 row (possible
/// since the `spec=` axis can replace the default series): without the
/// baseline the ratios would silently be raw throughputs, which callers
/// must not print as "normalised to TL2".
pub fn single_thread_speedups(rows: &[BenchResult]) -> Vec<(String, f64)> {
    let Some(tl2) = rows
        .iter()
        .find(|r| r.algorithm == "TL2")
        .map(|r| r.throughput())
    else {
        return Vec::new();
    };
    rows.iter()
        .map(|r| {
            (
                r.algorithm.clone(),
                r.throughput() / tl2.max(f64::MIN_POSITIVE),
            )
        })
        .collect()
}

/// **Figure 3 (left)**: constant hash table, 20% writes.
pub fn fig3_hashtable(params: &FigureParams) -> Vec<BenchResult> {
    fig3_hashtable_specs(
        params,
        &specs_of(&[
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Mixed(100),
        ]),
    )
}

/// [`fig3_hashtable`] over an arbitrary spec series (the `spec=` CLI
/// axis).
pub fn fig3_hashtable_specs(params: &FigureParams, specs: &[TmSpec]) -> Vec<BenchResult> {
    let elements = params.hashtable_elements;
    let mut rows = Vec::new();
    for &threads in &params.thread_counts {
        for spec in specs {
            rows.push(
                spec.clone()
                    .mem(mem_config(ConstantHashTable::required_words(elements)))
                    .bench(
                        |sim: &Arc<HtmSim>| ConstantHashTable::new(Arc::clone(sim), elements),
                        &timed_opts(params, threads, 20),
                    ),
            );
        }
    }
    rows
}

/// **Figure 3 (middle)**: constant sorted list, 5% writes.
pub fn fig3_sortedlist(params: &FigureParams) -> Vec<BenchResult> {
    fig3_sortedlist_specs(params, &specs_of(&AlgoKind::FIGURE_SET))
}

/// [`fig3_sortedlist`] over an arbitrary spec series (the `spec=` CLI
/// axis).
pub fn fig3_sortedlist_specs(params: &FigureParams, specs: &[TmSpec]) -> Vec<BenchResult> {
    let elements = params.sortedlist_elements;
    let mut rows = Vec::new();
    for &threads in &params.thread_counts {
        for spec in specs {
            rows.push(
                spec.clone()
                    .mem(mem_config(ConstantSortedList::required_words(elements)))
                    .bench(
                        |sim: &Arc<HtmSim>| ConstantSortedList::new(Arc::clone(sim), elements),
                        &timed_opts(params, threads, 5),
                    ),
            );
        }
    }
    rows
}

/// One point of the random-array speedup matrix.
#[derive(Clone, Debug)]
pub struct RandomArrayPoint {
    /// Shared accesses per transaction.
    pub txn_len: usize,
    /// Percentage of those accesses that are writes.
    pub write_percent: u8,
    /// Treatment throughput (ops/s) — RH1-Fast in the paper's figure.
    pub rh1_ops_per_sec: f64,
    /// Baseline throughput (ops/s) — the Standard HyTM in the paper's
    /// figure.
    pub std_hytm_ops_per_sec: f64,
    /// The paper's reported quantity: treatment speedup over baseline.
    pub speedup: f64,
}

/// **Figure 3 (right)**: RH speedup over the Standard HyTM on the random
/// array, for transaction lengths {400, 200, 100, 40} and write percentages
/// {0, 20, 50, 90}, at the maximum thread count of the sweep.
pub fn fig3_random_array(params: &FigureParams) -> Vec<RandomArrayPoint> {
    fig3_random_array_specs(
        params,
        &TmSpec::new(AlgoKind::Rh1Fast),
        &TmSpec::new(AlgoKind::StdHytm),
    )
}

/// [`fig3_random_array`] with explicit treatment/baseline specs (the
/// `spec=` CLI axis takes exactly two labels:
/// `spec=treatment,baseline`).
pub fn fig3_random_array_specs(
    params: &FigureParams,
    treatment: &TmSpec,
    baseline: &TmSpec,
) -> Vec<RandomArrayPoint> {
    let threads = params.thread_counts.iter().copied().max().unwrap_or(1);
    let entries = params.random_array_entries;
    let mut points = Vec::new();
    for &txn_len in &[400usize, 200, 100, 40] {
        for &write_percent in &[0u8, 20, 50, 90] {
            let run = |spec: &TmSpec| {
                spec.clone()
                    .mem(mem_config(RandomArray::required_words(entries)))
                    .bench(
                        |sim: &Arc<HtmSim>| {
                            RandomArray::new(Arc::clone(sim), entries, txn_len, write_percent)
                        },
                        &timed_opts(params, threads, 100),
                    )
            };
            let rh1 = run(treatment);
            let std = run(baseline);
            let rh1_tp = rh1.throughput();
            let std_tp = std.throughput();
            points.push(RandomArrayPoint {
                txn_len,
                write_percent,
                rh1_ops_per_sec: rh1_tp,
                std_hytm_ops_per_sec: std_tp,
                speedup: if std_tp > 0.0 { rh1_tp / std_tp } else { 0.0 },
            });
        }
    }
    points
}

/// **Ablation A1**: how much longer a transaction the mixed slow-path can
/// accommodate compared with the fast-path, as the hardware read capacity
/// shrinks (§1.2's "read-set metadata is ~1/4 the size of the data read").
/// Returns `(read_capacity_lines, result)` rows for RH1 Mixed 100 on the
/// random array.
pub fn ablation_capacity(params: &FigureParams) -> Vec<(usize, BenchResult)> {
    ablation_capacity_specs(params, &[TmSpec::new(AlgoKind::Rh1Mixed(100))])
}

/// [`ablation_capacity`] over an arbitrary spec series (the `spec=` CLI
/// axis): the capacity sweep runs once per spec.
pub fn ablation_capacity_specs(
    params: &FigureParams,
    specs: &[TmSpec],
) -> Vec<(usize, BenchResult)> {
    let entries = params.random_array_entries.min(16 * 1024);
    let txn_len = 200;
    let mut rows = Vec::new();
    for spec in specs {
        for &capacity in &[512usize, 128, 64, 32, 16] {
            let result = spec
                .clone()
                .mem(mem_config(RandomArray::required_words(entries)))
                .htm(HtmConfig::with_capacity(capacity, 64))
                .bench(
                    |sim: &Arc<HtmSim>| RandomArray::new(Arc::clone(sim), entries, txn_len, 20),
                    &DriverOpts::counted_mix(2, OpMix::read_update(100), params.ops_per_thread / 4),
                );
            rows.push((capacity, result));
        }
    }
    rows
}

/// One row of the clock-scheme ablation.
#[derive(Clone, Debug)]
pub struct ClockAblationRow {
    /// The global-clock scheme the row was measured under.
    pub scheme: ClockScheme,
    /// The algorithm that was run.
    pub algo: AlgoKind,
    /// The raw benchmark result (throughput, abort causes, path counts).
    pub result: BenchResult,
}

/// **Ablation A2**: the global-clock advancement schemes (strict
/// fetch-and-add, GV4 CAS-relaxed, GV5 commit-skip, GV6 sampled, and the
/// fully incrementing baseline — see [`ClockScheme::ALL`]), swept over the
/// figure's thread counts on the red-black tree at 20% writes.
///
/// Two algorithms bracket the design space: TL2 pays the commit-time clock
/// RMW on *every* writing commit (the bottleneck the relaxed schemes
/// remove), while RH1 Mixed 100 only pays it on slow-path RH2 commits, so
/// its clock sensitivity shows up under fallback pressure.  Rows report
/// commit throughput and abort rate per `(scheme, algorithm, threads)`
/// point.
pub fn ablation_clock(params: &FigureParams) -> Vec<ClockAblationRow> {
    ablation_clock_schemes(params, &ClockScheme::ALL)
}

/// [`ablation_clock`] restricted to the given schemes (used by the
/// `ablation_clock` binary's CLI filter so unrequested schemes are never
/// run).
pub fn ablation_clock_schemes(
    params: &FigureParams,
    schemes: &[ClockScheme],
) -> Vec<ClockAblationRow> {
    ablation_clock_specs(
        params,
        schemes,
        &specs_of(&[AlgoKind::Tl2, AlgoKind::Rh1Mixed(100)]),
    )
}

/// [`ablation_clock`] over arbitrary base specs (the `spec=` CLI axis):
/// each swept scheme overrides the base spec's clock axis, everything
/// else (algorithm, retry policy) is honoured as given.
pub fn ablation_clock_specs(
    params: &FigureParams,
    schemes: &[ClockScheme],
    base_specs: &[TmSpec],
) -> Vec<ClockAblationRow> {
    let nodes = params.rbtree_nodes;
    let mut rows = Vec::new();
    for &scheme in schemes {
        for base in base_specs {
            for &threads in &params.thread_counts {
                let result = base
                    .clone()
                    .clock(scheme)
                    .mem(mem_config(ConstantRbTree::required_words(nodes)))
                    .bench(
                        |sim: &Arc<HtmSim>| ConstantRbTree::new(Arc::clone(sim), nodes),
                        &timed_opts(params, threads, 20),
                    );
                rows.push(ClockAblationRow {
                    scheme,
                    algo: base.algo(),
                    result,
                });
            }
        }
    }
    rows
}

/// One row of the retry-policy ablation.
#[derive(Clone, Debug)]
pub struct RetryAblationRow {
    /// The contention-management policy the row was measured under.
    pub policy: RetryPolicyHandle,
    /// The algorithm that was run.
    pub algo: AlgoKind,
    /// The raw benchmark result (throughput, abort causes, path counts).
    pub result: BenchResult,
}

/// **Ablation A4**: retry policies (see [`RetryPolicyHandle::builtin`]) as
/// a measured axis, swept over `(policy, algorithm, threads)` on the
/// red-black tree at 20% writes.
///
/// The algorithms bracket the decision sites: the RH variants demote
/// between real tiers (fast-path → mixed slow-path → RH2 → all-software),
/// so their rows show policies shifting work across the cascade.  The
/// other three are pacing-only by construction: pure HTM and TL2 have no
/// slower tier, and `AlgoKind::StdHytm` is the paper's `hardware_only`
/// measurement variant, whose contract drops contention demotes (its
/// fallback-enabled demotion is exercised by `tests/retry_policies.rs`
/// instead).  Rows report commit throughput and abort rate per
/// `(policy, algorithm, threads)` point.
pub fn ablation_retry(params: &FigureParams) -> Vec<RetryAblationRow> {
    ablation_retry_policies(params, &RetryPolicyHandle::builtin())
}

/// [`ablation_retry`] restricted to the given policies (used by the
/// `ablation_retry` binary's CLI filter and the CI smoke run, so
/// unrequested policies are never run).
pub fn ablation_retry_policies(
    params: &FigureParams,
    policies: &[RetryPolicyHandle],
) -> Vec<RetryAblationRow> {
    ablation_retry_specs(
        params,
        policies,
        &specs_of(&[
            AlgoKind::Htm,
            AlgoKind::StdHytm,
            AlgoKind::Tl2,
            AlgoKind::Rh1Mixed(100),
            AlgoKind::Rh2,
        ]),
    )
}

/// [`ablation_retry`] over arbitrary base specs (the `spec=` CLI axis):
/// each swept policy overrides the base spec's retry axis, everything
/// else (algorithm, clock) is honoured as given.
pub fn ablation_retry_specs(
    params: &FigureParams,
    policies: &[RetryPolicyHandle],
    base_specs: &[TmSpec],
) -> Vec<RetryAblationRow> {
    let nodes = params.rbtree_nodes;
    let mut rows = Vec::new();
    for policy in policies {
        for base in base_specs {
            for &threads in &params.thread_counts {
                let result = base
                    .clone()
                    .retry(policy.clone())
                    .mem(mem_config(ConstantRbTree::required_words(nodes)))
                    .bench(
                        |sim: &Arc<HtmSim>| ConstantRbTree::new(Arc::clone(sim), nodes),
                        &timed_opts(params, threads, 20),
                    );
                rows.push(RetryAblationRow {
                    policy: policy.clone(),
                    algo: base.algo(),
                    result,
                });
            }
        }
    }
    rows
}

/// The scenario the Retry 2.0 ablation runs on: the registry's phased
/// flash-crowd skiplist, where a contention spike arrives mid-run — the
/// load shape the circuit breaker and the retry budget were built for.
pub const ABLATION_RETRY2_SCENARIO: &str = "skiplist-flash-crowd";

/// The Retry 2.0 policy series: the paper-default baseline plus the four
/// PR-8 policies (full-jitter and fibonacci backoff, the per-thread
/// circuit breaker and the shared retry budget, all at their defaults).
pub fn retry2_policies() -> Vec<RetryPolicyHandle> {
    vec![
        RetryPolicyHandle::paper_default(),
        RetryPolicyHandle::full_jitter(),
        RetryPolicyHandle::fibonacci(),
        RetryPolicyHandle::circuit_breaker(),
        RetryPolicyHandle::budgeted(),
    ]
}

/// **Ablation A5 (Retry 2.0)**: the circuit-breaker/budget/jitter policies
/// under a flash crowd, swept over `(policy, algorithm, threads)` on the
/// phased [`ABLATION_RETRY2_SCENARIO`] skiplist.
///
/// Unlike [`ablation_retry`] (stationary rb-tree), this sweep's load is
/// *non-stationary*: the first half is uniform, then 95% of operations
/// land on 1% of the keys.  A fixed pacing policy keeps feeding hardware
/// retries into the crowd; the breaker demotes early and probes its way
/// back, and the budget sheds retries globally — the rows' retry-metrics
/// counters (`circuit_opens`, `budget_exhausted`, ...) show it happening.
pub fn ablation_retry2(params: &FigureParams) -> Vec<RetryAblationRow> {
    ablation_retry2_policies(params, &retry2_policies())
}

/// [`ablation_retry2`] restricted to the given policies (the
/// `ablation_retry2` binary's CLI filter and the CI smoke run).
pub fn ablation_retry2_policies(
    params: &FigureParams,
    policies: &[RetryPolicyHandle],
) -> Vec<RetryAblationRow> {
    // The default algorithms bracket demote-willingness: RH1 Mixed 10
    // retries contention aborts in hardware 90% of the time (the breaker's
    // best case), RH1 Mixed 100 demotes on first contention (pacing-bound),
    // and RH2 is the slow-path-only bound.
    ablation_retry2_specs(
        params,
        policies,
        &specs_of(&[
            AlgoKind::Rh1Mixed(10),
            AlgoKind::Rh1Mixed(100),
            AlgoKind::Rh2,
        ]),
    )
}

/// [`ablation_retry2`] over arbitrary base specs (the `spec=` CLI axis):
/// each swept policy overrides the base spec's retry axis, everything
/// else (algorithm, clock) is honoured as given.
pub fn ablation_retry2_specs(
    params: &FigureParams,
    policies: &[RetryPolicyHandle],
    base_specs: &[TmSpec],
) -> Vec<RetryAblationRow> {
    let scenario =
        Scenario::find(ABLATION_RETRY2_SCENARIO).expect("the flash-crowd scenario is registered");
    // Scale the registered (paper-like) skiplist size in proportion to the
    // figure's rb-tree size so quick-scale runs shrink with the rest of
    // the figures; `sized` floors at the structure's minimum.
    let divisor = (100_000 / params.rbtree_nodes.max(1)).max(1);
    let size = scenario.sized(divisor);
    let mut rows = Vec::new();
    for policy in policies {
        for base in base_specs {
            for &threads in &params.thread_counts {
                let spec = base.clone().retry(policy.clone());
                let result = scenario.run_spec(
                    &spec,
                    size,
                    &DriverOpts::timed_mix(threads, OpMix::read_update(0), params.duration),
                );
                rows.push(RetryAblationRow {
                    policy: policy.clone(),
                    algo: base.algo(),
                    result,
                });
            }
        }
    }
    rows
}

/// **Ablation A3**: the cost of the fallback cascade.  The hash table is run
/// under RH1 Mixed 100 with progressively smaller hardware capacities, so
/// transactions are pushed from the fast-path to the mixed slow-path, the
/// RH2 commit and finally the all-software write-back; the result rows show
/// the path distribution.
pub fn ablation_fallback(params: &FigureParams) -> Vec<(usize, BenchResult)> {
    ablation_fallback_specs(params, &[TmSpec::new(AlgoKind::Rh1Mixed(100))])
}

/// [`ablation_fallback`] over an arbitrary spec series (the `spec=` CLI
/// axis): the capacity sweep runs once per spec.
pub fn ablation_fallback_specs(
    params: &FigureParams,
    specs: &[TmSpec],
) -> Vec<(usize, BenchResult)> {
    let elements = params.hashtable_elements;
    let mut rows = Vec::new();
    for spec in specs {
        for &capacity in &[512usize, 16, 8, 4, 2] {
            let result = spec
                .clone()
                .mem(mem_config(ConstantHashTable::required_words(elements)))
                .htm(HtmConfig::with_capacity(capacity, capacity.min(8)))
                .bench(
                    |sim: &Arc<HtmSim>| ConstantHashTable::new(Arc::clone(sim), elements),
                    &DriverOpts::counted_mix(2, OpMix::read_update(50), params.ops_per_thread / 4),
                );
            rows.push((capacity, result));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Scale;

    fn tiny_params() -> FigureParams {
        FigureParams {
            rbtree_nodes: 1_000,
            hashtable_elements: 512,
            sortedlist_elements: 64,
            random_array_entries: 2_048,
            thread_counts: vec![1, 2],
            duration: std::time::Duration::from_millis(20),
            ops_per_thread: 200,
        }
    }

    #[test]
    fn fig1_produces_a_row_per_algo_and_thread_count() {
        let rows = fig1_rbtree(&tiny_params());
        assert_eq!(rows.len(), 2 * 4);
        assert!(rows.iter().all(|r| r.total_ops > 0));
        assert!(rows.iter().all(|r| !r.spec.is_empty()), "spec recorded");
    }

    #[test]
    fn fig2_breakdown_contains_the_papers_five_rows() {
        let rows = fig2_breakdown(&tiny_params(), 20);
        let names: Vec<_> = rows.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(
            names,
            vec!["RH1 Slow", "TL2", "Standard HyTM", "RH1 Fast", "HTM"]
        );
        assert!(rows.iter().all(|r| r.breakdown.is_some()));
        let speedups = single_thread_speedups(&rows);
        let tl2 = speedups.iter().find(|(n, _)| n == "TL2").unwrap().1;
        assert!((tl2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_random_array_matrix_has_16_points() {
        let mut p = tiny_params();
        p.duration = std::time::Duration::from_millis(10);
        let points = fig3_random_array(&p);
        assert_eq!(points.len(), 16);
        assert!(points.iter().all(|pt| pt.rh1_ops_per_sec > 0.0));
    }

    #[test]
    fn speedups_without_a_tl2_baseline_are_refused_not_mislabeled() {
        let rows = fig2_breakdown_specs(&tiny_params(), &specs_of(&[AlgoKind::Htm]), 20);
        assert!(single_thread_speedups(&rows).is_empty());
    }

    #[test]
    fn figures_honour_an_explicit_spec_series() {
        let p = tiny_params();
        let specs = vec![
            TmSpec::parse("rh2+gv6+adaptive").unwrap(),
            TmSpec::parse("tl2+gv5").unwrap(),
        ];
        let rows = fig1_rbtree_specs(&p, &specs);
        assert_eq!(rows.len(), 2 * 2);
        assert_eq!(rows[0].spec, "rh2+gv6+adaptive");
        assert_eq!(rows[1].spec, "tl2+gv5+paper-default");
        assert!(rows.iter().all(|r| r.total_ops > 0));
    }

    #[test]
    fn ablations_produce_rows() {
        let p = tiny_params();
        // schemes × {TL2, RH1 Mixed 100} × thread counts
        let clock_rows = ablation_clock(&p);
        assert_eq!(
            clock_rows.len(),
            ClockScheme::ALL.len() * 2 * p.thread_counts.len()
        );
        assert!(clock_rows.iter().all(|r| r.result.total_ops > 0));
        // Every scheme must actually commit work on every algorithm, and
        // the swept scheme must be recorded in the row's spec label.
        for scheme in ClockScheme::ALL {
            assert!(
                clock_rows
                    .iter()
                    .filter(|r| r.scheme == scheme)
                    .all(|r| r.result.stats.commits() > 0
                        && r.result.spec.contains(scheme.label())),
                "{scheme:?} produced no commits or lost its spec label"
            );
        }
        assert_eq!(ablation_capacity(&p).len(), 5);
        assert_eq!(ablation_fallback(&p).len(), 5);
    }

    #[test]
    fn retry_ablation_produces_committing_rows_per_policy() {
        let p = tiny_params();
        let policies = vec![
            RetryPolicyHandle::paper_default(),
            RetryPolicyHandle::adaptive(),
        ];
        let rows = ablation_retry_policies(&p, &policies);
        // policies × 5 algorithms × thread counts
        assert_eq!(rows.len(), policies.len() * 5 * p.thread_counts.len());
        for row in &rows {
            assert!(
                row.result.stats.commits() > 0,
                "{} × {:?} produced no commits",
                row.policy.label(),
                row.algo
            );
            assert!(
                row.result.spec.ends_with(row.policy.label()),
                "{}: spec label must carry the swept policy",
                row.result.spec
            );
        }
    }

    #[test]
    fn retry2_ablation_runs_the_phased_scenario_per_policy() {
        let p = tiny_params();
        let policies = vec![
            RetryPolicyHandle::paper_default(),
            RetryPolicyHandle::circuit_breaker(),
        ];
        let rows = ablation_retry2_policies(&p, &policies);
        // policies × 3 algorithms × thread counts
        assert_eq!(rows.len(), policies.len() * 3 * p.thread_counts.len());
        for row in &rows {
            assert!(
                row.result.stats.commits() > 0,
                "{} × {:?} produced no commits",
                row.policy.label(),
                row.algo
            );
            assert!(
                row.result.spec.ends_with(row.policy.label()),
                "{}: spec label must carry the swept policy",
                row.result.spec
            );
            // The flash-crowd scenario drives the workload name.
            assert!(
                row.result.workload.contains("skiplist"),
                "unexpected workload {}",
                row.result.workload
            );
        }
        // The always-on metrics stay internally consistent: every circuit
        // close requires a preceding open and an admitted probe, and only
        // the breaker rows may report circuit transitions at all.
        for row in &rows {
            let m = &row.result.stats.retry;
            assert!(m.circuit_closes <= m.circuit_opens, "{}", row.result.spec);
            assert!(m.circuit_closes <= m.circuit_probes, "{}", row.result.spec);
            if row.policy.label() != "cb" {
                assert_eq!(m.circuit_opens, 0, "{}", row.result.spec);
            }
        }
    }

    #[test]
    fn quick_scale_figures_are_wired_to_real_sizes() {
        let q = FigureParams::new(Scale::Quick);
        assert!(q.rbtree_nodes >= 10_000);
    }
}
