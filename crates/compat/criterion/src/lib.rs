//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds in environments without network access to a crates
//! registry, so the real criterion cannot be fetched.  This shim implements
//! just the API subset the `rhtm-bench` bench targets use — enough for
//! `cargo bench` to compile, run every benchmark and print mean wall-clock
//! times — without any of criterion's statistics, plotting or baselines.
//!
//! The measurement loop is deliberately simple: a short warm-up, then
//! `sample_size` timed batches, reporting the mean and min/max per
//! iteration.  Replace the workspace `criterion` dependency with the real
//! crate (same API) when registry access is available.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark inside a group (mirrors criterion's type).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Mean/min/max nanoseconds per iteration of the last `iter` call.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting `sample_size`
    /// batches whose total duration approximates the measurement time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once) and
        // estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters == 0 || warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each batch so that sample_size batches fill the measurement
        // budget.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        self.result = Some((mean, min, max));
    }
}

fn print_row(name: &str, result: Option<(f64, f64, f64)>) {
    match result {
        Some((mean, min, max)) => {
            println!(
                "{name:<48} time: [{} {} {}]",
                format_ns(min),
                format_ns(mean),
                format_ns(max)
            );
        }
        None => println!("{name:<48} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing sampling parameters.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget across the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut bencher, input);
        print_row(&format!("{}/{}", self.name, id.id), bencher.result);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut bencher);
        print_row(&format!("{}/{}", self.name, id.into()), bencher.result);
        self
    }

    /// Ends the group (required by the criterion API; a no-op here).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Runs a stand-alone benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut bencher);
        print_row(name, bencher.result);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up, self.measurement);
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            warm_up,
            measurement,
        }
    }
}

/// Declares a group of benchmark functions (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups (mirrors criterion's
/// macro).  Command-line arguments (`--bench`, filters, ...) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(4));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &7u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
