//! The memory-subsystem primitives shared by allocation and reclamation:
//! per-thread allocation metrics and the epoch set.
//!
//! This module holds the *mechanism* layer of the memory subsystem.  The
//! per-thread arena allocator itself lives on [`crate::TmMemory`]
//! (`arena_try_alloc`), because it carves blocks out of the memory
//! region's bump cursor; the typed node pools that combine arenas with
//! epoch-based reclamation live one crate up, in `rhtm_api::reclaim`.
//!
//! ## Epoch scheme
//!
//! [`EpochSet`] is a classic three-epoch reclamation clock.  A global
//! epoch counter starts at 2 (so the value 0 can mean "unpinned" in the
//! per-thread pin slots).  A thread *pins* the current epoch around any
//! operation that may traverse shared nodes, and *unpins* (writes 0) when
//! done.  The epoch advances (`try_advance`) only when every pin slot is
//! either unpinned or already at the current epoch — so after **two**
//! advances past an epoch `e`, no thread can still hold a reference
//! acquired at `e`, and anything retired at `e` is physically reclaimable
//! (`is_safe`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::pad::CachePadded;

/// Per-thread allocation/reclamation counters, merged into
/// `rhtm_api::TxStats` and emitted in every bench JSON row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemMetrics {
    /// Heap words handed out by fresh (arena or global) allocation —
    /// recycled nodes do not count.
    pub alloc_words: u64,
    /// Nodes retired (logically freed inside a committed remove).
    pub retired: u64,
    /// Retired nodes physically reclaimed after their epoch passed.
    pub reclaimed: u64,
    /// Successful global epoch advances driven by this thread.
    pub epoch_advances: u64,
}

impl MemMetrics {
    /// Accumulates `other` into `self` (all counters are additive).
    pub fn merge(&mut self, other: &MemMetrics) {
        self.alloc_words += other.alloc_words;
        self.retired += other.retired;
        self.reclaimed += other.reclaimed;
        self.epoch_advances += other.epoch_advances;
    }
}

/// The value of an unpinned slot.  The global epoch starts at
/// [`EpochSet::FIRST_EPOCH`] and only grows, so a pin slot can never
/// legitimately hold 0.
const UNPINNED: u64 = 0;

/// A global epoch counter plus per-thread pin slots, one epoch domain per
/// [`crate::TmMemory`] (one per shard/runtime instance).
pub struct EpochSet {
    global: CachePadded<AtomicU64>,
    pins: Box<[CachePadded<AtomicU64>]>,
    /// One past the highest thread id that ever pinned: `try_advance`
    /// scans only this prefix, so a 64-slot set costs a single-threaded
    /// run one pin-slot load per advance attempt, not 64.
    watermark: AtomicUsize,
}

impl EpochSet {
    /// The initial global epoch.
    pub const FIRST_EPOCH: u64 = 2;

    /// An epoch set with `max_threads` pin slots.
    pub fn new(max_threads: usize) -> Self {
        let pins = (0..max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(UNPINNED)))
            .collect();
        EpochSet {
            global: CachePadded::new(AtomicU64::new(Self::FIRST_EPOCH)),
            pins,
            watermark: AtomicUsize::new(0),
        }
    }

    /// Number of pin slots.
    pub fn capacity(&self) -> usize {
        self.pins.len()
    }

    /// The current global epoch.
    #[inline]
    pub fn current(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Pins `thread_id` at the current epoch and returns it.
    ///
    /// The store-then-recheck loop closes the classic race where the
    /// global advances between reading it and publishing the pin: the pin
    /// only returns once the published value matches the global, so an
    /// advancer that missed this pin cannot have advanced *past* it.
    ///
    /// # Panics
    ///
    /// Panics when `thread_id` is outside the configured capacity.
    pub fn pin(&self, thread_id: usize) -> u64 {
        if thread_id >= self.watermark.load(Ordering::Relaxed) {
            self.watermark.fetch_max(thread_id + 1, Ordering::SeqCst);
        }
        loop {
            let e = self.global.load(Ordering::SeqCst);
            self.pins[thread_id].store(e, Ordering::SeqCst);
            if self.global.load(Ordering::SeqCst) == e {
                return e;
            }
        }
    }

    /// Clears `thread_id`'s pin.
    #[inline]
    pub fn unpin(&self, thread_id: usize) {
        self.pins[thread_id].store(UNPINNED, Ordering::SeqCst);
    }

    /// Tries to advance the global epoch by one.  Succeeds only when every
    /// pin slot is unpinned or already at the current epoch; returns
    /// whether this call performed the advance.
    pub fn try_advance(&self) -> bool {
        let e = self.global.load(Ordering::SeqCst);
        let scan = self.watermark.load(Ordering::SeqCst);
        for pin in &self.pins[..scan] {
            let v = pin.load(Ordering::SeqCst);
            if v != UNPINNED && v != e {
                return false;
            }
        }
        self.global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Whether something retired at `retired_at` is physically
    /// reclaimable: the global epoch has advanced at least twice past it,
    /// so no thread can still hold a reference acquired before the
    /// retiring remove committed.
    #[inline]
    pub fn is_safe(&self, retired_at: u64) -> bool {
        self.current() >= retired_at + 2
    }
}

impl std::fmt::Debug for EpochSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochSet")
            .field("global", &self.current())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_merge_is_additive() {
        let mut a = MemMetrics {
            alloc_words: 1,
            retired: 2,
            reclaimed: 3,
            epoch_advances: 4,
        };
        let b = MemMetrics {
            alloc_words: 10,
            retired: 20,
            reclaimed: 30,
            epoch_advances: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            MemMetrics {
                alloc_words: 11,
                retired: 22,
                reclaimed: 33,
                epoch_advances: 44,
            }
        );
        let mut fresh = MemMetrics::default();
        fresh.merge(&a);
        assert_eq!(fresh, a);
    }

    #[test]
    fn epochs_start_at_two_and_advance_when_unpinned() {
        let e = EpochSet::new(4);
        assert_eq!(e.current(), 2);
        assert!(e.try_advance());
        assert_eq!(e.current(), 3);
        assert!(!e.is_safe(2), "needs two advances past the retire epoch");
        assert!(e.try_advance());
        assert!(e.is_safe(2));
        assert!(!e.is_safe(3));
    }

    #[test]
    fn a_lagging_pin_blocks_the_advance() {
        let e = EpochSet::new(4);
        assert_eq!(e.pin(1), 2);
        // A pin at the current epoch does not block (it has already seen
        // this epoch's world).
        assert!(e.try_advance());
        assert_eq!(e.current(), 3);
        // But now slot 1 lags at 2, so the next advance is blocked.
        assert!(!e.try_advance());
        assert_eq!(e.current(), 3);
        e.unpin(1);
        assert!(e.try_advance());
        assert_eq!(e.current(), 4);
    }

    #[test]
    fn repinning_catches_up_to_the_current_epoch() {
        let e = EpochSet::new(2);
        assert_eq!(e.pin(0), 2);
        e.unpin(0);
        assert!(e.try_advance());
        assert_eq!(e.pin(0), 3, "pin returns the live epoch");
    }

    #[test]
    #[should_panic]
    fn pinning_past_capacity_panics() {
        let e = EpochSet::new(2);
        e.pin(2);
    }
}
