//! Word addresses, cache-line geometry and stripe identifiers.
//!
//! The transactional heap is an array of 64-bit words.  An [`Addr`] is an
//! index into that array.  The simulated HTM tracks conflicts at
//! *cache-line* granularity ([`CACHE_LINE_WORDS`] words per line, 64 bytes),
//! while the software protocols map data addresses onto *stripes* whose size
//! is configured by [`crate::MemConfig::stripe_shift`].

use std::fmt;

/// log2 of the number of 64-bit words per simulated cache line.
///
/// 8 words × 8 bytes = 64 bytes, the line size of the Xeon E7-4870 used in
/// the paper's evaluation (and of every recent x86 part).
pub const LINE_SHIFT: usize = 3;

/// Number of 64-bit words per simulated cache line.
pub const CACHE_LINE_WORDS: usize = 1 << LINE_SHIFT;

/// A word address inside the transactional heap.
///
/// Addresses are plain indices; address `0` is a valid metadata word (the
/// global version clock), so `Addr` has no niche/sentinel value.  The
/// protocols use [`Addr::NULL`] (`u64::MAX` truncated) as an in-heap null
/// pointer for linked data structures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub usize);

impl Addr {
    /// In-heap "null pointer" encoding used by the workloads' linked
    /// structures.  It is never a valid heap index.
    pub const NULL: Addr = Addr(usize::MAX);

    /// Returns the raw word index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the [`Addr::NULL`] sentinel.
    #[inline(always)]
    pub fn is_null(self) -> bool {
        self.0 == usize::MAX
    }

    /// Returns the address `offset` words after `self`.
    #[inline(always)]
    pub fn offset(self, offset: usize) -> Addr {
        Addr(self.0 + offset)
    }

    /// Cache line index of this address in the simulated HTM's conflict
    /// tracking tables.
    #[inline(always)]
    pub fn line(self) -> usize {
        self.0 >> LINE_SHIFT
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Addr(NULL)")
        } else {
            write!(f, "Addr({:#x})", self.0)
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<usize> for Addr {
    fn from(v: usize) -> Self {
        Addr(v)
    }
}

/// Identifier of a logical memory stripe (partition).
///
/// Each stripe of the data region has an associated *stripe version*
/// (time-stamp, possibly with a lock bit in RH2/TL2) and, for RH2, a *read
/// mask* recording which threads have made their reads visible during a
/// slow-path commit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StripeId(pub usize);

impl StripeId {
    /// Returns the raw stripe index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_not_a_valid_index() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(0).is_null());
        assert!(!Addr(123).is_null());
    }

    #[test]
    fn offset_advances_word_index() {
        let a = Addr(10);
        assert_eq!(a.offset(0), Addr(10));
        assert_eq!(a.offset(5), Addr(15));
    }

    #[test]
    fn line_mapping_is_64_bytes() {
        assert_eq!(CACHE_LINE_WORDS, 8);
        assert_eq!(Addr(0).line(), 0);
        assert_eq!(Addr(7).line(), 0);
        assert_eq!(Addr(8).line(), 1);
        assert_eq!(Addr(16).line(), 2);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Addr::NULL), "Addr(NULL)");
        assert_eq!(format!("{:?}", Addr(16)), "Addr(0x10)");
        assert_eq!(format!("{}", StripeId(3).index()), "3");
    }
}
