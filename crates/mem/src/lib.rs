//! # rhtm-mem
//!
//! Shared-memory substrate for the RHTM hybrid transactional memory library.
//!
//! Every transactional runtime in this workspace (the simulated best-effort
//! HTM, the TL2 STM baseline, the Standard-HyTM baseline and the RH1/RH2
//! reduced-hardware protocols) operates over a single **word-addressed
//! transactional heap** ([`TxHeap`]).  Both user data *and* all protocol
//! metadata — the global version clock, the fallback counters, the stripe
//! version array and the stripe read-mask array — live inside this heap so
//! that the simulated HTM can detect conflicts on metadata exactly the way
//! real hardware would through the cache-coherence protocol.
//!
//! The crate provides:
//!
//! * [`Addr`] / [`StripeId`] — word addresses and stripe identifiers,
//! * [`TxHeap`] — a fixed-size, lazily-segmented array of `AtomicU64`
//!   words with plain, CAS and fetch-and-add access,
//! * [`MemLayout`] / [`MemConfig`] — the region map that places the clock,
//!   fallback counters, stripe versions, read masks and the data region,
//! * [`TmMemory`] — the bundle of heap + layout + bump allocator +
//!   per-thread arenas handed to every runtime,
//! * [`EpochSet`] / [`MemMetrics`] — the epoch-based-reclamation clock and
//!   the per-thread allocation counters of the memory subsystem (the typed
//!   node pools over them live in `rhtm_api::reclaim`),
//! * [`GlobalClock`] / [`ClockScheme`] — the global version clock used by
//!   TL2, the Standard HyTM and RH1/RH2, with pluggable advancement schemes
//!   (strict fetch-and-add, GV4 CAS-relaxed, GV5 commit-skip, GV6 sampled),
//! * [`ThreadRegistry`] — assignment of dense thread ids (needed by the RH2
//!   read-visibility masks),
//! * [`CachePadded`] — 64-byte padding/alignment for hot shared words, so
//!   unrelated counters never share a *real* cache line,
//! * cache-line constants shared with the HTM simulator.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod addr;
pub mod alloc;
pub mod clock;
pub mod heap;
pub mod layout;
pub mod pad;
pub mod stamp;
pub mod thread;

pub use addr::{Addr, StripeId, CACHE_LINE_WORDS, LINE_SHIFT};
pub use alloc::{EpochSet, MemMetrics};
pub use clock::{ClockScheme, GlobalClock, GV6_SAMPLE_PERIOD};
pub use heap::{TxHeap, SEGMENT_SHIFT, SEGMENT_WORDS};
pub use layout::{MemConfig, MemLayout, OutOfMemory, TmMemory};
pub use pad::CachePadded;
pub use thread::{ThreadRegistry, ThreadToken};
