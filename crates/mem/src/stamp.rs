//! Encoding of stripe version words.
//!
//! All protocols in the workspace share one stripe-version array, so they
//! must agree on the encoding of a version word:
//!
//! * **Unlocked**: `timestamp << 1` (low bit clear).  The timestamp is a
//!   global-clock value.
//! * **Locked**: `thread_id * 2 + 1` (low bit set), exactly the lock word
//!   the paper's RH2/TL2 pseudocode uses — the owner's id is recoverable
//!   from the upper bits.
//!
//! RH1 never locks stripes (that is its point), but it still writes
//! timestamps in this encoding so that a later fall back to RH2 — which does
//! lock — finds a consistent array.

/// Encodes an unlocked timestamp into a stripe-version word.
#[inline(always)]
pub fn encode_ts(timestamp: u64) -> u64 {
    debug_assert!(timestamp <= u64::MAX >> 1, "timestamp overflow");
    timestamp << 1
}

/// Decodes the timestamp from an unlocked stripe-version word.
#[inline(always)]
pub fn decode_ts(word: u64) -> u64 {
    debug_assert!(!is_locked(word), "decode_ts on a locked stripe word");
    word >> 1
}

/// Returns `true` if the stripe-version word encodes a lock.
#[inline(always)]
pub fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

/// The lock word thread `thread_id` writes into a stripe version to lock it
/// (`thread_id * 2 + 1`, as in the paper's Algorithm 4/5/7).
#[inline(always)]
pub fn lock_word(thread_id: usize) -> u64 {
    (thread_id as u64) * 2 + 1
}

/// Recovers the owning thread id from a locked stripe-version word.
#[inline(always)]
pub fn lock_owner(word: u64) -> usize {
    debug_assert!(is_locked(word), "lock_owner on an unlocked stripe word");
    (word >> 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_round_trip_and_stay_even() {
        for ts in [0u64, 1, 2, 17, 1 << 40] {
            let w = encode_ts(ts);
            assert!(!is_locked(w));
            assert_eq!(decode_ts(w), ts);
        }
    }

    #[test]
    fn lock_words_carry_owner_and_low_bit() {
        for id in [0usize, 1, 5, 63, 1000] {
            let w = lock_word(id);
            assert!(is_locked(w));
            assert_eq!(lock_owner(w), id);
        }
    }

    #[test]
    fn lock_words_and_timestamps_never_collide() {
        for ts in 0..100u64 {
            for id in 0..100usize {
                assert_ne!(encode_ts(ts), lock_word(id));
            }
        }
    }

    #[test]
    fn encoded_order_matches_timestamp_order() {
        // Comparisons on encoded words (used by validation fast paths) must
        // agree with comparisons on the raw timestamps.
        let ts: Vec<u64> = vec![0, 1, 2, 3, 100, 1 << 30];
        for &a in &ts {
            for &b in &ts {
                assert_eq!(encode_ts(a) <= encode_ts(b), a <= b);
            }
        }
    }
}
