//! Dense thread-id assignment.
//!
//! RH2's read-visibility masks index threads by a dense id (bit `k` of a
//! stripe's read mask means "thread `k` is currently reading this stripe
//! during its slow-path commit"), and TL2/RH2 encode the locking thread's id
//! into the stripe version word.  [`ThreadRegistry`] hands out those ids and
//! recycles them when a [`ThreadToken`] is dropped, so thread pools and
//! repeated benchmark phases never run out of ids.

use std::sync::{Arc, Mutex, MutexGuard};

/// Locks the free-list, tolerating poisoning (a panicking thread cannot
/// corrupt a plain `Vec<usize>` of ids).
fn lock_free(free: &Mutex<Vec<usize>>) -> MutexGuard<'_, Vec<usize>> {
    free.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Hands out dense thread ids in `0..max_threads`.
#[derive(Debug)]
pub struct ThreadRegistry {
    max_threads: usize,
    free: Mutex<Vec<usize>>,
}

impl ThreadRegistry {
    /// Creates a registry able to serve `max_threads` concurrent threads.
    pub fn new(max_threads: usize) -> Arc<Self> {
        let free = (0..max_threads).rev().collect();
        Arc::new(ThreadRegistry {
            max_threads,
            free: Mutex::new(free),
        })
    }

    /// Maximum number of concurrently registered threads.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Number of ids currently available.
    pub fn available(&self) -> usize {
        lock_free(&self.free).len()
    }

    /// Registers the calling thread, returning a token that releases the id
    /// when dropped.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` threads are registered at once —
    /// that is a configuration error (raise `MemConfig::max_threads`).
    pub fn register(self: &Arc<Self>) -> ThreadToken {
        let id = lock_free(&self.free)
            .pop()
            .expect("ThreadRegistry exhausted: more threads than MemConfig::max_threads");
        ThreadToken {
            id,
            registry: Arc::clone(self),
        }
    }
}

/// A registered thread's dense id.  Dropping the token returns the id to the
/// registry.
#[derive(Debug)]
pub struct ThreadToken {
    id: usize,
    registry: Arc<ThreadRegistry>,
}

impl ThreadToken {
    /// The dense thread id in `0..max_threads`.
    #[inline(always)]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The read-mask word index this thread's visibility bit lives in.
    #[inline(always)]
    pub fn mask_word(&self) -> usize {
        self.id / 64
    }

    /// The bit within [`Self::mask_word`] representing this thread.
    #[inline(always)]
    pub fn mask_bit(&self) -> u64 {
        1u64 << (self.id % 64)
    }

    /// The stripe-version value this thread writes to lock a stripe
    /// (`thread_id * 2 + 1`: low bit set = locked, upper bits = owner).
    #[inline(always)]
    pub fn lock_value(&self) -> u64 {
        (self.id as u64) * 2 + 1
    }
}

impl Drop for ThreadToken {
    fn drop(&mut self) {
        lock_free(&self.registry.free).push(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_dense_and_unique() {
        let reg = ThreadRegistry::new(8);
        let tokens: Vec<_> = (0..8).map(|_| reg.register()).collect();
        let ids: HashSet<_> = tokens.iter().map(|t| t.id()).collect();
        assert_eq!(ids.len(), 8);
        assert!(ids.iter().all(|&id| id < 8));
        assert_eq!(reg.available(), 0);
    }

    #[test]
    fn ids_are_recycled_on_drop() {
        let reg = ThreadRegistry::new(2);
        let a = reg.register();
        let id_a = a.id();
        drop(a);
        assert_eq!(reg.available(), 2);
        let b = reg.register();
        let c = reg.register();
        let ids: HashSet<_> = [b.id(), c.id()].into_iter().collect();
        assert!(ids.contains(&id_a));
        assert_eq!(ids.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn over_registration_panics() {
        let reg = ThreadRegistry::new(1);
        let _a = reg.register();
        let _b = reg.register();
    }

    #[test]
    fn mask_and_lock_encoding() {
        let reg = ThreadRegistry::new(130);
        let tokens: Vec<_> = (0..130).map(|_| reg.register()).collect();
        for t in &tokens {
            assert_eq!(t.mask_word(), t.id() / 64);
            assert_eq!(t.mask_bit(), 1u64 << (t.id() % 64));
            assert_eq!(t.lock_value(), (t.id() as u64) * 2 + 1);
            assert_eq!(
                t.lock_value() & 1,
                1,
                "lock values must have the lock bit set"
            );
        }
    }

    #[test]
    fn registration_is_thread_safe() {
        use std::sync::Barrier;
        let reg = ThreadRegistry::new(32);
        // All threads hold their token across a barrier so every id is live
        // at the same time: ids must still be unique.
        let barrier = Arc::new(Barrier::new(32));
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let tok = reg.register();
                    barrier.wait();
                    tok.id()
                })
            })
            .collect();
        let ids: HashSet<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(ids.len(), 32);
        assert_eq!(reg.available(), 32);
    }
}
