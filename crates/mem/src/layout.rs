//! Memory layout: where the clock, fallback counters, stripe metadata and
//! the data region live inside the transactional heap.
//!
//! ```text
//! +---------------------------------------------------------------+
//! | word 0        global version clock (ClockScheme)              |
//! | word 8        is_RH2_fallback counter                         |
//! | word 16       is_all_software_slow_path counter               |
//! | word 24       reserved scratch line (tests, ablations)        |
//! | word 32 ..    stripe version array  [num_stripes]             |
//! |   ..          stripe read-mask array [num_stripes*mask_words] |
//! |   ..          data region            [data_words]             |
//! +---------------------------------------------------------------+
//! ```
//!
//! Each global counter sits on its own simulated cache line so that a
//! speculative load of, say, `is_RH2_fallback` inside an RH1 fast-path
//! transaction does not create false conflicts with clock updates.
//!
//! Stripe metadata covers only the *data region*: `stripe_of` maps a data
//! address to a [`StripeId`], and each stripe has one version word plus
//! `mask_words` read-mask words.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::addr::{Addr, StripeId, CACHE_LINE_WORDS};
use crate::alloc::EpochSet;
use crate::clock::{ClockScheme, GlobalClock};
use crate::heap::TxHeap;
use crate::pad::CachePadded;

/// Configuration of the transactional memory layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of 64-bit words available in the data region.
    pub data_words: usize,
    /// log2 of the number of data words covered by one stripe.
    ///
    /// The paper's red-black-tree discussion assumes the read-set metadata
    /// is about 1/4 the size of the data actually read, i.e. four words per
    /// stripe (`stripe_shift = 2`), which is the default.
    pub stripe_shift: usize,
    /// Maximum number of threads that may register.  Determines how many
    /// 64-bit read-mask words each stripe carries (one per 64 threads).
    pub max_threads: usize,
    /// Which global-clock advancement scheme to use (see
    /// [`ClockScheme`] for the GV4/GV5/GV6 trade-offs; the default strict
    /// scheme reproduces the paper's figures).
    pub clock_scheme: ClockScheme,
    /// Words per per-thread arena block ([`TmMemory::arena_try_alloc`]).
    /// Each registered thread refills its private arena in blocks of this
    /// size, so the global bump cursor is CASed once per block instead of
    /// once per node.  Requests of at least half a block bypass the arena.
    pub arena_block_words: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            data_words: 1 << 20,
            stripe_shift: 2,
            max_threads: 64,
            clock_scheme: ClockScheme::GvStrict,
            arena_block_words: Self::DEFAULT_ARENA_BLOCK_WORDS,
        }
    }
}

impl MemConfig {
    /// Default [`arena_block_words`](Self::arena_block_words).
    ///
    /// Sizing helpers that budget "one partially-carved arena block per
    /// thread" (`TxSkipList::required_words`,
    /// `ConstantHashTable::mutable_extra_words`, …) use this constant, so
    /// their estimates hold for heaps built on a default config.  A
    /// config with a *larger* block size must add the difference per
    /// thread on top of what those helpers return.
    pub const DEFAULT_ARENA_BLOCK_WORDS: usize = 4096;
    /// Convenience constructor for a data region of `data_words` words with
    /// all other parameters at their defaults.
    pub fn with_data_words(data_words: usize) -> Self {
        MemConfig {
            data_words,
            ..Default::default()
        }
    }

    /// Number of stripes needed to cover the data region.
    pub fn num_stripes(&self) -> usize {
        let per = 1usize << self.stripe_shift;
        self.data_words.div_ceil(per)
    }

    /// Number of 64-bit read-mask words per stripe.
    pub fn mask_words_per_stripe(&self) -> usize {
        self.max_threads.div_ceil(64).max(1)
    }
}

/// Resolved region map of the heap (all offsets in words).
#[derive(Clone, Debug)]
pub struct MemLayout {
    config: MemConfig,
    clock_addr: Addr,
    rh2_fallback_addr: Addr,
    all_software_addr: Addr,
    scratch_addr: Addr,
    stripe_versions_base: usize,
    read_masks_base: usize,
    data_base: usize,
    total_words: usize,
}

impl MemLayout {
    /// Computes the layout for a configuration.
    pub fn new(config: MemConfig) -> Self {
        let line = CACHE_LINE_WORDS;
        let clock_addr = Addr(0);
        let rh2_fallback_addr = Addr(line);
        let all_software_addr = Addr(2 * line);
        let scratch_addr = Addr(3 * line);
        let stripe_versions_base = 4 * line;
        let num_stripes = config.num_stripes();
        let read_masks_base = stripe_versions_base + num_stripes;
        let mask_words = num_stripes * config.mask_words_per_stripe();
        // Align the data region to a cache line so data and metadata never
        // share a line in the simulated HTM's conflict tables.
        let data_base = (read_masks_base + mask_words).next_multiple_of(line);
        let total_words = data_base + config.data_words;
        MemLayout {
            config,
            clock_addr,
            rh2_fallback_addr,
            all_software_addr,
            scratch_addr,
            stripe_versions_base,
            read_masks_base,
            data_base,
            total_words,
        }
    }

    /// The configuration this layout was computed from.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Total heap size in words.
    pub fn total_words(&self) -> usize {
        self.total_words
    }

    /// Address of the global version clock word.
    #[inline(always)]
    pub fn clock_addr(&self) -> Addr {
        self.clock_addr
    }

    /// Address of the `is_RH2_fallback` counter (number of RH1 slow-path
    /// transactions currently executing the RH2 fallback commit).
    #[inline(always)]
    pub fn rh2_fallback_addr(&self) -> Addr {
        self.rh2_fallback_addr
    }

    /// Address of the `is_all_software_slow_path` counter (number of RH2
    /// slow-path transactions currently performing a pure-software
    /// write-back).
    #[inline(always)]
    pub fn all_software_addr(&self) -> Addr {
        self.all_software_addr
    }

    /// A spare metadata word on its own cache line, used by tests and
    /// ablation benchmarks that need an extra shared counter inside the
    /// HTM-tracked address space.
    #[inline(always)]
    pub fn scratch_addr(&self) -> Addr {
        self.scratch_addr
    }

    /// First word of the data region.
    #[inline(always)]
    pub fn data_base(&self) -> Addr {
        Addr(self.data_base)
    }

    /// Number of words in the data region.
    #[inline(always)]
    pub fn data_words(&self) -> usize {
        self.config.data_words
    }

    /// Returns `true` if `addr` lies inside the data region.
    #[inline(always)]
    pub fn is_data_addr(&self, addr: Addr) -> bool {
        addr.0 >= self.data_base && addr.0 < self.total_words
    }

    /// Number of stripes covering the data region.
    #[inline(always)]
    pub fn num_stripes(&self) -> usize {
        self.config.num_stripes()
    }

    /// Maps a data address to its stripe.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `addr` is a data address; metadata words have no
    /// stripe.
    #[inline(always)]
    pub fn stripe_of(&self, addr: Addr) -> StripeId {
        debug_assert!(
            self.is_data_addr(addr),
            "stripe_of called on non-data address {addr:?}"
        );
        StripeId((addr.0 - self.data_base) >> self.config.stripe_shift)
    }

    /// Address of the version word (time-stamp, with the low bit reserved as
    /// a lock bit by TL2/RH2) of `stripe`.
    #[inline(always)]
    pub fn stripe_version_addr(&self, stripe: StripeId) -> Addr {
        debug_assert!(stripe.0 < self.num_stripes());
        Addr(self.stripe_versions_base + stripe.0)
    }

    /// Address of the `word`-th read-mask word of `stripe` (word 0 covers
    /// thread ids 0..63, word 1 covers 64..127, ...).
    #[inline(always)]
    pub fn read_mask_addr(&self, stripe: StripeId, word: usize) -> Addr {
        let per = self.config.mask_words_per_stripe();
        debug_assert!(stripe.0 < self.num_stripes());
        debug_assert!(word < per);
        Addr(self.read_masks_base + stripe.0 * per + word)
    }

    /// Number of read-mask words per stripe.
    #[inline(always)]
    pub fn mask_words_per_stripe(&self) -> usize {
        self.config.mask_words_per_stripe()
    }
}

/// Allocation failure: the data region cannot satisfy a request.
///
/// Returned by the checked allocation paths ([`TmMemory::try_alloc`],
/// [`TmMemory::try_alloc_line_aligned`] and the typed layer built on them)
/// so that workload prefill code can report a sizing error with context
/// (which structure, which `required_words` helper to use) instead of
/// dying deep inside the bump allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Words the failed request asked for.
    pub requested: usize,
    /// Words that were still available when the request was made.
    pub remaining: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transactional heap exhausted: requested {} words, {} words remain \
             (increase MemConfig::data_words)",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// One thread's private bump window over the data region.  Only the
/// owning thread moves the cursor, so the orderings are relaxed; the
/// block refill (a [`TmMemory::try_alloc`] CAS) is the only cross-thread
/// synchronisation on the allocation hot path.
struct ArenaSlot {
    cursor: AtomicUsize,
    limit: AtomicUsize,
}

/// The shared transactional memory handed to every runtime: heap + layout +
/// a bump allocator over the data region, per-thread arenas over it, an
/// epoch set for reclamation, and the global clock.
pub struct TmMemory {
    heap: TxHeap,
    layout: MemLayout,
    clock: GlobalClock,
    alloc_cursor: AtomicUsize,
    arenas: Box<[CachePadded<ArenaSlot>]>,
    epochs: EpochSet,
}

impl TmMemory {
    /// Creates a fresh transactional memory with the given configuration.
    pub fn new(config: MemConfig) -> Self {
        let layout = MemLayout::new(config);
        let heap = TxHeap::new(layout.total_words());
        let clock = GlobalClock::new(layout.clock_addr(), layout.config().clock_scheme);
        let data_base = layout.data_base().0;
        let max_threads = layout.config().max_threads;
        let arenas = (0..max_threads)
            .map(|_| {
                CachePadded::new(ArenaSlot {
                    cursor: AtomicUsize::new(0),
                    limit: AtomicUsize::new(0),
                })
            })
            .collect();
        TmMemory {
            heap,
            layout,
            clock,
            alloc_cursor: AtomicUsize::new(data_base),
            arenas,
            epochs: EpochSet::new(max_threads),
        }
    }

    /// The underlying heap.
    #[inline(always)]
    pub fn heap(&self) -> &TxHeap {
        &self.heap
    }

    /// The region map.
    #[inline(always)]
    pub fn layout(&self) -> &MemLayout {
        &self.layout
    }

    /// The global version clock.
    #[inline(always)]
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// Allocates `words` consecutive data words and returns the address of
    /// the first one.  Allocation is a simple atomic bump; the workloads
    /// never free memory (the paper's benchmarks do not either).
    ///
    /// # Panics
    ///
    /// Panics when the data region is exhausted: this is a configuration
    /// error (increase [`MemConfig::data_words`]).  Code that can report
    /// the error with more context should use [`TmMemory::try_alloc`].
    pub fn alloc(&self, words: usize) -> Addr {
        match self.try_alloc(words) {
            Ok(addr) => addr,
            Err(oom) => panic!("{oom}"),
        }
    }

    /// Checked variant of [`TmMemory::alloc`]: returns [`OutOfMemory`]
    /// instead of panicking when the data region cannot satisfy `words`.
    ///
    /// Failure has no side effect on the cursor (the reservation is a CAS,
    /// never a blind bump), so an over-large request can neither fail
    /// concurrent smaller allocations nor skew their reported `remaining`.
    pub fn try_alloc(&self, words: usize) -> Result<Addr, OutOfMemory> {
        loop {
            let cur = self.alloc_cursor.load(Ordering::SeqCst);
            // saturating_add: an absurd request must report, not wrap past
            // the bounds check and rewind the cursor into live allocations.
            let end = cur.saturating_add(words);
            if end > self.layout.total_words() {
                return Err(OutOfMemory {
                    requested: words,
                    remaining: self.layout.total_words().saturating_sub(cur),
                });
            }
            if self
                .alloc_cursor
                .compare_exchange(cur, end, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(Addr(cur));
            }
        }
    }

    /// Allocates `words` data words aligned to the start of a cache line.
    ///
    /// # Panics
    ///
    /// Panics when the data region is exhausted (see
    /// [`TmMemory::try_alloc_line_aligned`] for the checked variant).
    pub fn alloc_line_aligned(&self, words: usize) -> Addr {
        match self.try_alloc_line_aligned(words) {
            Ok(addr) => addr,
            Err(oom) => panic!("{oom} (during line-aligned allocation)"),
        }
    }

    /// Checked variant of [`TmMemory::alloc_line_aligned`].
    pub fn try_alloc_line_aligned(&self, words: usize) -> Result<Addr, OutOfMemory> {
        loop {
            let cur = self.alloc_cursor.load(Ordering::SeqCst);
            let aligned = cur.next_multiple_of(CACHE_LINE_WORDS);
            let end = aligned.saturating_add(words);
            if end > self.layout.total_words() {
                return Err(OutOfMemory {
                    requested: words,
                    remaining: self.layout.total_words().saturating_sub(aligned),
                });
            }
            if self
                .alloc_cursor
                .compare_exchange(cur, end, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(Addr(aligned));
            }
        }
    }

    /// Number of data words still available for allocation.
    ///
    /// Words sitting unused in per-thread arena blocks are not counted:
    /// once a block is carved off the global cursor it belongs to its
    /// thread.
    pub fn remaining_words(&self) -> usize {
        self.layout
            .total_words()
            .saturating_sub(self.alloc_cursor.load(Ordering::SeqCst))
    }

    /// The configured arena block size in words.
    pub fn arena_block_words(&self) -> usize {
        self.layout.config().arena_block_words
    }

    /// Allocates `words` data words out of `thread_id`'s private arena.
    ///
    /// The hot path is a thread-local bump with no cross-thread traffic;
    /// the arena refills itself from the global cursor one
    /// [`MemConfig::arena_block_words`] block at a time, so block refill
    /// is the only cross-thread CAS on the allocation path.  Three cases
    /// bypass the arena and go straight to the global cursor: requests of
    /// at least half a block (they would waste the arena), thread ids past
    /// the configured capacity, and a refill that no longer fits (the
    /// region's tail may be smaller than a block, so the fallback is an
    /// exact-size allocation — which keeps tightly-sized test heaps and
    /// their `OutOfMemory::requested` reporting working unchanged).
    pub fn arena_try_alloc(&self, thread_id: usize, words: usize) -> Result<Addr, OutOfMemory> {
        let block = self.arena_block_words();
        if words == 0 || words >= block / 2 || thread_id >= self.arenas.len() {
            return self.try_alloc(words);
        }
        let slot = &self.arenas[thread_id];
        // Relaxed: only the owning thread writes these words, and the
        // addresses it hands out are published to other threads through
        // the structures' own (SeqCst/transactional) stores.
        let cur = slot.cursor.load(Ordering::Relaxed);
        let limit = slot.limit.load(Ordering::Relaxed);
        if cur + words <= limit {
            slot.cursor.store(cur + words, Ordering::Relaxed);
            return Ok(Addr(cur));
        }
        match self.try_alloc(block) {
            Ok(base) => {
                slot.cursor.store(base.0 + words, Ordering::Relaxed);
                slot.limit.store(base.0 + block, Ordering::Relaxed);
                Ok(base)
            }
            Err(_) => self.try_alloc(words),
        }
    }

    /// The reclamation epoch set of this memory (one epoch domain per
    /// runtime instance / shard).
    #[inline(always)]
    pub fn epochs(&self) -> &EpochSet {
        &self.epochs
    }
}

impl std::fmt::Debug for TmMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmMemory")
            .field("total_words", &self.layout.total_words())
            .field("data_words", &self.layout.data_words())
            .field("num_stripes", &self.layout.num_stripes())
            .field("remaining_words", &self.remaining_words())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_live_on_distinct_cache_lines() {
        let l = MemLayout::new(MemConfig::with_data_words(1024));
        let lines = [
            l.clock_addr().line(),
            l.rh2_fallback_addr().line(),
            l.all_software_addr().line(),
            l.scratch_addr().line(),
        ];
        for i in 0..lines.len() {
            for j in 0..lines.len() {
                if i != j {
                    assert_ne!(lines[i], lines[j]);
                }
            }
        }
    }

    #[test]
    fn data_region_is_line_aligned_and_sized() {
        let cfg = MemConfig::with_data_words(1000);
        let l = MemLayout::new(cfg);
        assert_eq!(l.data_base().0 % CACHE_LINE_WORDS, 0);
        assert_eq!(l.data_words(), 1000);
        assert!(l.total_words() >= l.data_base().0 + 1000);
    }

    #[test]
    fn stripe_mapping_covers_data_region() {
        let cfg = MemConfig {
            data_words: 1024,
            stripe_shift: 2,
            max_threads: 64,
            clock_scheme: ClockScheme::GvStrict,
            arena_block_words: 4096,
        };
        let l = MemLayout::new(cfg);
        assert_eq!(l.num_stripes(), 256);
        let base = l.data_base();
        assert_eq!(l.stripe_of(base), StripeId(0));
        assert_eq!(l.stripe_of(base.offset(3)), StripeId(0));
        assert_eq!(l.stripe_of(base.offset(4)), StripeId(1));
        assert_eq!(l.stripe_of(base.offset(1023)), StripeId(255));
    }

    #[test]
    fn stripe_metadata_addresses_are_disjoint_from_data() {
        let cfg = MemConfig::with_data_words(4096);
        let l = MemLayout::new(cfg);
        let last_stripe = StripeId(l.num_stripes() - 1);
        assert!(l.stripe_version_addr(StripeId(0)).0 < l.data_base().0);
        assert!(l.stripe_version_addr(last_stripe).0 < l.data_base().0);
        assert!(l.read_mask_addr(StripeId(0), 0).0 < l.data_base().0);
        assert!(l.read_mask_addr(last_stripe, 0).0 < l.data_base().0);
    }

    #[test]
    fn more_than_64_threads_need_more_mask_words() {
        let mut cfg = MemConfig::with_data_words(64);
        cfg.max_threads = 65;
        assert_eq!(cfg.mask_words_per_stripe(), 2);
        let l = MemLayout::new(cfg);
        let a0 = l.read_mask_addr(StripeId(0), 0);
        let a1 = l.read_mask_addr(StripeId(0), 1);
        let b0 = l.read_mask_addr(StripeId(1), 0);
        assert_eq!(a1.0, a0.0 + 1);
        assert_eq!(b0.0, a0.0 + 2);
    }

    #[test]
    fn alloc_bumps_and_stays_in_data_region() {
        let mem = TmMemory::new(MemConfig::with_data_words(256));
        let a = mem.alloc(10);
        let b = mem.alloc(6);
        assert!(mem.layout().is_data_addr(a));
        assert!(mem.layout().is_data_addr(b));
        assert_eq!(b.0, a.0 + 10);
        let c = mem.alloc_line_aligned(8);
        assert_eq!(c.0 % CACHE_LINE_WORDS, 0);
        assert!(c.0 >= b.0 + 6);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_end_panics() {
        let mem = TmMemory::new(MemConfig::with_data_words(32));
        let _ = mem.alloc(33);
    }

    #[test]
    fn try_alloc_reports_without_consuming() {
        let mem = TmMemory::new(MemConfig::with_data_words(32));
        let remaining = mem.remaining_words();
        let err = mem.try_alloc(remaining + 1).unwrap_err();
        assert_eq!(err.requested, remaining + 1);
        assert_eq!(err.remaining, remaining);
        assert!(err.to_string().contains("exhausted"));
        // The failed reservation must not consume the region.
        assert_eq!(mem.remaining_words(), remaining);
        assert!(mem.try_alloc(remaining).is_ok());
        assert_eq!(mem.remaining_words(), 0);
    }

    #[test]
    fn try_alloc_rejects_wrapping_requests() {
        let mem = TmMemory::new(MemConfig::with_data_words(64));
        let before = mem.remaining_words();
        mem.alloc(8); // a nonzero cursor so `cur + usize::MAX` would wrap
        assert!(mem.try_alloc(usize::MAX).is_err());
        assert!(mem.try_alloc(usize::MAX - 4).is_err());
        assert!(mem.try_alloc_line_aligned(usize::MAX).is_err());
        // The cursor must not have moved backwards.
        assert_eq!(mem.remaining_words(), before - 8);
        assert!(mem.try_alloc(1).is_ok());
    }

    #[test]
    fn try_alloc_line_aligned_reports_exhaustion() {
        let mem = TmMemory::new(MemConfig::with_data_words(16));
        let err = mem
            .try_alloc_line_aligned(mem.remaining_words() + CACHE_LINE_WORDS)
            .unwrap_err();
        assert!(err.remaining <= mem.remaining_words());
        let ok = mem.try_alloc_line_aligned(8).unwrap();
        assert_eq!(ok.0 % CACHE_LINE_WORDS, 0);
    }

    #[test]
    fn default_config_is_reasonable() {
        let cfg = MemConfig::default();
        assert_eq!(cfg.data_words, 1 << 20);
        assert_eq!(cfg.stripe_shift, 2);
        assert_eq!(cfg.num_stripes(), 1 << 18);
        assert_eq!(cfg.mask_words_per_stripe(), 1);
        assert_eq!(cfg.arena_block_words, 4096);
    }

    #[test]
    fn arena_allocs_bump_locally_and_refill_in_blocks() {
        let mem = TmMemory::new(MemConfig::with_data_words(3 * 4096));
        let global_before = mem.remaining_words();
        let a = mem.arena_try_alloc(0, 8).unwrap();
        // The refill carved one whole block off the global cursor.
        assert_eq!(mem.remaining_words(), global_before - 4096);
        // Subsequent small allocations come out of the same block,
        // contiguously, without touching the global cursor.
        let b = mem.arena_try_alloc(0, 8).unwrap();
        let c = mem.arena_try_alloc(0, 16).unwrap();
        assert_eq!(b.0, a.0 + 8);
        assert_eq!(c.0, b.0 + 8);
        assert_eq!(mem.remaining_words(), global_before - 4096);
        // A different thread gets a different block.
        let d = mem.arena_try_alloc(1, 8).unwrap();
        assert_eq!(d.0, a.0 + 4096);
        assert_eq!(mem.remaining_words(), global_before - 2 * 4096);
    }

    #[test]
    fn oversized_and_out_of_range_requests_bypass_the_arena() {
        let mem = TmMemory::new(MemConfig::with_data_words(3 * 4096));
        let before = mem.remaining_words();
        // >= half a block: straight off the global cursor, no block waste.
        mem.arena_try_alloc(0, 2048).unwrap();
        assert_eq!(mem.remaining_words(), before - 2048);
        // A thread id past the configured capacity also goes global.
        mem.arena_try_alloc(usize::MAX, 8).unwrap();
        assert_eq!(mem.remaining_words(), before - 2048 - 8);
    }

    #[test]
    fn arena_refill_falls_back_to_exact_allocation_near_exhaustion() {
        // A region far smaller than one arena block: the refill can never
        // succeed, so every request must fall back to an exact-size global
        // allocation and exhaustion must report the *request's* size.
        let mem = TmMemory::new(MemConfig::with_data_words(64));
        let a = mem.arena_try_alloc(0, 16).unwrap();
        let b = mem.arena_try_alloc(0, 16).unwrap();
        assert_eq!(b.0, a.0 + 16);
        mem.arena_try_alloc(0, 32).unwrap();
        let err = mem.arena_try_alloc(0, 16).unwrap_err();
        assert_eq!(err.requested, 16);
        assert_eq!(err.remaining, 0);
    }

    #[test]
    fn memory_owns_an_epoch_set_sized_for_its_threads() {
        let mut cfg = MemConfig::with_data_words(64);
        cfg.max_threads = 7;
        let mem = TmMemory::new(cfg);
        assert_eq!(mem.epochs().capacity(), 7);
        assert_eq!(mem.epochs().current(), EpochSet::FIRST_EPOCH);
        assert!(mem.epochs().try_advance());
    }
}
