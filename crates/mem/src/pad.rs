//! Cache-line padding for hot shared words.
//!
//! The simulator's hottest shared state — the global version clock, the
//! fallback counters, the per-line version words and the write-sequence
//! counter — are plain `AtomicU64`s.  Without padding, unrelated words
//! land on the same *real* cache line, and every RMW on one of them
//! invalidates the others on every core: false sharing that the paper's
//! "reduced hardware" argument explicitly budgets away.  [`CachePadded`]
//! aligns a value to a 64-byte boundary and pads it to a full line, so
//! wrapping a hot word isolates its traffic.

/// Pads and aligns `T` to a 64-byte cache line.
///
/// `#[repr(align(64))]` both aligns the struct and rounds its size up to a
/// multiple of 64, so consecutive `CachePadded` fields (or array elements)
/// can never share a line.
#[derive(Clone, Copy, Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    #[inline(always)]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_occupy_full_aligned_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 64);
        // An array of padded words puts every element on its own line.
        let arr = [
            CachePadded::new(AtomicU64::new(0)),
            CachePadded::new(AtomicU64::new(0)),
        ];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert_eq!(a % 64, 0);
        assert_eq!(b - a, 64);
    }

    #[test]
    fn deref_reaches_the_inner_value() {
        let c = CachePadded::new(AtomicU64::new(7));
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 8);
        assert_eq!(c.into_inner().into_inner(), 8);
        let mut m = CachePadded::new(5u64);
        *m += 1;
        assert_eq!(*m, 6);
    }
}
