//! The global version clock.
//!
//! TL2-style transactional memories coordinate through a shared version
//! clock.  The paper uses the **GV6** variant (Avni & Shavit, and TL2's
//! `GV6`): `GVNext()` *does not* increment the shared counter — it simply
//! returns `clock + 1` — and the counter is advanced only when a transaction
//! aborts.  This is what makes it safe for the RH1 *fast-path hardware
//! transaction* to call `GVNext()`: it only reads the clock word, so
//! concurrent fast-path commits do not conflict with each other on the
//! clock line.
//!
//! A conventional incrementing clock ([`ClockMode::Incrementing`], "GV1") is
//! also provided; the `ablation_clock` benchmark compares the two, backing
//! the paper's design-choice discussion in §2.2.

use crate::addr::Addr;
use crate::heap::TxHeap;

/// Which global-clock algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClockMode {
    /// GV1: every `next()` atomically increments the shared counter and
    /// returns the new value.  Simple, but every writer commit invalidates
    /// the clock cache line of every reader.
    Incrementing,
    /// GV6: `next()` returns `read() + 1` without writing the shared
    /// counter; the counter is advanced on abort paths instead.  This is the
    /// mode the paper evaluates.
    Gv6,
}

impl Default for ClockMode {
    fn default() -> Self {
        ClockMode::Gv6
    }
}

/// The global version clock, stored in a heap word so that speculative
/// (HTM) reads of the clock participate in conflict detection.
#[derive(Clone, Debug)]
pub struct GlobalClock {
    addr: Addr,
    mode: ClockMode,
}

impl GlobalClock {
    /// Creates a clock over the heap word at `addr`.
    pub fn new(addr: Addr, mode: ClockMode) -> Self {
        GlobalClock { addr, mode }
    }

    /// The heap address of the clock word (needed by runtimes that read the
    /// clock speculatively inside a hardware transaction).
    #[inline(always)]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The configured mode.
    #[inline(always)]
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// `GVRead()`: the current value of the clock.
    #[inline(always)]
    pub fn read(&self, heap: &TxHeap) -> u64 {
        heap.load(self.addr)
    }

    /// `GVNext()`: the version a committing writer should install.
    ///
    /// Under GV6 this is `read() + 1` *without* modifying the shared word;
    /// under the incrementing mode it is `fetch_add(1) + 1`.
    #[inline(always)]
    pub fn next(&self, heap: &TxHeap) -> u64 {
        match self.mode {
            ClockMode::Incrementing => heap.fetch_add(self.addr, 1) + 1,
            ClockMode::Gv6 => heap.load(self.addr) + 1,
        }
    }

    /// Called on a software-transaction abort.  Under GV6 this is where the
    /// clock actually advances (to at least `observed`, the version whose
    /// read caused the abort, so that the retrying transaction starts from a
    /// fresh timestamp).  Under the incrementing mode it is a no-op.
    #[inline]
    pub fn on_abort(&self, heap: &TxHeap, observed: u64) {
        if self.mode == ClockMode::Gv6 {
            heap.fetch_max(self.addr, observed);
        }
    }

    /// Advances the clock so that future `read()` calls return at least
    /// `version`.  Used by runtimes when they install a version obtained via
    /// `next()` (GV6 keeps the shared counter lagging otherwise, which is
    /// correct but makes every later writer reuse the same version and spin
    /// on validation aborts; publishing the installed version bounds that).
    #[inline]
    pub fn publish(&self, heap: &TxHeap, version: u64) {
        if self.mode == ClockMode::Gv6 {
            heap.fetch_max(self.addr, version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mode: ClockMode) -> (TxHeap, GlobalClock) {
        let heap = TxHeap::new(8);
        let clock = GlobalClock::new(Addr(0), mode);
        (heap, clock)
    }

    #[test]
    fn incrementing_clock_advances_on_next() {
        let (heap, clock) = setup(ClockMode::Incrementing);
        assert_eq!(clock.read(&heap), 0);
        assert_eq!(clock.next(&heap), 1);
        assert_eq!(clock.next(&heap), 2);
        assert_eq!(clock.read(&heap), 2);
    }

    #[test]
    fn gv6_next_does_not_touch_shared_counter() {
        let (heap, clock) = setup(ClockMode::Gv6);
        assert_eq!(clock.next(&heap), 1);
        assert_eq!(clock.next(&heap), 1);
        assert_eq!(clock.read(&heap), 0, "GVNext must not write the clock");
    }

    #[test]
    fn gv6_advances_on_abort_and_publish() {
        let (heap, clock) = setup(ClockMode::Gv6);
        clock.on_abort(&heap, 5);
        assert_eq!(clock.read(&heap), 5);
        // Never moves backwards.
        clock.on_abort(&heap, 3);
        assert_eq!(clock.read(&heap), 5);
        clock.publish(&heap, 9);
        assert_eq!(clock.read(&heap), 9);
        assert_eq!(clock.next(&heap), 10);
    }

    #[test]
    fn incrementing_mode_ignores_abort_hints() {
        let (heap, clock) = setup(ClockMode::Incrementing);
        clock.on_abort(&heap, 100);
        clock.publish(&heap, 100);
        assert_eq!(clock.read(&heap), 0);
    }

    #[test]
    fn default_mode_is_gv6() {
        assert_eq!(ClockMode::default(), ClockMode::Gv6);
    }
}
