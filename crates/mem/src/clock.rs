//! The global version clock, with pluggable advancement schemes.
//!
//! TL2-style transactional memories coordinate through a shared version
//! clock.  How that clock advances is the canonical scalability knob of the
//! whole family: the strict scheme performs one fetch-and-add on the shared
//! clock word per writing software commit, which serialises every committer
//! on a single cache line; the relaxed schemes (GV4/GV5/GV6 in the TL2
//! literature) trade clock-line traffic for version-collision false aborts.
//!
//! The schemes implemented here, selected through
//! [`MemConfig::clock_scheme`](crate::MemConfig):
//!
//! * [`ClockScheme::GvStrict`] — **default**.  Every writing software commit
//!   advances the clock with an atomic fetch-and-add, so write versions are
//!   unique and the serialisability argument is the textbook one.  This is
//!   the behaviour every figure of the paper reproduction is measured under.
//! * [`ClockScheme::Gv4`] — the commit *attempts* a compare-and-swap
//!   `clock: v → v+1` and tolerates failure: if another committer advanced
//!   the clock concurrently, `v+1` is used anyway.  Committers never spin on
//!   the clock line; colliding write versions are safe because colliding
//!   committers hold disjoint stripe locks while their version is sampled.
//! * [`ClockScheme::Gv5`] — the commit performs **no clock write at all**:
//!   the write version is `read() + 1` and the clock advances only when a
//!   reader observes a too-new version and aborts ([`GlobalClock::on_abort`]
//!   bumps the clock to the observed version with a fetch-max).  Cheapest
//!   commit, highest false-abort rate: the first re-reader of freshly
//!   written data always aborts once.
//! * [`ClockScheme::Gv6`] — sampled GV5: one in [`GV6_SAMPLE_PERIOD`]
//!   commits performs the GV4-style CAS advance, the rest skip the write.
//!   Bounds how stale the shared clock can get without paying an RMW per
//!   commit.
//! * [`ClockScheme::Incrementing`] — the conventional fully-advancing clock
//!   (GV1): *every* version acquisition advances the clock, including the
//!   speculative one inside hardware fast-path transactions.  This is the
//!   ablation baseline showing the clock-line conflict cost the paper's
//!   design avoids; it is never the right production choice.
//!
//! The speculative `GVNext()` used by the RH1 fast-path hardware
//! transactions only *reads* the clock word under every GV scheme, so
//! concurrent fast-path commits never conflict with each other on the clock
//! line — the property the paper's protocols are built around.
//!
//! The soundness of the relaxed schemes rests on an ordering invariant every
//! runtime in this workspace observes: a committer samples its write version
//! **after** acquiring (or speculatively locking) its write-set stripes.  A
//! reader that started after the clock reached `v` can therefore never
//! observe a half-applied commit whose write version is `≤ v` — such a
//! commit sampled the clock before the reader started, so either its
//! write-back already finished or the reader trips over its stripe locks.
//!
//! # Selecting a scheme
//!
//! ```
//! use rhtm_mem::{ClockScheme, MemConfig, TmMemory};
//!
//! // The default is the strict fetch-and-add clock:
//! assert_eq!(MemConfig::default().clock_scheme, ClockScheme::GvStrict);
//!
//! // Relaxed schemes are one field away:
//! let cfg = MemConfig {
//!     clock_scheme: ClockScheme::Gv5,
//!     ..MemConfig::with_data_words(1024)
//! };
//! let mem = TmMemory::new(cfg);
//! assert_eq!(mem.clock().scheme(), ClockScheme::Gv5);
//! ```
//!
//! Schemes parse from / render to stable labels, used by the benchmark CLIs:
//!
//! ```
//! use rhtm_mem::ClockScheme;
//!
//! for scheme in ClockScheme::ALL {
//!     assert_eq!(ClockScheme::parse(scheme.label()), Some(scheme));
//! }
//! assert_eq!(ClockScheme::parse("gv4"), Some(ClockScheme::Gv4));
//! ```

use crate::addr::Addr;
use crate::heap::TxHeap;

/// How often a GV6 clock performs a real clock advance: one in this many
/// commits runs the GV4-style CAS, the rest skip the clock write entirely.
pub const GV6_SAMPLE_PERIOD: u64 = 8;

/// Which global-clock advancement scheme to run.
///
/// See the [module documentation](self) for the semantics and trade-offs of
/// each variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ClockScheme {
    /// GV1: every version acquisition (software commits *and* hardware
    /// fast-path starts) atomically advances the shared counter.  Ablation
    /// baseline only.
    Incrementing,
    /// Every writing software commit advances the clock with a
    /// fetch-and-add; hardware fast-paths read the clock without writing it
    /// (the paper's design).  The default.
    #[default]
    GvStrict,
    /// Commit-time CAS advance with failure tolerated (TL2's GV4).
    Gv4,
    /// No commit-time clock write; the clock advances on validation aborts
    /// only (TL2's GV5).
    Gv5,
    /// Sampled GV5: one in [`GV6_SAMPLE_PERIOD`] commits performs the GV4
    /// CAS advance (TL2's GV6).
    Gv6,
}

impl ClockScheme {
    /// Every scheme, in ablation display order.
    pub const ALL: [ClockScheme; 5] = [
        ClockScheme::GvStrict,
        ClockScheme::Gv4,
        ClockScheme::Gv5,
        ClockScheme::Gv6,
        ClockScheme::Incrementing,
    ];

    /// Stable display label (also accepted by [`ClockScheme::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            ClockScheme::Incrementing => "incrementing",
            ClockScheme::GvStrict => "gv-strict",
            ClockScheme::Gv4 => "gv4",
            ClockScheme::Gv5 => "gv5",
            ClockScheme::Gv6 => "gv6",
        }
    }

    /// Parses a label back into a scheme (benchmark CLIs).
    pub fn parse(label: &str) -> Option<ClockScheme> {
        match label.trim().to_ascii_lowercase().as_str() {
            "incrementing" | "gv1" => Some(ClockScheme::Incrementing),
            "gv-strict" | "gvstrict" | "strict" => Some(ClockScheme::GvStrict),
            "gv4" => Some(ClockScheme::Gv4),
            "gv5" => Some(ClockScheme::Gv5),
            "gv6" => Some(ClockScheme::Gv6),
            _ => None,
        }
    }

    /// Whether hardware fast-path transactions must advance the clock
    /// speculatively as part of their commit.  Only the conventional
    /// incrementing clock does; every GV scheme keeps the clock read-only
    /// inside hardware transactions, which is what lets concurrent
    /// fast-path commits share the clock line.
    #[inline(always)]
    pub fn advances_in_htm(self) -> bool {
        self == ClockScheme::Incrementing
    }

    /// Whether this scheme relies on abort paths advancing the clock
    /// (every GV scheme; the incrementing baseline does not need it).
    #[inline(always)]
    pub fn advances_on_abort(self) -> bool {
        self != ClockScheme::Incrementing
    }
}

/// The global version clock, stored in a heap word so that speculative
/// (HTM) reads of the clock participate in conflict detection.
#[derive(Clone, Debug)]
pub struct GlobalClock {
    addr: Addr,
    scheme: ClockScheme,
}

impl GlobalClock {
    /// Creates a clock over the heap word at `addr`.
    pub fn new(addr: Addr, scheme: ClockScheme) -> Self {
        GlobalClock { addr, scheme }
    }

    /// The heap address of the clock word (needed by runtimes that read the
    /// clock speculatively inside a hardware transaction).
    #[inline(always)]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The configured scheme.
    #[inline(always)]
    pub fn scheme(&self) -> ClockScheme {
        self.scheme
    }

    /// `GVRead()`: the current value of the clock.
    #[inline(always)]
    pub fn read(&self, heap: &TxHeap) -> u64 {
        heap.load(self.addr)
    }

    /// The version a committing *software* writer should install, applying
    /// the scheme's commit-time clock discipline.
    ///
    /// `salt` is any cheap per-thread value that varies between commits (a
    /// commit counter); it drives GV6's sampling decision and is ignored by
    /// the other schemes.
    ///
    /// Callers must invoke this only after their write-set stripes are
    /// locked (see the module docs for why the relaxed schemes need that
    /// ordering).
    #[inline]
    pub fn next_commit(&self, heap: &TxHeap, salt: u64) -> u64 {
        match self.scheme {
            ClockScheme::Incrementing | ClockScheme::GvStrict => heap.fetch_add(self.addr, 1) + 1,
            ClockScheme::Gv4 => self.cas_advance(heap),
            ClockScheme::Gv5 => heap.load(self.addr) + 1,
            ClockScheme::Gv6 => {
                if salt.is_multiple_of(GV6_SAMPLE_PERIOD) {
                    self.cas_advance(heap)
                } else {
                    heap.load(self.addr) + 1
                }
            }
        }
    }

    /// GV4's relaxed advance: one CAS attempt, failure tolerated.
    #[inline]
    fn cas_advance(&self, heap: &TxHeap) -> u64 {
        let v = heap.load(self.addr);
        // Failure means another committer advanced the clock past `v`; using
        // v + 1 anyway is safe (see the module docs) and avoids ever
        // spinning on the clock line.
        let _ = heap.cas(self.addr, v, v + 1);
        v + 1
    }

    /// `GVNext()` for speculative (hardware fast-path) use: the version the
    /// transaction would install.  Under every GV scheme this only *reads*
    /// the shared word; under the incrementing baseline it advances it.
    #[inline(always)]
    pub fn next(&self, heap: &TxHeap) -> u64 {
        if self.scheme == ClockScheme::Incrementing {
            heap.fetch_add(self.addr, 1) + 1
        } else {
            heap.load(self.addr) + 1
        }
    }

    /// Called on a software-transaction abort.  Under the GV schemes this is
    /// where the clock catches up (to at least `observed`, the version whose
    /// read caused the abort, so that the retrying transaction starts from a
    /// fresh time-stamp).  Under the incrementing baseline it is a no-op.
    #[inline]
    pub fn on_abort(&self, heap: &TxHeap, observed: u64) {
        if self.scheme.advances_on_abort() {
            heap.fetch_max(self.addr, observed);
        }
    }

    /// Advances the clock so that future `read()` calls return at least
    /// `version`.  Runtimes may use this after installing a version obtained
    /// from [`GlobalClock::next`] to bound how far the shared counter lags
    /// (a lagging counter is correct but makes later writers reuse the same
    /// version and pay validation aborts).
    #[inline]
    pub fn publish(&self, heap: &TxHeap, version: u64) {
        if self.scheme.advances_on_abort() {
            heap.fetch_max(self.addr, version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(scheme: ClockScheme) -> (TxHeap, GlobalClock) {
        let heap = TxHeap::new(8);
        let clock = GlobalClock::new(Addr(0), scheme);
        (heap, clock)
    }

    #[test]
    fn strict_commit_advances_and_is_unique() {
        for scheme in [ClockScheme::GvStrict, ClockScheme::Incrementing] {
            let (heap, clock) = setup(scheme);
            assert_eq!(clock.read(&heap), 0);
            assert_eq!(clock.next_commit(&heap, 0), 1);
            assert_eq!(clock.next_commit(&heap, 1), 2);
            assert_eq!(clock.read(&heap), 2, "{scheme:?}");
        }
    }

    #[test]
    fn gv4_advances_via_cas_and_tolerates_races() {
        let (heap, clock) = setup(ClockScheme::Gv4);
        assert_eq!(clock.next_commit(&heap, 0), 1);
        assert_eq!(clock.read(&heap), 1);
        // Simulate a concurrent advance between load and CAS: the CAS fails
        // but the returned version is still stale+1.
        heap.store(Addr(0), 10);
        assert_eq!(clock.next_commit(&heap, 1), 11);
        assert_eq!(clock.read(&heap), 11);
    }

    #[test]
    fn gv5_commit_never_writes_the_clock() {
        let (heap, clock) = setup(ClockScheme::Gv5);
        assert_eq!(clock.next_commit(&heap, 0), 1);
        assert_eq!(clock.next_commit(&heap, 1), 1);
        assert_eq!(clock.read(&heap), 0, "GV5 commits must not write the clock");
        // The clock catches up on aborts instead.
        clock.on_abort(&heap, 1);
        assert_eq!(clock.next_commit(&heap, 2), 2);
    }

    #[test]
    fn gv6_samples_the_advance() {
        let (heap, clock) = setup(ClockScheme::Gv6);
        // salt = 0 → sampled commit: advances.
        assert_eq!(clock.next_commit(&heap, 0), 1);
        assert_eq!(clock.read(&heap), 1);
        // Non-multiple salts skip the write.
        for salt in 1..GV6_SAMPLE_PERIOD {
            assert_eq!(clock.next_commit(&heap, salt), 2);
        }
        assert_eq!(clock.read(&heap), 1);
        // The next sampled commit advances again.
        assert_eq!(clock.next_commit(&heap, GV6_SAMPLE_PERIOD), 2);
        assert_eq!(clock.read(&heap), 2);
    }

    #[test]
    fn speculative_next_only_incrementing_writes() {
        for scheme in ClockScheme::ALL {
            let (heap, clock) = setup(scheme);
            assert_eq!(clock.next(&heap), 1);
            if scheme == ClockScheme::Incrementing {
                assert_eq!(clock.read(&heap), 1);
            } else {
                assert_eq!(clock.read(&heap), 0, "{scheme:?} must not write in HTM");
            }
        }
    }

    #[test]
    fn abort_and_publish_advance_gv_schemes_only() {
        let (heap, clock) = setup(ClockScheme::GvStrict);
        clock.on_abort(&heap, 5);
        assert_eq!(clock.read(&heap), 5);
        clock.on_abort(&heap, 3);
        assert_eq!(clock.read(&heap), 5, "never moves backwards");
        clock.publish(&heap, 9);
        assert_eq!(clock.read(&heap), 9);

        let (heap, clock) = setup(ClockScheme::Incrementing);
        clock.on_abort(&heap, 100);
        clock.publish(&heap, 100);
        assert_eq!(clock.read(&heap), 0);
    }

    #[test]
    fn default_scheme_is_strict() {
        assert_eq!(ClockScheme::default(), ClockScheme::GvStrict);
        assert!(!ClockScheme::GvStrict.advances_in_htm());
        assert!(ClockScheme::Incrementing.advances_in_htm());
    }

    #[test]
    fn labels_round_trip() {
        for scheme in ClockScheme::ALL {
            assert_eq!(ClockScheme::parse(scheme.label()), Some(scheme));
        }
        assert_eq!(ClockScheme::parse("GV1"), Some(ClockScheme::Incrementing));
        assert_eq!(ClockScheme::parse("nonsense"), None);
    }
}
