//! The word-addressed transactional heap.
//!
//! [`TxHeap`] is a segmented array of `AtomicU64` words.  Every access the
//! protocols perform — speculative or not — ultimately lands here.  The heap
//! deliberately exposes only *word* operations (load, store, CAS,
//! fetch-add): the transactional semantics (buffering, conflict detection,
//! versioning) are implemented by the runtimes layered on top.
//!
//! All transactional-path orderings are `SeqCst`.  The protocols in the
//! paper are described on a TSO machine (x86) where every shared access is
//! strongly ordered enough for the algorithms' arguments; `SeqCst` keeps the
//! simulation faithful on any host and keeps the safety argument simple.
//! The cost is identical for every runtime, so relative comparisons (the
//! paper's subject) are unaffected.  The `*_relaxed` variants exist only for
//! single-threaded construction (prefill before any worker spawns; the
//! spawn itself is the synchronisation point).
//!
//! ## Segment table
//!
//! The heap used to be one flat `Box<[AtomicU64]>`, which meant a
//! million-key shard paid for — and zeroed — its whole worst-case footprint
//! at construction.  It is now a table of fixed-size segments
//! ([`SEGMENT_WORDS`] words each; the last segment is truncated to the
//! configured length so out-of-bounds accesses still panic at the exact
//! word).  The [`Addr`] space is unchanged and stable: `addr >>
//! SEGMENT_SHIFT` selects the segment, the low bits index into it.
//! Segments materialise lazily on first touch, so construction is O(1) and
//! resident memory is proportional to the data actually touched, not to
//! `MemConfig::data_words`.
//!
//! A heap of at most [`FLAT_MAX_WORDS`] words — every closed-loop benchmark
//! workload; only the million-key KV shards exceed it — skips the table
//! entirely: it is stored as one flat, eagerly-zeroed array, so the word
//! path keeps the original single-bounds-check load.  The segment
//! indirection (an `OnceLock` acquire plus a second bounds check, on a
//! path that performs three heap loads per transactional read) was
//! measured at 30-45% on the pointer-chasing read workloads (rbtree,
//! sorted list) under TL2; the flat fast path confines that cost to heaps
//! big enough that lazy materialisation genuinely pays for it.
//!
//! ## Layout note (cache-line padding audit)
//!
//! Each segment is a flat `Box<[AtomicU64]>` rather than an array of
//! 64-byte-aligned line groups.  Storing it as `[repr(align(64))]` lines
//! was measured and rejected: the extra index level (plus the word-granular
//! bound check the rounded-up line array then needs) costs several percent
//! on the software read path, which performs three heap loads per
//! transactional read, while the alignment only tightens false-sharing at
//! line *boundaries* that the region map already keeps metadata away from.
//! Hot words that need real isolation are padded individually with
//! [`crate::CachePadded`] instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::addr::Addr;

/// log2 of the words in one fully-sized heap segment: 2^18 words = 2 MiB.
///
/// Small enough that toy test heaps stay one short segment, large enough
/// that a million-key shard is a few dozen segments.
pub const SEGMENT_SHIFT: usize = 18;

/// Words in one fully-sized heap segment (the last segment of a heap is
/// truncated to the configured length).
pub const SEGMENT_WORDS: usize = 1 << SEGMENT_SHIFT;

/// Largest heap (in words — 2^21 words = 16 MiB) stored flat rather than
/// segmented.  Below this, eager zero-fill costs at most a few
/// milliseconds and the hot word path keeps its single bounds check;
/// above it (the million-key KV shards, tens of MiB per shard), lazy
/// per-segment materialisation wins.
pub const FLAT_MAX_WORDS: usize = 1 << 21;

/// One lazily-materialised run of heap words.
struct Segment {
    words: OnceLock<Box<[AtomicU64]>>,
    len: usize,
}

impl Segment {
    /// The segment's words, zero-filled on first touch.
    #[inline]
    fn words(&self) -> &[AtomicU64] {
        self.words.get_or_init(|| {
            let mut v = Vec::with_capacity(self.len);
            v.resize_with(self.len, || AtomicU64::new(0));
            v.into_boxed_slice()
        })
    }
}

/// A fixed-size, word-addressed shared heap of `AtomicU64` cells, stored
/// flat up to [`FLAT_MAX_WORDS`] and as a table of lazily-materialised
/// segments behind a stable [`Addr`] space otherwise.
///
/// The two representations are sibling slices (exactly one is non-empty)
/// rather than an enum: on the hot path the flat slice's bounds check
/// doubles as the representation dispatch, so flat heaps pay no
/// discriminant load — `cell` compiles to the same single-bounds-check
/// indexing the pre-segmentation heap had.
pub struct TxHeap {
    /// The whole heap for flat heaps; empty for segmented ones.
    flat: Box<[AtomicU64]>,
    /// The segment table for segmented heaps; empty for flat ones.
    segments: Box<[Segment]>,
    len: usize,
}

impl TxHeap {
    /// Creates a heap of `len` words, all logically zero.  Heaps up to
    /// [`FLAT_MAX_WORDS`] are allocated (and zeroed) eagerly; larger heaps
    /// materialise each segment on first access, so construction cost does
    /// not scale with `len`.
    pub fn new(len: usize) -> Self {
        let (flat, segments) = if len <= FLAT_MAX_WORDS {
            let mut v = Vec::with_capacity(len);
            v.resize_with(len, || AtomicU64::new(0));
            (v.into_boxed_slice(), Box::from([]))
        } else {
            let segments: Box<[Segment]> = (0..len.div_ceil(SEGMENT_WORDS))
                .map(|i| Segment {
                    words: OnceLock::new(),
                    len: (len - i * SEGMENT_WORDS).min(SEGMENT_WORDS),
                })
                .collect();
            (Box::from([]), segments)
        };
        TxHeap {
            flat,
            segments,
            len,
        }
    }

    /// Number of words in the heap.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the heap has no words (only possible for a
    /// zero-sized configuration, which no runtime uses).
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of segments backing this heap's address space (1 for
    /// a flat heap).
    pub fn segment_count(&self) -> usize {
        if self.segments.is_empty() {
            1
        } else {
            self.segments.len()
        }
    }

    /// Number of segments materialised so far — the resident footprint, as
    /// opposed to the configured address space.  A flat heap is fully
    /// resident from construction.
    pub fn resident_segments(&self) -> usize {
        if self.segments.is_empty() {
            1
        } else {
            self.segments
                .iter()
                .filter(|s| s.words.get().is_some())
                .count()
        }
    }

    #[inline(always)]
    fn cell(&self, addr: Addr) -> &AtomicU64 {
        // All indexings panic on out-of-range addresses: the empty-table
        // segment lookup for a flat heap's out-of-range address, the
        // segment lookup for addresses past the last segment, the word
        // lookup for addresses inside the (truncated) last segment but
        // past `len`.
        if let Some(cell) = self.flat.get(addr.0) {
            return cell;
        }
        self.segmented_cell(addr)
    }

    /// The segment-table lookup, deliberately outlined: inlining the
    /// `OnceLock` materialisation machinery into every heap-access site
    /// bloats the runtimes' hot loops enough to cost several percent on
    /// the flat (benchmark-sized) heaps that never execute it.  Segmented
    /// heaps pay one direct call per access, which is noise next to their
    /// per-access second bounds check.
    #[cold]
    #[inline(never)]
    fn segmented_cell(&self, addr: Addr) -> &AtomicU64 {
        &self.segments[addr.0 >> SEGMENT_SHIFT].words()[addr.0 & (SEGMENT_WORDS - 1)]
    }

    /// Plain (non-transactional) load of a word.
    #[inline(always)]
    pub fn load(&self, addr: Addr) -> u64 {
        self.cell(addr).load(Ordering::SeqCst)
    }

    /// Plain (non-transactional) store of a word.
    #[inline(always)]
    pub fn store(&self, addr: Addr, value: u64) {
        self.cell(addr).store(value, Ordering::SeqCst)
    }

    /// Relaxed load of a word.  Only sound on data that no other thread is
    /// concurrently writing — i.e. during single-threaded construction and
    /// quiescent inspection.
    #[inline(always)]
    pub fn load_relaxed(&self, addr: Addr) -> u64 {
        self.cell(addr).load(Ordering::Relaxed)
    }

    /// Relaxed store of a word, for bulk single-threaded initialisation
    /// (prefill) before any worker thread exists.  Spawning the workers is
    /// the synchronisation point that publishes these stores.
    #[inline(always)]
    pub fn store_relaxed(&self, addr: Addr, value: u64) {
        self.cell(addr).store(value, Ordering::Relaxed)
    }

    /// Compare-and-swap on a word. Returns `Ok(previous)` when the swap
    /// happened and `Err(actual)` when the current value differed from
    /// `current`.
    #[inline(always)]
    pub fn cas(&self, addr: Addr, current: u64, new: u64) -> Result<u64, u64> {
        self.cell(addr)
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Atomic fetch-and-add, returning the previous value.
    ///
    /// RH2 uses this to flip bits in the stripe read masks (the paper
    /// explicitly prefers fetch-and-add over CAS loops for the visibility
    /// bits) and the fallback counters are maintained with it as well.
    #[inline(always)]
    pub fn fetch_add(&self, addr: Addr, delta: u64) -> u64 {
        self.cell(addr).fetch_add(delta, Ordering::SeqCst)
    }

    /// Atomic wrapping fetch-and-sub, returning the previous value.
    #[inline(always)]
    pub fn fetch_sub(&self, addr: Addr, delta: u64) -> u64 {
        self.cell(addr).fetch_sub(delta, Ordering::SeqCst)
    }

    /// Atomic fetch-and-or, returning the previous value.
    #[inline(always)]
    pub fn fetch_or(&self, addr: Addr, bits: u64) -> u64 {
        self.cell(addr).fetch_or(bits, Ordering::SeqCst)
    }

    /// Atomic fetch-and-and, returning the previous value.
    #[inline(always)]
    pub fn fetch_and(&self, addr: Addr, bits: u64) -> u64 {
        self.cell(addr).fetch_and(bits, Ordering::SeqCst)
    }

    /// Atomic maximum, returning the previous value.
    #[inline(always)]
    pub fn fetch_max(&self, addr: Addr, value: u64) -> u64 {
        self.cell(addr).fetch_max(value, Ordering::SeqCst)
    }

    /// Fills the address range `[start, start + len)` with `value` using
    /// plain stores.  Used by workload initialisation only.
    pub fn fill(&self, start: Addr, len: usize, value: u64) {
        for i in 0..len {
            self.store(start.offset(i), value);
        }
    }

    /// Fills the address range `[start, start + len)` with `value` using
    /// relaxed stores — the bulk-prefill path.  Same soundness contract as
    /// [`TxHeap::store_relaxed`]: single-threaded construction only.
    pub fn fill_relaxed(&self, start: Addr, len: usize, value: u64) {
        for i in 0..len {
            self.store_relaxed(start.offset(i), value);
        }
    }
}

impl std::fmt::Debug for TxHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxHeap")
            .field("len_words", &self.len())
            .field("len_bytes", &(self.len() * 8))
            .field("segments", &self.segment_count())
            .field("resident_segments", &self.resident_segments())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_heap_is_zeroed() {
        let h = TxHeap::new(64);
        assert_eq!(h.len(), 64);
        assert!(!h.is_empty());
        for i in 0..64 {
            assert_eq!(h.load(Addr(i)), 0);
        }
    }

    #[test]
    fn store_then_load_roundtrip() {
        let h = TxHeap::new(16);
        h.store(Addr(3), 0xdead_beef);
        assert_eq!(h.load(Addr(3)), 0xdead_beef);
        assert_eq!(h.load(Addr(2)), 0);
        assert_eq!(h.load(Addr(4)), 0);
    }

    #[test]
    fn relaxed_roundtrip_matches_seqcst_view() {
        let h = TxHeap::new(16);
        h.store_relaxed(Addr(5), 77);
        assert_eq!(h.load(Addr(5)), 77);
        h.store(Addr(6), 78);
        assert_eq!(h.load_relaxed(Addr(6)), 78);
        h.fill_relaxed(Addr(0), 4, 9);
        for i in 0..4 {
            assert_eq!(h.load(Addr(i)), 9);
        }
    }

    #[test]
    fn cas_success_and_failure() {
        let h = TxHeap::new(4);
        h.store(Addr(0), 7);
        assert_eq!(h.cas(Addr(0), 7, 9), Ok(7));
        assert_eq!(h.load(Addr(0)), 9);
        assert_eq!(h.cas(Addr(0), 7, 11), Err(9));
        assert_eq!(h.load(Addr(0)), 9);
    }

    #[test]
    fn fetch_add_and_sub() {
        let h = TxHeap::new(4);
        assert_eq!(h.fetch_add(Addr(1), 5), 0);
        assert_eq!(h.fetch_add(Addr(1), 5), 5);
        assert_eq!(h.load(Addr(1)), 10);
        assert_eq!(h.fetch_sub(Addr(1), 4), 10);
        assert_eq!(h.load(Addr(1)), 6);
    }

    #[test]
    fn fetch_or_and_and_max() {
        let h = TxHeap::new(4);
        assert_eq!(h.fetch_or(Addr(0), 0b1010), 0);
        assert_eq!(h.fetch_and(Addr(0), 0b0010), 0b1010);
        assert_eq!(h.load(Addr(0)), 0b0010);
        assert_eq!(h.fetch_max(Addr(0), 100), 0b0010);
        assert_eq!(h.fetch_max(Addr(0), 3), 100);
        assert_eq!(h.load(Addr(0)), 100);
    }

    #[test]
    fn fill_covers_exact_range() {
        let h = TxHeap::new(32);
        h.fill(Addr(8), 8, 42);
        assert_eq!(h.load(Addr(7)), 0);
        for i in 8..16 {
            assert_eq!(h.load(Addr(i)), 42);
        }
        assert_eq!(h.load(Addr(16)), 0);
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let h = Arc::new(TxHeap::new(8));
        let threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        h.fetch_add(Addr(0), 1);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.load(Addr(0)), (threads * per_thread) as u64);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let h = TxHeap::new(4);
        let _ = h.load(Addr(4));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_past_the_segment_table_panics() {
        let h = TxHeap::new(4);
        let _ = h.load(Addr(SEGMENT_WORDS + 1));
    }

    #[test]
    fn heaps_up_to_the_flat_threshold_are_flat_and_fully_resident() {
        let h = TxHeap::new(FLAT_MAX_WORDS);
        assert_eq!(h.segment_count(), 1);
        assert_eq!(h.resident_segments(), 1, "flat heaps are eager");
        h.store(Addr(FLAT_MAX_WORDS - 1), 5);
        assert_eq!(h.load(Addr(FLAT_MAX_WORDS - 1)), 5);
    }

    #[test]
    fn segments_materialise_lazily_and_addresses_cross_boundaries() {
        let len = FLAT_MAX_WORDS + 2 * SEGMENT_WORDS + 10;
        let h = TxHeap::new(len);
        assert_eq!(h.len(), len);
        assert_eq!(h.segment_count(), FLAT_MAX_WORDS / SEGMENT_WORDS + 3);
        assert_eq!(h.resident_segments(), 0, "construction touches nothing");
        // A store in the middle segment materialises only that segment.
        h.store(Addr(SEGMENT_WORDS + 3), 11);
        assert_eq!(h.resident_segments(), 1);
        assert_eq!(h.load(Addr(SEGMENT_WORDS + 3)), 11);
        // Words adjacent across a segment boundary are independent.
        h.store(Addr(SEGMENT_WORDS - 1), 1);
        h.store(Addr(SEGMENT_WORDS), 2);
        assert_eq!(h.load(Addr(SEGMENT_WORDS - 1)), 1);
        assert_eq!(h.load(Addr(SEGMENT_WORDS)), 2);
        assert_eq!(h.resident_segments(), 2);
        // The truncated last segment serves its exact range.
        h.store(Addr(len - 1), 3);
        assert_eq!(h.load(Addr(len - 1)), 3);
        assert_eq!(h.resident_segments(), 3);
    }

    #[test]
    #[should_panic]
    fn truncated_last_segment_still_bounds_checks() {
        let len = FLAT_MAX_WORDS + 2 * SEGMENT_WORDS + 10;
        let h = TxHeap::new(len);
        let _ = h.load(Addr(len));
    }
}
