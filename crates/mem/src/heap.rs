//! The word-addressed transactional heap.
//!
//! [`TxHeap`] is a fixed-size array of `AtomicU64` words.  Every access the
//! protocols perform — speculative or not — ultimately lands here.  The heap
//! deliberately exposes only *word* operations (load, store, CAS,
//! fetch-add): the transactional semantics (buffering, conflict detection,
//! versioning) are implemented by the runtimes layered on top.
//!
//! All orderings are `SeqCst`.  The protocols in the paper are described on
//! a TSO machine (x86) where every shared access is strongly ordered enough
//! for the algorithms' arguments; `SeqCst` keeps the simulation faithful on
//! any host and keeps the safety argument simple.  The cost is identical for
//! every runtime, so relative comparisons (the paper's subject) are
//! unaffected.
//!
//! ## Layout note (cache-line padding audit)
//!
//! The heap is deliberately a flat `Box<[AtomicU64]>` rather than an array
//! of 64-byte-aligned line groups.  Storing it as `[repr(align(64))]` lines
//! was measured and rejected: the two-level index (plus the word-granular
//! bound check the rounded-up line array then needs) costs several percent
//! on the software read path, which performs three heap loads per
//! transactional read, while the alignment only tightens false-sharing at
//! line *boundaries* that the region map already keeps metadata away from.
//! Hot words that need real isolation are padded individually with
//! [`crate::CachePadded`] instead.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::Addr;

/// A fixed-size, word-addressed shared heap of `AtomicU64` cells.
pub struct TxHeap {
    words: Box<[AtomicU64]>,
}

impl TxHeap {
    /// Creates a heap of `len` words, all initialised to zero.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU64::new(0));
        TxHeap {
            words: v.into_boxed_slice(),
        }
    }

    /// Number of words in the heap.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the heap has no words (only possible for a
    /// zero-sized configuration, which no runtime uses).
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    #[inline(always)]
    fn cell(&self, addr: Addr) -> &AtomicU64 {
        &self.words[addr.0]
    }

    /// Plain (non-transactional) load of a word.
    #[inline(always)]
    pub fn load(&self, addr: Addr) -> u64 {
        self.cell(addr).load(Ordering::SeqCst)
    }

    /// Plain (non-transactional) store of a word.
    #[inline(always)]
    pub fn store(&self, addr: Addr, value: u64) {
        self.cell(addr).store(value, Ordering::SeqCst)
    }

    /// Compare-and-swap on a word. Returns `Ok(previous)` when the swap
    /// happened and `Err(actual)` when the current value differed from
    /// `current`.
    #[inline(always)]
    pub fn cas(&self, addr: Addr, current: u64, new: u64) -> Result<u64, u64> {
        self.cell(addr)
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Atomic fetch-and-add, returning the previous value.
    ///
    /// RH2 uses this to flip bits in the stripe read masks (the paper
    /// explicitly prefers fetch-and-add over CAS loops for the visibility
    /// bits) and the fallback counters are maintained with it as well.
    #[inline(always)]
    pub fn fetch_add(&self, addr: Addr, delta: u64) -> u64 {
        self.cell(addr).fetch_add(delta, Ordering::SeqCst)
    }

    /// Atomic wrapping fetch-and-sub, returning the previous value.
    #[inline(always)]
    pub fn fetch_sub(&self, addr: Addr, delta: u64) -> u64 {
        self.cell(addr).fetch_sub(delta, Ordering::SeqCst)
    }

    /// Atomic fetch-and-or, returning the previous value.
    #[inline(always)]
    pub fn fetch_or(&self, addr: Addr, bits: u64) -> u64 {
        self.cell(addr).fetch_or(bits, Ordering::SeqCst)
    }

    /// Atomic fetch-and-and, returning the previous value.
    #[inline(always)]
    pub fn fetch_and(&self, addr: Addr, bits: u64) -> u64 {
        self.cell(addr).fetch_and(bits, Ordering::SeqCst)
    }

    /// Atomic maximum, returning the previous value.
    #[inline(always)]
    pub fn fetch_max(&self, addr: Addr, value: u64) -> u64 {
        self.cell(addr).fetch_max(value, Ordering::SeqCst)
    }

    /// Fills the address range `[start, start + len)` with `value` using
    /// plain stores.  Used by workload initialisation only.
    pub fn fill(&self, start: Addr, len: usize, value: u64) {
        for i in 0..len {
            self.store(start.offset(i), value);
        }
    }
}

impl std::fmt::Debug for TxHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxHeap")
            .field("len_words", &self.len())
            .field("len_bytes", &(self.len() * 8))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_heap_is_zeroed() {
        let h = TxHeap::new(64);
        assert_eq!(h.len(), 64);
        assert!(!h.is_empty());
        for i in 0..64 {
            assert_eq!(h.load(Addr(i)), 0);
        }
    }

    #[test]
    fn store_then_load_roundtrip() {
        let h = TxHeap::new(16);
        h.store(Addr(3), 0xdead_beef);
        assert_eq!(h.load(Addr(3)), 0xdead_beef);
        assert_eq!(h.load(Addr(2)), 0);
        assert_eq!(h.load(Addr(4)), 0);
    }

    #[test]
    fn cas_success_and_failure() {
        let h = TxHeap::new(4);
        h.store(Addr(0), 7);
        assert_eq!(h.cas(Addr(0), 7, 9), Ok(7));
        assert_eq!(h.load(Addr(0)), 9);
        assert_eq!(h.cas(Addr(0), 7, 11), Err(9));
        assert_eq!(h.load(Addr(0)), 9);
    }

    #[test]
    fn fetch_add_and_sub() {
        let h = TxHeap::new(4);
        assert_eq!(h.fetch_add(Addr(1), 5), 0);
        assert_eq!(h.fetch_add(Addr(1), 5), 5);
        assert_eq!(h.load(Addr(1)), 10);
        assert_eq!(h.fetch_sub(Addr(1), 4), 10);
        assert_eq!(h.load(Addr(1)), 6);
    }

    #[test]
    fn fetch_or_and_and_max() {
        let h = TxHeap::new(4);
        assert_eq!(h.fetch_or(Addr(0), 0b1010), 0);
        assert_eq!(h.fetch_and(Addr(0), 0b0010), 0b1010);
        assert_eq!(h.load(Addr(0)), 0b0010);
        assert_eq!(h.fetch_max(Addr(0), 100), 0b0010);
        assert_eq!(h.fetch_max(Addr(0), 3), 100);
        assert_eq!(h.load(Addr(0)), 100);
    }

    #[test]
    fn fill_covers_exact_range() {
        let h = TxHeap::new(32);
        h.fill(Addr(8), 8, 42);
        assert_eq!(h.load(Addr(7)), 0);
        for i in 8..16 {
            assert_eq!(h.load(Addr(i)), 42);
        }
        assert_eq!(h.load(Addr(16)), 0);
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let h = Arc::new(TxHeap::new(8));
        let threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        h.fetch_add(Addr(0), 1);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.load(Addr(0)), (threads * per_thread) as u64);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let h = TxHeap::new(4);
        let _ = h.load(Addr(4));
    }
}
