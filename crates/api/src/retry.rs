//! Pluggable retry policies: *when* a transaction gives up on its current
//! execution path.
//!
//! Every runtime in the workspace has a retry loop, and before this module
//! each of them hard-coded its own give-up decision: the RH1 commit-time
//! hardware transaction counted contention retries against
//! `commit_htm_retries`, the RH2 write-back counted against
//! `writeback_htm_retries` (with a different comparison idiom), the Standard
//! HyTM counted hardware failures against `hw_retries`, and TL2 / pure HTM
//! retried forever.  This module makes that decision a first-class,
//! swappable, benchmarkable strategy — the same treatment the
//! `rhtm_mem::ClockScheme` axis gives the global clock — so contention
//! management can be measured as an axis (`ablation_retry`) instead of being
//! re-derived per runtime.
//!
//! The division of labour is deliberate:
//!
//! * the **policy** decides *when* to stop retrying the current path
//!   ([`RetryDecision::Demote`]) and how to pace retries
//!   ([`RetryDecision::RetryHere`] / [`RetryDecision::BackoffThen`]);
//! * the **runtime** decides *where* a demoted attempt goes (mixed
//!   slow-path, RH2 commit, all-software write-back, TL2 fallback, or a
//!   plain transaction restart) — that mapping is protocol correctness, not
//!   tuning, so it stays in the runtime.
//!
//! Two decisions are never delegated, and [`AttemptContext::clamp`] enforces
//! them for every policy: an abort caused by a *hardware limitation*
//! (capacity overflow, protected instruction) can never succeed by retrying
//! in hardware, so it always demotes when a slower tier exists; and a path
//! with no slower tier ([`AttemptContext::can_demote`] `== false`) never
//! demotes.  A policy therefore cannot strand a transaction on a path that
//! can never run it, and cannot affect serialisability at all — but the
//! clamp does **not** bound contention pacing: a policy that always answers
//! [`RetryDecision::RetryHere`] (see [`Aggressive`]) keeps a contended
//! attempt spinning with no give-up bound, a throughput hazard rather than
//! a correctness one.
//!
//! # Retry-budget semantics
//!
//! Everywhere a budget appears (`retry_budget` here,
//! `commit_htm_retries` / `writeback_htm_retries` / `hw_retries` in the
//! runtime configs) it means **the maximum number of *extra* attempts on the
//! current path after the first failure**: a budget of `N` allows `N + 1`
//! total attempts before [`PaperDefault`] demotes.  The pre-refactor loops
//! expressed this with two different idioms (`count > budget` after the
//! increment vs `count >= budget` before it) that happened to coincide;
//! this module makes the semantics explicit and `tests/retry_policies.rs`
//! asserts it.

use std::fmt;
use std::sync::Arc;

use crate::abort::AbortCause;
use crate::stats::RetryMetrics;

/// Which execution tier the aborted attempt was running on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// An all-hardware attempt: the RH1/RH2 fast-paths, the pure-HTM
    /// runtime, or a Standard-HyTM hardware attempt.
    Hardware,
    /// The commit-time hardware transaction of a software body: the RH1
    /// slow-path commit or the RH2 write-back.
    CommitHtm,
    /// A software attempt: TL2, the Standard-HyTM software fallback, or the
    /// RH mixed slow-path body.
    Software,
}

impl PathClass {
    /// Short label used in reports and policy traces.
    pub fn label(self) -> &'static str {
        match self {
            PathClass::Hardware => "hardware",
            PathClass::CommitHtm => "commit-htm",
            PathClass::Software => "software",
        }
    }
}

/// Everything a [`RetryPolicy`] may consult when deciding what an aborted
/// attempt does next.  Built by the runtime at each decision site.
#[derive(Clone, Copy, Debug)]
pub struct AttemptContext {
    /// Failed attempts observed at this decision site so far, **including**
    /// the one being decided — the first decision after an abort sees
    /// `attempt == 1`.  Outer transaction loops count failures of the whole
    /// transaction; the commit-time loops count failures of the current
    /// commit only.
    pub attempt: u32,
    /// The tier the aborted attempt ran on.
    pub path: PathClass,
    /// Why the attempt aborted.
    pub cause: AbortCause,
    /// Whether a slower tier exists for this site.  `false` for the pure-HTM
    /// runtime (no fallback), TL2 (already the bottom) and the RH slow-path
    /// body (must re-execute in software anyway).
    pub can_demote: bool,
    /// The configured budget for this site: maximum *extra* attempts after
    /// the first failure (`u32::MAX` = unbounded).  Carried from the runtime
    /// config (`commit_htm_retries`, `writeback_htm_retries`, `hw_retries`)
    /// so thresholds keep living in one place.
    pub retry_budget: u32,
    /// The paper's "Mix" parameter for this site: percentage (0–100) of
    /// budget-exhausted contention aborts that demote.  `100` for sites
    /// without a probabilistic mix (demote deterministically once the budget
    /// is spent); only the RH fast-path passes its configured
    /// `slow_path_percent` here.
    pub mix_percent: u8,
    /// Snapshot of the `is_RH2_fallback` counter (0 for runtimes without the
    /// cascade).
    pub fallback_rh2: u64,
    /// Snapshot of the `is_all_software_slow_path` counter (0 for runtimes
    /// without the cascade).
    pub fallback_all_software: u64,
}

impl AttemptContext {
    /// Is the cascade currently degraded — some transaction is committing
    /// through the RH2 fallback or an all-software write-back?
    #[inline]
    pub fn cascade_degraded(&self) -> bool {
        self.fallback_rh2 > 0 || self.fallback_all_software > 0
    }

    /// Enforces the two non-negotiable rules on a policy's decision:
    ///
    /// * a hardware-limitation abort ([`AbortCause::is_hardware_limitation`])
    ///   always demotes when a slower tier exists — retrying it in hardware
    ///   can never succeed;
    /// * [`RetryDecision::Demote`] degrades to [`RetryDecision::RetryHere`]
    ///   when no slower tier exists.
    ///
    /// Every runtime clamps through this, so no policy can strand a
    /// transaction on a path that can never run it (the true-livelock
    /// case); contention pacing remains the policy's own responsibility.
    #[inline]
    pub fn clamp(&self, decision: RetryDecision) -> RetryDecision {
        if self.can_demote && self.cause.is_hardware_limitation() {
            return RetryDecision::Demote;
        }
        if !self.can_demote && decision == RetryDecision::Demote {
            return RetryDecision::RetryHere;
        }
        decision
    }
}

/// What an aborted attempt does next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retry on the same path, paced by the runtime's default backoff.
    RetryHere,
    /// Stop retrying on this path; the runtime demotes the attempt to its
    /// next recourse for the site (mixed slow-path, RH2 commit, all-software
    /// write-back, software fallback, or a transaction restart).
    Demote,
    /// Retry on the same path after spinning for approximately the given
    /// number of `spin_loop` hints (replaces the runtime's default backoff
    /// for this retry).
    BackoffThen(u32),
}

/// Spins for `n` `spin_loop` hints — the runtimes' interpreter for
/// [`RetryDecision::BackoffThen`].  Yields to the scheduler every 4096
/// hints so an oversubscribed host cannot be starved by a large backoff.
#[inline]
pub fn spin(n: u32) {
    for i in 0..n {
        if i % 4096 == 4095 {
            std::thread::yield_now();
        }
        std::hint::spin_loop();
    }
}

/// The xorshift64 generator the policies draw from.
///
/// Policies are stateless shared objects; all randomness (the RH "Mix"
/// draw, backoff jitter) comes from a per-thread instance of this generator
/// owned by the runtime thread, so runs stay reproducible per seed and
/// threads never share RNG state.  The update is the same xorshift the RH
/// runtime has always used for its slow-path-admission draw, which keeps
/// fixed-seed runs bit-identical across the refactor.
///
/// # Seeding contract
///
/// Each runtime thread owns exactly **one** `RetryRng`, seeded from the run
/// seed and the thread id at registration; every policy attached to that
/// thread draws from it.  Two rules keep those draws independent:
///
/// * a policy must never cache raw `next_u64` values across decisions —
///   cross-attempt memory belongs in [`AttemptContext::attempt`];
/// * a policy *instance* that turns draws into pacing (backoff jitter) must
///   not consume the shared stream directly, because a second instance on
///   the same thread would then read the **same** values one position
///   apart and pace its retries in near-lockstep with the first (correlated
///   jitter was a latent bug in the pre-Retry-2.0 jitter policies).
///   Instead it calls [`RetryRng::fork`] with a per-instance salt: the
///   parent stream advances exactly once (identically for every instance,
///   preserving fixed-seed reproducibility of all *shared* draws like the
///   RH "Mix" admission), while the forked value is decorrelated per salt.
#[derive(Clone, Debug)]
pub struct RetryRng {
    state: u64,
}

impl RetryRng {
    /// Creates a generator from a raw non-zero state (a zero seed is mapped
    /// to an arbitrary odd constant — xorshift fixes the all-zero state).
    #[inline]
    pub fn new(seed: u64) -> Self {
        RetryRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value (xorshift64: 13/7/17).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform draw in `0..n` (`n == 0` returns 0).
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Forks a decorrelated child generator for a policy instance (see the
    /// type-level *seeding contract*).
    ///
    /// Advances the parent stream exactly once — the advancement is
    /// salt-independent, so every instance sharing the thread moves the
    /// shared stream identically — then finalises `parent-draw ⊕ salt`
    /// through SplitMix64, whose avalanche guarantees that nearby salts
    /// (consecutive instance ids) produce unrelated child streams.
    #[inline]
    pub fn fork(&mut self, salt: u64) -> RetryRng {
        let mut z = self
            .next_u64()
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        RetryRng::new(z ^ (z >> 31))
    }
}

/// A contention-management strategy: decides what an aborted attempt does
/// next, given the [`AttemptContext`].
///
/// Implementations must be cheap (the decision runs on every abort) and
/// stateless across calls — any randomness comes from the caller's
/// per-thread [`RetryRng`], any cross-attempt memory from
/// [`AttemptContext::attempt`] and the fallback-counter snapshots.
pub trait RetryPolicy: fmt::Debug + Send + Sync {
    /// Stable short name (used by reports, the `ablation_retry` CLI and
    /// [`RetryPolicyHandle::parse`]).
    fn label(&self) -> &'static str;

    /// The decision for one aborted attempt.  Runtimes pass the returned
    /// value through [`AttemptContext::clamp`] before acting on it.
    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision;

    /// The decision for one aborted attempt, with access to the thread's
    /// [`RetryMetrics`] so stateful policies (the Retry 2.0 circuit breaker
    /// and budget in [`crate::retry2`]) can record state transitions.
    ///
    /// Runtimes call this (through
    /// [`RetryPolicyHandle::decide_clamped_observed`]) rather than
    /// [`RetryPolicy::decide`]; the default implementation ignores the
    /// metrics and delegates, so plain policies only implement `decide`.
    fn decide_observed(
        &self,
        ctx: &AttemptContext,
        rng: &mut RetryRng,
        metrics: &mut RetryMetrics,
    ) -> RetryDecision {
        let _ = metrics;
        self.decide(ctx, rng)
    }

    /// Notifies the policy of a committed transaction on this thread
    /// (`hardware` is true for all-hardware fast-path commits).
    ///
    /// Only called when [`RetryPolicy::wants_commit_hook`] returns true —
    /// runtimes cache that answer at thread registration so the common
    /// stateless policies pay nothing on the commit fast path.  The Retry
    /// 2.0 policies use this to refill the token bucket and to track the
    /// circuit breaker's half-open close streak.
    fn on_commit(&self, hardware: bool, metrics: &mut RetryMetrics) {
        let _ = (hardware, metrics);
    }

    /// Whether this policy needs [`RetryPolicy::on_commit`] notifications.
    /// Defaults to `false`; see the hook's docs for the caching contract.
    fn wants_commit_hook(&self) -> bool {
        false
    }

    /// Whether this policy reads the fallback-counter snapshots
    /// ([`AttemptContext::fallback_rh2`] /
    /// [`AttemptContext::fallback_all_software`]).
    ///
    /// Loading those counters costs two shared-cache-line reads per abort,
    /// right inside the retry loops the benchmarks measure; runtimes check
    /// this (once, at thread registration) and pass zeros when the policy
    /// does not care.  Defaults to `false`; override when implementing a
    /// policy like [`Adaptive`] that consults the cascade state.
    fn wants_fallback_snapshot(&self) -> bool {
        false
    }

    /// Identity string used for handle equality: label plus parameters.
    fn fingerprint(&self) -> String {
        format!("{}:{:?}", self.label(), self)
    }
}

/// The seed thresholds, verbatim: reproduces the pre-refactor loops of all
/// four runtimes decision-for-decision, so figure outputs are unchanged.
///
/// * Hardware limitations demote immediately (when a slower tier exists).
/// * While `attempt <= retry_budget`, retry on the same path.
/// * Once the budget is spent, the mix percentage decides: 0 never demotes,
///   100 always demotes, anything between draws the per-thread RNG — the RH
///   fast-path's "Mix" parameter, with the same draw sites as the seed
///   implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PaperDefault;

impl RetryPolicy for PaperDefault {
    fn label(&self) -> &'static str {
        "paper-default"
    }

    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        if ctx.cause.is_hardware_limitation() {
            return if ctx.can_demote {
                RetryDecision::Demote
            } else {
                RetryDecision::RetryHere
            };
        }
        if !ctx.can_demote || ctx.attempt <= ctx.retry_budget {
            return RetryDecision::RetryHere;
        }
        match ctx.mix_percent {
            0 => RetryDecision::RetryHere,
            100 => RetryDecision::Demote,
            p => {
                if rng.next_u64() % 100 < p as u64 {
                    RetryDecision::Demote
                } else {
                    RetryDecision::RetryHere
                }
            }
        }
    }
}

/// [`PaperDefault`]'s demotion rules with randomised exponential backoff:
/// each retry waits in a jittered window that doubles per attempt up to a
/// cap, so threads that aborted together do not retry in lockstep and
/// re-collide ("retry storms").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CappedExponential {
    /// Spin window of the first retry.
    pub base_spins: u32,
    /// Upper bound on the spin window.
    pub max_spins: u32,
}

impl Default for CappedExponential {
    fn default() -> Self {
        CappedExponential {
            base_spins: 32,
            max_spins: 16_384,
        }
    }
}

impl RetryPolicy for CappedExponential {
    fn label(&self) -> &'static str {
        "capped-exp"
    }

    fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        match PaperDefault.decide(ctx, rng) {
            RetryDecision::Demote => RetryDecision::Demote,
            _ => {
                // Attempt 1 spins within base_spins; each further attempt
                // doubles the window (shift capped well before overflow).
                let window = self
                    .base_spins
                    .saturating_mul(1u32 << ctx.attempt.saturating_sub(1).min(16))
                    .clamp(1, self.max_spins);
                // Jitter uniformly over [window/2, window]: enough spread to
                // break lockstep, bounded so the backoff still escalates.
                let spins = window / 2 + rng.next_below(u64::from(window / 2) + 1) as u32;
                RetryDecision::BackoffThen(spins)
            }
        }
    }
}

/// Hardware-greedy: never gives up on a hardware path for contention — the
/// `hw_retries: u32::MAX` style of the paper's "Standard HyTM" measurement
/// variant, applied everywhere.  Only hardware limitations demote (they
/// must; the clamp would force it anyway).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Aggressive;

impl RetryPolicy for Aggressive {
    fn label(&self) -> &'static str {
        "aggressive"
    }

    fn decide(&self, ctx: &AttemptContext, _rng: &mut RetryRng) -> RetryDecision {
        if ctx.can_demote && ctx.cause.is_hardware_limitation() {
            RetryDecision::Demote
        } else {
            RetryDecision::RetryHere
        }
    }
}

/// Demotes early when the cascade is already degraded: if the fallback
/// counters show an RH2 or all-software commit in flight, hardware attempts
/// are likely to keep aborting against it, so the first failure demotes
/// instead of burning `patience` more hardware attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Adaptive {
    /// Extra same-path attempts tolerated while the cascade is healthy.
    pub patience: u32,
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive { patience: 2 }
    }
}

impl RetryPolicy for Adaptive {
    fn label(&self) -> &'static str {
        "adaptive"
    }

    fn wants_fallback_snapshot(&self) -> bool {
        true
    }

    fn decide(&self, ctx: &AttemptContext, _rng: &mut RetryRng) -> RetryDecision {
        if !ctx.can_demote {
            return RetryDecision::RetryHere;
        }
        if ctx.cause.is_hardware_limitation() {
            return RetryDecision::Demote;
        }
        let patience = if ctx.cascade_degraded() {
            0
        } else {
            self.patience
        };
        if ctx.attempt > patience {
            RetryDecision::Demote
        } else {
            RetryDecision::RetryHere
        }
    }
}

/// A shared, clonable handle to a [`RetryPolicy`], suitable for embedding
/// in runtime configs (`Clone + PartialEq + Eq + Debug`; equality compares
/// [`RetryPolicy::fingerprint`]s).
#[derive(Clone)]
pub struct RetryPolicyHandle(Arc<dyn RetryPolicy>);

impl RetryPolicyHandle {
    /// Wraps a policy in a shareable handle.
    pub fn new<P: RetryPolicy + 'static>(policy: P) -> Self {
        RetryPolicyHandle(Arc::new(policy))
    }

    /// The seed behaviour: [`PaperDefault`].
    pub fn paper_default() -> Self {
        Self::new(PaperDefault)
    }

    /// [`CappedExponential`] with default window parameters.
    pub fn capped_exponential() -> Self {
        Self::new(CappedExponential::default())
    }

    /// [`Aggressive`].
    pub fn aggressive() -> Self {
        Self::new(Aggressive)
    }

    /// [`Adaptive`] with default patience.
    pub fn adaptive() -> Self {
        Self::new(Adaptive::default())
    }

    /// [`crate::retry2::FullJitter`] with default window parameters.
    pub fn full_jitter() -> Self {
        Self::new(crate::retry2::FullJitter::default())
    }

    /// [`crate::retry2::FibonacciBackoff`] with default window parameters.
    pub fn fibonacci() -> Self {
        Self::new(crate::retry2::FibonacciBackoff::default())
    }

    /// [`crate::retry2::CircuitBreaker`] around [`PaperDefault`] with the
    /// default breaker configuration (label `cb`).
    pub fn circuit_breaker() -> Self {
        Self::new(crate::retry2::CircuitBreaker::paper_default())
    }

    /// [`crate::retry2::Budgeted`] around [`PaperDefault`] with the default
    /// token bucket (label `budgeted`).
    pub fn budgeted() -> Self {
        Self::new(crate::retry2::Budgeted::paper_default())
    }

    /// Every built-in policy, in a stable order (used by the
    /// `ablation_retry` / `ablation_retry2` sweeps).  Append-only: sweep
    /// outputs and the spec-grammar tests key off this order.
    pub fn builtin() -> Vec<RetryPolicyHandle> {
        vec![
            Self::paper_default(),
            Self::capped_exponential(),
            Self::aggressive(),
            Self::adaptive(),
            Self::full_jitter(),
            Self::fibonacci(),
            Self::circuit_breaker(),
            Self::budgeted(),
        ]
    }

    /// Parses a built-in policy label (`paper-default`, `capped-exp`,
    /// `aggressive`, `adaptive`, `full-jitter`, `fib`, `cb`, `budgeted`)
    /// back into a handle.
    ///
    /// Each call constructs a **fresh** policy instance: stateful Retry 2.0
    /// policies parsed into different specs never share a breaker state or
    /// token bucket (handle equality still compares configurations, via
    /// [`RetryPolicy::fingerprint`]).
    pub fn parse(label: &str) -> Option<RetryPolicyHandle> {
        let l = label.trim().to_ascii_lowercase();
        Self::builtin().into_iter().find(|p| p.label() == l)
    }

    /// The shared policy object, for composition: Retry 2.0 wrappers
    /// ([`crate::retry2::CircuitBreaker`], [`crate::retry2::Budgeted`])
    /// take any handle as their inner policy.
    pub fn shared(&self) -> Arc<dyn RetryPolicy> {
        Arc::clone(&self.0)
    }

    /// The wrapped policy's label.
    pub fn label(&self) -> &'static str {
        self.0.label()
    }

    /// Delegates to [`RetryPolicy::decide`].
    #[inline]
    pub fn decide(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        self.0.decide(ctx, rng)
    }

    /// [`RetryPolicy::decide`] followed by [`AttemptContext::clamp`] — what
    /// every runtime actually acts on.
    #[inline]
    pub fn decide_clamped(&self, ctx: &AttemptContext, rng: &mut RetryRng) -> RetryDecision {
        ctx.clamp(self.0.decide(ctx, rng))
    }

    /// [`RetryPolicy::decide_observed`] followed by
    /// [`AttemptContext::clamp`], recording the observed abort cause and
    /// the post-clamp outcome into the thread's [`RetryMetrics`] — the
    /// Retry 2.0 decision entry point every runtime calls.
    #[inline]
    pub fn decide_clamped_observed(
        &self,
        ctx: &AttemptContext,
        rng: &mut RetryRng,
        metrics: &mut RetryMetrics,
    ) -> RetryDecision {
        metrics.record_cause(ctx.cause);
        let decision = ctx.clamp(self.0.decide_observed(ctx, rng, metrics));
        match decision {
            RetryDecision::RetryHere => metrics.retry_here += 1,
            RetryDecision::Demote => metrics.demote += 1,
            RetryDecision::BackoffThen(_) => metrics.backoff += 1,
        }
        decision
    }

    /// Delegates to [`RetryPolicy::on_commit`] (guarded by the cached
    /// [`RetryPolicyHandle::wants_commit_hook`] answer in the runtimes).
    #[inline]
    pub fn on_commit(&self, hardware: bool, metrics: &mut RetryMetrics) {
        self.0.on_commit(hardware, metrics);
    }

    /// Delegates to [`RetryPolicy::wants_commit_hook`] (runtimes cache the
    /// answer per thread).
    pub fn wants_commit_hook(&self) -> bool {
        self.0.wants_commit_hook()
    }

    /// Delegates to [`RetryPolicy::wants_fallback_snapshot`] (runtimes
    /// cache the answer per thread).
    pub fn wants_fallback_snapshot(&self) -> bool {
        self.0.wants_fallback_snapshot()
    }
}

impl Default for RetryPolicyHandle {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Debug for RetryPolicyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RetryPolicyHandle({:?})", self.0)
    }
}

impl PartialEq for RetryPolicyHandle {
    fn eq(&self, other: &Self) -> bool {
        self.0.fingerprint() == other.0.fingerprint()
    }
}

impl Eq for RetryPolicyHandle {}

impl std::ops::Deref for RetryPolicyHandle {
    type Target = dyn RetryPolicy;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: PathClass, cause: AbortCause, attempt: u32) -> AttemptContext {
        AttemptContext {
            attempt,
            path,
            cause,
            can_demote: true,
            retry_budget: 0,
            mix_percent: 100,
            fallback_rh2: 0,
            fallback_all_software: 0,
        }
    }

    #[test]
    fn paper_default_budget_is_max_extra_attempts() {
        // Budget N ⇒ attempts 1..=N retry, attempt N+1 demotes — the
        // unified RH1 (`>`) / RH2 (`>=`) semantics.
        let mut rng = RetryRng::new(1);
        for budget in [0u32, 1, 4, 8] {
            for attempt in 1..=budget {
                let c = AttemptContext {
                    retry_budget: budget,
                    ..ctx(PathClass::CommitHtm, AbortCause::Conflict, attempt)
                };
                assert_eq!(
                    PaperDefault.decide(&c, &mut rng),
                    RetryDecision::RetryHere,
                    "budget {budget}, attempt {attempt}"
                );
            }
            let c = AttemptContext {
                retry_budget: budget,
                ..ctx(PathClass::CommitHtm, AbortCause::Conflict, budget + 1)
            };
            assert_eq!(
                PaperDefault.decide(&c, &mut rng),
                RetryDecision::Demote,
                "budget {budget} must demote on attempt {}",
                budget + 1
            );
        }
    }

    #[test]
    fn paper_default_mix_percent_governs_after_budget() {
        let mut rng = RetryRng::new(7);
        let base = ctx(PathClass::Hardware, AbortCause::Conflict, 1);
        let never = AttemptContext {
            mix_percent: 0,
            ..base
        };
        let always = AttemptContext {
            mix_percent: 100,
            ..base
        };
        assert_eq!(
            PaperDefault.decide(&never, &mut rng),
            RetryDecision::RetryHere
        );
        assert_eq!(
            PaperDefault.decide(&always, &mut rng),
            RetryDecision::Demote
        );
        // A 50% mix must produce both outcomes over many draws.
        let mixed = AttemptContext {
            mix_percent: 50,
            ..base
        };
        let mut demotes = 0;
        for _ in 0..200 {
            if PaperDefault.decide(&mixed, &mut rng) == RetryDecision::Demote {
                demotes += 1;
            }
        }
        assert!((40..=160).contains(&demotes), "demotes={demotes}");
    }

    #[test]
    fn clamp_enforces_hardware_limitations_and_dead_ends() {
        let mut c = ctx(PathClass::Hardware, AbortCause::Capacity, 1);
        assert_eq!(c.clamp(RetryDecision::RetryHere), RetryDecision::Demote);
        assert_eq!(
            c.clamp(RetryDecision::BackoffThen(10)),
            RetryDecision::Demote
        );
        c.can_demote = false;
        assert_eq!(c.clamp(RetryDecision::Demote), RetryDecision::RetryHere);
        let c = ctx(PathClass::Hardware, AbortCause::Conflict, 1);
        assert_eq!(
            c.clamp(RetryDecision::BackoffThen(10)),
            RetryDecision::BackoffThen(10)
        );
    }

    #[test]
    fn aggressive_only_demotes_on_hardware_limitations() {
        let mut rng = RetryRng::new(3);
        let c = ctx(PathClass::Hardware, AbortCause::Conflict, 1_000_000);
        assert_eq!(Aggressive.decide(&c, &mut rng), RetryDecision::RetryHere);
        let c = ctx(PathClass::Hardware, AbortCause::Capacity, 1);
        assert_eq!(Aggressive.decide(&c, &mut rng), RetryDecision::Demote);
    }

    #[test]
    fn adaptive_loses_patience_when_the_cascade_degrades() {
        let mut rng = RetryRng::new(3);
        let healthy = AttemptContext {
            retry_budget: u32::MAX,
            ..ctx(PathClass::Hardware, AbortCause::Conflict, 1)
        };
        assert_eq!(
            Adaptive::default().decide(&healthy, &mut rng),
            RetryDecision::RetryHere
        );
        let degraded = AttemptContext {
            fallback_all_software: 1,
            ..healthy
        };
        assert_eq!(
            Adaptive::default().decide(&degraded, &mut rng),
            RetryDecision::Demote
        );
        let exhausted = AttemptContext {
            attempt: 3,
            ..healthy
        };
        assert_eq!(
            Adaptive::default().decide(&exhausted, &mut rng),
            RetryDecision::Demote
        );
    }

    #[test]
    fn capped_exponential_backs_off_within_bounds() {
        let mut rng = RetryRng::new(11);
        let policy = CappedExponential::default();
        let mut last_window_top = 0;
        for attempt in 1..=20 {
            let c = AttemptContext {
                retry_budget: u32::MAX,
                ..ctx(PathClass::Hardware, AbortCause::Conflict, attempt)
            };
            match policy.decide(&c, &mut rng) {
                RetryDecision::BackoffThen(spins) => {
                    assert!(spins <= policy.max_spins, "attempt {attempt}: {spins}");
                    last_window_top = last_window_top.max(spins);
                }
                other => panic!("expected backoff, got {other:?}"),
            }
        }
        assert!(
            last_window_top > policy.base_spins,
            "backoff never escalated"
        );
        // Hardware limitations still demote.
        let c = ctx(PathClass::Hardware, AbortCause::Unsupported, 1);
        assert_eq!(policy.decide(&c, &mut rng), RetryDecision::Demote);
    }

    #[test]
    fn jitter_streams_diverge_across_threads() {
        let policy = CappedExponential::default();
        let c = AttemptContext {
            retry_budget: u32::MAX,
            ..ctx(PathClass::Hardware, AbortCause::Conflict, 6)
        };
        let mut a = RetryRng::new(1);
        let mut b = RetryRng::new(2);
        let draws_a: Vec<_> = (0..8).map(|_| policy.decide(&c, &mut a)).collect();
        let draws_b: Vec<_> = (0..8).map(|_| policy.decide(&c, &mut b)).collect();
        assert_ne!(draws_a, draws_b, "seeded jitter must differ per thread");
    }

    #[test]
    fn handle_equality_and_parse_round_trip() {
        for policy in RetryPolicyHandle::builtin() {
            let reparsed = RetryPolicyHandle::parse(policy.label()).unwrap();
            assert_eq!(policy, reparsed, "{}", policy.label());
        }
        assert_eq!(RetryPolicyHandle::default().label(), "paper-default");
        assert_ne!(
            RetryPolicyHandle::paper_default(),
            RetryPolicyHandle::aggressive()
        );
        // Same type, different parameters: distinct fingerprints.
        assert_ne!(
            RetryPolicyHandle::new(Adaptive { patience: 1 }),
            RetryPolicyHandle::new(Adaptive { patience: 9 })
        );
        assert_eq!(RetryPolicyHandle::parse("nonsense"), None);
    }

    #[test]
    fn rng_matches_the_historical_xorshift() {
        // The exact sequence RhThread::next_random produced before the
        // refactor — the RH "Mix" draw must stay bit-identical.
        let mut rng = RetryRng::new(0x1234_5678_9abc_def1);
        let mut x: u64 = 0x1234_5678_9abc_def1;
        for _ in 0..16 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            assert_eq!(rng.next_u64(), x);
        }
        assert!(RetryRng::new(0).next_u64() != 0);
    }

    #[test]
    fn spin_handles_zero_and_large_counts() {
        spin(0);
        spin(10_000);
    }

    #[test]
    fn fork_decorrelates_salts_but_advances_parents_identically() {
        let mut a = RetryRng::new(42);
        let mut b = RetryRng::new(42);
        let child_a = a.fork(1).next_u64();
        let child_b = b.fork(2).next_u64();
        assert_ne!(child_a, child_b, "different salts, different child streams");
        // The parent advancement is salt-independent.
        assert_eq!(a.next_u64(), b.next_u64());
        // Repeated forks with one salt still differ (the parent advanced).
        let mut c = RetryRng::new(42);
        assert_ne!(c.fork(1).next_u64(), c.fork(1).next_u64());
    }

    #[test]
    fn decide_clamped_observed_records_causes_and_outcomes() {
        use crate::stats::RetryMetrics;

        let mut rng = RetryRng::new(4);
        let mut m = RetryMetrics::default();
        let policy = RetryPolicyHandle::paper_default();
        // Budget 1 ⇒ attempt 1 retries, attempt 2 demotes.
        let retrying = AttemptContext {
            retry_budget: 1,
            ..ctx(PathClass::Hardware, AbortCause::Conflict, 1)
        };
        assert_eq!(
            policy.decide_clamped_observed(&retrying, &mut rng, &mut m),
            RetryDecision::RetryHere
        );
        let exhausted = AttemptContext {
            attempt: 2,
            ..retrying
        };
        assert_eq!(
            policy.decide_clamped_observed(&exhausted, &mut rng, &mut m),
            RetryDecision::Demote
        );
        // A capacity abort is clamped to Demote and recorded post-clamp.
        let capacity = ctx(PathClass::Hardware, AbortCause::Capacity, 1);
        assert_eq!(
            policy.decide_clamped_observed(&capacity, &mut rng, &mut m),
            RetryDecision::Demote
        );
        // Backoff outcomes are recorded as backoff.
        let backoff = RetryPolicyHandle::capped_exponential();
        let paced = AttemptContext {
            retry_budget: u32::MAX,
            ..ctx(PathClass::Hardware, AbortCause::Conflict, 1)
        };
        assert!(matches!(
            backoff.decide_clamped_observed(&paced, &mut rng, &mut m),
            RetryDecision::BackoffThen(_)
        ));
        assert_eq!(m.retry_here, 1);
        assert_eq!(m.demote, 2);
        assert_eq!(m.backoff, 1);
        assert_eq!(m.decisions(), 4);
        assert_eq!(m.cause_count(AbortCause::Conflict), 3);
        assert_eq!(m.cause_count(AbortCause::Capacity), 1);
    }

    #[test]
    fn builtin_is_append_only_with_stable_labels() {
        let labels: Vec<_> = RetryPolicyHandle::builtin()
            .iter()
            .map(|p| p.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "paper-default",
                "capped-exp",
                "aggressive",
                "adaptive",
                "full-jitter",
                "fib",
                "cb",
                "budgeted",
            ]
        );
        // The stateless policies keep their cheap hook defaults; the
        // stateful Retry 2.0 policies opt into the commit hook.
        for p in RetryPolicyHandle::builtin() {
            let stateful = matches!(p.label(), "cb" | "budgeted");
            assert_eq!(p.wants_commit_hook(), stateful, "{}", p.label());
        }
    }
}
