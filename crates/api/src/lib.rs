//! # rhtm-api
//!
//! Runtime-agnostic transactional memory interface shared by every runtime
//! in the workspace: the pure simulated-HTM runtime, the TL2 STM baseline,
//! the Standard-HyTM baseline and the RH1/RH2 reduced-hardware protocols.
//!
//! The central abstraction is a pair of traits:
//!
//! * [`TmRuntime`] — the shared, `Send + Sync` runtime object (global clock,
//!   stripe metadata, fallback counters, configuration).  It is a factory
//!   for per-thread handles.
//! * [`TmThread`] — a per-thread handle that doubles as the transaction
//!   context.  [`TmThread::execute`] runs a closure transactionally,
//!   retrying internally until the transaction commits; inside the closure
//!   all shared accesses go through [`Txn::read`] and [`Txn::write`], and
//!   aborts propagate as `Err(`[`Abort`]`)` via `?`.
//!
//! Workload and benchmark code is generic over `R: TmRuntime`, so the
//! per-access paths are monomorphised and the *relative* instrumentation
//! costs the paper measures are preserved (no virtual dispatch on the hot
//! path).
//!
//! Two layers sit on top of the word-level traits:
//!
//! * [`typed`] — the typed transactional data layer ([`TxCell`],
//!   [`TxPtr`], record layouts, typed + checked allocation): zero-cost
//!   `#[inline]` wrappers that replace hand-rolled offset arithmetic and
//!   pointer null-sentinels in data-structure code.
//! * [`reclaim`] — typed node pools with epoch-based reclamation
//!   ([`NodePool`], [`EpochGuard`]): allocation over the per-thread arenas
//!   of `rhtm_mem`, retire-on-remove and physical reuse once every thread
//!   has passed the retiring epoch.
//! * [`dynamic`] — object-safe, dyn-erased mirrors ([`DynRuntime`],
//!   [`DynThread`]) so tests and examples can hold *any* runtime as a
//!   `Box<dyn DynRuntime>` value instead of writing visitor structs.
//! * [`session`] — scoped worker sessions ([`TmScopeExt::scope`],
//!   [`run_scoped`]): structured multi-threaded execution over any
//!   runtime, replacing hand-rolled spawn/register/barrier/join loops.
//!
//! ```
//! use rhtm_api::{Abort, TmRuntime, TmThread, TxResult, Txn};
//! use rhtm_mem::Addr;
//!
//! /// Transfer `amount` between two "accounts" (heap words) under any
//! /// transactional runtime.
//! fn transfer<R: TmRuntime>(thread: &mut R::Thread, from: Addr, to: Addr, amount: u64) {
//!     thread.execute(|tx| {
//!         let a = tx.read(from)?;
//!         if a < amount {
//!             return Ok(false);
//!         }
//!         let b = tx.read(to)?;
//!         tx.write(from, a - amount)?;
//!         tx.write(to, b + amount)?;
//!         Ok(true)
//!     });
//! }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod abort;
pub mod backoff;
pub mod dynamic;
pub mod latency;
pub mod reclaim;
pub mod retry;
pub mod retry2;
pub mod session;
pub mod stats;
pub mod test_runtime;
pub mod traits;
pub mod typed;

pub use abort::{Abort, AbortCause, TxResult};
pub use backoff::Backoff;
pub use dynamic::{DynRuntime, DynThread, DynThreadExt, DynTxn};
pub use latency::{LatencyHistogram, LatencySummary};
pub use reclaim::{EpochGuard, NodePool};
pub use retry::{
    AttemptContext, PathClass, RetryDecision, RetryPolicy, RetryPolicyHandle, RetryRng,
};
pub use retry2::{
    Budgeted, CircuitBreaker, CircuitBreakerConfig, FibonacciBackoff, FullJitter, RetryBudget,
};
pub use session::{run_scoped, DynScopeExt, ScopeControl, TmScopeExt, WorkerSession};
pub use stats::{PathKind, PathProbe, RetryMetrics, Stopwatch, TxStats};
pub use traits::{TmRuntime, TmThread, Txn};
pub use typed::{
    Codec, Field, FieldArray, LayoutBuilder, OrSized, Record, TxCell, TxFreeList, TxLayout, TxPtr,
    TxRecords, TxSlice, TypedAlloc, NULL_PTR_WORD,
};
