//! The runtime and transaction traits every TM implementation provides.

use std::sync::Arc;

use rhtm_mem::{Addr, TmMemory};

use crate::abort::TxResult;
use crate::stats::TxStats;

/// Transactional access to the shared heap.
///
/// Implemented by each runtime's per-thread handle; the methods are only
/// meaningful while a transaction is active, i.e. inside the closure passed
/// to [`TmThread::execute`].
pub trait Txn {
    /// Transactionally reads the word at `addr`.
    fn read(&mut self, addr: Addr) -> TxResult<u64>;

    /// Transactionally writes `value` to the word at `addr`.
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()>;

    /// Declares that the transaction needs to execute an operation that a
    /// best-effort hardware transaction cannot run (a system call, page
    /// fault, protected instruction, ...).
    ///
    /// On a hardware path this aborts the attempt with
    /// [`crate::AbortCause::Unsupported`], steering the runtime towards a
    /// software path where the operation can complete before the commit
    /// point — exactly the motivation the paper gives for keeping the
    /// slow-path transaction body in software.  On software paths it is a
    /// no-op returning `Ok(())`.
    fn protected_instruction(&mut self) -> TxResult<()> {
        Ok(())
    }
}

/// A per-thread transactional-memory handle.
///
/// The handle owns the thread's read/write-set buffers and statistics and is
/// the object through which transactions are executed.  It is `Send` so it
/// can be moved into a worker thread, but it is not `Sync`: one handle per
/// thread.
pub trait TmThread: Txn + Send {
    /// Runs `body` as a transaction, retrying (with the runtime's contention
    /// management and fallback policy) until an attempt commits, and returns
    /// the committed attempt's result.
    ///
    /// The closure may be invoked many times; it must not have side effects
    /// outside the transactional heap other than through idempotent local
    /// state.  Nested calls to `execute` on the same handle are not
    /// supported and panic.
    fn execute<R, F>(&mut self, body: F) -> R
    where
        F: FnMut(&mut Self) -> TxResult<R>;

    /// This thread's dense id (assigned by the runtime's
    /// [`rhtm_mem::ThreadRegistry`]).
    fn thread_id(&self) -> usize;

    /// Read access to this thread's statistics.
    fn stats(&self) -> &TxStats;

    /// Mutable access to this thread's statistics (used by drivers to reset
    /// between warm-up and measurement intervals, and to enable timing).
    fn stats_mut(&mut self) -> &mut TxStats;
}

/// A transactional-memory runtime: shared state plus a factory for
/// per-thread handles.
pub trait TmRuntime: Send + Sync + 'static {
    /// The per-thread handle type.
    ///
    /// `'static` so handles can be boxed behind
    /// [`crate::dynamic::DynThread`]; every handle owns its runtime state
    /// (via `Arc`s), so the bound costs nothing.
    type Thread: TmThread + 'static;

    /// A short, stable name used in benchmark reports ("HTM", "TL2",
    /// "Standard HyTM", "RH1 Fast", "RH1 Mixed", "RH2", ...).
    fn name(&self) -> &'static str;

    /// The shared transactional memory this runtime operates on.
    fn mem(&self) -> &Arc<TmMemory>;

    /// Creates a handle for the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if more threads register than the memory configuration's
    /// `max_threads`.
    fn register_thread(&self) -> Self::Thread;
}

#[cfg(test)]
mod tests {
    //! A miniature sequential runtime exercising the trait surface; the real
    //! runtimes live in the downstream crates.

    use super::*;
    use crate::abort::{Abort, AbortCause};
    use crate::stats::PathKind;
    use rhtm_mem::{MemConfig, ThreadRegistry, ThreadToken};

    /// A trivially-sequential runtime: transactions are executed directly
    /// against the heap under a global mutex-free assumption (single thread
    /// per test).  It exists only to validate the trait ergonomics.
    struct DirectRuntime {
        mem: Arc<TmMemory>,
        registry: Arc<ThreadRegistry>,
    }

    struct DirectThread {
        mem: Arc<TmMemory>,
        token: ThreadToken,
        stats: TxStats,
        active: bool,
        fail_next_reads: u32,
    }

    impl DirectRuntime {
        fn new() -> Self {
            let mem = Arc::new(TmMemory::new(MemConfig::with_data_words(128)));
            let registry = ThreadRegistry::new(8);
            DirectRuntime { mem, registry }
        }
    }

    impl TmRuntime for DirectRuntime {
        type Thread = DirectThread;

        fn name(&self) -> &'static str {
            "Direct"
        }

        fn mem(&self) -> &Arc<TmMemory> {
            &self.mem
        }

        fn register_thread(&self) -> DirectThread {
            DirectThread {
                mem: Arc::clone(&self.mem),
                token: self.registry.register(),
                stats: TxStats::new(false),
                active: false,
                fail_next_reads: 0,
            }
        }
    }

    impl Txn for DirectThread {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            if self.fail_next_reads > 0 {
                self.fail_next_reads -= 1;
                return Err(Abort::conflict());
            }
            self.stats.record_read(0);
            Ok(self.mem.heap().load(addr))
        }

        fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
            self.stats.record_write(0);
            self.mem.heap().store(addr, value);
            Ok(())
        }
    }

    impl TmThread for DirectThread {
        fn execute<R, F>(&mut self, mut body: F) -> R
        where
            F: FnMut(&mut Self) -> TxResult<R>,
        {
            assert!(!self.active, "nested execute is not supported");
            self.active = true;
            let result = loop {
                match body(self) {
                    Ok(r) => {
                        self.stats.record_commit(PathKind::Software);
                        break r;
                    }
                    Err(abort) => {
                        self.stats.record_abort(abort.cause);
                    }
                }
            };
            self.active = false;
            result
        }

        fn thread_id(&self) -> usize {
            self.token.id()
        }

        fn stats(&self) -> &TxStats {
            &self.stats
        }

        fn stats_mut(&mut self) -> &mut TxStats {
            &mut self.stats
        }
    }

    /// Generic helper used the way the workloads use the traits.
    fn increment<R: TmRuntime>(thread: &mut R::Thread, addr: Addr) -> u64 {
        thread.execute(|tx| {
            let v = tx.read(addr)?;
            tx.write(addr, v + 1)?;
            Ok(v + 1)
        })
    }

    #[test]
    fn generic_workload_compiles_and_runs() {
        let rt = DirectRuntime::new();
        let mut th = rt.register_thread();
        let addr = rt.mem().alloc(1);
        assert_eq!(increment::<DirectRuntime>(&mut th, addr), 1);
        assert_eq!(increment::<DirectRuntime>(&mut th, addr), 2);
        assert_eq!(rt.mem().heap().load(addr), 2);
        assert_eq!(th.stats().commits(), 2);
        assert!(th.thread_id() < 8);
    }

    #[test]
    fn retry_loop_retries_until_commit() {
        let rt = DirectRuntime::new();
        let mut th = rt.register_thread();
        let addr = rt.mem().alloc(1);
        th.fail_next_reads = 3;
        let v = increment::<DirectRuntime>(&mut th, addr);
        assert_eq!(v, 1);
        assert_eq!(th.stats().aborts_for(AbortCause::Conflict), 3);
        assert_eq!(th.stats().commits(), 1);
        assert!((th.stats().commit_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn protected_instruction_defaults_to_noop() {
        let rt = DirectRuntime::new();
        let mut th = rt.register_thread();
        let ok = th.execute(|tx| {
            tx.protected_instruction()?;
            Ok(true)
        });
        assert!(ok);
    }

    #[test]
    fn runtime_reports_name_and_memory() {
        let rt = DirectRuntime::new();
        assert_eq!(rt.name(), "Direct");
        assert!(rt.mem().layout().data_words() >= 128);
    }
}
